"""Concurrency stress: N readers querying while the writer replays a
recorded update workload.

Correctness contract being exercised:

* no reader ever raises (no torn labelings, no half-built views);
* every result a reader sees is *valid against the generation it
  pinned* — the writer records navigational ground truth for each
  generation inside the write lock, so a reader pinning generation G
  must reproduce exactly ``expected[G]``;
* clean shutdown — all threads join, no generation stays pinned, and
  superseded snapshots were reclaimed.

The write lock excludes readers for the whole mutation + recording
step, so a generation is fully recorded before any reader can pin it.
"""

from __future__ import annotations

import threading

import pytest

from repro.concurrent import ConcurrentDocument
from repro.generator import (
    RandomTreeConfig,
    UpdateWorkloadConfig,
    generate_tree,
    generate_update_workload,
)

from repro.query.engine import XPathEngine

pytestmark = [pytest.mark.slow, pytest.mark.timeout(120)]

READERS = 8
OPERATIONS = 30
QUERIES = (
    "//item",
    "//entry/ancestor::*",
    "//record/..",
)


def _ground_truth(engine: XPathEngine) -> dict:
    return {
        query: [n.node_id for n in engine.select(query, strategy="navigational")]
        for query in QUERIES
    }


@pytest.mark.parametrize("scheme", ["ruid2", "dewey"])
def test_readers_never_see_torn_state(scheme):
    tree = generate_tree(RandomTreeConfig(node_count=300), seed=17)
    doc = ConcurrentDocument(tree, scheme=scheme)
    engine = XPathEngine(tree)
    ops = generate_update_workload(
        tree, UpdateWorkloadConfig(operations=OPERATIONS, insert_fraction=0.7), seed=29
    )

    # generation → query → expected node ids; written only under the
    # write lock, read by readers holding a pin on that generation
    expected = {doc.generation: _ground_truth(engine)}
    writer_done = threading.Event()
    errors = []
    validated = [0] * READERS

    def insert_hook(parent, position, node):
        with doc.write_locked():
            report = doc.labeling.insert(parent, position, node)
            expected[doc.generation] = _ground_truth(engine)
        return report

    def delete_hook(node):
        with doc.write_locked():
            report = doc.labeling.delete(node)
            expected[doc.generation] = _ground_truth(engine)
        return report

    def writer():
        try:
            from repro.generator import apply_workload

            for _report in apply_workload(tree, ops, insert_hook, delete_hook):
                pass
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(("writer", exc))
        finally:
            writer_done.set()

    def reader(slot: int):
        try:
            while True:
                stop_after = writer_done.is_set()
                with doc.pin() as snap:
                    truth = expected[snap.generation]
                    for query in QUERIES:
                        got = snap.select_ids(query)
                        assert got == truth[query], (
                            f"torn read at generation {snap.generation}: "
                            f"{query} gave {len(got)} nodes, "
                            f"expected {len(truth[query])}"
                        )
                    validated[slot] += 1
                if stop_after:
                    return  # one full pass after the writer finished
        except Exception as exc:  # pragma: no cover - failure path
            errors.append((f"reader{slot}", exc))

    threads = [threading.Thread(target=writer)]
    threads += [threading.Thread(target=reader, args=(i,)) for i in range(READERS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(60.0)

    assert not any(t.is_alive() for t in threads), "threads failed to shut down"
    assert not errors, errors
    # every reader validated at least one pinned generation
    assert all(count > 0 for count in validated), validated

    stats = doc.stats_snapshot()
    assert stats["pinned_generations"] == 0
    assert stats["live_snapshots"] == 1  # only the final generation survives
    assert stats["snapshots_reclaimed"] == stats["snapshot_builds"] - 1
    assert stats["write_acquisitions"] == OPERATIONS
    # the final state is what a single-threaded replay would produce
    final = doc.pin()
    try:
        assert {q: final.select_ids(q) for q in QUERIES} == expected[doc.generation]
    finally:
        final.release()


def test_writer_not_starved_by_reader_loop():
    """Write preference: a writer gets through while 4 readers spin."""
    tree = generate_tree(RandomTreeConfig(node_count=120), seed=23)
    doc = ConcurrentDocument(tree)
    stop = threading.Event()
    errors = []

    def reader():
        try:
            while not stop.is_set():
                with doc.pin() as snap:
                    snap.select_ids("//item")
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=reader) for _ in range(4)]
    for t in threads:
        t.start()
    try:
        from repro.xmltree.node import NodeKind, XmlNode

        for _ in range(5):
            parent = doc.select("//*")[0]
            doc.insert(parent, 0, XmlNode("item", NodeKind.ELEMENT))
    finally:
        stop.set()
        for t in threads:
            t.join(30.0)
    assert not errors
    assert doc.stats_snapshot()["write_acquisitions"] == 5
