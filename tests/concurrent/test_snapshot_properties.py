"""Property: a pinned snapshot is immutable, whatever the writer does.

Hypothesis drives a random interleaving of structural updates
(insert / delete / reenumerate) with snapshot pin / unpin. Every held
pin carries the fingerprint taken at pin time (generation, the full
rank-ordered id sequence, and a query result); any later divergence —
after any number of mutations — is a torn snapshot.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.concurrent import ConcurrentDocument
from repro.errors import NumberingError
from repro.generator import RandomTreeConfig, generate_tree
from repro.xmltree.node import NodeKind, XmlNode

FINGERPRINT_QUERY = "//item"

ACTIONS = st.lists(
    st.sampled_from(["insert", "delete", "reenumerate", "pin", "unpin"]),
    min_size=1,
    max_size=30,
)


def _fingerprint(snap):
    # protocol-only: the pinned view may be a full StructuralView or a
    # chained DeltaView, and both must hold the same invariant
    view = snap.view
    return (
        snap.generation,
        tuple(view.label_at(rank) for rank in range(view.size())),
        tuple(snap.select_ids(FINGERPRINT_QUERY)),
    )


@settings(max_examples=40, deadline=None)
@given(actions=ACTIONS, choices=st.data())
def test_pinned_snapshots_are_immutable(actions, choices):
    tree = generate_tree(RandomTreeConfig(node_count=60), seed=41)
    doc = ConcurrentDocument(tree, scheme="ruid2")
    held = []  # (snapshot, fingerprint-at-pin-time)

    def check_all():
        for snap, fingerprint in held:
            assert _fingerprint(snap) == fingerprint, (
                f"snapshot of generation {snap.generation} changed "
                f"after later mutations"
            )

    try:
        for action in actions:
            if action == "pin":
                snap = doc.pin()
                held.append((snap, _fingerprint(snap)))
            elif action == "unpin":
                if held:
                    index = choices.draw(
                        st.integers(min_value=0, max_value=len(held) - 1)
                    )
                    snap, fingerprint = held.pop(index)
                    assert _fingerprint(snap) == fingerprint
                    snap.release()
            elif action == "insert":
                elements = [
                    n for n in doc.tree.preorder() if n.kind == NodeKind.ELEMENT
                ]
                parent = elements[
                    choices.draw(
                        st.integers(min_value=0, max_value=len(elements) - 1)
                    )
                ]
                position = choices.draw(
                    st.integers(min_value=0, max_value=len(parent.children))
                )
                doc.insert(parent, position, XmlNode("item", NodeKind.ELEMENT))
            elif action == "delete":
                victims = [
                    n
                    for n in doc.tree.preorder()
                    if n.parent is not None and n.kind == NodeKind.ELEMENT
                ]
                if victims:
                    victim = victims[
                        choices.draw(
                            st.integers(min_value=0, max_value=len(victims) - 1)
                        )
                    ]
                    doc.delete(victim)
            else:  # reenumerate
                try:
                    doc.reenumerate()
                except NumberingError:
                    pass
            check_all()
    finally:
        for snap, _fingerprint_ in held:
            snap.release()

    stats = doc.stats_snapshot()
    assert stats["pinned_generations"] == 0
    # a fresh pin of the current generation always works after the dust settles
    with doc.pin() as snap:
        assert snap.generation == doc.generation


@settings(max_examples=20, deadline=None)
@given(pins=st.integers(min_value=1, max_value=6))
def test_reclaim_exactly_once_per_superseded_generation(pins):
    tree = generate_tree(RandomTreeConfig(node_count=40), seed=43)
    doc = ConcurrentDocument(tree)
    snaps = [doc.pin() for _ in range(pins)]
    root_child = doc.tree.root.children[0]
    doc.insert(root_child, 0, XmlNode("item", NodeKind.ELEMENT))
    # all pins share one generation: reclaim fires on the LAST release only
    for snap in snaps[:-1]:
        snap.release()
        assert doc.stats_snapshot()["snapshots_reclaimed"] == 0
    snaps[-1].release()
    stats = doc.stats_snapshot()
    assert stats["snapshots_reclaimed"] == 1
    # the write published the new generation eagerly as a delta view
    # chained on the (now reclaimed) pinned one
    assert stats["live_snapshots"] == 1
    assert stats["snapshot_builds_delta"] == 1
