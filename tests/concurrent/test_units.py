"""Unit coverage for the concurrency primitives: the RW lock, the
epoch reclaimer, snapshot pin/release semantics, and the database
wrapper."""

from __future__ import annotations

import threading
import time

import pytest

from repro.baselines.registry import get_scheme
from repro.concurrent import (
    ConcurrentDocument,
    ConcurrentXmlDatabase,
    EpochReclaimer,
    ReadWriteLock,
)
from repro.errors import NumberingError
from repro.generator import RandomTreeConfig, generate_tree
from repro.storage.database import XmlDatabase
from repro.xmltree import parse
from repro.xmltree.node import NodeKind, XmlNode

DOC = "<root><a><b/><b/></a><c><b/></c></root>"


# ----------------------------------------------------------------------
# ReadWriteLock
# ----------------------------------------------------------------------
class TestReadWriteLock:
    def test_readers_share(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        lock.acquire_read()
        lock.release_read()
        lock.release_read()
        assert lock.read_acquisitions == 2

    def test_writer_excludes_readers(self):
        lock = ReadWriteLock()
        entered = threading.Event()
        lock.acquire_write()

        def reader():
            with lock.read_locked():
                entered.set()

        t = threading.Thread(target=reader)
        t.start()
        assert not entered.wait(0.05)
        lock.release_write()
        assert entered.wait(2.0)
        t.join()

    def test_write_preference_blocks_new_readers(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        writer_in = threading.Event()
        late_reader_in = threading.Event()

        def writer():
            with lock.write_locked():
                writer_in.set()

        def late_reader():
            with lock.read_locked():
                late_reader_in.set()

        tw = threading.Thread(target=writer)
        tw.start()
        # bounded spin: a writer that never queues must fail the test,
        # not hang it on the wall clock
        spin_deadline = time.monotonic() + 5.0
        while not lock._writers_waiting:
            assert time.monotonic() < spin_deadline, (
                "writer never registered as waiting"
            )
            time.sleep(0.001)
        tr = threading.Thread(target=late_reader)
        tr.start()
        # the waiting writer bars the new reader even though a reader
        # currently holds the lock
        assert not late_reader_in.wait(0.05)
        lock.release_read()
        assert writer_in.wait(2.0)
        assert late_reader_in.wait(2.0)
        tw.join()
        tr.join()
        assert lock.writer_wait_ns > 0

    def test_unmatched_release_raises(self):
        lock = ReadWriteLock()
        with pytest.raises(RuntimeError):
            lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_write()


# ----------------------------------------------------------------------
# EpochReclaimer
# ----------------------------------------------------------------------
class TestEpochReclaimer:
    def test_retire_unpinned_frees_immediately(self):
        freed = []
        r = EpochReclaimer(freed.append)
        assert r.retire(3) is True
        assert freed == [3]

    def test_retire_pinned_waits_for_last_unpin(self):
        freed = []
        r = EpochReclaimer(freed.append)
        r.pin(5)
        r.pin(5)
        assert r.retire(5) is False
        r.unpin(5)
        assert freed == []
        r.unpin(5)
        assert freed == [5]
        assert r.pin_count(5) == 0
        assert r.reclaimed == 1

    def test_unpin_without_pin_raises(self):
        r = EpochReclaimer()
        with pytest.raises(RuntimeError):
            r.unpin(1)

    def test_callback_fired_outside_lock(self):
        # re-entering the reclaimer from the callback must not deadlock
        r = EpochReclaimer()
        r._reclaim = lambda gen: r.pin_count(gen)
        r.pin(1)
        r.retire(1)
        r.unpin(1)


# ----------------------------------------------------------------------
# Snapshot pin/release semantics
# ----------------------------------------------------------------------
class TestPinnedSnapshot:
    def test_pin_survives_mutation(self):
        doc = ConcurrentDocument(parse(DOC))
        snap = doc.pin()
        before = snap.select_ids("//b")
        target = snap.select("//a")[0]
        doc.insert(target, 0, XmlNode("b", NodeKind.ELEMENT))
        assert snap.select_ids("//b") == before
        assert len(doc.select("//b")) == len(before) + 1
        snap.release()

    def test_release_idempotent_and_reclaims(self):
        doc = ConcurrentDocument(parse(DOC))
        snap = doc.pin()
        gen = snap.generation
        doc.insert(doc.select("//c")[0], 0, XmlNode("b", NodeKind.ELEMENT))
        snap.release()
        snap.release()  # no error, no double-unpin
        stats = doc.stats_snapshot()
        assert stats["pinned_generations"] == 0
        assert stats["snapshots_reclaimed"] == 1
        assert gen not in doc._views

    def test_same_generation_shares_one_view(self):
        doc = ConcurrentDocument(parse(DOC))
        with doc.pin() as a, doc.pin() as b:
            assert a.view is b.view
        assert doc.stats_snapshot()["snapshot_builds"] == 1

    def test_reenumerate_requires_support(self):
        doc = ConcurrentDocument(parse(DOC), scheme="dewey")
        with pytest.raises(NumberingError):
            doc.reenumerate()

    def test_reenumerate_bumps_generation(self):
        doc = ConcurrentDocument(parse(DOC), scheme="ruid2")
        with doc.pin() as snap:
            doc.reenumerate()
            assert doc.generation > snap.generation
            # the pinned view still answers from its own generation
            assert snap.select_ids("//b") == [n.node_id for n in doc.select("//b")]

    def test_plan_cache_shared_and_bounded(self):
        doc = ConcurrentDocument(parse(DOC), plan_cache_size=2)
        assert doc.compile("//a") is doc.compile("//a")
        doc.compile("//b")
        doc.compile("//c")  # evicts //a
        assert doc.stats.as_dict().get("plan_evictions") == 1


# ----------------------------------------------------------------------
# ConcurrentXmlDatabase
# ----------------------------------------------------------------------
class TestConcurrentDatabase:
    def _store(self, cdb, name="doc"):
        tree = generate_tree(RandomTreeConfig(node_count=40), seed=2)
        labeling = get_scheme("ruid2").build(tree)
        cdb.store_document(name, tree, labeling)
        return labeling

    def test_round_trip(self):
        cdb = ConcurrentXmlDatabase(XmlDatabase(durable=True))
        self._store(cdb)
        assert cdb.document_names() == ["doc"]
        rows = cdb.nodes_with_tag("doc", "item")
        assert rows
        label = rows[0][0]
        assert cdb.fetch("doc", label) == rows[0]

    def test_concurrent_readers_during_store(self):
        cdb = ConcurrentXmlDatabase(XmlDatabase(durable=True))
        self._store(cdb, "first")
        errors = []
        stop = threading.Event()

        def reader():
            try:
                while not stop.is_set():
                    names = cdb.document_names()
                    for name in names:
                        cdb.nodes_with_tag(name, "item")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for i in range(3):
            self._store(cdb, f"extra{i}")
        stop.set()
        for t in threads:
            t.join(5.0)
        assert not errors
        assert len(cdb.document_names()) == 4
        assert cdb.lock.write_acquisitions >= 4
