"""Parallel fan-out must be result-identical to sequential execution:
same snapshot, same document order, zero divergence."""

from __future__ import annotations

import pytest

from repro.concurrent import ConcurrentDocument, ParallelQueryExecutor
from repro.concurrent.parallel import _split_chunks
from repro.core import Ruid2Labeling, SizeCapPartitioner
from repro.generator import RandomTreeConfig, generate_tree, generate_xmark
from repro.storage.federation import FederatedDocument

QUERIES = (
    "//item",
    "//entry/ancestor::*",
    "//group/descendant-or-self::*",
    "//record/..",
    "//*[2]/following-sibling::*",
)


@pytest.fixture(scope="module")
def doc():
    tree = generate_tree(RandomTreeConfig(node_count=500), seed=13)
    return ConcurrentDocument(tree)


class TestSplitChunks:
    def test_partitions_in_order(self):
        items = list(range(10))
        chunks = _split_chunks(items, 3)
        assert [len(c) for c in chunks] == [4, 3, 3]
        assert [x for c in chunks for x in c] == items

    def test_never_more_chunks_than_items(self):
        assert len(_split_chunks([1, 2], 8)) == 2
        assert _split_chunks([], 4) == [[]]


class TestSelectBatch:
    def test_matches_sequential(self, doc):
        executor = ParallelQueryExecutor(doc, threads=4)
        parallel = executor.select_batch(QUERIES)
        sequential = executor.select_batch(QUERIES, threads=1)
        for query, par, seq in zip(QUERIES, parallel, sequential):
            assert [n.node_id for n in par] == [n.node_id for n in seq], query

    def test_batch_reads_one_generation(self, doc):
        executor = ParallelQueryExecutor(doc, threads=4)
        with doc.pin() as snap:
            first = executor.select_batch(QUERIES, snapshot=snap)
            # a writer slips in between two batches on the same pin
            parent = snap.select("//group")[0]
            from repro.xmltree.node import NodeKind, XmlNode

            doc.insert(parent, 0, XmlNode("item", NodeKind.ELEMENT))
            second = executor.select_batch(QUERIES, snapshot=snap)
        for par, seq in zip(first, second):
            assert [n.node_id for n in par] == [n.node_id for n in seq]

    def test_counts_chunks(self, doc):
        before = doc.stats_snapshot()["parallel_chunks"]
        ParallelQueryExecutor(doc, threads=2).select_batch(QUERIES)
        assert doc.stats_snapshot()["parallel_chunks"] == before + len(QUERIES)


class TestScanTag:
    def test_matches_xpath_descendants(self, doc):
        executor = ParallelQueryExecutor(doc, threads=4)
        scanned = [n.node_id for n in executor.scan_tag("item")]
        selected = [n.node_id for n in doc.select("//item")]
        assert scanned == selected

    def test_chunked_scan_preserves_document_order(self, doc):
        executor = ParallelQueryExecutor(doc, threads=4)
        for chunks in (1, 2, 3, 8):
            scanned = [n.node_id for n in executor.scan_tag("item", chunks=chunks)]
            assert scanned == [n.node_id for n in doc.select("//item")]

    def test_scoped_to_context(self, doc):
        executor = ParallelQueryExecutor(doc, threads=4)
        with doc.pin() as snap:
            context = snap.select("//group")[0]
            scanned = executor.scan_tag("item", context=context, snapshot=snap)
            expected = snap.select("descendant-or-self::item", context=context)
        assert [n.node_id for n in scanned] == [n.node_id for n in expected]

    def test_missing_tag_empty(self, doc):
        assert ParallelQueryExecutor(doc).scan_tag("nosuchtag") == []


class TestFederatedFanOut:
    def test_matches_serial_lookup(self):
        tree = generate_xmark(scale=0.05, seed=9)
        labeling = Ruid2Labeling(tree, partitioner=SizeCapPartitioner(16))
        doc = ConcurrentDocument(tree)
        federated = FederatedDocument(labeling, site_count=3)
        serial = {}
        for tag in ("item", "person", "keyword"):
            matches, _ = federated.find_tag(tag)
            serial[tag] = matches
        executor = ParallelQueryExecutor(doc, threads=3)
        fanned = executor.federated_find_tags(
            federated, ("item", "person", "keyword")
        )
        assert fanned == serial

    def test_rejects_zero_threads(self, doc):
        with pytest.raises(ValueError):
            ParallelQueryExecutor(doc, threads=0)
