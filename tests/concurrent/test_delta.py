"""The O(delta) write path: DeltaView capture, chaining, compaction,
area-scoped writer admission, per-area generation stamps, WAL commit
logging, and evaluator-cache eviction on reclaim.

The ground truth everywhere is a fresh full
:class:`~repro.concurrent.snapshot.StructuralView` of the same
generation: a delta chain must be node-for-node indistinguishable
from the O(n) rebuild it replaced.
"""

from __future__ import annotations

import pytest

from repro.concurrent import (
    ConcurrentDocument,
    DeltaView,
    ParallelQueryExecutor,
    StructuralView,
)
from repro.generator import RandomTreeConfig, generate_tree
from repro.query.stats import QueryStats
from repro.storage.wal import Wal
from repro.store.evaluator import StoreEvaluator
from repro.store.memory import MemoryNodeStore
from repro.xmltree.node import NodeKind, XmlNode

AXIS_QUERIES = (
    "//item",
    "//*",
    "/descendant-or-self::node()",
    "//item/ancestor::*",
    "//entry/following-sibling::*",
    "//entry/preceding-sibling::*",
    "//group/child::*",
    "//record/..",
    "//group/descendant-or-self::*",
)


def _make_doc(**kwargs):
    tree = generate_tree(RandomTreeConfig(node_count=120), seed=7)
    return ConcurrentDocument(tree, scheme="ruid2", **kwargs)


def _full_fingerprint(view):
    return [view.label_at(rank) for rank in range(view.size())]


def _assert_matches_full_rebuild(doc):
    """Pin the current view (possibly a delta chain) and compare it
    node-for-node, and axis-for-axis, against a fresh full build."""
    reference = StructuralView.from_labeling(doc.labeling)
    with doc.pin() as snap:
        view = snap.view
        assert view.generation == reference.generation
        assert view.size() == reference.size()
        assert _full_fingerprint(view) == _full_fingerprint(reference)
        for label in _full_fingerprint(reference):
            assert view.rank_of(label) == reference.rank_of(label)
            assert view.end_of(label) == reference.end_of(label)
            assert view.parent_of(label) == reference.parent_of(label)
            assert view.children_of(label) == reference.children_of(label)
            assert view.string_value(label) == reference.string_value(label)
        ref_eval = StoreEvaluator(reference, stats=QueryStats())
        snap_eval = snap.evaluator()

        def ids(nodes, evaluator):
            # each evaluator synthesizes its own transient #document
            # node with a fresh node_id; normalise it for comparison
            doc_node = evaluator.document_node
            return [-1 if n is doc_node else n.node_id for n in nodes]

        for query in AXIS_QUERIES:
            compiled = doc.compile(query)
            got = ids(snap_eval.select(compiled), snap_eval)
            want = ids(ref_eval.select(compiled), ref_eval)
            assert got == want, query


class TestDeltaPublish:
    def test_insert_publishes_delta_not_full_rebuild(self):
        doc = _make_doc()
        with doc.pin():
            pass  # materialise the base view
        parent = doc.tree.root.children[0]
        doc.insert(parent, 0, XmlNode("item", NodeKind.ELEMENT))
        stats = doc.stats_snapshot()
        assert stats["snapshot_builds_full"] == 1
        assert stats["snapshot_builds_delta"] == 1
        with doc.pin() as snap:
            assert isinstance(snap.view, DeltaView)
        _assert_matches_full_rebuild(doc)

    def test_delete_publishes_delta(self):
        doc = _make_doc()
        with doc.pin():
            pass
        victim = doc.tree.root.children[0].children[0]
        doc.delete(victim)
        assert doc.stats_snapshot()["snapshot_builds_delta"] == 1
        _assert_matches_full_rebuild(doc)

    def test_write_only_workload_publishes_nothing(self):
        # no reader ever built a view: the writer must not pay for one
        doc = _make_doc()
        parent = doc.tree.root.children[0]
        doc.insert(parent, 0, XmlNode("item", NodeKind.ELEMENT))
        stats = doc.stats_snapshot()
        assert stats["snapshot_builds"] == 0
        assert stats["live_snapshots"] == 0

    def test_chain_grows_then_compacts_at_limit(self):
        doc = _make_doc(delta_chain_limit=3)
        with doc.pin():
            pass
        parent = doc.tree.root.children[0]
        for index in range(3):
            doc.insert(parent, 0, XmlNode("item", NodeKind.ELEMENT))
            assert doc.stats_snapshot()["delta_chain_depth"] == index + 1
        # 4th edit: chain is at the limit -> full rebuild (compaction)
        doc.insert(parent, 0, XmlNode("item", NodeKind.ELEMENT))
        stats = doc.stats_snapshot()
        assert stats["snapshot_compactions"] == 1
        assert stats["delta_chain_depth"] == 0
        assert stats["snapshot_builds_full"] == 2
        assert stats["snapshot_builds_delta"] == 3
        _assert_matches_full_rebuild(doc)

    def test_build_cost_histograms_populated(self):
        doc = _make_doc()
        with doc.pin():
            pass
        parent = doc.tree.root.children[0]
        doc.insert(parent, 0, XmlNode("item", NodeKind.ELEMENT))
        full_hist, delta_hist = doc.build_histograms()
        assert full_hist.count == 1
        assert delta_hist.count == 1
        stats = doc.stats_snapshot()
        assert stats["snapshot_build_full_ns_mean"] > 0
        assert stats["snapshot_build_delta_ns_mean"] > 0

    def test_mixed_inserts_and_deletes_chain_correctly(self):
        doc = _make_doc(delta_chain_limit=16)
        with doc.pin():
            pass
        parent = doc.tree.root.children[0]
        doc.insert(parent, 0, XmlNode("item", NodeKind.ELEMENT))
        doc.insert(parent, 2, XmlNode("entry", NodeKind.ELEMENT))
        victim = doc.tree.root.children[0].children[0]
        doc.delete(victim)
        sibling = doc.tree.root.children[-1]
        doc.insert(sibling, len(sibling.children), XmlNode("item", NodeKind.ELEMENT))
        _assert_matches_full_rebuild(doc)


class TestScanAndParallelOverDelta:
    def test_scan_tag_over_delta_view(self):
        doc = _make_doc()
        with doc.pin():
            pass
        parent = doc.tree.root.children[0]
        added = XmlNode("item", NodeKind.ELEMENT)
        doc.insert(parent, 0, added)
        executor = ParallelQueryExecutor(doc, threads=3)
        with doc.pin() as snap:
            assert isinstance(snap.view, DeltaView)
            scanned = [n.node_id for n in executor.scan_tag("item", snapshot=snap)]
            assert scanned == snap.select_ids("//item")
            assert added.node_id in scanned

    def test_select_batch_over_delta_view(self):
        doc = _make_doc()
        with doc.pin():
            pass
        parent = doc.tree.root.children[0]
        doc.insert(parent, 0, XmlNode("entry", NodeKind.ELEMENT))
        executor = ParallelQueryExecutor(doc, threads=4)
        parallel = executor.select_batch(AXIS_QUERIES)
        sequential = executor.select_batch(AXIS_QUERIES, threads=1)
        for query, par, seq in zip(AXIS_QUERIES, parallel, sequential):
            assert [n.node_id for n in par] == [n.node_id for n in seq], query


class TestAreaLocks:
    def test_disjoint_writers_stamp_their_areas(self):
        doc = _make_doc()
        manager = doc.enable_area_locks(shard_count=4)
        with doc.pin():
            pass
        first_top = doc.tree.root.children[0]
        last_top = doc.tree.root.children[-1]
        doc.insert(first_top, 0, XmlNode("item", NodeKind.ELEMENT))
        doc.insert(last_top, 0, XmlNode("item", NodeKind.ELEMENT))
        stats = doc.stats_snapshot()
        assert stats["area_scoped_writes"] == 2
        assert stats["area_lock_acquisitions"] >= 2
        assert stats["area_lock_units"] == len(manager.shards)
        stamped = doc.area_generations()
        assert stamped  # every write stamped the areas it touched
        assert max(stamped.values()) == doc.generation
        _assert_matches_full_rebuild(doc)

    def test_scope_resolution_covers_new_nodes_via_ancestor(self):
        doc = _make_doc()
        doc.enable_area_locks(shard_count=4)
        with doc.pin():
            pass
        parent = doc.tree.root.children[0]
        fresh = XmlNode("item", NodeKind.ELEMENT)
        doc.insert(parent, 0, fresh)
        # the fresh node is not in the frozen plan: its edit resolves
        # through the planned ancestor and still succeeds
        doc.insert(fresh, 0, XmlNode("entry", NodeKind.ELEMENT))
        assert doc.stats_snapshot()["area_scoped_writes"] == 2
        _assert_matches_full_rebuild(doc)

    def test_area_planner_blocks_fallback(self):
        doc = _make_doc()
        manager = doc.enable_area_locks(shard_count=3, planner="blocks")
        assert len(manager.shards) == 3


class TestWalIntegration:
    def test_every_publish_logs_a_commit(self):
        wal = Wal()
        doc = _make_doc(wal=wal)
        parent = doc.tree.root.children[0]
        doc.insert(parent, 0, XmlNode("item", NodeKind.ELEMENT))
        doc.insert(parent, 0, XmlNode("item", NodeKind.ELEMENT))
        stats = doc.stats_snapshot()
        assert stats["wal_commits"] == 2
        assert stats["wal_syncs"] == 2
        result = wal.replay()
        assert result.metadata == b"concurrent-generation:%d" % doc.generation

    def test_group_commit_coalesces_writer_syncs(self):
        wal = Wal(group_commit_size=4)
        doc = _make_doc(wal=wal)
        parent = doc.tree.root.children[0]
        for _ in range(8):
            doc.insert(parent, 0, XmlNode("item", NodeKind.ELEMENT))
        stats = doc.stats_snapshot()
        assert stats["wal_commits"] == 8
        assert stats["wal_syncs"] == 2
        assert stats["wal_syncs"] < stats["wal_commits"]
        assert stats["wal_batches"] == 2


class TestCacheEviction:
    def test_two_level_cache_evicts_per_generation(self):
        tree = generate_tree(RandomTreeConfig(node_count=40), seed=11)
        doc = ConcurrentDocument(tree, scheme="ruid2")
        base = StructuralView.from_labeling(doc.labeling)
        evaluator = StoreEvaluator(base, stats=QueryStats())
        evaluator.select(doc.compile("//item"))
        assert len(evaluator._candidate_cache) == 1
        evicted = evaluator.evict_generation(base.generation)
        assert evicted == 1
        assert evaluator._candidate_cache == {}
        assert evaluator.stats.candidate_cache_evictions == 1
        # evicting an absent generation is a no-op
        assert evaluator.evict_generation(999) == 0

    def test_relabel_in_place_drops_stale_bucket(self):
        tree = generate_tree(RandomTreeConfig(node_count=40), seed=11)
        from repro.baselines.registry import get_scheme
        from repro.query.parser import parse_xpath

        store = MemoryNodeStore(get_scheme("ruid2").build(tree))
        evaluator = StoreEvaluator(store)
        evaluator.select(parse_xpath("//item"))
        assert len(evaluator._candidate_cache) == 1
        old_key = next(iter(evaluator._candidate_cache))
        node = tree.root.children[0]
        store.labeling.insert(node, 0, XmlNode("item", NodeKind.ELEMENT))
        assert store.generation != old_key[1]  # relabel bumped it
        evaluator.select(parse_xpath("//item"))
        assert len(evaluator._candidate_cache) == 1
        assert next(iter(evaluator._candidate_cache)) != old_key

    def test_reclaim_evicts_generation_caches(self):
        doc = _make_doc()
        snap = doc.pin()
        # query through the shared evaluator to populate its cache
        snap.select("//item")
        evaluator = snap.evaluator()
        generation = snap.generation
        parent = doc.tree.root.children[0]
        doc.insert(parent, 0, XmlNode("item", NodeKind.ELEMENT))
        snap.release()  # last pin drops -> reclaim fires
        assert doc.stats_snapshot()["snapshots_reclaimed"] == 1
        if isinstance(evaluator, StoreEvaluator):
            assert all(
                key[1] != generation for key in evaluator._candidate_cache
            )


class TestDeltaViewUnit:
    def test_shares_untouched_tag_lists_with_base(self):
        doc = _make_doc()
        with doc.pin() as snap:
            base = snap.view
        parent = doc.tree.root.children[0]
        doc.insert(parent, 0, XmlNode("item", NodeKind.ELEMENT))
        with doc.pin() as snap:
            view = snap.view
            assert isinstance(view, DeltaView)
            # a tag the edit never touched answers from the base's own
            # list object — the copy-on-write guarantee made literal
            tags = {n.tag for n in doc.tree.preorder() if n.kind == NodeKind.ELEMENT}
            untouched = sorted(tags - {"item"})
            assert untouched, "need at least one untouched tag"
            tag = untouched[0]
            assert view.labels_with_tag(tag) is base.labels_with_tag(tag)
            assert view.labels_with_tag("item") is not base.labels_with_tag("item")

    def test_release_caches_resets_memos(self):
        doc = _make_doc()
        with doc.pin():
            pass
        parent = doc.tree.root.children[0]
        doc.insert(parent, 0, XmlNode("item", NodeKind.ELEMENT))
        with doc.pin() as snap:
            view = snap.view
            view.string_value(view.root_label())
            view.release_caches()
            # still answers correctly after the reset
            reference = StructuralView.from_labeling(doc.labeling)
            assert view.string_value(view.root_label()) == reference.string_value(
                reference.root_label()
            )


@pytest.mark.parametrize("scheme", ["ruid2", "dewey", "ordpath", "prepost"])
def test_delta_path_is_scheme_agnostic(scheme):
    tree = generate_tree(RandomTreeConfig(node_count=80), seed=19)
    doc = ConcurrentDocument(tree, scheme=scheme)
    with doc.pin():
        pass
    parent = doc.tree.root.children[0]
    doc.insert(parent, 0, XmlNode("item", NodeKind.ELEMENT))
    assert doc.stats_snapshot()["snapshot_builds_delta"] == 1
    reference = StructuralView.from_labeling(doc.labeling)
    with doc.pin() as snap:
        assert _full_fingerprint(snap.view) == _full_fingerprint(reference)
