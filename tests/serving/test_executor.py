"""Scatter-gather executor behavior: routing, resilience, metrics."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import (
    Overloaded,
    QueryError,
    QueryTimeout,
    SiteUnavailableError,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.resilience import AdmissionController
from repro.serving import AsyncAdmission, ScatterGatherExecutor

from .conftest import baseline_keys, make_executor, sharded_keys

pytestmark = pytest.mark.timeout(60)


class TestRouting:
    def test_concrete_name_test_routes(self):
        cluster, executor = make_executor("site")
        shard_ids, routed = cluster.route("site", executor.compile("//name"))
        assert routed
        assert set(shard_ids) < set(cluster.shard_ids("site"))
        assert sharded_keys(executor, "site", "//name") == baseline_keys(
            "site", "//name"
        )
        assert executor.stats_snapshot()["routed"] == 1

    def test_union_routes_to_union_of_tags(self):
        cluster, executor = make_executor("site")
        union_ids, routed = cluster.route(
            "site", executor.compile("//age | //price")
        )
        assert routed
        age_ids, _ = cluster.route("site", executor.compile("//age"))
        price_ids, _ = cluster.route("site", executor.compile("//price"))
        assert set(union_ids) == set(age_ids) | set(price_ids)

    def test_unprunable_finals_broadcast(self):
        cluster, executor = make_executor("site")
        everything = set(cluster.shard_ids("site"))
        for query in ("//person/..", "//item/name/text()", "//*", "//person/@id"):
            shard_ids, routed = cluster.route("site", executor.compile(query))
            assert not routed, query
            assert set(shard_ids) == everything

    def test_absent_tag_answers_empty_without_scatter(self):
        cluster, executor = make_executor("site")
        before = cluster.total_messages()
        assert executor.select_sync("site", "//nosuchtag") == []
        assert cluster.total_messages() == before

    def test_stale_synopsis_broadcasts_until_resync(self):
        cluster, executor = make_executor("site")
        routed_ids, _ = cluster.route("site", executor.compile("//name"))
        cluster.bump_epoch("site")
        assert cluster.synopsis_is_stale("site")
        shard_ids, routed = cluster.route("site", executor.compile("//name"))
        assert not routed
        assert set(shard_ids) == set(cluster.shard_ids("site"))
        # answers stay correct while stale (broadcast is a superset)
        assert sharded_keys(executor, "site", "//name") == baseline_keys(
            "site", "//name"
        )
        assert executor.stats_snapshot()["stale_fallbacks"] == 1
        cluster.resync("site")
        assert not cluster.synopsis_is_stale("site")
        again, routed = cluster.route("site", executor.compile("//name"))
        assert routed and again == routed_ids


class TestTypedFailures:
    def test_scalar_expression_is_query_error(self):
        _cluster, executor = make_executor("site")
        with pytest.raises(QueryError):
            executor.select_sync("site", "count(//name)")
        assert executor.stats_snapshot()["failed"] == 1

    def test_deadline_exhaustion_is_query_timeout(self):
        _cluster, executor = make_executor("xmark")
        with pytest.raises(QueryTimeout):
            executor.select_sync("xmark", "//keyword/ancestor::*", deadline=0.000001)
        assert executor.stats_snapshot()["timeouts"] == 1

    def test_whole_chain_down_is_site_unavailable(self):
        cluster, executor = make_executor("site", replication_factor=2)
        for name in cluster.sites:
            cluster.take_site_down(name)
        with pytest.raises(SiteUnavailableError):
            executor.select_sync("site", "//name")
        stats = executor.stats_snapshot()
        assert stats["failed"] == 1 and stats["ok"] == 0

    def test_admission_shed_is_typed_overloaded(self):
        admission = AdmissionController(
            max_concurrent=1, max_queue=0, queue_timeout_s=0.05
        )
        _cluster, executor = make_executor("site", admission=admission)

        async def burst():
            results = await asyncio.gather(
                *(executor.select("site", "//name") for _ in range(6)),
                return_exceptions=True,
            )
            return results

        results = asyncio.run(burst())
        ok = [r for r in results if isinstance(r, list)]
        shed = [r for r in results if isinstance(r, Overloaded)]
        assert len(ok) + len(shed) == 6 and shed, (
            "burst must split into served + typed Overloaded"
        )
        stats = executor.stats_snapshot()
        assert stats["shed"] == len(shed)
        for nodes in ok:
            assert [n.node_id for n in nodes]


class TestFailover:
    def test_primary_down_replica_answers(self):
        cluster, executor = make_executor("site", replication_factor=2)
        victim = cluster.chains[sorted(cluster.chains)[0]][0]
        cluster.take_site_down(victim)
        assert sharded_keys(executor, "site", "//name") == baseline_keys(
            "site", "//name"
        )
        stats = executor.stats_snapshot()
        assert stats["ok"] == 1
        assert stats["failovers"] >= 1

    def test_restore_returns_to_primary(self):
        cluster, executor = make_executor("site", replication_factor=2)
        victim = cluster.chains[sorted(cluster.chains)[0]][0]
        cluster.take_site_down(victim)
        sharded_keys(executor, "site", "//name")
        cluster.restore_site(victim)
        before = executor.stats_snapshot()["failovers"]
        assert sharded_keys(executor, "site", "//name") == baseline_keys(
            "site", "//name"
        )
        assert executor.stats_snapshot()["failovers"] == before

    def test_never_partial_results(self):
        """A scatter with one unreachable shard chain raises; it never
        returns the reachable subset as if it were the answer."""
        cluster, executor = make_executor("site", replication_factor=1)
        victim = cluster.chains[sorted(cluster.chains)[0]][0]
        cluster.take_site_down(victim)
        with pytest.raises(SiteUnavailableError):
            executor.select_sync("site", "//*")
        assert executor.stats_snapshot()["ok"] == 0


class TestObservability:
    def test_serving_metrics_rows(self):
        registry = MetricsRegistry()
        _cluster, executor = make_executor("site", registry=registry)
        executor.select_sync("site", "//name")
        names = {name for name, _value in registry.rows()}
        for expected in (
            "serving.requests",
            "serving.ok",
            "serving.latency_ns.p99",
            "serving.cluster.messages",
            "serving.cluster.sites",
        ):
            assert expected in names, expected
        snapshot = dict(registry.rows())
        assert snapshot["serving.requests"] == 1
        assert snapshot["serving.cluster.messages"] >= 1

    def test_traced_scatter_emits_site_spans(self):
        tracer = Tracer()
        _cluster, executor = make_executor("site", tracer=tracer)
        executor.select_sync("site", "//name")
        names = [span.name for span in tracer.finished()]
        assert "serving.site_call" in names


class TestAsyncAdmission:
    def test_waiters_wake_in_fifo_order(self):
        admission = AsyncAdmission(
            AdmissionController(max_concurrent=1, max_queue=4, queue_timeout_s=5.0)
        )
        order = []

        async def worker(tag):
            await admission.acquire()
            try:
                order.append(tag)
                await asyncio.sleep(0)
            finally:
                admission.release()

        async def run():
            await asyncio.gather(*(worker(i) for i in range(5)))

        asyncio.run(run())
        assert sorted(order) == list(range(5))
        stats = admission.controller.as_dict()
        assert stats["admitted"] == 5 and stats["rejected"] == 0
        assert stats["in_flight"] == 0 and stats["queue_depth"] == 0

    def test_queue_overflow_sheds_immediately(self):
        admission = AsyncAdmission(
            AdmissionController(max_concurrent=1, max_queue=1, queue_timeout_s=5.0)
        )

        async def run():
            await admission.acquire()  # token taken
            queued = asyncio.ensure_future(admission.acquire())
            await asyncio.sleep(0)  # let it enter the queue
            with pytest.raises(Overloaded):
                await admission.acquire()  # queue full -> typed shed
            admission.release()
            await queued
            admission.release()

        asyncio.run(run())
        assert admission.controller.as_dict()["rejected"] == 1

    def test_queue_timeout_sheds_typed(self):
        admission = AsyncAdmission(
            AdmissionController(
                max_concurrent=1, max_queue=2, queue_timeout_s=0.02
            )
        )

        async def run():
            await admission.acquire()
            with pytest.raises(Overloaded):
                await admission.acquire()
            admission.release()

        asyncio.run(run())
        stats = admission.controller.as_dict()
        assert stats["timed_out"] == 1
        assert stats["queue_depth"] == 0, "timed-out waiter leaked its slot"


class TestBatch:
    def test_select_batch_mixes_results_and_typed_errors(self):
        _cluster, executor = make_executor("site")

        async def run():
            return await executor.select_batch(
                [
                    ("site", "//name"),
                    ("site", "count(//name)"),
                    ("site", "//nosuchtag"),
                ]
            )

        good, bad, empty = asyncio.run(run())
        assert [n.node_id for n in good]
        assert isinstance(bad, QueryError)
        assert empty == []

    def test_plan_cache_bounded(self):
        _cluster, executor = make_executor("site", plan_cache_size=2)
        for tag in ("a", "b", "c", "d"):
            executor.compile(f"//{tag}")
        assert len(executor._plans) == 2
