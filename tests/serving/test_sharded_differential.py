"""Differential correctness of the sharded serving path.

The whole single-site differential matrix — every scheme × corpus ×
query — runs again through the scatter-gather executor at 1, 2, and 4
sites, and must agree **node for node** with the navigational
baseline. One site degenerates to the single-site evaluator (a sanity
anchor); 2 and 4 sites exercise routing, per-site filtering, and the
gather merge. A final battery re-runs the matrix while a site fails
over mid-suite, because correctness that only holds on the happy path
is not correctness.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.baselines.registry import scheme_names
from repro.resilience import AdmissionController

from .conftest import (
    CORPORA,
    baseline_keys,
    gather_keys,
    make_executor,
)

pytestmark = pytest.mark.timeout(120)

SCHEMES = scheme_names()
SITE_COUNTS = (1, 2, 4)


@pytest.mark.parametrize("corpus", sorted(CORPORA))
@pytest.mark.parametrize("scheme", SCHEMES)
def test_sharded_matches_navigational(scheme, corpus):
    """scheme × corpus, all queries, at 1/2/4 sites, one event loop."""
    queries = CORPORA[corpus][1]
    expected = [baseline_keys(corpus, query) for query in queries]
    for site_count in SITE_COUNTS:
        _cluster, executor = make_executor(
            corpus, scheme, site_count=site_count
        )
        got = asyncio.run(gather_keys(executor, corpus, queries))
        for query, want, keys in zip(queries, expected, got):
            assert keys == want, (
                f"scheme {scheme!r} diverged from navigational baseline "
                f"on {corpus}:{query} at {site_count} sites"
            )


@pytest.mark.parametrize("corpus", sorted(CORPORA))
def test_sharded_agrees_across_site_counts(corpus):
    """1-, 2-, and 4-site deployments return byte-identical key lists
    (not just each-correct: the merge order itself is deployment-
    independent)."""
    queries = CORPORA[corpus][1]
    per_count = {}
    for site_count in SITE_COUNTS:
        _cluster, executor = make_executor(corpus, site_count=site_count)
        per_count[site_count] = asyncio.run(
            gather_keys(executor, corpus, queries)
        )
    assert per_count[1] == per_count[2] == per_count[4]


@pytest.mark.parametrize("corpus", sorted(CORPORA))
def test_agreement_survives_mid_suite_failover(corpus):
    """Replicated deployment: the first half of the query set runs
    healthy, a primary dies, the second half (plus a re-run of the
    first) must still match the baseline node for node."""
    queries = list(CORPORA[corpus][1])
    cluster, executor = make_executor(
        corpus, site_count=4, replication_factor=2
    )
    half = max(1, len(queries) // 2)
    first = asyncio.run(gather_keys(executor, corpus, queries[:half]))
    for query, keys in zip(queries[:half], first):
        assert keys == baseline_keys(corpus, query)

    victim = cluster.chains[sorted(cluster.chains)[0]][0]
    cluster.take_site_down(victim)

    second = asyncio.run(gather_keys(executor, corpus, queries))
    for query, keys in zip(queries, second):
        assert keys == baseline_keys(corpus, query), (
            f"{corpus}:{query} diverged after failover of {victim}"
        )
    assert executor.stats_snapshot()["failovers"] >= 1

    cluster.restore_site(victim)
    third = asyncio.run(gather_keys(executor, corpus, queries))
    for query, keys in zip(queries, third):
        assert keys == baseline_keys(corpus, query)


def test_admitted_concurrent_matrix_stays_correct():
    """The whole site-corpus query set in flight at once behind a
    small admission gate: everything admitted is exactly right, and
    everything else is a typed shed — wrong answers are the only
    forbidden outcome."""
    from repro.errors import Overloaded

    corpus = "site"
    queries = CORPORA[corpus][1]
    admission = AdmissionController(
        max_concurrent=2, max_queue=2, queue_timeout_s=0.5
    )
    _cluster, executor = make_executor(
        corpus, site_count=4, admission=admission
    )

    async def run():
        return await asyncio.gather(
            *(
                executor.select(corpus, query)
                for query in queries * 4
            ),
            return_exceptions=True,
        )

    results = asyncio.run(run())
    from .conftest import corpus_tree, result_keys

    tree = corpus_tree(corpus)
    served = 0
    for query, outcome in zip(list(queries) * 4, results):
        if isinstance(outcome, Overloaded):
            continue
        assert not isinstance(outcome, BaseException), outcome
        assert result_keys(outcome, tree) == baseline_keys(corpus, query)
        served += 1
    assert served >= 1
