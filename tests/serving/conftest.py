"""Shared builders for the sharded-serving suite.

Clusters are built over the *differential* corpora (same trees, same
queries, same cached per-scheme views), so every serving test compares
against the exact navigational baselines the single-site suite pins.
"""

from __future__ import annotations

import asyncio
from typing import List, Optional, Sequence, Tuple

from repro.resilience import AdmissionController
from repro.serving import (
    ScatterGatherExecutor,
    ShardedCluster,
    rank_block_shards,
)
from tests.differential.conftest import (  # noqa: F401  (re-exported)
    CORPORA,
    baseline_keys,
    corpus_tree,
    result_keys,
    scheme_view,
)


def make_cluster(
    corpus: str,
    scheme: str = "ruid2",
    site_count: int = 4,
    replication_factor: int = 1,
    shard_count: Optional[int] = None,
    **cluster_kw,
) -> ShardedCluster:
    """A cluster serving *corpus* (as labeled by *scheme*) with a
    contiguous rank-block shard plan — more shards than sites so every
    site hosts several."""
    view = scheme_view(corpus, scheme)
    size = len(view.ids_by_rank)
    if shard_count is None:
        shard_count = max(site_count * 2, 4)
    cluster = ShardedCluster(
        site_count=site_count,
        replication_factor=replication_factor,
        **cluster_kw,
    )
    cluster.add_document(corpus, view, rank_block_shards(corpus, size, shard_count))
    return cluster


def make_executor(
    corpus: str,
    scheme: str = "ruid2",
    site_count: int = 4,
    replication_factor: int = 1,
    admission: Optional[AdmissionController] = None,
    **kw,
) -> Tuple[ShardedCluster, ScatterGatherExecutor]:
    cluster_kw = {
        key: kw.pop(key)
        for key in ("shard_count", "site_latency_s", "faults", "sleep", "vnode_count")
        if key in kw
    }
    cluster = make_cluster(
        corpus,
        scheme,
        site_count=site_count,
        replication_factor=replication_factor,
        **cluster_kw,
    )
    return cluster, ScatterGatherExecutor(cluster, admission=admission, **kw)


def sharded_keys(executor: ScatterGatherExecutor, corpus: str, query: str) -> List:
    """Comparable result identities of one scatter-gathered select."""
    return result_keys(executor.select_sync(corpus, query), corpus_tree(corpus))


async def gather_keys(
    executor: ScatterGatherExecutor,
    corpus: str,
    queries: Sequence[str],
    deadline_ms: Optional[float] = None,
) -> List[List]:
    """Run *queries* concurrently on one event loop; keys per query."""
    results = await asyncio.gather(
        *(
            executor.select(corpus, query, deadline=deadline_ms)
            for query in queries
        )
    )
    tree = corpus_tree(corpus)
    return [result_keys(nodes, tree) for nodes in results]
