"""Unit coverage: hash ring, shard planners, ownership tables."""

from __future__ import annotations

import pytest

from repro.baselines.registry import get_scheme
from repro.errors import StorageError
from repro.serving import (
    ConsistentHashRing,
    RankOwnership,
    Shard,
    area_shards,
    rank_block_shards,
    stable_hash,
    validate_partition,
)
from tests.differential.conftest import corpus_tree


class TestStableHash:
    def test_pinned_values(self):
        """Literal digests pin restart stability: a different Python,
        a different PYTHONHASHSEED, a different machine — same ring."""
        assert stable_hash("site0#0") == 0xE68B2B8159CEDE33
        assert stable_hash("") == 0xE4A6A0577479B2B4

    def test_distinct_keys_distinct_hashes(self):
        keys = [f"doc{i}/s{j}" for i in range(50) for j in range(8)]
        assert len({stable_hash(key) for key in keys}) == len(keys)


class TestConsistentHashRing:
    def test_membership(self):
        ring = ConsistentHashRing(["a", "b"])
        assert ring.sites() == frozenset({"a", "b"})
        assert "a" in ring and len(ring) == 2
        ring.add_site("c")
        assert "c" in ring
        ring.remove_site("b")
        assert ring.sites() == frozenset({"a", "c"})

    def test_duplicate_and_missing_sites_are_typed(self):
        ring = ConsistentHashRing(["a"])
        with pytest.raises(StorageError):
            ring.add_site("a")
        with pytest.raises(StorageError):
            ring.remove_site("zz")

    def test_empty_ring_refuses_lookup(self):
        with pytest.raises(StorageError):
            ConsistentHashRing().site_for("k")

    def test_chain_distinct_and_ordered(self):
        ring = ConsistentHashRing(["a", "b", "c", "d"])
        chain = ring.chain_for("doc/s3", 3)
        assert len(chain) == 3 == len(set(chain))
        # chain prefix is stable: asking for fewer replicas never
        # changes who the primary is
        assert ring.chain_for("doc/s3", 1) == chain[:1]
        assert ring.chain_for("doc/s3", 2) == chain[:2]

    def test_chain_truncates_at_ring_size(self):
        ring = ConsistentHashRing(["a", "b"])
        assert len(ring.chain_for("k", 5)) == 2

    def test_order_insensitive_layout(self):
        keys = [f"k{i}" for i in range(200)]
        forward = ConsistentHashRing(["a", "b", "c"]).assignment(keys)
        backward = ConsistentHashRing(["c", "b", "a"]).assignment(keys)
        assert forward == backward

    def test_vnodes_spread_load(self):
        ring = ConsistentHashRing(["a", "b", "c", "d"], vnode_count=64)
        counts = {"a": 0, "b": 0, "c": 0, "d": 0}
        for i in range(2000):
            counts[ring.site_for(f"key{i}")] += 1
        assert min(counts.values()) > 0
        assert max(counts.values()) / min(counts.values()) < 4


class TestShardPlanners:
    def test_rank_blocks_partition(self):
        shards = rank_block_shards("doc", 103, 4)
        validate_partition(shards, 103)
        sizes = [shard.rank_count for shard in shards]
        assert sum(sizes) == 103
        assert max(sizes) - min(sizes) <= 1

    def test_rank_blocks_clamp_to_size(self):
        shards = rank_block_shards("doc", 3, 8)
        assert len(shards) == 3
        validate_partition(shards, 3)

    def test_empty_document_refused(self):
        with pytest.raises(StorageError):
            rank_block_shards("doc", 0, 2)

    def test_area_shards_partition_site_corpus(self):
        labeling = get_scheme("ruid2").build(corpus_tree("site"))
        shards = area_shards("site", labeling)
        size = sum(1 for _ in labeling.tree.preorder())
        validate_partition(shards, size)

    def test_area_shards_partition_xmark(self):
        labeling = get_scheme("ruid2").build(corpus_tree("xmark"))
        shards = area_shards("xmark", labeling)
        size = sum(1 for _ in labeling.tree.preorder())
        validate_partition(shards, size)
        # a real multi-area document: areas are subtrees minus child
        # areas, so at least one shard owns several rank runs
        assert len(shards) > 1

    def test_validate_rejects_gap_overlap_and_inversion(self):
        good = (Shard("s0", "d", ((0, 4),)), Shard("s1", "d", ((5, 9),)))
        validate_partition(good, 10)
        with pytest.raises(StorageError, match="gap"):
            validate_partition(
                (Shard("s0", "d", ((0, 3),)), Shard("s1", "d", ((5, 9),))), 10
            )
        with pytest.raises(StorageError, match="overlaps"):
            validate_partition(
                (Shard("s0", "d", ((0, 5),)), Shard("s1", "d", ((5, 9),))), 10
            )
        with pytest.raises(StorageError, match="inverted"):
            validate_partition((Shard("s0", "d", ((4, 0),)),), 10)
        with pytest.raises(StorageError, match="covers"):
            validate_partition(good, 12)
        with pytest.raises(StorageError, match="empty"):
            validate_partition((), 0)


class TestRankOwnership:
    def test_owner_lookup_round_trip(self):
        shards = rank_block_shards("doc", 50, 3)
        ownership = RankOwnership(shards, 50)
        for shard in shards:
            for lo, hi in shard.intervals:
                for rank in range(lo, hi + 1):
                    assert ownership.owner_of(rank) == shard.shard_id
                    assert shard.owns_rank(rank)

    def test_out_of_plan_rank_is_typed(self):
        ownership = RankOwnership(rank_block_shards("doc", 10, 2), 10)
        with pytest.raises(StorageError):
            ownership.owner_of(10)
        with pytest.raises(StorageError):
            ownership.owner_of(-1)

    def test_owns_rank_outside_intervals(self):
        shard = Shard("s", "d", ((3, 5), (9, 9)))
        assert not shard.owns_rank(2)
        assert not shard.owns_rank(6)
        assert shard.owns_rank(9)
        assert shard.rank_count == 4
