"""Open-loop load generator: determinism, accounting, differential."""

from __future__ import annotations

import pytest

from repro.resilience import AdmissionController
from repro.serving import (
    OpenLoopLoadGenerator,
    poisson_schedule,
)

from .conftest import (
    CORPORA,
    baseline_keys,
    corpus_tree,
    make_executor,
    result_keys,
)

pytestmark = pytest.mark.timeout(60)

WORKLOAD = [("site", query) for query in CORPORA["site"][1]]


class TestSchedule:
    def test_same_seed_same_schedule(self):
        first = poisson_schedule(100.0, 60, WORKLOAD, seed=7)
        second = poisson_schedule(100.0, 60, WORKLOAD, seed=7)
        assert first == second

    def test_different_seeds_differ(self):
        assert poisson_schedule(100.0, 60, WORKLOAD, seed=7) != poisson_schedule(
            100.0, 60, WORKLOAD, seed=8
        )

    def test_offsets_increase_and_rate_scales(self):
        arrivals = poisson_schedule(100.0, 200, WORKLOAD, seed=1)
        offsets = [arrival.offset_s for arrival in arrivals]
        assert offsets == sorted(offsets)
        # mean inter-arrival ~ 1/rate (loose law-of-large-numbers band)
        mean_gap = offsets[-1] / len(offsets)
        assert 0.5 / 100.0 < mean_gap < 2.0 / 100.0

    def test_bad_inputs_are_refused(self):
        with pytest.raises(ValueError):
            poisson_schedule(0.0, 10, WORKLOAD, seed=1)
        with pytest.raises(ValueError):
            poisson_schedule(10.0, 10, [], seed=1)


class TestRun:
    def test_all_served_and_differentially_correct(self):
        _cluster, executor = make_executor("site", site_count=4)
        arrivals = poisson_schedule(300.0, 40, WORKLOAD, seed=11)
        generator = OpenLoopLoadGenerator(executor, deadline_ms=500.0)
        report = generator.run_sync(arrivals)
        assert report.ok == report.offered == 40
        assert report.wrong == 0 and report.shed == 0
        for outcome in report.outcomes:
            assert outcome.status == "ok"
            assert outcome.result_key is not None
            assert outcome.latency_ns > 0
        assert len(report.latencies_ns) == 40
        assert report.percentile_ns(0.99) >= report.percentile_ns(0.50)

    def test_identical_seeds_identical_outcomes(self):
        def run_once():
            _cluster, executor = make_executor("site", site_count=4)
            arrivals = poisson_schedule(300.0, 30, WORKLOAD, seed=23)
            report = OpenLoopLoadGenerator(executor, deadline_ms=500.0).run_sync(
                arrivals
            )
            return (
                [outcome.status for outcome in report.outcomes],
                [outcome.result_key for outcome in report.outcomes],
            )

        assert run_once() == run_once()

    def test_burst_sheds_typed_and_counts(self):
        admission = AdmissionController(
            max_concurrent=2, max_queue=2, queue_timeout_s=0.05
        )
        _cluster, executor = make_executor("site", admission=admission)
        arrivals = poisson_schedule(10_000.0, 50, WORKLOAD, seed=3)
        report = OpenLoopLoadGenerator(executor, deadline_ms=500.0).run_sync(
            arrivals
        )
        assert report.ok + report.shed == 50
        assert report.shed > 0, "a 50-deep burst into capacity 4 must shed"
        assert report.wrong == 0
        assert report.shed_rate == report.shed / 50
        statuses = {outcome.status for outcome in report.outcomes}
        assert statuses <= {"ok", "shed"}

    def test_differential_check_flags_wrong_answers(self):
        """Feed the generator deliberately wrong expectations: every
        OK answer must then be counted wrong — proving the check is
        actually wired to the results."""
        _cluster, executor = make_executor("site")
        arrivals = poisson_schedule(300.0, 10, [("site", "//name")], seed=5)
        generator = OpenLoopLoadGenerator(
            executor,
            deadline_ms=500.0,
            expected={("site", "//name"): ("bogus-node-id",)},
        )
        report = generator.run_sync(arrivals)
        assert report.wrong == report.offered == 10

    def test_expected_keys_pass_when_correct(self):
        _cluster, executor = make_executor("site")
        want = executor.select_sync("site", "//name")
        from repro.serving.loadgen import _node_key

        generator = OpenLoopLoadGenerator(
            executor,
            deadline_ms=500.0,
            expected={("site", "//name"): _node_key(want)},
        )
        arrivals = poisson_schedule(300.0, 10, [("site", "//name")], seed=5)
        report = generator.run_sync(arrivals)
        assert report.wrong == 0 and report.ok == 10
        # and those keys match the navigational baseline, closing the loop
        assert result_keys(want, corpus_tree("site")) == baseline_keys(
            "site", "//name"
        )

    def test_paced_run_obeys_schedule(self):
        """pace=True really waits out the arrival gaps (bounded above
        and below), so latency measurements see open-loop spacing."""
        import time

        _cluster, executor = make_executor("site")
        arrivals = poisson_schedule(2000.0, 10, [("site", "//name")], seed=9)
        span_s = arrivals[-1].offset_s
        generator = OpenLoopLoadGenerator(executor, pace=True)
        began = time.perf_counter()
        report = generator.run_sync(arrivals)
        elapsed = time.perf_counter() - began
        assert report.ok == 10
        assert elapsed >= span_s * 0.5
        assert elapsed < span_s + 2.0
