"""Chaos under sharding: outages, transients, and latency spikes
composed with the async scatter-gather path.

The PR 6 invariant, restated for the serving tier: under injected
faults a query either returns the **baseline-correct answer** or
raises a **typed ReproError** — never a wrong answer, never an untyped
crash, and (injected async sleeps only) never a wall-clock hang. All
chaos is seeded; every assertion message carries the seed so a failure
reproduces from the log line alone.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ReproError
from repro.storage import FaultInjector

from .conftest import (
    CORPORA,
    baseline_keys,
    corpus_tree,
    make_executor,
    result_keys,
)

pytestmark = [pytest.mark.chaos, pytest.mark.timeout(120)]

CHAOS_CORPORA = ("site", "random")
CHAOS_SEEDS = (1, 2, 3)


def run_schedule(executor, corpus, queries, deadline_ms=None, repeats=2):
    """Fire the query list *repeats* times concurrently; returns
    [(query, outcome)] where outcome is a node list or the raised
    typed error (anything untyped propagates and fails the test)."""

    async def one(query):
        try:
            nodes = await executor.select(
                corpus, query, deadline=deadline_ms
            )
        except ReproError as exc:
            return exc
        return nodes

    async def run():
        plan = list(queries) * repeats
        results = await asyncio.gather(*(one(query) for query in plan))
        return list(zip(plan, results))

    return asyncio.run(run())


def assert_correct_or_typed(corpus, outcomes, seed, context):
    tree = corpus_tree(corpus)
    correct = typed = 0
    for query, outcome in outcomes:
        if isinstance(outcome, ReproError):
            typed += 1
            continue
        assert result_keys(outcome, tree) == baseline_keys(corpus, query), (
            f"WRONG ANSWER under chaos (seed {seed}, {context}) "
            f"on {corpus}:{query}"
        )
        correct += 1
    return correct, typed


@pytest.mark.parametrize("corpus", CHAOS_CORPORA)
@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_transients_with_replicas_stay_correct(corpus, seed):
    """30% per-message transient faults, rf=2: retries and failovers
    must absorb everything — every single answer baseline-correct."""
    faults = FaultInjector(seed=seed)
    # 8 failover rounds: a chain only exhausts with probability
    # 0.3^8 ≈ 7e-5, so with these fixed seeds every chain gets through
    _cluster, executor = make_executor(
        corpus, site_count=4, replication_factor=2, faults=faults,
        max_rounds=8, breaker_threshold=50,
    )
    _cluster.arm_message_faults(transient_rate=0.3)
    outcomes = run_schedule(executor, corpus, CORPORA[corpus][1])
    correct, typed = assert_correct_or_typed(
        corpus, outcomes, seed, "transients rf=2"
    )
    assert correct == len(outcomes), (
        f"seed {seed}: {typed} queries failed although every shard had "
        f"a live replica and transients are retryable"
    )


@pytest.mark.parametrize("corpus", CHAOS_CORPORA)
@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_site_outages_correct_or_typed(corpus, seed):
    """A random site dies (unreplicated plan): shards it hosted answer
    with typed SiteUnavailableError, everything else stays exact."""
    faults = FaultInjector(seed=seed)
    cluster, executor = make_executor(
        corpus, site_count=4, replication_factor=1, faults=faults
    )
    victim = faults.take_random_site_down(sorted(cluster.sites))
    outcomes = run_schedule(executor, corpus, CORPORA[corpus][1])
    correct, typed = assert_correct_or_typed(
        corpus, outcomes, seed, f"outage of {victim}"
    )
    assert correct + typed == len(outcomes)
    faults.restore_site(victim)
    # the operator's heal step: the coordinator's breakers tripped on
    # the dead site and would otherwise hold their cooldown window
    for breaker in executor.breakers.values():
        breaker.reset()
    healed = run_schedule(executor, corpus, CORPORA[corpus][1], repeats=1)
    correct, typed = assert_correct_or_typed(
        corpus, healed, seed, f"after restoring {victim}"
    )
    assert typed == 0, (
        f"seed {seed}: queries still failing after {victim} came back"
    )


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_everything_at_once(seed):
    """Outage + transients + latency spikes + tight-ish deadlines, all
    composed: still correct-or-typed, and the run terminates without
    real sleeping (the spike sleep is the cluster's injected no-op)."""
    corpus = "site"
    faults = FaultInjector(seed=seed)
    cluster, executor = make_executor(
        corpus,
        site_count=4,
        replication_factor=2,
        faults=faults,
        site_latency_s=0.0005,
    )
    cluster.arm_message_faults(
        transient_rate=0.2, spike_rate=0.2, spike_s=0.005
    )
    victim = faults.take_random_site_down(sorted(cluster.sites))
    outcomes = run_schedule(
        executor, corpus, CORPORA[corpus][1], deadline_ms=250.0, repeats=3
    )
    correct, typed = assert_correct_or_typed(
        corpus, outcomes, seed, f"composed chaos, {victim} down"
    )
    assert correct + typed == len(outcomes)
    assert correct > 0, (
        f"seed {seed}: composed chaos shed every query; rf=2 should "
        f"keep most shards reachable"
    )


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_chaos_is_reproducible_from_seed(seed):
    """Two runs with the same seed inject the same faults and produce
    the same per-query outcome classes — the property that makes
    'reproduces from the log line' true."""

    def run_once():
        faults = FaultInjector(seed=seed)
        cluster, executor = make_executor(
            "site", site_count=4, replication_factor=2, faults=faults
        )
        cluster.arm_message_faults(transient_rate=0.3, spike_rate=0.1, spike_s=0.001)
        outcomes = run_schedule(executor, "site", CORPORA["site"][1])
        classes = [
            type(outcome).__name__
            if isinstance(outcome, ReproError)
            else "ok"
            for _query, outcome in outcomes
        ]
        return classes, dict(cluster.injected)

    first = run_once()
    second = run_once()
    assert first == second, f"seed {seed} did not reproduce its own run"
