"""Adversarial fuzzing of the storage codec and parameter loaders.

The robustness contract (docs/ROBUSTNESS.md): whatever bytes arrive —
truncated, bit-flipped, or pure noise — the decoders either return a
value or raise :class:`~repro.errors.StorageError`. A bare
``struct.error`` / ``IndexError`` / ``TypeError`` / ``UnicodeDecodeError``
leaking out is a bug, because recovery code treats StorageError as the
single "this blob is bad" signal.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Ruid2Labeling, SizeCapPartitioner
from repro.core.persist import (
    dump_multilevel_parameters,
    dump_parameters,
    load_multilevel_parameters,
    load_parameters,
)
from repro.errors import StorageError
from repro.generator import generate_xmark
from repro.storage import decode_key, decode_value, encode_key, encode_value

values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**80), max_value=2**80),
        st.floats(allow_nan=False),
        st.text(max_size=16),
        st.binary(max_size=16),
    ),
    lambda children: st.lists(children, max_size=3).map(tuple),
    max_leaves=6,
)


def _decode_or_storage_error(decoder, blob):
    try:
        decoder(bytes(blob))
    except StorageError:
        pass  # the only exception allowed out


class TestValueFuzz:
    @given(values, st.integers(min_value=0, max_value=200))
    @settings(max_examples=300)
    def test_truncation_never_leaks(self, value, cut):
        blob = encode_value(value)
        _decode_or_storage_error(decode_value, blob[: min(cut, len(blob))])

    @given(values, st.data())
    @settings(max_examples=300)
    def test_bitflip_decodes_or_raises_storage_error(self, value, data):
        blob = bytearray(encode_value(value))
        index = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
        bit = data.draw(st.integers(min_value=0, max_value=7))
        blob[index] ^= 1 << bit
        _decode_or_storage_error(decode_value, blob)

    @given(st.binary(max_size=64))
    @settings(max_examples=300)
    def test_noise_never_leaks(self, blob):
        _decode_or_storage_error(decode_value, blob)

    def test_non_bytes_input_rejected(self):
        with pytest.raises(StorageError):
            decode_value("not bytes")
        with pytest.raises(StorageError):
            decode_value(None)

    def test_error_messages_carry_offsets(self):
        blob = encode_value(("abc", 42))
        with pytest.raises(StorageError, match="offset"):
            decode_value(blob[:-3])


class TestKeyFuzz:
    @given(st.binary(max_size=48))
    @settings(max_examples=300)
    def test_noise_never_leaks(self, blob):
        _decode_or_storage_error(decode_key, blob)

    @given(st.tuples(st.integers(min_value=0, max_value=2**64), st.text(max_size=8)))
    @settings(max_examples=150)
    def test_truncation_never_leaks(self, key):
        blob = encode_key(key)
        for cut in range(len(blob)):
            _decode_or_storage_error(decode_key, blob[:cut])


class TestParameterBlobFuzz:
    @pytest.fixture(scope="class")
    def blob(self):
        tree = generate_xmark(scale=0.02, seed=7)
        labeling = Ruid2Labeling(tree, partitioner=SizeCapPartitioner(10))
        return dump_parameters(labeling, include_directory=True, epoch=3)

    def test_roundtrip(self, blob):
        parameters = load_parameters(blob)
        assert parameters.epoch == 3
        assert parameters.tags

    def test_every_truncation_raises_storage_error(self, blob):
        for cut in range(len(blob)):
            with pytest.raises(StorageError):
                load_parameters(blob[:cut])

    @given(st.data())
    @settings(max_examples=150)
    def test_bitflips_load_or_raise_storage_error(self, blob, data):
        damaged = bytearray(blob)
        index = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
        damaged[index] ^= 1 << data.draw(st.integers(min_value=0, max_value=7))
        _decode_or_storage_error(load_parameters, damaged)

    def test_wrong_shape_rejected(self):
        for payload in (None, 17, ("ruid2-params",), ("wrong", 2, 1, (), (), 0)):
            with pytest.raises(StorageError):
                load_parameters(encode_value(payload))


class TestMultilevelBlobFuzz:
    @pytest.fixture(scope="class")
    def blob(self):
        from repro.core import MultilevelRuidLabeling

        tree = generate_xmark(scale=0.02, seed=7)
        labeling = MultilevelRuidLabeling(tree, levels=3)
        return dump_multilevel_parameters(labeling)

    def test_roundtrip(self, blob):
        assert load_multilevel_parameters(blob).levels == 3

    def test_truncations_raise_storage_error(self, blob):
        for cut in range(0, len(blob), 7):
            with pytest.raises(StorageError):
                load_multilevel_parameters(blob[:cut])
