"""Property-based tests of numbering-scheme invariants.

Random trees are produced via seeded generation (a strategy over the
generator's own parameter space); the invariants checked are exactly
the ones the schemes exist to provide:

* labels are unique and bijective with nodes;
* the computed parent label equals the tree parent's label;
* the pairwise structural relation matches the tree;
* a random update sequence preserves all of the above.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import UPDATABLE, get_scheme, scheme_names
from repro.core import Relation
from repro.errors import NoParentError
from repro.generator import FanOutDistribution, RandomTreeConfig, generate_tree
from repro.xmltree import element

tree_configs = st.builds(
    RandomTreeConfig,
    node_count=st.integers(min_value=1, max_value=120),
    fan_out=st.builds(
        FanOutDistribution,
        kind=st.sampled_from(["uniform", "geometric", "zipf"]),
        low=st.integers(min_value=1, max_value=2),
        high=st.integers(min_value=2, max_value=6),
        mean=st.floats(min_value=1.0, max_value=5.0),
        exponent=st.floats(min_value=1.1, max_value=2.0),
        maximum=st.integers(min_value=3, max_value=20),
    ),
)

scheme_choices = st.sampled_from(scheme_names())
updatable_choices = st.sampled_from(list(UPDATABLE))


def expected_relation(tree, first, second):
    if first is second:
        return Relation.SELF
    if first.is_ancestor_of(second):
        return Relation.ANCESTOR
    if second.is_ancestor_of(first):
        return Relation.DESCENDANT
    if tree.compare_document_order(first, second) < 0:
        return Relation.PRECEDING
    return Relation.FOLLOWING


class TestLabelingInvariants:
    @given(tree_configs, st.integers(min_value=0, max_value=10_000), scheme_choices)
    @settings(max_examples=60, deadline=None)
    def test_bijection_and_parent(self, config, seed, scheme_name):
        tree = generate_tree(config, seed=seed)
        labeling = get_scheme(scheme_name).build(tree)
        seen = set()
        for node in tree.preorder():
            label = labeling.label_of(node)
            assert label not in seen
            seen.add(label)
            assert labeling.node_of(label) is node
            if node.parent is None:
                try:
                    labeling.parent_label(label)
                    assert False, "root parent must raise"
                except NoParentError:
                    pass
            else:
                assert labeling.parent_label(label) == labeling.label_of(node.parent)

    @given(tree_configs, st.integers(min_value=0, max_value=10_000), scheme_choices)
    @settings(max_examples=30, deadline=None)
    def test_relation_matches_tree(self, config, seed, scheme_name):
        tree = generate_tree(config, seed=seed)
        labeling = get_scheme(scheme_name).build(tree)
        nodes = tree.nodes()
        sample = nodes[:: max(1, len(nodes) // 12)]
        for first in sample:
            for second in sample:
                got = labeling.relation(
                    labeling.label_of(first), labeling.label_of(second)
                )
                assert got is expected_relation(tree, first, second)


class TestUpdateInvariants:
    @given(
        tree_configs,
        st.integers(min_value=0, max_value=10_000),
        updatable_choices,
        st.lists(st.tuples(st.booleans(), st.integers(0, 10**9)), max_size=12),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_updates_keep_consistency(self, config, seed, scheme_name, plan):
        tree = generate_tree(config, seed=seed)
        labeling = get_scheme(scheme_name).build(tree)
        rng = random.Random(seed)
        for step, (is_insert, pick) in enumerate(plan):
            nodes = tree.nodes()
            node = nodes[pick % len(nodes)]
            if is_insert or node is tree.root or tree.size() < 3:
                labeling.insert(node, rng.randint(0, node.fan_out), element(f"u{step}"))
            else:
                labeling.delete(node)
        for node in tree.preorder():
            label = labeling.label_of(node)
            assert labeling.node_of(label) is node
            if node.parent is not None:
                assert labeling.parent_label(label) == labeling.label_of(node.parent)
