"""Property-based tests for the order-preserving codec."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import decode_key, decode_value, encode_key, encode_value

key_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**128), max_value=2**128),
    st.text(max_size=12),
    st.binary(max_size=12),
)

key_values = st.one_of(
    key_scalars,
    st.tuples(key_scalars),
    st.tuples(key_scalars, key_scalars),
    st.tuples(key_scalars, key_scalars, key_scalars),
)

value_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**100), max_value=2**100),
        st.floats(allow_nan=False),
        st.text(max_size=20),
        st.binary(max_size=20),
    ),
    lambda children: st.lists(children, max_size=4).map(tuple),
    max_leaves=8,
)

_TYPE_RANK = {type(None): 0, bool: 1, int: 2, str: 3, bytes: 4, tuple: 5}


def reference_compare(first, second) -> int:
    """Type-ranked comparison mirroring the codec's documented order."""
    rank_first, rank_second = _TYPE_RANK[type(first)], _TYPE_RANK[type(second)]
    if rank_first != rank_second:
        return -1 if rank_first < rank_second else 1
    if isinstance(first, tuple):
        for a, b in zip(first, second):
            result = reference_compare(a, b)
            if result:
                return result
        return (len(first) > len(second)) - (len(first) < len(second))
    if first == second:
        return 0
    if first is None:
        return 0
    return -1 if first < second else 1


class TestKeyCodec:
    @given(key_values)
    @settings(max_examples=150)
    def test_roundtrip(self, value):
        assert decode_key(encode_key(value)) == value

    @given(key_values, key_values)
    @settings(max_examples=300)
    def test_order_preserved(self, first, second):
        want = reference_compare(first, second)
        encoded_first, encoded_second = encode_key(first), encode_key(second)
        got = (encoded_first > encoded_second) - (encoded_first < encoded_second)
        assert got == want

    @given(st.tuples(key_scalars), key_scalars)
    @settings(max_examples=100)
    def test_prefix_extension_sorts_after(self, prefix, extra):
        extended = prefix + (extra,)
        assert encode_key(prefix) < encode_key(extended)


class TestValueCodec:
    @given(value_values)
    @settings(max_examples=200)
    def test_roundtrip(self, value):
        assert decode_value(encode_value(value)) == value
