"""Property tests: fast-path caches never serve stale state.

Random update sequences (inserts/deletes through the labeling) are
interleaved with queries through one long-lived :class:`XPathEngine`.
After every update the rUID strategy — rank index, plan cache, axis
memos, batched steps and all — must agree node-for-node with the
navigational baseline, and the labeling's generation must have
advanced so every stamped cache was discarded.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import get_scheme
from repro.generator import FanOutDistribution, RandomTreeConfig, generate_tree
from repro.query import XPathEngine
from repro.xmltree import element

QUERIES = (
    "//*",
    "/*",
    "//*/*",
    "//*/..",
    "//node()",
    "//*/ancestor::*",
)

tree_configs = st.builds(
    RandomTreeConfig,
    node_count=st.integers(min_value=2, max_value=60),
    fan_out=st.builds(
        FanOutDistribution,
        kind=st.just("uniform"),
        low=st.integers(min_value=1, max_value=2),
        high=st.integers(min_value=2, max_value=4),
    ),
)


def _assert_strategies_agree(engine, extra=()):
    for query in (*QUERIES, *extra):
        ruid = [n.node_id for n in engine.select(query, "ruid")]
        nav = [n.node_id for n in engine.select(query, "navigational")]
        assert ruid == nav, query


class TestInvalidation:
    @given(
        tree_configs,
        st.integers(min_value=0, max_value=10_000),
        st.lists(st.tuples(st.booleans(), st.integers(0, 10**9)), max_size=6),
    )
    @settings(max_examples=25, deadline=None)
    def test_updates_never_serve_stale_answers(self, config, seed, plan):
        tree = generate_tree(config, seed=seed)
        labeling = get_scheme("ruid2", max_area_size=8).build(tree)
        engine = XPathEngine(tree, labeling=labeling)
        rng = random.Random(seed)
        _assert_strategies_agree(engine)
        inserted_tags = []
        for step, (is_insert, pick) in enumerate(plan):
            generation = labeling.generation
            nodes = tree.nodes()
            node = nodes[pick % len(nodes)]
            if is_insert or node is tree.root or tree.size() < 3:
                tag = f"u{step}"
                labeling.insert(node, rng.randint(0, node.fan_out), element(tag))
                inserted_tags.append(tag)
            else:
                labeling.delete(node)
            # every structural update must advance the cache generation
            assert labeling.generation > generation
            _assert_strategies_agree(
                engine, extra=[f"//{tag}" for tag in inserted_tags[-2:]]
            )

    @given(
        tree_configs,
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=15, deadline=None)
    def test_rank_memo_consistent_after_reenumerate(self, config, seed):
        """rparent memos and rank indexes rebuilt by ``reenumerate``
        must match the tree, not the pre-update labels."""
        tree = generate_tree(config, seed=seed)
        labeling = get_scheme("ruid2", max_area_size=8).build(tree)
        # warm the parent memo and rank index, then force a relabel
        index = labeling.rank_index()
        for node in tree.preorder():
            labeling.parent_label(labeling.label_of(node)) if node.parent else None
        labeling.insert(tree.root, 0, element("fresh"))
        rebuilt = labeling.rank_index()
        assert rebuilt is not index
        order = tree.document_order_index()
        for node in tree.preorder():
            label = labeling.label_of(node)
            assert rebuilt.rank_of(label) == order[node.node_id]
            if node.parent is not None:
                assert labeling.parent_label(label) == labeling.label_of(node.parent)
