"""Property-based model tests for the heap file and table layers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import Column, HeapFile, Pager, Schema, Table

records = st.binary(max_size=60)
heap_ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), records),
        st.tuples(st.just("delete"), st.integers(min_value=0, max_value=200)),
        st.tuples(st.just("update"), st.integers(min_value=0, max_value=200), records),
    ),
    max_size=120,
)


class TestHeapFileModel:
    @given(heap_ops)
    @settings(max_examples=60, deadline=None)
    def test_matches_dict_model(self, ops):
        heap = HeapFile(Pager(page_size=256, pool_pages=4))
        model = {}  # rid -> bytes
        live_rids = []
        for op in ops:
            if op[0] == "insert":
                rid = heap.insert(op[1])
                assert rid not in model
                model[rid] = op[1]
                live_rids.append(rid)
            elif op[0] == "delete" and live_rids:
                rid = live_rids[op[1] % len(live_rids)]
                heap.delete(rid)
                del model[rid]
                live_rids.remove(rid)
            elif op[0] == "update" and live_rids:
                rid = live_rids[op[1] % len(live_rids)]
                new_rid = heap.update(rid, op[2])
                del model[rid]
                live_rids.remove(rid)
                model[new_rid] = op[2]
                live_rids.append(new_rid)
        for rid, payload in model.items():
            assert heap.get(rid) == payload
        scanned = dict(heap.scan())
        assert scanned == model


row_keys = st.integers(min_value=0, max_value=500)
table_ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), row_keys, st.text(max_size=8), st.integers(0, 99)),
        st.tuples(st.just("delete"), row_keys),
    ),
    max_size=100,
)


class TestTableModel:
    @given(table_ops)
    @settings(max_examples=40, deadline=None)
    def test_matches_dict_model(self, ops):
        table = Table(
            "t",
            Schema([Column("id", "int"), Column("name", "str"), Column("age", "int")]),
            Pager(page_size=512, pool_pages=8),
            primary_key=["id"],
        )
        table.create_index("by_name", ["name"])
        model = {}
        for op in ops:
            if op[0] == "insert":
                _, key, name, age = op
                if key in model:
                    continue
                table.insert((key, name, age))
                model[key] = (key, name, age)
            else:
                _, key = op
                removed = table.delete(key)
                assert removed == (key in model)
                model.pop(key, None)
        assert len(table) == len(model)
        for key, row in model.items():
            assert table.get(key) == row
        # index agreement per name
        names = {row[1] for row in model.values()}
        for name in names:
            got = sorted(r[0] for r in table.lookup("by_name", name))
            want = sorted(k for k, row in model.items() if row[1] == name)
            assert got == want
        # pk-order scan sorted
        keys = [row[0] for row in table.scan_pk_order()]
        assert keys == sorted(model)
