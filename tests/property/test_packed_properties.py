"""Property tests for the packed scheme: bit-level roundtrips and
axis-by-axis agreement with the navigational ground truth.

The packed labeling compresses the whole interval scheme into shifts
and masks over one int, so the properties worth hammering are exactly
the compression seams: field roundtrips at every width, and agreement
of the decoded structure with the live tree — before and after random
update sequences (each reassignment may pick a new layout).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import PackedLayout, PackedScheme
from repro.core import Relation
from repro.generator import FanOutDistribution, RandomTreeConfig, generate_tree
from repro.xmltree import element

tree_configs = st.builds(
    RandomTreeConfig,
    node_count=st.integers(min_value=1, max_value=120),
    fan_out=st.builds(
        FanOutDistribution,
        kind=st.sampled_from(["uniform", "geometric", "zipf"]),
        low=st.integers(min_value=1, max_value=2),
        high=st.integers(min_value=2, max_value=6),
        mean=st.floats(min_value=1.0, max_value=5.0),
        exponent=st.floats(min_value=1.1, max_value=2.0),
        maximum=st.integers(min_value=3, max_value=20),
    ),
)


class TestPackRoundtrip:
    @given(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=16),
        st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_pack_unpack_identity(self, rank_bits, level_bits, data):
        layout = PackedLayout(rank_bits=rank_bits, level_bits=level_bits)
        rank = data.draw(st.integers(min_value=0, max_value=layout.rank_mask))
        end = data.draw(st.integers(min_value=0, max_value=layout.rank_mask))
        level = data.draw(st.integers(min_value=0, max_value=layout.level_mask))
        label = layout.pack(rank, end, level)
        assert layout.unpack(label) == (rank, end, level)
        assert label.bit_length() <= layout.total_bits
        assert layout.rank_of(label) == rank
        assert layout.end_of(label) == end
        assert layout.level_of(label) == level


def assert_axes_agree(tree, labeling):
    """Ancestor/descendant/sibling relations decoded from packed labels
    must match the navigational truth for every sampled pair."""
    nodes = tree.nodes()
    sample = nodes[:: max(1, len(nodes) // 14)]
    label_of = labeling.label_of
    for first in sample:
        lf = label_of(first)
        for second in sample:
            got = labeling.relation(lf, label_of(second))
            if first is second:
                assert got is Relation.SELF
            elif first.is_ancestor_of(second):
                assert got is Relation.ANCESTOR
            elif second.is_ancestor_of(first):
                assert got is Relation.DESCENDANT
            elif tree.compare_document_order(first, second) < 0:
                assert got is Relation.PRECEDING
            else:
                assert got is Relation.FOLLOWING
    # sibling axis: same decoded parent label == same tree parent
    for first in sample:
        for second in sample:
            if first.parent is None or second.parent is None or first is second:
                continue
            same_parent = first.parent is second.parent
            decoded_same = labeling.parent_label(
                label_of(first)
            ) == labeling.parent_label(label_of(second))
            assert decoded_same == same_parent


class TestStructuralAgreement:
    @given(tree_configs, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_axes_match_navigation(self, config, seed):
        tree = generate_tree(config, seed=seed)
        assert_axes_agree(tree, PackedScheme().build(tree))

    @given(
        tree_configs,
        st.integers(min_value=0, max_value=10_000),
        st.lists(st.tuples(st.booleans(), st.integers(0, 10**9)), max_size=8),
    )
    @settings(max_examples=25, deadline=None)
    def test_axes_match_after_updates(self, config, seed, plan):
        tree = generate_tree(config, seed=seed)
        labeling = PackedScheme().build(tree)
        rng = random.Random(seed)
        generations = {labeling.generation}
        for step, (is_insert, pick) in enumerate(plan):
            nodes = tree.nodes()
            node = nodes[pick % len(nodes)]
            if is_insert or node is tree.root or tree.size() < 3:
                labeling.insert(node, rng.randint(0, node.fan_out), element(f"u{step}"))
            else:
                labeling.delete(node)
            generations.add(labeling.generation)
        if plan:
            assert len(generations) > 1  # updates really bumped generations
        assert_axes_agree(tree, labeling)
