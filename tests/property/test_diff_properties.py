"""Property-based test: diff(old, new) applied to old yields new."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generator import FanOutDistribution, RandomTreeConfig, generate_tree
from repro.xmltree import NodeKind, XmlNode, apply_edit_script, diff_trees


def structurally_equal(first, second) -> bool:
    a_nodes, b_nodes = list(first.preorder()), list(second.preorder())
    if len(a_nodes) != len(b_nodes):
        return False
    return all(
        (a.tag, a.kind, a.text, a.attributes) == (b.tag, b.kind, b.text, b.attributes)
        for a, b in zip(a_nodes, b_nodes)
    )


mutation_plans = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete", "retag", "attr"]),
        st.integers(min_value=0, max_value=10**9),
    ),
    max_size=15,
)


class TestDiffRoundTrip:
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=2, max_value=80),
        mutation_plans,
    )
    @settings(max_examples=60, deadline=None)
    def test_apply_diff_reaches_target(self, seed, size, plan):
        old = generate_tree(
            RandomTreeConfig(
                node_count=size,
                fan_out=FanOutDistribution(kind="uniform", low=1, high=4),
            ),
            seed=seed,
        )
        new = old.copy()
        rng = random.Random(seed)
        for step, (action, pick) in enumerate(plan):
            nodes = new.nodes()
            node = nodes[pick % len(nodes)]
            if action == "insert" or node is new.root and action == "delete":
                new.insert_node(
                    node,
                    rng.randint(0, node.fan_out),
                    XmlNode(f"m{step}", NodeKind.ELEMENT),
                )
            elif action == "delete":
                if new.size() - node.subtree_size() >= 1 and node is not new.root:
                    new.delete_subtree(node)
            elif action == "retag":
                node.attributes["r"] = f"v{step}"
            else:
                node.attributes[f"a{step % 3}"] = str(step)
        ops = diff_trees(old, new)
        transformed = apply_edit_script(old, ops)
        assert structurally_equal(transformed, new)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_identical_trees_yield_empty_script(self, seed):
        old = generate_tree(
            RandomTreeConfig(
                node_count=40,
                fan_out=FanOutDistribution(kind="uniform", low=1, high=3),
            ),
            seed=seed,
        )
        assert diff_trees(old, old.copy()) == []
