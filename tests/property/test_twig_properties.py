"""Property-based test: twig matching agrees with XPath filtering."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Ruid2Scheme
from repro.generator import RandomTreeConfig, FanOutDistribution, generate_tree
from repro.query import TwigMatcher, XPathEngine

TAGS = ("section", "item", "entry", "record", "list", "group", "node", "block")

tree_seeds = st.integers(min_value=0, max_value=5000)
tag_choices = st.sampled_from(TAGS)


@st.composite
def twig_and_xpath(draw):
    """A random 1-2 branch twig plus the equivalent XPath expression."""
    root_tag = draw(tag_choices)
    branch_count = draw(st.integers(1, 2))
    twig_parts = [root_tag]
    predicates = []
    for _ in range(branch_count):
        tag = draw(tag_choices)
        descendant = draw(st.booleans())
        if descendant:
            twig_parts.append(f"[//{tag}]")
            predicates.append(f"[descendant::{tag}]")
        else:
            twig_parts.append(f"[{tag}]")
            predicates.append(f"[{tag}]")
    return "".join(twig_parts), f"//{root_tag}" + "".join(predicates)


class TestTwigAgainstXPath:
    @given(tree_seeds, twig_and_xpath())
    @settings(max_examples=40, deadline=None)
    def test_agreement(self, seed, patterns):
        twig_pattern, xpath = patterns
        tree = generate_tree(
            RandomTreeConfig(
                node_count=80,
                fan_out=FanOutDistribution(kind="uniform", low=1, high=4),
            ),
            seed=seed,
        )
        labeling = Ruid2Scheme(max_area_size=8).build(tree)
        matcher = TwigMatcher(labeling)
        engine = XPathEngine(tree, labeling=labeling)
        twig_nodes = matcher.match(twig_pattern)
        xpath_nodes = engine.select(xpath, "navigational")
        assert [n.node_id for n in twig_nodes] == [n.node_id for n in xpath_nodes]
