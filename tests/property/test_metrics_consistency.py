"""Property-based tests: the observability layer never lies.

Four invariants over randomized query workloads:

* **Registry bookkeeping** — ``plan_hits + plan_misses`` equals the
  number of compilations requested (every ``select`` and ``explain``
  compiles exactly once), and the registry snapshot always equals the
  live ledger, because the ledger is a pull source, not a copy.
* **Well-nested spans** — every recorded span's interval lies inside
  its parent's, one depth level down.
* **ANALYZE honesty** — the per-step output cardinalities reported by
  EXPLAIN ANALYZE equal the true result cardinality of the query.
* **Observation is inert** — running under the no-op tracer (or a live
  one) returns exactly the node-set the bare engine returns.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Ruid2Scheme
from repro.obs import NULL_TRACER, MetricsRegistry, SlowQueryLog, Tracer
from repro.query import XPathEngine
from repro.xmltree import parse

DOCUMENT = (
    "<site><people>"
    "<person><name>A</name><age>30</age></person>"
    "<person><name>B</name><profile><interest/><interest/></profile></person>"
    "<person><age>7</age></person>"
    "</people>"
    "<items><item><name>L</name></item><item><name>M</name></item></items>"
    "</site>"
)

QUERY_POOL = (
    "/site/people/person",
    "//person",
    "//person/name",
    "//person[name]",
    "//person[age]/age",
    "//item/name",
    "//ghost",
    "//person/name | //item/name",
    "//profile/interest",
)

# one workload action: (query index, use explain-analyze instead of select)
actions = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(QUERY_POOL) - 1),
        st.booleans(),
    ),
    min_size=1,
    max_size=30,
)


def _build_engine(tree=None, **kwargs):
    tree = tree if tree is not None else parse(DOCUMENT)
    labeling = Ruid2Scheme(max_area_size=8).build(tree)
    return XPathEngine(tree, labeling=labeling, **kwargs)


class TestRegistryConsistency:
    @given(actions)
    @settings(max_examples=40, deadline=None)
    def test_hits_plus_misses_equals_compilations(self, workload):
        engine = _build_engine()
        compilations = 0
        for index, analyze in workload:
            query = QUERY_POOL[index]
            if analyze:
                engine.explain(query, analyze=True)
            else:
                engine.select(query)
            compilations += 1
        snapshot = engine.metrics.snapshot()
        assert snapshot["query.plan_hits"] + snapshot["query.plan_misses"] == (
            compilations
        )
        # the pool never overflows the plan cache in these workloads
        assert snapshot["query.plan_misses"] <= len(QUERY_POOL)

    @given(actions)
    @settings(max_examples=25, deadline=None)
    def test_snapshot_equals_ledger_always(self, workload):
        engine = _build_engine()
        for index, _analyze in workload:
            engine.select(QUERY_POOL[index])
            snapshot = engine.metrics.snapshot()
            for key, value in engine.stats.as_dict().items():
                assert snapshot[f"query.{key}"] == value

    @given(actions)
    @settings(max_examples=25, deadline=None)
    def test_ledger_reset_reflected_immediately(self, workload):
        engine = _build_engine()
        for index, _analyze in workload:
            engine.select(QUERY_POOL[index])
        engine.stats.reset()
        snapshot = engine.metrics.snapshot()
        for key in engine.stats.as_dict():
            assert snapshot[f"query.{key}"] == 0

    @given(actions)
    @settings(max_examples=25, deadline=None)
    def test_slow_log_sees_every_query(self, workload):
        slow_log = SlowQueryLog(threshold_ms=0.0)
        engine = _build_engine(slow_log=slow_log)
        selects = 0
        for index, _analyze in workload:
            engine.select(QUERY_POOL[index])
            selects += 1
        assert slow_log.seen_count == selects
        assert slow_log.slow_count == selects  # zero threshold
        latency = engine.metrics.histogram("query.latency_ns.ruid")
        assert latency.count == selects


class TestSpanTrees:
    @given(actions)
    @settings(max_examples=25, deadline=None)
    def test_spans_well_nested(self, workload):
        tracer = Tracer()
        engine = _build_engine(tracer=tracer)
        for index, _analyze in workload:
            engine.select(QUERY_POOL[index])
        spans = tracer.finished()
        by_id = {span.span_id: span for span in spans}
        assert tracer.current is None  # every span was closed
        for span in spans:
            assert span.end_ns is not None
            assert span.start_ns <= span.end_ns
            if span.parent_id is None:
                assert span.depth == 0
                continue
            parent = by_id[span.parent_id]
            assert span.depth == parent.depth + 1
            assert parent.start_ns <= span.start_ns
            assert span.end_ns <= parent.end_ns


class TestAnalyzeHonesty:
    @given(actions)
    @settings(max_examples=30, deadline=None)
    def test_step_counts_equal_true_cardinalities(self, workload):
        engine = _build_engine()
        for index, _analyze in workload:
            query = QUERY_POOL[index]
            plan = engine.explain(query, analyze=True)
            expected = engine.select(query)
            assert plan.result_count == len(expected)
            assert [n.node_id for n in plan.result] == [
                n.node_id for n in expected
            ]
            # final out_counts across paths sum to >= the deduplicated
            # result; for a single path they are exactly equal
            if len(plan.paths) == 1:
                assert plan.paths[0].steps[-1].out_count == len(expected)
            # step chaining: each step's input is the previous output
            for path_plan in plan.paths:
                for previous, step in zip(path_plan.steps, path_plan.steps[1:]):
                    assert step.in_count == previous.out_count


class TestObservationInert:
    @given(actions)
    @settings(max_examples=25, deadline=None)
    def test_disabled_and_live_tracers_change_nothing(self, workload):
        tree = parse(DOCUMENT)
        bare = _build_engine(tree)
        noop = _build_engine(tree, tracer=NULL_TRACER)
        full = _build_engine(
            tree,
            tracer=Tracer(),
            registry=MetricsRegistry(),
            slow_log=SlowQueryLog(threshold_ms=0.0),
        )
        for index, analyze in workload:
            query = QUERY_POOL[index]
            expected = [n.node_id for n in bare.select(query)]
            assert [n.node_id for n in noop.select(query)] == expected
            assert [n.node_id for n in full.select(query)] == expected
            if analyze:
                plan = full.explain(query, analyze=True)
                assert [n.node_id for n in plan.result] == expected
