"""Property tests for the sqlite accel backend.

Three seams are worth hammering with random trees:

* the **shred→attach roundtrip** — everything the accel table stores
  (pre, post via ``end − level``, level, parent) must survive a close
  and re-attach bit-for-bit, for any tree shape;
* **axis pushdown vs the batched Python path** — the SQL predicates
  and the rank-array evaluation must answer every step identically;
* **``:memory:`` vs on-disk** — the same shred through a real file
  must be indistinguishable from the in-memory database.
"""

from __future__ import annotations

import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheme import Ruid2Scheme
from repro.errors import UnknownLabelError
from repro.generator import FanOutDistribution, RandomTreeConfig, generate_tree
from repro.query.parser import parse_xpath
from repro.store import MemoryNodeStore, SqliteNodeStore, StoreEvaluator

tree_configs = st.builds(
    RandomTreeConfig,
    node_count=st.integers(min_value=1, max_value=90),
    fan_out=st.builds(
        FanOutDistribution,
        kind=st.sampled_from(["uniform", "geometric", "zipf"]),
        low=st.integers(min_value=1, max_value=2),
        high=st.integers(min_value=2, max_value=6),
        mean=st.floats(min_value=1.0, max_value=5.0),
        exponent=st.floats(min_value=1.1, max_value=2.0),
        maximum=st.integers(min_value=3, max_value=12),
    ),
)

PUSHDOWN_QUERIES = (
    "//*",
    "//item",
    "//entry/ancestor::*",
    "//group/descendant-or-self::*",
    "//*/following-sibling::*",
    "//*/preceding-sibling::node()",
    "/descendant-or-self::node()",
)


def _structure(store):
    """Everything the accel table persists, as one comparable list."""
    out = []
    for rank in range(store.size()):
        out.append(
            (
                rank,
                store.end_of(rank),
                store.post_of(rank),
                store.level_of(rank),
                store.parent_of(rank),
                store.record(rank).tag,
            )
        )
    return out


def _result_keys(store, evaluator, query):
    keys = []
    for node in evaluator.select(parse_xpath(query)):
        try:
            keys.append(store.label_for(node))
        except UnknownLabelError:
            keys.append(("transient", node.tag, node.text))
    return keys


class TestShredAttachRoundtrip:
    @given(tree_configs, st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=25, deadline=None)
    def test_structure_survives_close_and_attach(self, config, seed):
        tree = generate_tree(config, seed=seed)
        labeling = Ruid2Scheme().build(tree)
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "t.db")
            shredded = SqliteNodeStore.shred("t", labeling, path=path)
            want = _structure(shredded)
            shredded.close()
            attached = SqliteNodeStore.attach("t", path=path)
            assert not attached.built
            assert _structure(attached) == want
            attached.close()

    @given(tree_configs, st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=25, deadline=None)
    def test_accel_columns_match_the_memory_store(self, config, seed):
        tree = generate_tree(config, seed=seed)
        labeling = Ruid2Scheme().build(tree)
        store = SqliteNodeStore.shred("t", labeling)
        memory = MemoryNodeStore(labeling)
        for rank in range(store.size()):
            label = memory.label_at(rank)
            assert store.end_of(rank) == memory.end_of(label)
            parent = memory.parent_of(label)
            assert store.parent_of(rank) == (
                None if parent is None else memory.rank_of(parent)
            )
            # the accel identity: post + level reconstructs the end rank
            assert store.post_of(rank) + store.level_of(rank) == store.end_of(rank)


class TestPushdownAgreement:
    @given(tree_configs, st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=20, deadline=None)
    def test_pushdown_equals_batched_python(self, config, seed):
        tree = generate_tree(config, seed=seed)
        labeling = Ruid2Scheme().build(tree)
        store = SqliteNodeStore.shred("t", labeling)
        pushdown = StoreEvaluator(store)
        python = StoreEvaluator(store, pushdown=False)
        for query in PUSHDOWN_QUERIES:
            assert _result_keys(store, pushdown, query) == _result_keys(
                store, python, query
            ), f"pushdown diverged on {query}"


class TestMemoryVsDisk:
    @given(tree_configs, st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=15, deadline=None)
    def test_memory_and_disk_agree(self, config, seed):
        tree = generate_tree(config, seed=seed)
        labeling = Ruid2Scheme().build(tree)
        in_memory = SqliteNodeStore.shred("t", labeling)
        with tempfile.TemporaryDirectory() as tmp:
            on_disk = SqliteNodeStore.shred(
                "t", labeling, path=os.path.join(tmp, "t.db")
            )
            assert _structure(in_memory) == _structure(on_disk)
            for query in PUSHDOWN_QUERIES[:4]:
                a = _result_keys(in_memory, StoreEvaluator(in_memory), query)
                b = _result_keys(on_disk, StoreEvaluator(on_disk), query)
                assert a == b
            on_disk.close()
