"""Property-based tests of the UID order arithmetic."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import uid_relation
from repro.core import uid as uid_math
from repro.core.labels import Relation

fan_outs = st.integers(min_value=1, max_value=8)
identifiers = st.integers(min_value=1, max_value=5000)


class TestUidOrderProperties:
    @given(identifiers, fan_outs)
    @settings(max_examples=200)
    def test_parent_is_smaller(self, identifier, fan_out):
        if identifier > 1:
            assert uid_math.parent(identifier, fan_out) < identifier

    @given(identifiers, fan_outs)
    @settings(max_examples=200)
    def test_level_consistency(self, identifier, fan_out):
        level = uid_math.level_of(identifier, fan_out)
        if identifier > 1:
            assert uid_math.level_of(uid_math.parent(identifier, fan_out), fan_out) == level - 1
        assert identifier <= uid_math.subtree_capacity(fan_out, level)

    @given(identifiers, identifiers, fan_outs)
    @settings(max_examples=300)
    def test_antisymmetry(self, first, second, fan_out):
        forward = uid_math.document_compare(first, second, fan_out)
        backward = uid_math.document_compare(second, first, fan_out)
        assert forward == -backward

    @given(identifiers, identifiers, identifiers, fan_outs)
    @settings(max_examples=300)
    def test_transitivity(self, a, b, c, fan_out):
        if (
            uid_math.document_compare(a, b, fan_out) <= 0
            and uid_math.document_compare(b, c, fan_out) <= 0
        ):
            assert uid_math.document_compare(a, c, fan_out) <= 0

    @given(identifiers, identifiers, fan_outs)
    @settings(max_examples=300)
    def test_relation_inverse_symmetry(self, first, second, fan_out):
        forward = uid_relation(first, second, fan_out)
        backward = uid_relation(second, first, fan_out)
        assert backward is forward.inverse()

    @given(identifiers, fan_outs)
    @settings(max_examples=100, deadline=None)
    def test_ancestors_strictly_precede(self, identifier, fan_out):
        # fan-out 1 yields O(n)-long chains; checking a prefix suffices
        for index, ancestor in enumerate(uid_math.ancestors(identifier, fan_out)):
            assert uid_relation(ancestor, identifier, fan_out) is Relation.ANCESTOR
            if index >= 8:
                break
