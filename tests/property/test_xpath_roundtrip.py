"""Property-based test: AST → str → AST is the identity.

The AST's ``__str__`` renders canonical (unabbreviated) XPath; parsing
that rendering must reproduce the AST exactly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.ast import (
    BinaryOp,
    FunctionCall,
    Literal,
    LocationPath,
    NodeTest,
    Number,
    Step,
)
from repro.query.parser import parse_xpath

axis_names = st.sampled_from(
    [
        "child",
        "descendant",
        "parent",
        "ancestor",
        "self",
        "descendant-or-self",
        "ancestor-or-self",
        "following-sibling",
        "preceding-sibling",
        "following",
        "preceding",
        "attribute",
    ]
)
tags = st.from_regex(r"[a-z][a-z0-9]{0,5}", fullmatch=True)
node_tests = st.one_of(
    tags.map(lambda t: NodeTest(name=t)),
    st.just(NodeTest(name=None)),  # '*'
    st.sampled_from(["text", "node", "comment"]).map(
        lambda t: NodeTest(node_type=t)
    ),
)


@st.composite
def predicates(draw, depth=0):
    choice = draw(st.integers(0, 3 if depth < 1 else 1))
    if choice == 0:
        return Number(float(draw(st.integers(1, 9))))
    if choice == 1:
        return Literal(draw(st.from_regex(r"[a-z]{0,6}", fullmatch=True)))
    if choice == 2:
        return BinaryOp(
            draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="])),
            draw(location_paths(max_steps=2)),
            draw(predicates(depth + 1)),
        )
    return FunctionCall(
        draw(st.sampled_from(["position", "last", "true", "false"])), ()
    )


@st.composite
def steps(draw, allow_predicates=True):
    preds = ()
    if allow_predicates and draw(st.booleans()):
        preds = (draw(predicates()),)
    return Step(draw(axis_names), draw(node_tests), preds)


@st.composite
def location_paths(draw, max_steps=3):
    count = draw(st.integers(1, max_steps))
    return LocationPath(
        draw(st.booleans()),
        tuple(draw(steps(allow_predicates=(i == 0))) for i in range(count)),
    )


class TestAstRoundTrip:
    @given(location_paths())
    @settings(max_examples=150, deadline=None)
    def test_parse_of_str_is_identity(self, path):
        assert parse_xpath(str(path)) == path
