"""Property: a chained delta view is indistinguishable from a full
rebuild — node-for-node on every protocol primitive, and axis-for-axis
through the evaluator — before and after compaction.

Hypothesis drives random update plans (insert / delete at random
positions) against a :class:`ConcurrentDocument` with a deliberately
tiny ``delta_chain_limit``, so a single run exercises fresh deltas,
deep chains, the compaction fold, and post-compaction chains. After
every edit the current view (whatever its shape) is compared against
``StructuralView.from_labeling`` of the same generation.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.concurrent import ConcurrentDocument, StructuralView
from repro.generator import RandomTreeConfig, generate_tree
from repro.query.stats import QueryStats
from repro.store.evaluator import StoreEvaluator
from repro.xmltree.node import NodeKind, XmlNode

AXIS_QUERIES = (
    "//item",
    "//*",
    "/descendant-or-self::node()",
    "//item/ancestor-or-self::*",
    "//entry/following-sibling::*",
    "//group/child::node()",
    "//record/..",
)

EDITS = st.lists(
    st.sampled_from(["insert", "insert", "delete"]),  # bias toward growth
    min_size=1,
    max_size=12,
)


def _ids(nodes, evaluator):
    doc_node = evaluator.document_node
    return [-1 if n is doc_node else n.node_id for n in nodes]


def _assert_view_equals_rebuild(doc):
    reference = StructuralView.from_labeling(doc.labeling)
    with doc.pin() as snap:
        view = snap.view
        assert view.generation == reference.generation
        size = reference.size()
        assert view.size() == size
        labels = [reference.label_at(rank) for rank in range(size)]
        assert [view.label_at(rank) for rank in range(size)] == labels
        for label in labels:
            assert view.rank_of(label) == reference.rank_of(label)
            assert view.end_of(label) == reference.end_of(label)
            assert view.parent_of(label) == reference.parent_of(label)
            assert view.children_of(label) == reference.children_of(label)
            record = view.record(label)
            ref_record = reference.record(label)
            assert record.kind == ref_record.kind
            assert record.tag == ref_record.tag
        ref_eval = StoreEvaluator(reference, stats=QueryStats())
        snap_eval = snap.evaluator()
        for query in AXIS_QUERIES:
            compiled = doc.compile(query)
            assert _ids(snap_eval.select(compiled), snap_eval) == _ids(
                ref_eval.select(compiled), ref_eval
            ), query


@settings(max_examples=25, deadline=None)
@given(edits=EDITS, choices=st.data(), chain_limit=st.integers(2, 4))
def test_delta_chain_equals_full_rebuild_every_axis(edits, choices, chain_limit):
    tree = generate_tree(RandomTreeConfig(node_count=70), seed=29)
    doc = ConcurrentDocument(tree, scheme="ruid2", delta_chain_limit=chain_limit)
    with doc.pin():
        pass  # materialise the base so writers publish eagerly
    for edit in edits:
        if edit == "insert":
            elements = [
                n for n in doc.tree.preorder() if n.kind == NodeKind.ELEMENT
            ]
            parent = elements[
                choices.draw(st.integers(0, len(elements) - 1), label="parent")
            ]
            position = choices.draw(
                st.integers(0, len(parent.children)), label="position"
            )
            tag = choices.draw(
                st.sampled_from(["item", "entry", "fresh"]), label="tag"
            )
            node = XmlNode(tag, NodeKind.ELEMENT)
            if choices.draw(st.booleans(), label="with_child"):
                node.children.append(XmlNode("leaf", NodeKind.ELEMENT))
                node.children[0].parent = node
                node.children.append(XmlNode("#text", NodeKind.TEXT, text="t"))
                node.children[1].parent = node
            doc.insert(parent, position, node)
        else:
            victims = [
                n
                for n in doc.tree.preorder()
                if n.parent is not None and n.kind == NodeKind.ELEMENT
            ]
            if not victims:
                continue
            victim = victims[
                choices.draw(st.integers(0, len(victims) - 1), label="victim")
            ]
            doc.delete(victim)
        _assert_view_equals_rebuild(doc)
    stats = doc.stats_snapshot()
    # the suite genuinely exercised the delta path (edits occurred and
    # at least the first one chained on the pinned base) — unless a
    # capture legitimately fell back to the full rebuild
    assert stats["snapshot_builds_delta"] >= 1 or stats["delta_fallbacks"] >= 1
    if len(edits) > chain_limit and stats["delta_fallbacks"] == 0:
        assert stats["snapshot_compactions"] >= 1


@settings(max_examples=10, deadline=None)
@given(extra_edits=st.integers(1, 4))
def test_compaction_fold_preserves_answers(extra_edits):
    """Fill the chain exactly to the limit, compare, fold it with the
    next edit, compare again, then keep chaining on the compacted
    base — the before/after-compaction requirement made explicit."""
    tree = generate_tree(RandomTreeConfig(node_count=60), seed=31)
    doc = ConcurrentDocument(tree, scheme="ruid2", delta_chain_limit=3)
    with doc.pin():
        pass
    parent = doc.tree.root.children[0]
    for _ in range(3):
        doc.insert(parent, 0, XmlNode("item", NodeKind.ELEMENT))
    assert doc.stats_snapshot()["delta_chain_depth"] == 3
    _assert_view_equals_rebuild(doc)  # before compaction
    doc.insert(parent, 0, XmlNode("item", NodeKind.ELEMENT))
    stats = doc.stats_snapshot()
    assert stats["snapshot_compactions"] == 1
    assert stats["delta_chain_depth"] == 0
    _assert_view_equals_rebuild(doc)  # after compaction
    for _ in range(extra_edits):
        doc.insert(parent, 0, XmlNode("entry", NodeKind.ELEMENT))
        _assert_view_equals_rebuild(doc)  # chains over the folded base
