"""Property-based tests: the B+-tree behaves like a sorted dict."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import BPlusTree, Pager, decode_key, decode_value, encode_key, encode_value

keys = st.integers(min_value=0, max_value=10_000)
operations = st.lists(
    st.one_of(
        st.tuples(st.just("put"), keys, st.integers()),
        st.tuples(st.just("del"), keys),
    ),
    max_size=300,
)


class TestAgainstModel:
    @given(operations)
    @settings(max_examples=60, deadline=None)
    def test_matches_dict_model(self, ops):
        tree = BPlusTree(Pager(page_size=256, pool_pages=8))
        model = {}
        for op in ops:
            if op[0] == "put":
                _, key, value = op
                tree.insert(encode_key(key), encode_value(value), replace=True)
                model[key] = value
            else:
                _, key = op
                removed = tree.delete(encode_key(key))
                assert removed == (key in model)
                model.pop(key, None)
        # full agreement
        assert len(tree) == len(model)
        for key, value in model.items():
            assert decode_value(tree.get(encode_key(key))) == value
        ordered = [decode_key(k) for k, _ in tree.items()]
        assert ordered == sorted(model)

    @given(st.lists(keys, unique=True, min_size=1, max_size=200), keys, keys)
    @settings(max_examples=60, deadline=None)
    def test_range_matches_model(self, inserted, bound_a, bound_b):
        low, high = min(bound_a, bound_b), max(bound_a, bound_b)
        tree = BPlusTree(Pager(page_size=256, pool_pages=8))
        for key in inserted:
            tree.insert(encode_key(key), encode_value(None))
        got = [decode_key(k) for k, _ in tree.range(encode_key(low), encode_key(high))]
        assert got == sorted(k for k in inserted if low <= k <= high)
