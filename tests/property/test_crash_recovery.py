"""Crash-at-every-point recovery property.

One live run of a build + update workload produces a WAL. For every
record index *i* (and a torn-tail variant of each), we recover from the
log prefix of *i* records and require the result to be *exactly* the
state of the greatest commit at or before *i* — verified by a full
document-order scan, a tag lookup, and parent arithmetic over the
recovered κ/K parameters. No prefix may crash the recovery machinery or
surface half a transaction.
"""

import pytest

from repro.core import Ruid2Label, Ruid2SchemeLabeling, SizeCapPartitioner
from repro.generator import RandomTreeConfig, generate_tree
from repro.storage import XmlDatabase

PAGE_SIZE = 1024
POOL_PAGES = 8
DOC = "doc"
TAG = "section"


def _snapshot(database):
    """Observable state of the one stored document (None if absent)."""
    if DOC not in database.document_names():
        return None
    document = database.document(DOC)
    rows = list(document.scan_document_order())
    tagged = sorted(document.nodes_with_tag(TAG))
    parents = {}
    for row in rows:
        label = Ruid2Label(*row[0])
        if label.is_document_root:
            continue
        parents[row[0]] = document.fetch_parent(label)[0]
    return (rows, tagged, parents)


@pytest.fixture(scope="module")
def workload():
    """Run the workload once; return (wal, {record_count: snapshot})."""
    tree = generate_tree(
        RandomTreeConfig(node_count=110, tags=(TAG, "para", "note")), seed=29
    )
    labeling = Ruid2SchemeLabeling(tree, partitioner=SizeCapPartitioner(16))
    database = XmlDatabase(
        page_size=PAGE_SIZE, pool_pages=POOL_PAGES, durable=True
    )

    commits = {}

    def remember():
        commits[database.wal.record_count] = _snapshot(database)

    document = database.store_document(DOC, tree, labeling)  # auto-commits
    remember()

    # delete a batch of leaf rows, commit
    leaves = [n for n in tree.preorder() if not n.children]
    doomed = [labeling.label_of(n) for n in leaves[: len(leaves) // 2]]
    from repro.storage.database import label_key

    for label in doomed:
        assert document.table.delete(label_key(label))
    database.commit()
    remember()

    # put them back, commit again
    for label, node in zip(doomed, leaves):
        document.table.insert((label_key(label), node.tag, node.kind.value, node.text))
    database.commit()
    remember()

    return database.wal, commits


def _expected_at(commits, record_count):
    eligible = [count for count in commits if count <= record_count]
    return commits[max(eligible)] if eligible else None


def _check_recovered(wal, expected):
    recovered = XmlDatabase.recover(wal, page_size=PAGE_SIZE, pool_pages=POOL_PAGES)
    assert _snapshot(recovered) == expected
    return recovered


def test_crash_after_every_record(workload):
    wal, commits = workload
    for index in range(wal.record_count + 1):
        _check_recovered(wal.prefix(index), _expected_at(commits, index))


def test_crash_mid_record_write(workload):
    """A torn tail behind every record boundary must quarantine, not
    replay: the state is still exactly the last commit's."""
    wal, commits = workload
    for index in range(wal.record_count):
        torn = wal.prefix(index, torn_tail_bytes=11)
        recovered = _check_recovered(torn, _expected_at(commits, index))
        assert recovered.last_recovery.halt == "torn-record"
        assert recovered.last_recovery.quarantined_bytes > 0


def test_full_log_recovers_final_state(workload):
    wal, commits = workload
    recovered = _check_recovered(wal.prefix(wal.record_count), _expected_at(commits, wal.record_count))
    assert recovered.last_recovery.halt is None
    assert recovered.stats.recoveries == 1
    # the recovered document answers parent queries from κ/K alone
    assert recovered.document(DOC).parameters is not None


def test_recovery_is_idempotent(workload):
    """Crashing again right after recovery changes nothing."""
    wal, commits = workload
    expected = _expected_at(commits, wal.record_count)
    recovered = _check_recovered(wal.prefix(wal.record_count), expected)
    recovered.crash(tear_bytes=0)
    again = XmlDatabase.recover(
        recovered.wal, page_size=PAGE_SIZE, pool_pages=POOL_PAGES
    )
    assert _snapshot(again) == expected
