"""Property-based tests: random documents survive serialize→parse."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmltree import NodeKind, XmlNode, XmlTree, parse, serialize

tag_names = st.from_regex(r"[A-Za-z][A-Za-z0-9_-]{0,6}", fullmatch=True)
attr_values = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")), max_size=10
)
# Text avoiding pure whitespace (dropped on re-parse) and control chars.
text_values = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")), min_size=1, max_size=20
).filter(lambda s: s.strip())


@st.composite
def xml_trees(draw, max_depth=4):
    def node(depth):
        tag = draw(tag_names)
        attributes = draw(
            st.dictionaries(tag_names, attr_values, max_size=2)
        )
        element = XmlNode(tag, NodeKind.ELEMENT, attributes=attributes)
        if depth < max_depth:
            for kind in draw(
                st.lists(st.sampled_from(["element", "text"]), max_size=3)
            ):
                if kind == "element":
                    element.append_child(node(depth + 1))
                else:
                    element.append_child(
                        XmlNode("#text", NodeKind.TEXT, text=draw(text_values))
                    )
        return element

    return XmlTree(node(0))


def normalised(tree: XmlTree):
    """Flatten to comparable shape, merging adjacent text children —
    XML cannot represent the boundary between adjacent text nodes, so
    they lawfully coalesce on re-parse."""

    def walk(node):
        children = []
        for child in node.children:
            if (
                child.kind is NodeKind.TEXT
                and children
                and isinstance(children[-1], str)
            ):
                children[-1] += child.text or ""
            elif child.kind is NodeKind.TEXT:
                children.append(child.text or "")
            else:
                children.append(walk(child))
        return (node.tag, tuple(sorted(node.attributes.items())), tuple(children))

    return walk(tree.root)


def structurally_equal(first: XmlTree, second: XmlTree) -> bool:
    return normalised(first) == normalised(second)


class TestRoundTrip:
    @given(xml_trees())
    @settings(max_examples=80, deadline=None)
    def test_serialize_parse_identity(self, tree):
        again = parse(serialize(tree), keep_whitespace_text=True)
        assert structurally_equal(tree, again)

    @given(xml_trees())
    @settings(max_examples=40, deadline=None)
    def test_double_roundtrip_fixpoint(self, tree):
        once = serialize(parse(serialize(tree), keep_whitespace_text=True))
        twice = serialize(parse(once, keep_whitespace_text=True))
        assert once == twice
