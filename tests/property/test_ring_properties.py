"""Property suite for the consistent-hash ring.

The three invariants the serving tier's placement stands on:

* **coverage** — every key maps to a live site, whatever the
  membership history;
* **locality** — removing (or adding) one site moves at most about
  ``K/n`` keys plus a slack term for vnode imbalance, and keys not
  owned by the changed site never move;
* **restart stability** — placement is a pure function of the
  membership set, not of process state, insertion order, or Python's
  per-process hash randomisation.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import ConsistentHashRing

site_names = st.lists(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz0123456789-",
        min_size=1,
        max_size=12,
    ),
    min_size=1,
    max_size=8,
    unique=True,
)

key_sets = st.lists(
    st.text(min_size=1, max_size=24), min_size=1, max_size=120, unique=True
)


@given(sites=site_names, keys=key_sets)
@settings(max_examples=60, deadline=None)
def test_every_key_maps_to_a_live_site(sites, keys):
    ring = ConsistentHashRing(sites)
    live = ring.sites()
    for key in keys:
        assert ring.site_for(key) in live


@given(sites=site_names, keys=key_sets, length=st.integers(1, 6))
@settings(max_examples=60, deadline=None)
def test_chains_are_distinct_live_prefix_stable(sites, keys, length):
    ring = ConsistentHashRing(sites)
    live = ring.sites()
    for key in keys:
        chain = ring.chain_for(key, length)
        assert len(chain) == min(length, len(live))
        assert len(set(chain)) == len(chain)
        assert all(site in live for site in chain)
        # a longer chain never reorders the shorter one's prefix
        assert ring.chain_for(key, 1) == chain[:1]


@given(
    sites=st.lists(
        st.text(
            alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=8
        ),
        min_size=2,
        max_size=8,
        unique=True,
    ),
    data=st.data(),
)
@settings(max_examples=40, deadline=None)
def test_removing_one_site_moves_only_its_keys(sites, data):
    keys = [f"doc{i}/s{j}" for i in range(40) for j in range(4)]
    ring = ConsistentHashRing(sites)
    before = ring.assignment(keys)
    victim = data.draw(st.sampled_from(sorted(sites)))
    ring.remove_site(victim)
    after = ring.assignment(keys)
    moved = [key for key in keys if before[key] != after[key]]
    # only keys the victim owned can move...
    for key in moved:
        assert before[key] == victim
    # ...and every one the victim owned must (it no longer exists)
    for key in keys:
        if before[key] == victim:
            assert after[key] != victim


@given(sites=site_names)
@settings(max_examples=40, deadline=None)
def test_adding_one_site_bounded_movement(sites):
    new_site = "zz-joining-site"
    if new_site in sites:
        sites = [name for name in sites if name != new_site]
        if not sites:
            return
    keys = [f"key-{i}" for i in range(400)]
    ring = ConsistentHashRing(sites)
    before = ring.assignment(keys)
    ring.add_site(new_site)
    after = ring.assignment(keys)
    moved = [key for key in keys if before[key] != after[key]]
    # everything that moved went TO the new site (locality)...
    for key in moved:
        assert after[key] == new_site
    # ...and the amount is ~K/n plus vnode-imbalance slack
    n = len(ring.sites())
    expected = len(keys) / n
    assert len(moved) <= expected * 2.5 + 8, (
        f"adding 1 of {n} sites moved {len(moved)}/{len(keys)} keys "
        f"(expected about {expected:.0f})"
    )


@given(sites=site_names, keys=key_sets)
@settings(max_examples=40, deadline=None)
def test_restart_and_order_stability(sites, keys):
    """Two rings built independently — reversed insertion order, or
    rebuilt after arbitrary add/remove churn that ends at the same
    membership — agree on every placement."""
    fresh = ConsistentHashRing(sites).assignment(keys)
    reordered = ConsistentHashRing(list(reversed(sites))).assignment(keys)
    assert fresh == reordered
    churned = ConsistentHashRing(sites)
    churned.add_site("transient-site")
    churned.remove_site("transient-site")
    assert churned.assignment(keys) == fresh
