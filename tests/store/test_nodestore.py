"""Unit coverage for the NodeStore protocol and its implementations.

One parametrized battery runs the protocol contract over all four
stores — memory (live tree + rank index), paged (shredded document
through the buffer pool), snapshot (frozen StructuralView) and sqlite
(XPath-Accelerator accel table) — on the same document, so a divergent
implementation fails the same assertion the conforming ones pass. Paged-only behavior (attach vs build, page
traffic, lazy materialisation) is covered separately, including the
acceptance case: a query over a document larger than the buffer pool
completes correctly and reports ``page_misses > 0`` through EXPLAIN
ANALYZE.
"""

from __future__ import annotations

import pytest

from repro.concurrent import ConcurrentDocument, StructuralView
from repro.core.document import reconstruct_fragment
from repro.core.scheme import Ruid2Scheme
from repro.errors import StorageError, UnknownLabelError
from repro.query.engine import XPathEngine
from repro.query.twig import TwigMatcher
from repro.storage.database import XmlDatabase, label_key
from repro.store import (
    MemoryNodeStore,
    PagedNodeStore,
    SqliteNodeStore,
    StoreEvaluator,
)
from repro.store.base import NodeRecord, NodeStore
from repro.xmltree import parse, serialize
from repro.xmltree.node import NodeKind

DOC = """<site>
 <people>
  <person id="p1"><name>Alice</name><age>31</age></person>
  <person id="p2"><name>Bob</name><age>17</age></person>
 </people>
 <items><item id="i1"><name>Lamp</name><price>19</price></item></items>
</site>"""


def _memory_store(tree, labeling):
    return MemoryNodeStore(labeling)


def _paged_store(tree, labeling):
    database = XmlDatabase(page_size=1024, pool_pages=32)
    document = database.store_document("doc", tree, labeling)
    return PagedNodeStore(document)


def _snapshot_store(tree, labeling):
    return StructuralView.from_labeling(labeling)


def _sqlite_store(tree, labeling):
    return SqliteNodeStore.shred("doc", labeling)


STORE_FACTORIES = {
    "memory": _memory_store,
    "paged": _paged_store,
    "snapshot": _snapshot_store,
    "sqlite": _sqlite_store,
}


@pytest.fixture(params=sorted(STORE_FACTORIES), ids=sorted(STORE_FACTORIES))
def stack(request):
    """(store, tree, labeling) for each implementation over DOC."""
    tree = parse(DOC)
    labeling = Ruid2Scheme().build(tree)
    store = STORE_FACTORIES[request.param](tree, labeling)
    return store, tree, labeling


class TestProtocolContract:
    def test_is_a_node_store_with_stats(self, stack):
        store, _tree, _labeling = stack
        assert isinstance(store, NodeStore)
        assert store.stats.fetches == 0
        assert store.generation == 0

    def test_size_counts_every_labeled_node(self, stack):
        store, tree, _labeling = stack
        assert store.size() == tree.size()

    def test_root_rank_and_interval_span_the_document(self, stack):
        store, tree, _labeling = stack
        root = store.root_label()
        assert store.rank_of(root) == 0
        assert store.end_of(root) == tree.size() - 1
        assert store.parent_of(root) is None
        assert store.record(root).tag == "site"

    def test_label_at_inverts_rank_of(self, stack):
        store, _tree, _labeling = stack
        for label in store.structural_labels():
            assert store.label_at(store.rank_of(label)) == label

    def test_children_agree_with_parent_arithmetic(self, stack):
        store, _tree, _labeling = stack
        for label in store.structural_labels():
            for child in store.children_of(label):
                assert store.parent_of(child) == label

    def test_descendants_are_the_rank_interval(self, stack):
        store, _tree, _labeling = stack
        root = store.root_label()
        descendants = store.descendant_labels(root)
        assert len(descendants) == store.size() - 1
        ranks = [store.rank_of(label) for label in descendants]
        assert ranks == sorted(ranks)
        assert store.descendant_labels(root, or_self=True)[0] == root

    def test_ancestors_root_first(self, stack):
        store, _tree, _labeling = stack
        [price] = store.labels_with_tag("price")
        tags = [store.record(label).tag for label in store.ancestor_labels(price)]
        assert tags == ["site", "items", "item"]

    def test_labels_with_tag_in_document_order(self, stack):
        store, _tree, _labeling = stack
        names = store.labels_with_tag("name")
        assert len(names) == 3
        ranks = [store.rank_of(label) for label in names]
        assert ranks == sorted(ranks)
        assert store.has_tag("person") and not store.has_tag("nope")
        assert store.labels_with_tag("nope") == []

    def test_candidate_lists_partition_the_structural_labels(self, stack):
        store, _tree, _labeling = stack
        elements = store.element_labels()
        texts = store.text_labels()
        assert store.comment_labels() == []
        assert len(elements) + len(texts) == len(store.structural_labels())
        for label in elements:
            assert store.record(label).kind is NodeKind.ELEMENT

    def test_string_values_match_the_live_tree(self, stack):
        store, tree, labeling = stack
        for node in tree.preorder():
            label = _label_in(store, labeling, node)
            assert store.string_value(label) == node.text_content()

    def test_attributes_of(self, stack):
        store, _tree, _labeling = stack
        people = store.labels_with_tag("person")
        assert store.attributes_of(people[0]) == (("id", "p1"),)
        [site] = store.labels_with_tag("site")
        assert store.attributes_of(site) == ()

    def test_node_for_round_trips_label_for(self, stack):
        store, _tree, _labeling = stack
        for label in store.labels_with_tag("age"):
            node = store.node_for(label)
            assert node.tag == "age"
            assert store.label_for(node) == label
        assert store.stats.fetches > 0

    def test_path_of(self, stack):
        store, _tree, _labeling = stack
        [price] = store.labels_with_tag("price")
        assert store.path_of(price) == "/site/items/item/price"

    def test_order_by_id_follows_ranks(self, stack):
        store, _tree, _labeling = stack
        labels = store.structural_labels()
        nodes = [store.node_for(label) for label in labels]
        order = store.order_by_id()
        ranks = [order[node.node_id] for node in nodes]
        assert ranks == sorted(ranks)

    def test_unknown_labels_raise(self, stack):
        store, _tree, _labeling = stack
        with pytest.raises(UnknownLabelError):
            store.rank_of(("bogus", 999, 999))

    def test_stats_delta(self, stack):
        store, _tree, _labeling = stack
        before = store.stats_snapshot()
        store.node_for(store.root_label())
        delta = store.stats_delta(before)
        assert delta["fetches"] >= 1


def _label_in(store, labeling, node):
    """The store's label for a source-tree node (paged stores use the
    flattened key of the scheme label, sqlite stores the preorder
    rank)."""
    label = labeling.label_of(node)
    if isinstance(store, PagedNodeStore):
        return label_key(label)
    if isinstance(store, StructuralView):
        return node.node_id
    if isinstance(store, SqliteNodeStore):
        return labeling.rank_index().rank[label]
    return label


class TestStoreEvaluatorAgreement:
    QUERIES = (
        "//person/name",
        "//person[age > 18]/name",
        "//item/ancestor::site",
        "//name/..",
        "//person[@id = 'p2']",
        "count(//name)",
    )

    def test_all_stores_agree_with_navigation(self, stack):
        store, tree, _labeling = stack
        baseline = XPathEngine(tree)
        engine = XPathEngine(None, store=store)
        for query in self.QUERIES[:-1]:
            want = [n.path() for n in baseline.select(query, "navigational")]
            got = [
                store.path_of(store.label_for(node))
                for node in engine.select(query, "store")
            ]
            assert got == want, f"{store.store_kind} diverged on {query}"
        evaluator = engine.evaluator("store")
        assert evaluator.evaluate(baseline.compile("count(//name)")) == 3.0


class TestFragmentsAndTwigs:
    def test_fragments_identical_across_stores(self, stack):
        store, tree, labeling = stack
        fragment = reconstruct_fragment(store, store.labels_with_tag("name"))
        memory = MemoryNodeStore(labeling)
        reference = reconstruct_fragment(
            memory, [labeling.label_of(n) for n in tree.find_by_tag("name")]
        )
        assert serialize(fragment) == serialize(reference)

    def test_twig_matcher_over_any_store(self, stack):
        store, _tree, _labeling = stack
        matcher = TwigMatcher(store)
        assert matcher.count("person[name][age]") == 2
        matched = matcher.match("item[name]")  # pattern-root matches
        assert [node.tag for node in matched] == ["item"]
        plan = matcher.explain("person[age]", analyze=True)
        assert plan.match_count == 2
        assert store.store_kind in plan.scheme or plan.scheme


class TestPagedSpecifics:
    def test_attach_reuses_the_persisted_index(self):
        tree = parse(DOC)
        labeling = Ruid2Scheme().build(tree)
        database = XmlDatabase(page_size=1024, pool_pages=16)
        document = database.store_document("d", tree, labeling)
        first = PagedNodeStore(document)
        assert first.built
        second = PagedNodeStore(document)
        assert not second.built  # attached, not re-shredded
        assert second.size() == first.size() == tree.size()
        assert second.scheme_name == first.scheme_name

    def test_build_requires_a_labeling(self):
        tree = parse(DOC)
        labeling = Ruid2Scheme().build(tree)
        database = XmlDatabase(durable=True, page_size=1024, pool_pages=16)
        database.store_document("d", tree, labeling)
        database.crash(tear_bytes=0)
        recovered = XmlDatabase.recover(database.wal)
        with pytest.raises(StorageError, match="no labeling"):
            PagedNodeStore(recovered.document("d"))

    def test_node_store_survives_crash_recovery(self):
        tree = parse(DOC)
        labeling = Ruid2Scheme().build(tree)
        database = XmlDatabase(durable=True, page_size=1024, pool_pages=16)
        database.store_document("d", tree, labeling)
        assert database.node_store("d").built
        database.crash(tear_bytes=0)
        recovered = XmlDatabase.recover(database.wal)
        store = recovered.node_store("d")  # no labeling: must attach
        assert not store.built
        assert store.path_of(store.root_label()) == "/site"
        assert [
            store.string_value(label) for label in store.labels_with_tag("age")
        ] == ["31", "17"]

    def test_materialised_nodes_are_canonical(self):
        tree = parse(DOC)
        store = _paged_store(tree, Ruid2Scheme().build(tree))
        label = store.labels_with_tag("person")[0]
        assert store.node_for(label) is store.node_for(label)

    def test_records_come_from_the_node_table(self):
        tree = parse(DOC)
        store = _paged_store(tree, Ruid2Scheme().build(tree))
        [price] = store.labels_with_tag("price")
        record = store.record(price)
        assert isinstance(record, NodeRecord)
        assert (record.tag, record.kind) == ("price", NodeKind.ELEMENT)

    def test_pool_overflow_query_is_correct_with_page_misses(self, xmark_tree):
        """Acceptance: a document whose pages exceed the buffer pool
        still answers correctly, and EXPLAIN ANALYZE surfaces the
        resulting ``page_misses``."""
        tree = xmark_tree.copy()
        labeling = Ruid2Scheme().build(tree)
        database = XmlDatabase(page_size=1024, pool_pages=8)
        document = database.store_document("auction", tree, labeling)
        store = PagedNodeStore(document)
        assert database.pager.page_count > 8  # genuinely bigger than the pool

        engine = XPathEngine(None, store=store)
        baseline = XPathEngine(tree)
        query = "//item/name"
        plan = engine.explain(query, strategy="store", analyze=True)
        assert plan.analyzed
        assert plan.physical is not None
        assert plan.physical["page_misses"] > 0
        want = [n.path() for n in baseline.select(query, "navigational")]
        got = [store.path_of(store.label_for(n)) for n in plan.result]
        assert got == want

    def test_stats_snapshot_merges_buffer_traffic(self):
        tree = parse(DOC)
        store = _paged_store(tree, Ruid2Scheme().build(tree))
        snapshot = store.stats_snapshot()
        assert {"page_hits", "page_misses", "fetches"} <= set(snapshot)


class TestConcurrentExposure:
    def test_pinned_snapshot_store_property(self):
        document = ConcurrentDocument(parse(DOC))
        with document.pin() as pinned:
            store = pinned.store
            assert isinstance(store, NodeStore)
            evaluator = StoreEvaluator(store)
            result = evaluator.select(
                XPathEngine(document.tree).compile("//person/name")
            )
            assert [store.string_value(store.label_for(n)) for n in result] == [
                "Alice",
                "Bob",
            ]
