"""Tests for the flat-array columnar index and its store wiring."""

import pytest

from repro.baselines import get_scheme, scheme_names
from repro.core.columnar import NO_RANK, ColumnarIndex
from repro.core.rankindex import RankIndex
from repro.errors import NumberingError
from repro.generator import random_document
from repro.query.parser import parse_xpath
from repro.store import MemoryNodeStore, StoreEvaluator
from repro.xmltree import element, parse
from repro.xmltree.node import NodeKind


@pytest.fixture
def labeling():
    tree = random_document(300, seed=23)
    return get_scheme("prepost").build(tree)


class TestBuild:
    def test_ranks_agree_with_rank_index(self, labeling):
        columnar = ColumnarIndex.build(labeling, labeling.generation)
        canonical = RankIndex.build(labeling, labeling.generation)
        assert columnar.rank_by_label == canonical.rank
        for label, rank in canonical.rank.items():
            assert columnar.end[rank] == canonical.end[label]
            assert columnar.labels_by_rank[rank] == label

    def test_parent_column(self, labeling):
        columnar = ColumnarIndex.build(labeling, labeling.generation)
        tree = labeling.tree
        for node in tree.preorder():
            rank = columnar.rank_by_label[labeling.label_of(node)]
            if node.parent is None:
                assert columnar.parent[rank] == NO_RANK
            else:
                parent_rank = columnar.rank_by_label[labeling.label_of(node.parent)]
                assert columnar.parent[rank] == parent_rank

    def test_children_via_sibling_chain(self, labeling):
        columnar = ColumnarIndex.build(labeling, labeling.generation)
        tree = labeling.tree
        for node in tree.preorder():
            rank = columnar.rank_by_label[labeling.label_of(node)]
            expected = [
                labeling.label_of(c)
                for c in node.children
                if c.kind is not NodeKind.ATTRIBUTE
            ]
            assert columnar.labels_for(columnar.children_ranks(rank)) == expected

    def test_structural_slice_is_subtree(self, labeling):
        columnar = ColumnarIndex.build(labeling, labeling.generation)
        tree = labeling.tree
        node = tree.root.children[0]
        rank = columnar.rank_by_label[labeling.label_of(node)]

        def structural(n):
            for child in n.children:
                if child.kind is not NodeKind.ATTRIBUTE:
                    yield child
                    yield from structural(child)

        expected = [labeling.label_of(d) for d in structural(node)]
        assert columnar.structural_slice(rank) == expected
        assert columnar.structural_slice(rank, or_self=True) == [
            labeling.label_of(node),
            *expected,
        ]

    def test_tag_buckets(self, labeling):
        columnar = ColumnarIndex.build(labeling, labeling.generation)
        tree = labeling.tree
        for tag, bucket in columnar.tag_ranks.items():
            expected = [
                labeling.label_of(n)
                for n in tree.preorder()
                if n.kind is NodeKind.ELEMENT and n.tag == tag
            ]
            assert columnar.labels_for(bucket) == expected
        assert len(columnar.tag_rank_array("no-such-tag")) == 0

    def test_covers(self, labeling):
        columnar = ColumnarIndex.build(labeling, labeling.generation)
        root_rank = columnar.rank_by_label[labeling.label_of(labeling.tree.root)]
        assert columnar.covers(root_rank, root_rank + 1)
        assert not columnar.covers(root_rank + 1, root_rank)
        assert columnar.covers(root_rank, root_rank, self_or=True)

    def test_as_rank_index_shares_ranks(self, labeling):
        columnar = ColumnarIndex.build(labeling, labeling.generation)
        index = columnar.as_rank_index()
        assert index is columnar.as_rank_index()  # cached
        assert index.rank is columnar.rank_by_label  # shared, not copied
        canonical = RankIndex.build(labeling, labeling.generation)
        assert index.end == canonical.end

    def test_from_rank_rows_equivalent(self, labeling):
        built = ColumnarIndex.build(labeling, labeling.generation)
        parent = built.parent
        rows = [
            (
                rank,
                label,
                built.end[rank],
                None if parent[rank] < 0 else built.labels_by_rank[parent[rank]],
                built.tag_at(rank) or "#other",
                NodeKind(
                    labeling.node_of(label).kind
                ).value,
            )
            for rank, label in enumerate(built.labels_by_rank)
        ]
        recovered = ColumnarIndex.from_rank_rows(rows, labeling.generation)
        assert recovered.rank_by_label == built.rank_by_label
        assert recovered.end == built.end
        assert recovered.parent == built.parent
        assert recovered.kind == built.kind
        assert recovered.structural == built.structural
        assert dict(recovered.tag_ranks) == dict(built.tag_ranks)

    def test_bytes_accounting(self, labeling):
        columnar = ColumnarIndex.build(labeling, labeling.generation)
        assert columnar.buffer_bytes() > 0
        assert columnar.bytes_per_node() == pytest.approx(
            columnar.buffer_bytes() / columnar.size
        )
        # ~21 bytes/node of fixed columns plus per-tag buckets
        assert columnar.bytes_per_node() < 64


class TestEveryScheme:
    @pytest.mark.parametrize("scheme_name", scheme_names())
    def test_columnar_agrees_across_schemes(self, scheme_name, small_tree):
        labeling = get_scheme(scheme_name).build(small_tree)
        columnar = labeling.columnar_index()
        assert columnar is labeling.columnar_index()  # cached per generation
        canonical = RankIndex.build(labeling, labeling.generation)
        assert columnar.rank_by_label == canonical.rank
        try:
            labeling.insert(small_tree.root, 0, element("new"))
        except NumberingError:  # ruid-multi defines no updates
            return
        fresh = labeling.columnar_index()
        assert fresh.generation == labeling.generation
        assert fresh.size == small_tree.size()


class TestStoreWiring:
    def test_memory_store_counters(self):
        tree = parse("<a><b><c/><c/></b><d><c/></d></a>")
        store = MemoryNodeStore(get_scheme("region").build(tree))
        assert store.stats.columnar_builds == 1
        store.descendant_labels(store.root_label())
        assert store.stats.columnar_slices == 1
        store.tag_ranks("c")
        assert store.stats.columnar_tag_scans == 1

    def test_batched_matches_per_node(self):
        tree = random_document(400, seed=41)
        labeling = get_scheme("packed").build(tree)
        store = MemoryNodeStore(labeling)
        batched = StoreEvaluator(store)
        per_node = StoreEvaluator(store, batched=False)
        tags = sorted({n.tag for n in tree.preorder()})[:3]
        queries = ["//*", "/*", f"//{tags[0]}", f"/*/{tags[0]}", "//node()"]
        for query in queries:
            expr = parse_xpath(query)
            fast = [n.node_id for n in batched.select(expr)]
            slow = [n.node_id for n in per_node.select(expr)]
            assert fast == slow, query
        assert batched.stats.batched_steps > 0
        assert batched.stats.candidate_cache_hits > 0

    def test_batched_cache_invalidated_on_update(self):
        tree = parse("<a><b><c/></b></a>")
        labeling = get_scheme("packed").build(tree)
        store = MemoryNodeStore(labeling)
        evaluator = StoreEvaluator(store)
        expr = parse_xpath("//c")
        assert len(evaluator.select(expr)) == 1
        labeling.insert(tree.root.children[0], 0, element("c"))
        store.refresh()
        assert len(evaluator.select(expr)) == 2
