"""SqliteNodeStore specifics: accel schema, build-or-attach, pushdown.

The protocol contract battery in test_nodestore.py already runs this
store through every shared assertion; this module covers what is
unique to the SQL backend — the self-describing accel table, the
``end = post + level`` identity the range predicates rely on, the
restart lifecycle (attach to a previously shredded file, answer with
zero re-shred), SQL axis pushdown vs the batched Python path, the
deadline/error-taxonomy integration, and the resilient fallback over
the rank label dialect.
"""

from __future__ import annotations

import os
import sqlite3

import pytest

from repro.core.scheme import Ruid2Scheme
from repro.errors import (
    QueryTimeout,
    StorageError,
    TransientFetchError,
    UnknownLabelError,
)
from repro.query.engine import XPathEngine
from repro.query.parser import parse_xpath
from repro.resilience import Deadline
from repro.resilience.store import ResilientNodeStore
from repro.store import MemoryNodeStore, SqliteNodeStore, StoreEvaluator
from repro.xmltree import parse

DOC = """<site>
 <people>
  <person id="p1"><name>Alice</name><age>31</age></person>
  <person id="p2"><name>Bob</name><age>17</age></person>
 </people>
 <items><item id="i1"><name>Lamp</name><price>19</price></item></items>
</site>"""

QUERIES = (
    "/site/people/person",
    "//name",
    "//person[age > 20]/name",
    "//price/ancestor::item",
    "//item/following-sibling::*",
    "//name/preceding-sibling::node()",
    "//person[@id = 'p2']/name",
    "/descendant-or-self::node()",
)


def _shred(tree=None, path=":memory:", name="doc"):
    tree = parse(DOC) if tree is None else tree
    labeling = Ruid2Scheme().build(tree)
    return SqliteNodeStore.shred(name, labeling, path=path), tree, labeling


def _paths(store, nodes):
    return [store.path_of(store.label_for(n)) for n in nodes]


class TestAccelSchema:
    def test_accel_table_is_self_describing(self):
        store, tree, labeling = _shred()
        row = store.connection.execute(
            "SELECT post, value FROM \"doc__accel\" WHERE pre = -1"
        ).fetchone()
        assert row == (labeling.generation, "ruid2")
        count = store.connection.execute(
            "SELECT COUNT(*) FROM \"doc__accel\" WHERE pre >= 0"
        ).fetchone()[0]
        assert count == tree.size() == store.size()

    def test_indexes_cover_the_axis_predicates(self):
        store, _, _ = _shred()
        indexes = {
            row[0]
            for row in store.connection.execute(
                "SELECT name FROM sqlite_master WHERE type = 'index'"
            )
        }
        assert {"doc__accel_tag", "doc__accel_parent", "doc__accel_post"} <= indexes

    def test_end_is_post_plus_level(self):
        """The identity every descendant range scan relies on:
        post = pre + size − 1 − level, hence end = post + level."""
        store, _, labeling = _shred()
        memory = MemoryNodeStore(labeling)
        for rank in range(store.size()):
            label = memory.label_at(rank)
            assert store.end_of(rank) == memory.end_of(label)
            assert store.rank_of(rank) == rank == memory.rank_of(label)

    def test_parent_column_matches_scheme_arithmetic(self):
        store, _, labeling = _shred()
        memory = MemoryNodeStore(labeling)
        for rank in range(store.size()):
            parent = store.parent_of(rank)
            mem_parent = memory.parent_of(memory.label_at(rank))
            if mem_parent is None:
                assert parent is None
            else:
                assert parent == memory.rank_of(mem_parent)

    def test_unusable_document_name_is_rejected(self):
        tree = parse(DOC)
        labeling = Ruid2Scheme().build(tree)
        with pytest.raises(StorageError, match="unusable document name"):
            SqliteNodeStore.shred('x"; DROP TABLE y; --', labeling)


class TestBuildOrAttach:
    def test_shred_then_attach_same_connection(self):
        store, _, labeling = _shred()
        assert store.built
        again = SqliteNodeStore("doc", connection=store.connection)
        assert not again.built  # attached, not re-shredded
        assert again.size() == store.size()
        assert again.scheme_name == "ruid2"
        assert again.generation == labeling.generation

    def test_attach_without_table_raises(self, tmp_path):
        with pytest.raises(StorageError, match="no accel table"):
            SqliteNodeStore.attach("doc", path=str(tmp_path / "empty.db"))

    def test_restart_lifecycle_zero_reshred(self, tmp_path):
        """Acceptance: a store attached to a previously shredded file
        answers the full query battery — node-for-node against the
        navigational baseline — through SQL alone: no labeling object,
        no re-shred, ``sql_queries > 0``."""
        path = str(tmp_path / "site.db")
        store, tree, labeling = _shred(path=path)
        row_count = store.connection.execute(
            'SELECT COUNT(*) FROM "doc__accel"'
        ).fetchone()[0]
        store.close()
        del store, labeling  # nothing label-shaped survives the restart

        attached = SqliteNodeStore.attach("doc", path=path)
        assert not attached.built  # no labeling rebuild happened
        assert attached.connection.execute(
            'SELECT COUNT(*) FROM "doc__accel"'
        ).fetchone()[0] == row_count  # and no rows were re-written

        baseline = XPathEngine(tree)
        evaluator = StoreEvaluator(attached)
        for query in QUERIES:
            want = [n.path() for n in baseline.select(query, "navigational")]
            got = []
            for node in evaluator.select(parse_xpath(query)):
                try:
                    got.append(attached.path_of(attached.label_for(node)))
                except UnknownLabelError:
                    got.append(node.path())  # transient / document node
            if query.startswith("/descendant-or-self"):
                # both sides spell the virtual document node their own
                # way; compare the labeled remainder
                want, got = want[-attached.size():], got[-attached.size():]
            assert got == want, f"attached store diverged on {query}"
        assert attached.stats.sql_queries > 0
        assert attached.stats.pushdown_steps > 0

    def test_memory_and_disk_files_agree(self, tmp_path):
        mem_store, tree, labeling = _shred()
        disk_store = SqliteNodeStore.shred(
            "doc", labeling, path=str(tmp_path / "d.db")
        )
        for query in QUERIES:
            a = _paths_safe(mem_store, StoreEvaluator(mem_store), query)
            b = _paths_safe(disk_store, StoreEvaluator(disk_store), query)
            assert a == b


def _paths_safe(store, evaluator, query):
    out = []
    for node in evaluator.select(parse_xpath(query)):
        try:
            out.append(store.path_of(store.label_for(node)))
        except UnknownLabelError:
            out.append(("transient", node.tag, node.text))
    return out


class TestAxisPushdown:
    def test_pushdown_equals_batched_python_path(self):
        store, _, _ = _shred()
        pushdown = StoreEvaluator(store)
        python = StoreEvaluator(store, pushdown=False)
        for query in QUERIES:
            a = _paths_safe(store, pushdown, query)
            b = _paths_safe(store, python, query)
            assert a == b, f"pushdown diverged from python path on {query}"
        assert pushdown.stats.pushdown_steps > 0
        assert python.stats.pushdown_steps == 0

    def test_pushdown_charges_store_counters(self):
        store, _, _ = _shred()
        before = store.stats_snapshot()
        StoreEvaluator(store).select(parse_xpath("//person/name"))
        delta = store.stats_delta(before)
        assert delta["pushdown_steps"] > 0
        assert delta["sql_queries"] > 0
        assert delta["sql_rows"] > 0

    def test_unknown_tag_answers_empty_without_fallback(self):
        store, _, _ = _shred()
        evaluator = StoreEvaluator(store)
        assert evaluator.select(parse_xpath("//nonexistent")) == []
        assert evaluator.stats.pushdown_steps > 0

    def test_explain_analyze_surfaces_sql_counters(self):
        store, _, _ = _shred()
        engine = XPathEngine(None, store=store)
        plan = engine.explain("//person/name", strategy="store", analyze=True)
        assert plan.physical is not None
        assert plan.physical["sql_queries"] > 0
        assert plan.physical["pushdown_steps"] > 0

    def test_wide_context_chunks_statements(self, medium_tree):
        """A frontier larger than the SQL parameter budget must split
        into several statements and still agree with the Python path."""
        labeling = Ruid2Scheme().build(medium_tree)
        store = SqliteNodeStore.shred("wide", labeling)
        pushdown = StoreEvaluator(store)
        python = StoreEvaluator(store, pushdown=False)
        query = "//*/following-sibling::*"
        assert _paths_safe(store, pushdown, query) == _paths_safe(
            store, python, query
        )


class TestDeadlinesAndErrors:
    def test_expired_deadline_raises_query_timeout(self):
        store, _, _ = _shred()
        evaluator = StoreEvaluator(store)
        clock = iter(range(0, 10**12, 10**9)).__next__  # 1s per read
        evaluator.set_deadline(Deadline(0.5, clock=clock, check_interval=1))
        with pytest.raises(QueryTimeout):
            evaluator.select(parse_xpath("//name"))

    def test_busy_errors_map_to_transient_fetch(self):
        store, _, _ = _shred()

        def boom(sql):
            raise sqlite3.OperationalError("database is locked")

        real = store.connection

        class Locked:
            def execute(self, sql, params=()):
                boom(sql)

        store.connection = Locked()
        with pytest.raises(TransientFetchError):
            store.children_of(0)
        store.connection = real

    def test_structural_errors_map_to_storage_error(self):
        store, _, _ = _shred()

        class Broken:
            def execute(self, sql, params=()):
                raise sqlite3.OperationalError("no such table: doc__accel")

        real = store.connection
        store.connection = Broken()
        store._row_cache.clear()
        with pytest.raises(StorageError):
            store.children_of(0)
        store.connection = real

    def test_before_query_hook_is_a_fault_point(self):
        store, _, _ = _shred()
        calls = []

        def hook(sql):
            calls.append(sql)

        store.before_query = hook
        store.children_of(0)
        assert calls and "doc__accel" in calls[-1]


class TestResilientSqlite:
    def test_fallback_answers_when_sql_path_fails(self):
        store, tree, labeling = _shred()
        fallback = MemoryNodeStore(labeling)
        resilient = ResilientNodeStore(
            store, fallback=fallback, sleep=lambda _s: None
        )
        budget = {"n": 0}

        def chaos(sql):
            if budget["n"] > 0:
                budget["n"] -= 1
                raise TransientFetchError("injected sqlite fault")

        store.before_query = chaos
        evaluator = StoreEvaluator(resilient)
        want = [
            n.text_content()
            for n in XPathEngine(tree).select("//name", "navigational")
        ]
        budget["n"] = 10 ** 6  # every SQL statement fails: full degrade
        got = [
            resilient.string_value(resilient.label_for(n))
            for n in evaluator.select(parse_xpath("//name"))
        ]
        assert got == want
        assert resilient.degraded()

    def test_rank_dialect_translation_round_trips(self):
        store, _, labeling = _shred()
        fallback = MemoryNodeStore(labeling)
        resilient = ResilientNodeStore(
            store, fallback=fallback, sleep=lambda _s: None
        )
        # every label the resilient store exposes stays a rank int,
        # even when the answer came from the fallback dialect
        store.before_query = lambda sql: (_ for _ in ()).throw(
            TransientFetchError("down")
        )
        labels = resilient.labels_with_tag("name")
        assert labels == sorted(labels)
        assert all(isinstance(lb, int) for lb in labels)
        assert resilient.degraded()
