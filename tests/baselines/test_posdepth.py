"""Tests for position/depth labeling."""

import pytest

from repro.baselines import PosDepthScheme
from repro.core import Relation
from repro.errors import NoParentError
from repro.generator import random_document
from repro.xmltree import element, parse


@pytest.fixture
def tree():
    return parse("<a><b><c/><d/></b><e/></a>")


class TestBuild:
    def test_positions_and_depths(self, tree):
        labeling = PosDepthScheme().build(tree)
        by_tag = {n.tag: labeling.label_of(n) for n in tree.preorder()}
        assert by_tag == {"a": (1, 0), "b": (2, 1), "c": (3, 2), "d": (4, 2), "e": (5, 1)}


class TestStructure:
    def test_relation_charges_probes(self, tree):
        labeling = PosDepthScheme().build(tree)
        before = labeling.index_probes
        assert labeling.relation((1, 0), (3, 2)) is Relation.ANCESTOR
        assert labeling.index_probes > before

    def test_relation_matches_tree(self):
        tree = random_document(120, seed=54)
        labeling = PosDepthScheme().build(tree)
        nodes = tree.nodes()
        for first in nodes[::4]:
            for second in nodes[::3]:
                got = labeling.relation(labeling.label_of(first), labeling.label_of(second))
                if first is second:
                    assert got is Relation.SELF
                elif first.is_ancestor_of(second):
                    assert got is Relation.ANCESTOR
                elif second.is_ancestor_of(first):
                    assert got is Relation.DESCENDANT
                else:
                    want = tree.compare_document_order(first, second)
                    assert (got is Relation.PRECEDING) == (want < 0)

    def test_parent_matches_tree(self, tree):
        labeling = PosDepthScheme().build(tree)
        for node in tree.preorder():
            if node.parent is None:
                with pytest.raises(NoParentError):
                    labeling.parent_label(labeling.label_of(node))
            else:
                assert labeling.parent_label(labeling.label_of(node)) == labeling.label_of(
                    node.parent
                )


class TestUpdate:
    def test_insert_shifts_positions(self, tree):
        labeling = PosDepthScheme().build(tree)
        report = labeling.insert(tree.root, 0, element("new"))
        assert report.relabeled_count == 4  # b, c, d, e shift position
