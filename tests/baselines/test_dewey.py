"""Tests for Dewey-order labeling."""

import pytest

from repro.baselines import DeweyLabeling, DeweyScheme
from repro.core import Relation
from repro.errors import NoParentError
from repro.generator import random_document
from repro.xmltree import build, element, parse


@pytest.fixture
def tree():
    return parse("<a><b><c/><d/></b><e/></a>")


class TestBuild:
    def test_paths(self, tree):
        labeling = DeweyScheme().build(tree)
        by_tag = {n.tag: labeling.label_of(n) for n in tree.preorder()}
        assert by_tag == {"a": (), "b": (1,), "c": (1, 1), "d": (1, 2), "e": (2,)}

    def test_roundtrip(self, tree):
        labeling = DeweyScheme().build(tree)
        for node in tree.preorder():
            assert labeling.node_of(labeling.label_of(node)) is node


class TestStructure:
    def test_parent_drops_last(self, tree):
        labeling = DeweyScheme().build(tree)
        assert labeling.parent_label((1, 2)) == (1,)
        with pytest.raises(NoParentError):
            labeling.parent_label(())

    def test_relation(self, tree):
        labeling = DeweyScheme().build(tree)
        assert labeling.relation((), (1, 2)) is Relation.ANCESTOR
        assert labeling.relation((1, 2), (1,)) is Relation.DESCENDANT
        assert labeling.relation((1, 1), (1, 2)) is Relation.PRECEDING
        assert labeling.relation((2,), (1, 2)) is Relation.FOLLOWING
        assert labeling.relation((2,), (2,)) is Relation.SELF

    def test_relation_matches_tree(self):
        tree = random_document(150, seed=51)
        labeling = DeweyScheme().build(tree)
        nodes = tree.nodes()
        for first in nodes[::4]:
            for second in nodes[::5]:
                got = labeling.relation(labeling.label_of(first), labeling.label_of(second))
                if first is second:
                    assert got is Relation.SELF
                elif first.is_ancestor_of(second):
                    assert got is Relation.ANCESTOR
                elif second.is_ancestor_of(first):
                    assert got is Relation.DESCENDANT
                else:
                    want = tree.compare_document_order(first, second)
                    assert (got is Relation.PRECEDING) == (want < 0)


class TestUpdate:
    def test_insert_shifts_right_sibling_subtrees(self, tree):
        labeling = DeweyScheme().build(tree)
        b = tree.root.children[0]
        report = labeling.insert(tree.root, 0, element("new"))
        # b's subtree (3 nodes) and e all shift
        assert report.relabeled_count == 4
        assert labeling.label_of(b) == (2,)

    def test_append_is_free(self, tree):
        labeling = DeweyScheme().build(tree)
        report = labeling.insert(tree.root, 2, element("tail"))
        assert report.relabeled_count == 0

    def test_delete(self, tree):
        labeling = DeweyScheme().build(tree)
        report = labeling.delete(tree.root.children[0])
        assert report.deleted_count == 3
        assert report.relabeled_count == 1  # e shifts left

    def test_bits_grow_with_depth(self):
        from repro.generator import path_tree

        labeling = DeweyScheme().build(path_tree(64))
        deepest = max(labeling.tree.preorder(), key=lambda n: n.depth)
        assert labeling.label_bits(labeling.label_of(deepest)) >= 63
        assert labeling.label_bits(()) == 1
