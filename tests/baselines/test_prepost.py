"""Tests for Dietz pre/post labeling."""

import pytest

from repro.baselines import PrePostScheme
from repro.core import Relation
from repro.errors import NoParentError, UnknownLabelError
from repro.generator import random_document
from repro.xmltree import element, parse


@pytest.fixture
def tree():
    return parse("<a><b><c/><d/></b><e/></a>")


class TestBuild:
    def test_pre_post_ranks(self, tree):
        labeling = PrePostScheme().build(tree)
        by_tag = {n.tag: labeling.label_of(n) for n in tree.preorder()}
        assert by_tag["a"] == (1, 5)
        assert by_tag["b"] == (2, 3)
        assert by_tag["c"] == (3, 1)
        assert by_tag["d"] == (4, 2)
        assert by_tag["e"] == (5, 4)


class TestStructure:
    def test_dominance_relation(self, tree):
        labeling = PrePostScheme().build(tree)
        assert labeling.relation((1, 5), (3, 1)) is Relation.ANCESTOR
        assert labeling.relation((3, 1), (2, 3)) is Relation.DESCENDANT
        assert labeling.relation((3, 1), (4, 2)) is Relation.PRECEDING
        assert labeling.relation((5, 4), (2, 3)) is Relation.FOLLOWING

    def test_parent_needs_index_probes(self, tree):
        labeling = PrePostScheme().build(tree)
        assert labeling.parent_needs_index
        before = labeling.index_probes
        parent = labeling.parent_label(labeling.label_of(tree.find_by_tag("d")[0]))
        assert parent == labeling.label_of(tree.find_by_tag("b")[0])
        assert labeling.index_probes > before

    def test_parent_matches_tree(self):
        tree = random_document(200, seed=52)
        labeling = PrePostScheme().build(tree)
        for node in tree.preorder():
            if node.parent is None:
                with pytest.raises(NoParentError):
                    labeling.parent_label(labeling.label_of(node))
            else:
                assert labeling.parent_label(labeling.label_of(node)) == labeling.label_of(
                    node.parent
                )

    def test_unknown_label_raises(self, tree):
        labeling = PrePostScheme().build(tree)
        with pytest.raises(UnknownLabelError):
            labeling.parent_label((99, 99))


class TestUpdate:
    def test_insert_shifts_globally(self, tree):
        labeling = PrePostScheme().build(tree)
        report = labeling.insert(tree.root.children[0], 0, element("new"))
        # c, d, e shift pre; b/a shift post; nearly everything changes
        assert report.relabeled_count >= 4

    def test_delete(self, tree):
        labeling = PrePostScheme().build(tree)
        report = labeling.delete(tree.find_by_tag("c")[0])
        assert report.deleted_count == 1
        assert report.relabeled_count >= 2
        for node in tree.preorder():
            if node.parent is not None:
                assert labeling.parent_label(labeling.label_of(node)) == labeling.label_of(
                    node.parent
                )
