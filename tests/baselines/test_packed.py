"""Tests for the bit-packed [rank|end|level] single-int labeling."""

import pytest

from repro.baselines import PackedLabeling, PackedLayout, PackedScheme
from repro.core import Relation
from repro.core.rankindex import RankIndex
from repro.errors import NoParentError, NumberingError, UnknownLabelError
from repro.generator import random_document
from repro.xmltree import element, parse


@pytest.fixture
def tree():
    return parse("<a><b><c/><d/></b><e/></a>")


class TestLayout:
    def test_pack_unpack_roundtrip(self):
        layout = PackedLayout(rank_bits=10, level_bits=4)
        for rank, end, level in [(0, 0, 0), (5, 9, 3), (1023, 1023, 15)]:
            assert layout.unpack(layout.pack(rank, end, level)) == (rank, end, level)

    def test_field_overflow_raises(self):
        layout = PackedLayout(rank_bits=4, level_bits=2)
        with pytest.raises(NumberingError):
            layout.pack(16, 0, 0)
        with pytest.raises(NumberingError):
            layout.pack(0, 16, 0)
        with pytest.raises(NumberingError):
            layout.pack(0, 0, 4)

    def test_for_document_respects_floors(self):
        layout = PackedLayout.for_document(100, 5)
        assert layout.rank_bits == 21 and layout.level_bits == 8

    def test_for_document_widens_never_spills(self):
        layout = PackedLayout.for_document(1 << 22, 300, 21, 8)
        assert layout.rank_bits >= 22
        assert layout.level_bits >= 9
        # widened labels still pack the extreme values
        layout.pack((1 << 22) - 1, (1 << 22) - 1, 300)

    def test_zero_width_fields_rejected(self):
        with pytest.raises(NumberingError):
            PackedLayout(rank_bits=0)


class TestStructure:
    def test_relation(self, tree):
        labeling = PackedScheme().build(tree)
        by_tag = {n.tag: labeling.label_of(n) for n in tree.preorder()}
        assert labeling.relation(by_tag["a"], by_tag["c"]) is Relation.ANCESTOR
        assert labeling.relation(by_tag["c"], by_tag["d"]) is Relation.PRECEDING
        assert labeling.relation(by_tag["e"], by_tag["c"]) is Relation.FOLLOWING
        assert labeling.relation(by_tag["d"], by_tag["b"]) is Relation.DESCENDANT
        assert labeling.relation(by_tag["a"], by_tag["a"]) is Relation.SELF

    def test_label_order_is_document_order(self):
        tree = random_document(200, seed=7)
        labeling = PackedScheme().build(tree)
        labels = [labeling.label_of(n) for n in tree.preorder()]
        assert labels == sorted(labels)
        assert labeling.doc_compare(labels[0], labels[1]) < 0
        assert labeling.doc_compare(labels[1], labels[1]) == 0

    def test_parent_via_rank_column(self):
        tree = random_document(150, seed=53)
        labeling = PackedScheme().build(tree)
        assert labeling.parent_needs_index
        for node in tree.preorder():
            if node.parent is None:
                with pytest.raises(NoParentError):
                    labeling.parent_label(labeling.label_of(node))
            else:
                assert labeling.parent_label(
                    labeling.label_of(node)
                ) == labeling.label_of(node.parent)

    def test_unknown_label_rejected(self, tree):
        labeling = PackedScheme().build(tree)
        bogus = max(labeling.snapshot().values()) + 1
        with pytest.raises(UnknownLabelError):
            labeling.parent_label(bogus)

    def test_label_bits_and_memory(self, tree):
        labeling = PackedScheme().build(tree)
        root_label = labeling.label_of(tree.root)
        assert labeling.label_bits(root_label) == labeling.layout.total_bits
        assert labeling.memory_bytes() == tree.size() * 8


class TestRankIndexInterop:
    def test_rank_index_matches_canonical_dfs(self):
        tree = random_document(120, seed=19)
        labeling = PackedScheme().build(tree)
        shifted = labeling.rank_index()
        canonical = RankIndex.build(labeling, labeling.generation)
        assert shifted.rank == canonical.rank
        assert shifted.end == canonical.end

    def test_rank_index_cached_per_generation(self, tree):
        labeling = PackedScheme().build(tree)
        assert labeling.rank_index() is labeling.rank_index()
        labeling.insert(tree.root, 0, element("new"))
        assert labeling.rank_index().generation == labeling.generation


class TestUpdate:
    def test_insert_relabels_and_stays_consistent(self, tree):
        labeling = PackedScheme().build(tree)
        report = labeling.insert(tree.root.children[0], 1, element("new"))
        assert report.inserted_count == 1
        for node in tree.preorder():
            label = labeling.label_of(node)
            assert labeling.node_of(label) is node
            if node.parent is not None:
                assert labeling.parent_label(label) == labeling.label_of(node.parent)

    def test_delete_subtree(self, tree):
        labeling = PackedScheme().build(tree)
        report = labeling.delete(tree.root.children[0])
        assert report.deleted_count == 3
        labels = [labeling.label_of(n) for n in tree.preorder()]
        assert labels == sorted(labels)

    def test_custom_widths_survive_reassignment(self, tree):
        labeling = PackedLabeling(tree, rank_bits=12, level_bits=5)
        labeling.insert(tree.root, 0, element("new"))
        assert labeling.layout.rank_bits >= 12
        assert labeling.layout.level_bits >= 5
