"""Tests for the scheme registry."""

import pytest

from repro.baselines import (
    ARITHMETIC_PARENT,
    UPDATABLE,
    all_schemes,
    get_scheme,
    scheme_names,
)
from repro.core.scheme import NumberingScheme


class TestRegistry:
    def test_names(self):
        names = scheme_names()
        assert set(names) == {
            "uid",
            "ruid2",
            "ruid-multi",
            "dewey",
            "ordpath",
            "prepost",
            "region",
            "posdepth",
            "packed",
        }

    def test_get_scheme(self):
        scheme = get_scheme("ruid2", max_area_size=16)
        assert isinstance(scheme, NumberingScheme)
        assert scheme.name == "ruid2"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_scheme("nope")

    def test_all_schemes_with_options(self):
        schemes = all_schemes(region={"gap": 2})
        by_name = {s.name: s for s in schemes}
        assert by_name["region"].gap == 2
        assert len(schemes) == len(scheme_names())

    def test_groups_are_registered(self):
        names = set(scheme_names())
        assert set(UPDATABLE) <= names
        assert set(ARITHMETIC_PARENT) <= names

    def test_parent_needs_index_flags(self, small_tree):
        for scheme in all_schemes():
            labeling = scheme.build(small_tree.copy())
            if scheme.name in ARITHMETIC_PARENT:
                assert not labeling.parent_needs_index
            else:
                assert labeling.parent_needs_index
