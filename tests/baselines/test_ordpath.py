"""Tests for the ORDPATH-style extension baseline."""

import random

import pytest

from repro.baselines import OrdpathScheme
from repro.baselines.ordpath import _between, parent_of
from repro.core import Relation
from repro.errors import NoParentError
from repro.generator import random_document
from repro.xmltree import element, parse


@pytest.fixture
def tree():
    return parse("<a><b><c/><d/></b><e/></a>")


class TestBetween:
    def test_first_child(self):
        assert _between(None, None) == (1,)

    def test_after_last(self):
        assert _between((5,), None) == (7,)
        assert _between((4, 1), None) == (5,)

    def test_before_first(self):
        assert _between(None, (1,)) == (-1,)
        assert _between(None, (2, 1)) == (1,)

    def test_adjacent_odds_open_caret(self):
        assert _between((5,), (7,)) == (6, 1)
        assert _between((1,), (3,)) == (2, 1)

    def test_wide_gap_picks_odd(self):
        assert _between((1,), (5,)) == (3,)
        assert _between((2, 1), (7,)) == (3,)

    def test_shared_head_recursion(self):
        assert _between((6, 1), (6, 3)) == (6, 2, 1)

    def test_dive_under_continuing_low(self):
        result = _between((5, 2, 1), (6, 1))
        assert (5, 2, 1) < result < (6, 1)
        assert result[-1] % 2 == 1

    def test_dive_under_caret_high(self):
        result = _between((5,), (6, 3))
        assert (5,) < result < (6, 3)
        assert result[-1] % 2 == 1

    @pytest.mark.parametrize("rounds", [200])
    def test_randomised_midpoint_invariants(self, rounds):
        rng = random.Random(0)
        labels = [(1,), (3,)]
        for _ in range(rounds):
            index = rng.randrange(len(labels) + 1)
            low = labels[index - 1] if index > 0 else None
            high = labels[index] if index < len(labels) else None
            fresh = _between(low, high)
            if low is not None:
                assert fresh > low
            if high is not None:
                assert fresh < high
            assert fresh[-1] % 2 == 1  # ends odd
            labels.insert(index, fresh)
        assert labels == sorted(labels)
        assert len(set(labels)) == len(labels)


class TestParentOf:
    def test_plain(self):
        assert parent_of((1, 3)) == (1,)
        assert parent_of((1,)) == ()

    def test_strips_carets(self):
        assert parent_of((1, 6, 1)) == (1,)
        assert parent_of((1, 6, 2, 1)) == (1,)

    def test_root_raises(self):
        with pytest.raises(NoParentError):
            parent_of(())


class TestLabeling:
    def test_fresh_assignment_odd(self, tree):
        labeling = OrdpathScheme().build(tree)
        by_tag = {n.tag: labeling.label_of(n) for n in tree.preorder()}
        assert by_tag == {"a": (), "b": (1,), "c": (1, 1), "d": (1, 3), "e": (3,)}

    def test_relations_match_tree(self):
        tree = random_document(150, seed=151)
        labeling = OrdpathScheme().build(tree)
        nodes = tree.nodes()
        for first in nodes[::4]:
            for second in nodes[::5]:
                got = labeling.relation(labeling.label_of(first), labeling.label_of(second))
                if first is second:
                    assert got is Relation.SELF
                elif first.is_ancestor_of(second):
                    assert got is Relation.ANCESTOR
                elif second.is_ancestor_of(first):
                    assert got is Relation.DESCENDANT
                else:
                    want = tree.compare_document_order(first, second)
                    assert (got is Relation.PRECEDING) == (want < 0)

    def test_insert_never_relabels(self, tree):
        labeling = OrdpathScheme().build(tree)
        b = tree.root.children[0]
        for step in range(20):
            report = labeling.insert(b, step % (b.fan_out + 1), element(f"n{step}"))
            assert report.relabeled_count == 0
        # structure still fully consistent
        for node in tree.preorder():
            if node.parent is not None:
                assert labeling.parent_label(labeling.label_of(node)) == labeling.label_of(
                    node.parent
                )

    def test_adversarial_inserts_grow_label_bits_not_length(self, tree):
        """Repeated insertion at one gap trades relabels for label
        growth — the opposite trade from rUID. The midpoint rule is
        growth-resistant: it extends component *values* (logarithmic
        bit growth) rather than appending components."""
        labeling = OrdpathScheme().build(tree)
        b = tree.root.children[0]
        initial_widest = max(
            labeling.label_bits(labeling.label_of(n)) for n in tree.preorder()
        )
        last = None
        for step in range(60):
            position = (b.children.index(last) + 1) if last is not None else 1
            last = element(f"g{step}")
            labeling.insert(b, position, last)
        widest = max(labeling.label_bits(labeling.label_of(n)) for n in tree.preorder())
        longest = max(len(labeling.label_of(n)) for n in tree.preorder())
        assert widest > initial_widest  # bits do grow...
        assert longest <= 4  # ...but component count stays tiny

    def test_delete_abandons_labels(self, tree):
        labeling = OrdpathScheme().build(tree)
        report = labeling.delete(tree.root.children[0])
        assert report.relabeled_count == 0
        assert report.deleted_count == 3

    def test_insert_subtree(self, tree):
        from repro.xmltree import build

        labeling = OrdpathScheme().build(tree)
        subtree = build(("s", ["t", "u"])).root
        report = labeling.insert(tree.root, 1, subtree)
        assert report.inserted_count == 3
        for node in subtree.iter_subtree():
            assert labeling.node_of(labeling.label_of(node)) is node
