"""Tests for gapped region (start, end, level) labeling."""

import pytest

from repro.baselines import RegionScheme
from repro.core import Relation
from repro.errors import NoParentError
from repro.generator import random_document
from repro.xmltree import element, parse


@pytest.fixture
def tree():
    return parse("<a><b><c/><d/></b><e/></a>")


class TestBuild:
    def test_intervals_nest(self, tree):
        labeling = RegionScheme(gap=4).build(tree)
        for node in tree.preorder():
            start, end, level = labeling.label_of(node)
            assert start < end
            assert level == node.depth
            for child in node.children:
                child_start, child_end, _ = labeling.label_of(child)
                assert start < child_start < child_end < end

    def test_gap_one_is_tight(self, tree):
        labeling = RegionScheme(gap=1).build(tree)
        starts_ends = sorted(
            value
            for label in labeling.snapshot().values()
            for value in label[:2]
        )
        assert starts_ends == list(range(1, 2 * tree.size() + 1))

    def test_invalid_gap(self):
        with pytest.raises(ValueError):
            RegionScheme(gap=0).build(parse("<a/>"))


class TestStructure:
    def test_relation(self, tree):
        labeling = RegionScheme(gap=2).build(tree)
        by_tag = {n.tag: labeling.label_of(n) for n in tree.preorder()}
        assert labeling.relation(by_tag["a"], by_tag["c"]) is Relation.ANCESTOR
        assert labeling.relation(by_tag["c"], by_tag["d"]) is Relation.PRECEDING
        assert labeling.relation(by_tag["e"], by_tag["c"]) is Relation.FOLLOWING
        assert labeling.relation(by_tag["d"], by_tag["b"]) is Relation.DESCENDANT

    def test_parent_via_index(self):
        tree = random_document(150, seed=53)
        labeling = RegionScheme(gap=4).build(tree)
        assert labeling.parent_needs_index
        for node in tree.preorder():
            if node.parent is None:
                with pytest.raises(NoParentError):
                    labeling.parent_label(labeling.label_of(node))
            else:
                assert labeling.parent_label(labeling.label_of(node)) == labeling.label_of(
                    node.parent
                )
        assert labeling.index_probes > 0


class TestUpdate:
    def test_insert_into_gap_is_free(self, tree):
        labeling = RegionScheme(gap=8).build(tree)
        report = labeling.insert(tree.root.children[0], 1, element("new"))
        assert not report.overflow
        assert report.relabeled_count == 0
        # the new node's interval nests correctly
        new = tree.root.children[0].children[1]
        start, end, level = labeling.label_of(new)
        parent_start, parent_end, _ = labeling.label_of(tree.root.children[0])
        assert parent_start < start < end < parent_end
        assert level == 2

    def test_insert_overflow_when_gaps_exhausted(self, tree):
        labeling = RegionScheme(gap=1).build(tree)
        report = labeling.insert(tree.root.children[0], 1, element("new"))
        assert report.overflow
        assert report.relabeled_count > 0

    def test_repeated_inserts_eventually_overflow(self, tree):
        labeling = RegionScheme(gap=4).build(tree)
        overflows = 0
        b = tree.root.children[0]
        for index in range(10):
            report = labeling.insert(b, 1, element(f"n{index}"))
            overflows += report.overflow
        assert overflows >= 1
        # structure still consistent
        for node in tree.preorder():
            if node.parent is not None:
                assert labeling.parent_label(labeling.label_of(node)) == labeling.label_of(
                    node.parent
                )

    def test_delete_abandons_interval(self, tree):
        labeling = RegionScheme(gap=4).build(tree)
        report = labeling.delete(tree.root.children[0])
        assert report.relabeled_count == 0
        assert report.deleted_count == 3
        for node in tree.preorder():
            if node.parent is not None:
                assert labeling.parent_label(labeling.label_of(node)) == labeling.label_of(
                    node.parent
                )

    def test_insert_subtree_into_gap(self, tree):
        labeling = RegionScheme(gap=16).build(tree)
        from repro.xmltree import build

        subtree = build(("s", ["t", "u"])).root
        report = labeling.insert(tree.root, 1, subtree)
        assert not report.overflow
        assert report.inserted_count == 3
        for node in subtree.iter_subtree():
            start, end, level = labeling.label_of(node)
            assert start < end
