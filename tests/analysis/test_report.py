"""Tests for table rendering."""

from repro.analysis import format_markdown, format_table, rows_from_dicts


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["name", "value"], [("a", 1), ("longer", 22)])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)
        assert "longer" in lines[3]

    def test_title(self):
        assert format_table(["h"], [("x",)], title="T").splitlines()[0] == "T"

    def test_float_formatting(self):
        table = format_table(["v"], [(0.123456,), (12345.6,), (0.0,)])
        assert "0.12" in table
        assert "0" in table

    def test_bool_formatting(self):
        table = format_table(["v"], [(True,), (False,)])
        assert "yes" in table and "no" in table


class TestMarkdown:
    def test_structure(self):
        markdown = format_markdown(["a", "b"], [(1, 2)])
        lines = markdown.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"


class TestRowsFromDicts:
    def test_basic(self):
        headers, rows = rows_from_dicts([{"x": 1, "y": 2}, {"x": 3, "y": 4}])
        assert headers == ("x", "y")
        assert rows == ((1, 2), (3, 4))

    def test_column_selection(self):
        headers, rows = rows_from_dicts([{"x": 1, "y": 2}], columns=["y"])
        assert headers == ("y",)
        assert rows == ((2,),)

    def test_empty(self):
        headers, rows = rows_from_dicts([], columns=["a"])
        assert headers == ("a",)
        assert rows == ()
