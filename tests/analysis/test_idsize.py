"""Tests for identifier-size analysis (E4/E9 machinery)."""

from repro.analysis import (
    capacity_grid,
    measure_bits,
    ruid_capacity_estimate,
    sweep_schemes,
    uid_capacity_height,
    uid_max_bits,
)
from repro.baselines import all_schemes
from repro.core import Ruid2Scheme, UidScheme
from repro.generator import skewed_tree


class TestMeasureBits:
    def test_fields(self, small_tree):
        row = measure_bits(UidScheme().build(small_tree))
        assert row.scheme == "uid"
        assert row.nodes == small_tree.size()
        assert row.max_bits >= row.mean_bits
        assert row.total_bits >= row.max_bits
        assert row.fits_32 and row.fits_64 and row.fits_128

    def test_skewed_tree_uid_explodes_ruid_does_not(self):
        tree = skewed_tree(depth=30, heavy_fan_out=50)
        uid_row = measure_bits(UidScheme().build(tree))
        ruid_row = measure_bits(Ruid2Scheme(max_area_size=8).build(tree))
        assert not uid_row.fits_64  # identifier explosion (paper section 1)
        assert ruid_row.fits_64
        assert ruid_row.max_bits < uid_row.max_bits / 3

    def test_sweep_all_schemes(self, small_tree):
        rows = sweep_schemes(small_tree, all_schemes())
        assert len(rows) == len(all_schemes())
        assert len({row.scheme for row in rows}) == len(rows)

    def test_as_row_matches_headers(self, small_tree):
        from repro.analysis import BIT_SIZE_HEADERS

        row = measure_bits(UidScheme().build(small_tree))
        assert len(row.as_row()) == len(BIT_SIZE_HEADERS)


class TestCapacity:
    def test_uid_max_bits_monotone(self):
        bits = [uid_max_bits(5, h) for h in range(1, 12)]
        assert bits == sorted(bits)

    def test_capacity_height_is_tight(self):
        budget = 64
        for fan_out in (2, 5, 16, 100):
            height = uid_capacity_height(fan_out, budget)
            assert uid_max_bits(fan_out, height) <= budget
            assert uid_max_bits(fan_out, height + 1) > budget

    def test_capacity_height_unary(self):
        # fan-out 1: identifier == height, so 2^32 - 1 levels fit 32 bits
        assert uid_capacity_height(1, 8) >= 100

    def test_multilevel_multiplies_height(self):
        assert ruid_capacity_estimate(10, 64, 3) == 3 * uid_capacity_height(10, 64)

    def test_capacity_grid(self):
        rows = capacity_grid([2, 10], 64, levels=(1, 2))
        assert len(rows) == 2
        for row in rows:
            assert row["height@m=2"] == 2 * row["height@m=1"]
