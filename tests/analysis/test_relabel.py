"""Tests for relabel-scope measurement (E5 machinery)."""

from repro.analysis import run_workload_per_scheme, summarise_reports
from repro.baselines import get_scheme
from repro.core.update import RelabelReport
from repro.generator import UpdateWorkloadConfig, generate_update_workload, random_document


class TestSummarise:
    def test_aggregation(self):
        reports = [
            RelabelReport("s", "insert", changed=[], surviving_nodes=10),
            RelabelReport(
                "s",
                "insert",
                changed=[object(), object()],
                surviving_nodes=10,
                overflow=True,
            ),
        ]
        summary = summarise_reports("s", reports)
        assert summary.operations == 2
        assert summary.total_relabeled == 2
        assert summary.mean_relabeled == 1.0
        assert summary.max_relabeled == 2
        assert summary.overflow_events == 1

    def test_empty(self):
        summary = summarise_reports("s", [])
        assert summary.mean_relabeled == 0.0
        assert summary.max_relabeled == 0


class TestWorkloadRun:
    def test_paper_ordering_holds(self):
        """§3.2's qualitative claim, quantified: rUID's mean relabel
        scope is far below UID's and pre/post's on a mixed workload."""
        tree = random_document(400, seed=81, fanout_kind="uniform", low=1, high=5)
        ops = generate_update_workload(
            tree, UpdateWorkloadConfig(operations=50), seed=82
        )
        schemes = [
            get_scheme("uid"),
            get_scheme("ruid2", max_area_size=16),
            get_scheme("prepost"),
        ]
        summaries = {s.scheme: s for s in run_workload_per_scheme(tree, schemes, ops)}
        assert summaries["ruid2"].mean_relabeled < summaries["uid"].mean_relabeled
        assert summaries["ruid2"].mean_relabeled < summaries["prepost"].mean_relabeled / 5

    def test_rows_match_headers(self):
        from repro.analysis import RELABEL_HEADERS

        tree = random_document(100, seed=83)
        ops = generate_update_workload(tree, UpdateWorkloadConfig(operations=5), seed=84)
        summaries = run_workload_per_scheme(tree, [get_scheme("dewey")], ops)
        assert len(summaries[0].as_row()) == len(RELABEL_HEADERS)
