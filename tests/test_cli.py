"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.generator import generate_xmark
from repro.xmltree import write_file


@pytest.fixture
def doc_path(tmp_path):
    path = tmp_path / "doc.xml"
    write_file(generate_xmark(scale=0.03, seed=9), str(path))
    return str(path)


class TestStats:
    def test_prints_metrics(self, doc_path, capsys):
        assert main(["stats", doc_path]) == 0
        out = capsys.readouterr().out
        assert "nodes" in out
        assert "max_fanout" in out

    def test_missing_file(self, capsys):
        assert main(["stats", "/nonexistent.xml"]) == 1
        assert "error" in capsys.readouterr().err


class TestLabel:
    def test_ruid2_shows_k_table(self, doc_path, capsys):
        assert main(["label", doc_path, "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "kappa" in out
        assert "(1, 1, true)" in out

    @pytest.mark.parametrize("scheme", ["uid", "dewey", "prepost"])
    def test_other_schemes(self, doc_path, capsys, scheme):
        assert main(["label", doc_path, "--scheme", scheme, "--limit", "3"]) == 0
        out = capsys.readouterr().out
        assert "max label bits" in out


class TestQuery:
    def test_paths_output(self, doc_path, capsys):
        assert main(["query", doc_path, "/site/people/person"]) == 0
        captured = capsys.readouterr()
        assert "/site/people/person" in captured.out
        assert "node(s)" in captured.err

    def test_values_output(self, doc_path, capsys):
        assert main(["query", doc_path, "//person[1]/name", "--values"]) == 0
        out = capsys.readouterr().out.strip()
        assert out  # a person name

    def test_strategies_agree(self, doc_path, capsys):
        main(["query", doc_path, "//item/name", "--strategy", "ruid"])
        ruid_out = capsys.readouterr().out
        main(["query", doc_path, "//item/name", "--strategy", "navigational"])
        nav_out = capsys.readouterr().out
        assert ruid_out == nav_out

    @pytest.mark.parametrize("store", ["memory", "paged"])
    def test_store_paths_match_tree_run(self, doc_path, capsys, store):
        assert main(["query", doc_path, "//item/name", "--store", store]) == 0
        captured = capsys.readouterr()
        store_out = captured.out
        assert f"[store:{store}]" in captured.err
        main(["query", doc_path, "//item/name"])
        assert store_out == capsys.readouterr().out

    def test_store_paged_values(self, doc_path, capsys):
        assert main(
            ["query", doc_path, "//person[1]/name", "--store", "paged", "--values"]
        ) == 0
        paged_value = capsys.readouterr().out
        assert paged_value.strip()
        main(["query", doc_path, "//person[1]/name", "--values"])
        assert paged_value == capsys.readouterr().out

    def test_bad_xpath(self, doc_path, capsys):
        assert main(["query", doc_path, "//["]) == 1
        assert "error" in capsys.readouterr().err


class TestExplain:
    def test_static_plan(self, doc_path, capsys):
        assert main(["explain", doc_path, "//person/name"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("EXPLAIN '//person/name'")
        assert "route" in out
        assert "batched" in out

    def test_analyze_reports_measurements(self, doc_path, capsys):
        assert main(["explain", doc_path, "//person/name", "--analyze"]) == 0
        out = capsys.readouterr().out
        assert "EXPLAIN ANALYZE" in out
        assert "results:" in out
        assert "observed" in out

    def test_navigational_strategy(self, doc_path, capsys):
        assert main(
            ["explain", doc_path, "//person", "--strategy", "navigational"]
        ) == 0
        assert "navigational" in capsys.readouterr().out

    def test_bad_xpath(self, doc_path, capsys):
        assert main(["explain", doc_path, "//["]) == 1
        assert "error" in capsys.readouterr().err


class TestMetrics:
    def test_registry_table(self, doc_path, capsys):
        assert main(
            ["metrics", doc_path, "//person", "//item/name", "--repeat", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "query.plan_misses" in out
        assert "query.latency_ns.ruid.count" in out

    def test_slow_query_table_with_zero_threshold(self, doc_path, capsys):
        assert main(
            ["metrics", doc_path, "//person", "--slow-ms", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert "slow queries" in out
        assert "//person" in out

    def test_quiet_when_nothing_slow(self, doc_path, capsys):
        assert main(
            ["metrics", doc_path, "//person", "--slow-ms", "10000"]
        ) == 0
        captured = capsys.readouterr()
        assert "no queries slower" in captured.err
        assert "slow queries" not in captured.out

    def test_bad_xpath(self, doc_path, capsys):
        assert main(["metrics", doc_path, "//["]) == 1
        assert "error" in capsys.readouterr().err


class TestConcurrent:
    def test_batch_table_and_metrics(self, doc_path, capsys):
        assert main(
            ["concurrent", doc_path, "//person", "//item/name", "--threads", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "snapshot batch, generation" in out
        assert "//item/name" in out
        assert "snapshot_pins" in out
        assert "parallel_chunks" in out

    def test_scheme_selectable(self, doc_path, capsys):
        assert main(
            ["concurrent", doc_path, "//person", "--scheme", "dewey"]
        ) == 0
        assert "snapshot_builds" in capsys.readouterr().out

    def test_bad_xpath(self, doc_path, capsys):
        assert main(["concurrent", doc_path, "//["]) == 1
        assert "error" in capsys.readouterr().err


class TestFragment:
    def test_fragment_is_xml(self, doc_path, capsys):
        assert main(["fragment", doc_path, "//person[1]/name"]) == 0
        out = capsys.readouterr().out
        assert out.lstrip().startswith("<site")
        assert "<name" in out  # skeleton only: the name element, childless

    def test_fragment_with_descendants_carries_text(self, doc_path, capsys):
        assert main(
            ["fragment", doc_path, "//person[1]/name", "--descendants"]
        ) == 0
        out = capsys.readouterr().out
        assert "<name>" in out  # now the text child is included

    def test_empty_selection_is_a_clean_error(self, doc_path, capsys):
        assert main(["fragment", doc_path, "//ghost_tag"]) == 1
        err = capsys.readouterr().err
        assert "error" in err
        assert "empty selection" in err

    def test_bad_xpath(self, doc_path, capsys):
        assert main(["fragment", doc_path, "//["]) == 1
        assert "error" in capsys.readouterr().err


class TestArgumentValidation:
    def test_unknown_scheme_rejected_by_parser(self, doc_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["label", doc_path, "--scheme", "nonsense"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_unknown_strategy_rejected_by_parser(self, doc_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["explain", doc_path, "//person", "--strategy", "nonsense"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err


class TestUpdateBench:
    def test_table_printed(self, doc_path, capsys):
        assert main(
            ["update-bench", doc_path, "--ops", "10", "--schemes", "uid", "ruid2"]
        ) == 0
        out = capsys.readouterr().out
        assert "relabel scope" in out
        assert "ruid2" in out


class TestSaveParams:
    def test_roundtrip(self, doc_path, tmp_path, capsys):
        out_path = str(tmp_path / "params.bin")
        assert main(["save-params", doc_path, out_path, "--directory"]) == 0
        assert "saved kappa" in capsys.readouterr().out
        from repro.core import load_parameters

        with open(out_path, "rb") as handle:
            params = load_parameters(handle.read())
        assert params.kappa >= 1
        assert params.tags
