"""Pin the paper's worked examples (experiments E1-E3).

E1 — Fig. 1: original-UID identifiers before/after the insertion
between nodes 2 and 3, including the exact relabel set
{3, 8, 9, 23, 26, 27} → {4, 11, 12, 32, 35, 36}.

E2 — Figs. 4-5: a 2-level rUID build with six areas, κ = 4 and the K
table invariants of Fig. 5.

E3 — Example 2: the rparent walkthrough (covered in detail in
tests/core/test_ruid.py::TestPaperExample2; re-asserted here on the
same fixture for the experiment index).
"""

import pytest

from repro.core import (
    ExplicitPartitioner,
    KRow,
    KTable,
    Ruid2Label,
    Ruid2Labeling,
    UidLabeling,
    UidUpdater,
    rparent,
)
from repro.generator import fig1_tree, fig4_tree
from repro.xmltree import element


class TestFig1:
    def test_initial_numbering(self):
        tree = fig1_tree()
        labeling = UidLabeling(tree, fan_out=3)
        by_tag = {node.tag: labeling.label_of(node) for node in tree.preorder()}
        assert by_tag == {
            "n1": 1,
            "n2": 2,
            "n3": 3,
            "n8": 8,
            "n9": 9,
            "n23": 23,
            "n26": 26,
            "n27": 27,
        }

    def test_insertion_relabels_exactly_the_papers_set(self):
        tree = fig1_tree()
        labeling = UidLabeling(tree, fan_out=3)
        updater = UidUpdater(labeling)
        report = updater.insert(tree.root, 1, element("inserted"))
        assert not report.overflow  # the third child slot was virtual
        moves = {
            change.old_label: change.new_label for change in report.changed
        }
        assert moves == {3: 4, 8: 11, 9: 12, 23: 32, 26: 35, 27: 36}
        assert labeling.label_of(tree.root.children[1]) == 3  # the new node

    def test_second_insertion_forces_full_renumber(self):
        # "If another node is inserted behind the new node 4 in
        # Fig. 1(b), the entire tree must be re-numerated."
        tree = fig1_tree()
        labeling = UidLabeling(tree, fan_out=3)
        updater = UidUpdater(labeling)
        updater.insert(tree.root, 1, element("first"))
        report = updater.insert(tree.root, 3, element("second"))
        assert report.overflow
        assert labeling.fan_out == 4


class TestFig4And5:
    def pick_partition(self, tree):
        tags = {"r", "a2", "a3", "a4", "a5", "a6"}
        return [node for node in tree.preorder() if node.tag in tags]

    def test_six_areas(self):
        tree = fig4_tree()
        labeling = Ruid2Labeling(
            tree, partitioner=ExplicitPartitioner(self.pick_partition(tree))
        )
        assert labeling.area_count() == 6

    def test_kappa_is_four(self):
        tree = fig4_tree()
        labeling = Ruid2Labeling(
            tree, partitioner=ExplicitPartitioner(self.pick_partition(tree))
        )
        assert labeling.kappa == 4

    def test_root_row_and_identifier(self):
        tree = fig4_tree()
        labeling = Ruid2Labeling(
            tree, partitioner=ExplicitPartitioner(self.pick_partition(tree))
        )
        assert labeling.label_of(tree.root) == Ruid2Label.ROOT
        first_row = labeling.ktable.row(1)
        assert (first_row.global_index, first_row.local_index) == (1, 1)

    def test_k_table_consistency(self):
        """Every K row's (upper, local) probe resolves to its area, and
        every area root's identifier matches its row."""
        tree = fig4_tree()
        labeling = Ruid2Labeling(
            tree, partitioner=ExplicitPartitioner(self.pick_partition(tree))
        )
        pair_index = labeling.ktable.build_pair_index(labeling.kappa)
        for row in labeling.ktable:
            root = labeling.area_root_node(row.global_index)
            label = labeling.label_of(root)
            assert label.global_index == row.global_index
            assert label.local_index == row.local_index
            if row.global_index != 1:
                upper = (row.global_index - 2) // labeling.kappa + 1
                assert pair_index[(upper, row.local_index)] == row.global_index

    def test_rparent_consistency_on_fig4(self):
        tree = fig4_tree()
        labeling = Ruid2Labeling(
            tree, partitioner=ExplicitPartitioner(self.pick_partition(tree))
        )
        for node in tree.preorder():
            if node.parent is not None:
                assert labeling.rparent(labeling.label_of(node)) == labeling.label_of(
                    node.parent
                )


class TestExample2:
    """E3: the three rparent configurations of §2.2 Example 2."""

    KAPPA = 4
    TABLE = KTable(
        [
            KRow(1, 1, 4),
            KRow(2, 2, 2),
            KRow(3, 3, 3),
            KRow(4, 4, 2),
            KRow(10, 9, 2),
            KRow(13, 5, 2),
        ]
    )

    @pytest.mark.parametrize(
        "child,parent",
        [
            (Ruid2Label(2, 7, False), Ruid2Label(2, 3, False)),
            (Ruid2Label(10, 9, True), Ruid2Label(3, 3, False)),
            (Ruid2Label(3, 3, False), Ruid2Label(3, 3, True)),
        ],
    )
    def test_walkthrough(self, child, parent):
        assert rparent(child, self.KAPPA, self.TABLE) == parent
