"""Tests for document-order determination (Lemmas 2-3, Fig. 10)."""

import itertools

import pytest

from repro.core import (
    Relation,
    Ruid2Labeling,
    Ruid2Order,
    SizeCapPartitioner,
    UidLabeling,
    uid_preceding,
    uid_relation,
)
from repro.generator import generate_xmark, path_tree, random_document


def expected_relation(tree, first, second) -> Relation:
    if first is second:
        return Relation.SELF
    if first.is_ancestor_of(second):
        return Relation.ANCESTOR
    if second.is_ancestor_of(first):
        return Relation.DESCENDANT
    if tree.compare_document_order(first, second) < 0:
        return Relation.PRECEDING
    return Relation.FOLLOWING


class TestUidRelation:
    def test_complete_agreement_on_labeled_tree(self):
        tree = random_document(120, seed=3, fanout_kind="uniform", low=1, high=4)
        labeling = UidLabeling(tree)
        for first, second in itertools.product(tree.nodes(), repeat=2):
            got = uid_relation(
                labeling.label_of(first), labeling.label_of(second), labeling.fan_out
            )
            assert got is expected_relation(tree, first, second)


class TestFig10Routine:
    def test_preceding_of_cousins(self):
        # k = 3: 23 (under 8) precedes 26 (under 9)
        assert uid_preceding(23, 26, 3) == 23
        assert uid_preceding(26, 23, 3) == 23

    def test_null_for_ancestor_pairs(self):
        assert uid_preceding(3, 27, 3) is None
        assert uid_preceding(27, 3, 3) is None
        assert uid_preceding(5, 5, 3) is None

    def test_siblings(self):
        assert uid_preceding(8, 9, 3) == 8

    def test_matches_document_compare(self):
        tree = random_document(100, seed=4)
        labeling = UidLabeling(tree)
        nodes = tree.nodes()
        for first, second in itertools.product(nodes[::3], nodes[::4]):
            a = labeling.label_of(first)
            b = labeling.label_of(second)
            result = uid_preceding(a, b, labeling.fan_out)
            if first is second or first.is_ancestor_of(second) or second.is_ancestor_of(first):
                assert result is None
            else:
                want = a if tree.compare_document_order(first, second) < 0 else b
                assert result == want


class TestRuid2Order:
    @pytest.mark.parametrize("cap", [4, 16, 300])
    def test_relation_agreement(self, cap):
        tree = random_document(150, seed=6, fanout_kind="geometric", mean=3)
        labeling = Ruid2Labeling(tree, partitioner=SizeCapPartitioner(cap))
        oracle = Ruid2Order(labeling.kappa, labeling.ktable)
        for first, second in itertools.product(tree.nodes(), repeat=2):
            got = oracle.relation(labeling.label_of(first), labeling.label_of(second))
            assert got is expected_relation(tree, first, second), (
                first.tag,
                second.tag,
            )

    def test_relation_on_xmark(self):
        tree = generate_xmark(0.03, seed=8)
        labeling = Ruid2Labeling(tree, partitioner=SizeCapPartitioner(12))
        oracle = Ruid2Order(labeling.kappa, labeling.ktable)
        nodes = tree.nodes()
        for first, second in itertools.product(nodes[::5], nodes[::7]):
            got = oracle.relation(labeling.label_of(first), labeling.label_of(second))
            assert got is expected_relation(tree, first, second)

    def test_compare_is_total_order(self):
        tree = random_document(80, seed=10)
        labeling = Ruid2Labeling(tree, partitioner=SizeCapPartitioner(8))
        oracle = Ruid2Order(labeling.kappa, labeling.ktable)
        labels = [labeling.label_of(node) for node in tree.preorder()]
        shuffled = labels[::-1]
        restored = sorted(shuffled, key=oracle.sort_key)
        assert restored == labels  # document order restored from keys

    def test_compare_sign_convention(self):
        tree = path_tree(10)
        labeling = Ruid2Labeling(tree, partitioner=SizeCapPartitioner(3))
        oracle = Ruid2Order(labeling.kappa, labeling.ktable)
        root_label = labeling.label_of(tree.root)
        leaf = max(tree.preorder(), key=lambda n: n.depth)
        leaf_label = labeling.label_of(leaf)
        assert oracle.compare(root_label, leaf_label) == -1
        assert oracle.compare(leaf_label, root_label) == 1
        assert oracle.compare(leaf_label, leaf_label) == 0

    def test_is_ancestor_shortcut(self):
        tree = random_document(60, seed=12)
        labeling = Ruid2Labeling(tree, partitioner=SizeCapPartitioner(6))
        oracle = Ruid2Order(labeling.kappa, labeling.ktable)
        for node in tree.preorder():
            if node.parent is not None:
                assert oracle.is_ancestor(
                    labeling.label_of(tree.root), labeling.label_of(node)
                )

    def test_area_chain_roots_at_one(self):
        tree = random_document(60, seed=14)
        labeling = Ruid2Labeling(tree, partitioner=SizeCapPartitioner(6))
        oracle = Ruid2Order(labeling.kappa, labeling.ktable)
        for node in tree.preorder():
            chain = oracle.area_chain(labeling.label_of(node))
            assert chain[-1] == 1
