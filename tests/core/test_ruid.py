"""Tests for the 2-level rUID engine: build invariants and rparent."""

import pytest

from repro.core import (
    DepthStridePartitioner,
    KRow,
    KTable,
    Ruid2Label,
    Ruid2Labeling,
    SingleAreaPartitioner,
    SizeCapPartitioner,
    UidLabeling,
    rparent,
)
from repro.errors import NoParentError, UnknownLabelError
from repro.generator import generate_xmark, path_tree, random_document, star_tree
from repro.xmltree import build, parse


@pytest.fixture
def labeled(medium_tree):
    return Ruid2Labeling(medium_tree, partitioner=SizeCapPartitioner(16))


class TestBuildInvariants:
    def test_root_label(self, labeled):
        assert labeled.label_of(labeled.tree.root) == Ruid2Label.ROOT

    def test_labels_unique(self, labeled):
        labels = [labeled.label_of(node) for node in labeled.tree.preorder()]
        assert len(set(labels)) == len(labels)

    def test_node_of_roundtrip(self, labeled):
        for node in labeled.tree.preorder():
            assert labeled.node_of(labeled.label_of(node)) is node

    def test_area_roots_flagged(self, labeled):
        frame = labeled.frame
        for node in labeled.tree.preorder():
            assert labeled.label_of(node).is_area_root == frame.is_area_root(node)

    def test_ktable_row_per_area(self, labeled):
        assert len(labeled.ktable) == labeled.area_count()
        assert labeled.ktable.row(1).local_index == 1

    def test_kappa_bounded_by_tree_fanout(self, labeled):
        # SizeCapPartitioner applies the §2.3 LCA-closure adjustment.
        assert labeled.kappa <= max(1, labeled.tree.max_fan_out())

    def test_unknown_lookups_raise(self, labeled):
        with pytest.raises(UnknownLabelError):
            labeled.node_of(Ruid2Label(999, 999, False))
        from repro.xmltree import element

        with pytest.raises(UnknownLabelError):
            labeled.label_of(element("foreign"))

    def test_items_document_order(self, labeled):
        nodes = [node for node, _ in labeled.items()]
        assert nodes == labeled.tree.nodes()

    def test_single_node_tree(self):
        labeling = Ruid2Labeling(build("solo"))
        assert labeling.label_of(labeling.tree.root) == Ruid2Label.ROOT
        assert labeling.area_count() == 1


class TestDegenerateEqualsUid:
    def test_single_area_matches_original_uid(self):
        tree = random_document(200, seed=7, fanout_kind="uniform", low=1, high=5)
        ruid = Ruid2Labeling(tree, partitioner=SingleAreaPartitioner())
        plain = UidLabeling(tree)
        assert ruid.area_count() == 1
        for node in tree.preorder():
            label = ruid.label_of(node)
            if node is tree.root:
                assert label == Ruid2Label.ROOT
            else:
                assert label.global_index == 1
                assert not label.is_area_root
                assert label.local_index == plain.label_of(node)


class TestRparent:
    @pytest.mark.parametrize("partitioner", [
        SingleAreaPartitioner(),
        SizeCapPartitioner(8),
        SizeCapPartitioner(64),
        DepthStridePartitioner(2),
        DepthStridePartitioner(3),
    ])
    def test_rparent_matches_tree_everywhere(self, partitioner):
        tree = random_document(300, seed=13, fanout_kind="geometric", mean=3)
        labeling = Ruid2Labeling(tree, partitioner=partitioner)
        for node in tree.preorder():
            label = labeling.label_of(node)
            if node.parent is None:
                with pytest.raises(NoParentError):
                    labeling.rparent(label)
            else:
                assert labeling.rparent(label) == labeling.label_of(node.parent)

    def test_rparent_on_shapes(self):
        for tree in (path_tree(60), star_tree(40), generate_xmark(0.03, seed=2)):
            labeling = Ruid2Labeling(tree, partitioner=SizeCapPartitioner(10))
            for node in tree.preorder():
                if node.parent is not None:
                    assert labeling.rparent(labeling.label_of(node)) == labeling.label_of(
                        node.parent
                    )

    def test_rancestors_chain(self, labeled):
        deepest = max(labeled.tree.preorder(), key=lambda n: n.depth)
        chain = labeled.rancestors(labeled.label_of(deepest))
        expected = [labeled.label_of(a) for a in deepest.ancestors()]
        assert chain == expected

    def test_is_ancestor_via_chain(self, labeled):
        tree = labeled.tree
        deepest = max(tree.preorder(), key=lambda n: n.depth)
        for ancestor in deepest.ancestors():
            assert labeled.is_ancestor(labeled.label_of(ancestor), labeled.label_of(deepest))
        sibling_branch = [
            n for n in tree.preorder()
            if not n.is_ancestor_of(deepest) and n is not deepest
        ]
        if sibling_branch:
            assert not labeled.is_ancestor(
                labeled.label_of(sibling_branch[-1]), labeled.label_of(deepest)
            )


class TestPaperExample2:
    """The rparent walkthrough of §2.2, Example 2: κ = 4 and Fig. 5's K."""

    KAPPA = 4
    TABLE = KTable(
        [
            KRow(1, 1, 4),
            KRow(2, 2, 2),
            KRow(3, 3, 3),
            KRow(4, 4, 2),
            KRow(10, 9, 2),
            KRow(13, 5, 2),
        ]
    )

    def test_non_root_child_same_area(self):
        # c = (2, 7, false): local fan-out of area 2 is 2, so the
        # parent's local index is (7-2)//2 + 1 = 3 -> (2, 3, false).
        assert rparent(Ruid2Label(2, 7, False), self.KAPPA, self.TABLE) == Ruid2Label(
            2, 3, False
        )

    def test_area_root_child(self):
        # c = (10, 9, true): upper area (10-2)//4 + 1 = 3 with local
        # fan-out 3; parent local (9-2)//3 + 1 = 3 > 1 -> (3, 3, false).
        assert rparent(Ruid2Label(10, 9, True), self.KAPPA, self.TABLE) == Ruid2Label(
            3, 3, False
        )

    def test_parent_is_area_root(self):
        # c = (3, 3, false): (3-2)//3 + 1 = 1, so the parent is the
        # area root; its local index comes from K -> (3, 3, true).
        assert rparent(Ruid2Label(3, 3, False), self.KAPPA, self.TABLE) == Ruid2Label(
            3, 3, True
        )

    def test_document_root_raises(self):
        with pytest.raises(NoParentError):
            rparent(Ruid2Label.ROOT, self.KAPPA, self.TABLE)


class TestMaintenance:
    def test_reenumerate_is_stable_without_changes(self, labeled):
        before = labeled.snapshot()
        labeled.reenumerate()
        assert labeled.snapshot() == before

    def test_rebuild_after_structural_change(self, labeled):
        from repro.xmltree import element

        tree = labeled.tree
        tree.insert_node(tree.root, 0, element("fresh"))
        labeled.rebuild()
        for node in tree.preorder():
            if node.parent is not None:
                assert labeled.rparent(labeled.label_of(node)) == labeled.label_of(node.parent)

    def test_memory_bytes_tracks_table(self, labeled):
        assert labeled.memory_bytes() == 8 + 24 * labeled.area_count()

    def test_max_label_bits_positive(self, labeled):
        assert labeled.max_label_bits() >= 3
