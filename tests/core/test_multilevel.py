"""Tests for the multilevel rUID (Definition 4, §2.4, §3.1)."""

import itertools

import pytest

from repro.core import (
    MultiLabel,
    MultilevelRuidLabeling,
    Relation,
    SizeCapPartitioner,
)
from repro.errors import NoParentError, NumberingError, UnknownLabelError
from repro.generator import generate_xmark, path_tree, random_document


@pytest.fixture
def labeled3():
    tree = random_document(300, seed=31, fanout_kind="uniform", low=1, high=5)
    return MultilevelRuidLabeling(tree, levels=3, partitioners=SizeCapPartitioner(8))


class TestBuild:
    def test_levels_validation(self):
        with pytest.raises(NumberingError):
            MultilevelRuidLabeling(path_tree(5), levels=1)

    def test_partitioner_count_validation(self):
        with pytest.raises(NumberingError):
            MultilevelRuidLabeling(
                path_tree(5), levels=3, partitioners=[SizeCapPartitioner(4)]
            )

    def test_component_count_matches_levels(self, labeled3):
        for node in labeled3.tree.preorder():
            assert labeled3.label_of(node).levels == 3

    def test_labels_unique_roundtrip(self, labeled3):
        seen = set()
        for node in labeled3.tree.preorder():
            label = labeled3.label_of(node)
            assert label not in seen
            seen.add(label)
            assert labeled3.node_of(label) is node

    def test_two_level_packaging_matches_ruid2(self):
        from repro.core import Ruid2Labeling

        tree = random_document(150, seed=32)
        strategy = SizeCapPartitioner(10)
        multi = MultilevelRuidLabeling(tree, levels=2, partitioners=strategy)
        flat = Ruid2Labeling(tree, partitioner=strategy)
        for node in tree.preorder():
            two = flat.label_of(node)
            packed = multi.label_of(node)
            assert packed == MultiLabel(
                two.global_index, ((two.local_index, two.is_area_root),)
            )

    def test_four_levels(self):
        tree = random_document(400, seed=33, fanout_kind="geometric", mean=3)
        labeling = MultilevelRuidLabeling(
            tree, levels=4, partitioners=SizeCapPartitioner(6)
        )
        for node in tree.preorder():
            if node.parent is not None:
                assert labeling.rparent(labeling.label_of(node)) == labeling.label_of(
                    node.parent
                )

    def test_top_frame_shrinks_with_levels(self):
        tree = random_document(500, seed=34, fanout_kind="uniform", low=1, high=4)
        two = MultilevelRuidLabeling(tree, levels=2, partitioners=SizeCapPartitioner(6))
        three = MultilevelRuidLabeling(tree, levels=3, partitioners=SizeCapPartitioner(6))
        assert three.top_frame_size() <= two.top_frame_size()

    def test_unknown_label_raises(self, labeled3):
        with pytest.raises(UnknownLabelError):
            labeled3.node_of(MultiLabel(99, ((99, False), (99, False))))


class TestRparent:
    def test_rparent_matches_tree(self, labeled3):
        for node in labeled3.tree.preorder():
            label = labeled3.label_of(node)
            if node.parent is None:
                with pytest.raises(NoParentError):
                    labeled3.rparent(label)
            else:
                assert labeled3.rparent(label) == labeled3.label_of(node.parent)

    def test_rancestors(self, labeled3):
        deepest = max(labeled3.tree.preorder(), key=lambda n: n.depth)
        chain = labeled3.rancestors(labeled3.label_of(deepest))
        assert chain == [labeled3.label_of(a) for a in deepest.ancestors()]

    def test_rparent_on_xmark(self):
        tree = generate_xmark(0.03, seed=7)
        labeling = MultilevelRuidLabeling(
            tree, levels=3, partitioners=SizeCapPartitioner(10)
        )
        for node in tree.preorder():
            if node.parent is not None:
                assert labeling.rparent(labeling.label_of(node)) == labeling.label_of(
                    node.parent
                )


class TestRelation:
    def test_relation_agreement_sampled(self, labeled3):
        tree = labeled3.tree
        nodes = tree.nodes()
        for first, second in itertools.product(nodes[::9], nodes[::11]):
            got = labeled3.relation(
                labeled3.label_of(first), labeled3.label_of(second)
            )
            if first is second:
                assert got is Relation.SELF
            elif first.is_ancestor_of(second):
                assert got is Relation.ANCESTOR
            elif second.is_ancestor_of(first):
                assert got is Relation.DESCENDANT
            elif tree.compare_document_order(first, second) < 0:
                assert got is Relation.PRECEDING
            else:
                assert got is Relation.FOLLOWING

    def test_is_ancestor(self, labeled3):
        deepest = max(labeled3.tree.preorder(), key=lambda n: n.depth)
        root_label = labeled3.label_of(labeled3.tree.root)
        assert labeled3.is_ancestor(root_label, labeled3.label_of(deepest))
        assert not labeled3.is_ancestor(labeled3.label_of(deepest), root_label)


class TestScalability:
    def test_deep_path_bits_shrink_vs_uid(self):
        # On a long path with any heavy fan-out, UID identifiers explode;
        # the multilevel labels stay polynomial in area dimensions.
        from repro.core import UidLabeling
        from repro.generator import skewed_tree

        tree = skewed_tree(depth=40, heavy_fan_out=20)
        plain = UidLabeling(tree)
        multi = MultilevelRuidLabeling(
            tree, levels=3, partitioners=SizeCapPartitioner(8)
        )
        uid_bits = max(plain.label_bits(l) for l in plain.labels())
        multi_bits = multi.max_label_bits()
        assert uid_bits > 150  # ~ depth * log2(fanout)
        assert multi_bits < uid_bits / 3
