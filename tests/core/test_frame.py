"""Tests for frames and UID-local areas (Definitions 1 and 2)."""

import pytest

from repro.core import Frame
from repro.errors import PartitionError
from repro.xmltree import build


@pytest.fixture
def tree():
    # a(b(c(x, y), d), e(f), g)
    return build(("a", [("b", [("c", ["x", "y"]), "d"]), ("e", ["f"]), "g"]))


def by_tag(tree):
    return {node.tag: node for node in tree.preorder()}


class TestConstruction:
    def test_root_must_be_area_root(self, tree):
        nodes = by_tag(tree)
        with pytest.raises(PartitionError):
            Frame(tree, {nodes["b"].node_id})

    def test_foreign_root_rejected(self, tree):
        from repro.xmltree import element

        with pytest.raises(PartitionError):
            Frame(tree, {tree.root.node_id, element("zz").node_id})

    def test_single_area(self, tree):
        frame = Frame(tree, {tree.root.node_id})
        assert frame.area_count() == 1
        assert frame.root_area.size == tree.size()
        assert frame.max_fan_out() == 0

    def test_frame_edges_skip_non_roots(self, tree):
        nodes = by_tag(tree)
        # areas at a, c, f: frame edges a->c (through b) and a->f (through e)
        frame = Frame(tree, {nodes["a"].node_id, nodes["c"].node_id, nodes["f"].node_id})
        assert frame.frame_parent[nodes["c"].node_id] == nodes["a"].node_id
        assert frame.frame_parent[nodes["f"].node_id] == nodes["a"].node_id
        assert frame.max_fan_out() == 2

    def test_area_membership(self, tree):
        nodes = by_tag(tree)
        frame = Frame(tree, {nodes["a"].node_id, nodes["c"].node_id})
        root_area = frame.root_area
        # c belongs to the root area as a leaf AND roots its own area
        assert {n.tag for n in root_area.nodes} == {"a", "b", "c", "d", "e", "f", "g"}
        c_area = frame.area_of_root(nodes["c"])
        assert {n.tag for n in c_area.nodes} == {"c", "x", "y"}

    def test_child_area_roots_in_doc_order(self, tree):
        nodes = by_tag(tree)
        frame = Frame(
            tree, {nodes["a"].node_id, nodes["c"].node_id, nodes["f"].node_id}
        )
        assert [n.tag for n in frame.root_area.child_area_roots] == ["c", "f"]

    def test_validate_covering(self, tree):
        nodes = by_tag(tree)
        frame = Frame(
            tree, {nodes["a"].node_id, nodes["b"].node_id, nodes["e"].node_id}
        )
        frame.validate()  # must not raise


class TestAccessors:
    def test_area_containing(self, tree):
        nodes = by_tag(tree)
        frame = Frame(tree, {nodes["a"].node_id, nodes["c"].node_id})
        assert frame.area_containing(nodes["x"]).root is nodes["c"]
        # an area root is *contained* in the upper area
        assert frame.area_containing(nodes["c"]).root is nodes["a"]
        assert frame.area_containing(nodes["a"]).root is nodes["a"]

    def test_area_of_root_requires_root(self, tree):
        nodes = by_tag(tree)
        frame = Frame(tree, {nodes["a"].node_id})
        with pytest.raises(PartitionError):
            frame.area_of_root(nodes["b"])

    def test_frame_orders(self, tree):
        nodes = by_tag(tree)
        frame = Frame(
            tree,
            {nodes["a"].node_id, nodes["b"].node_id, nodes["c"].node_id, nodes["e"].node_id},
        )
        assert [n.tag for n in frame.frame_preorder()] == ["a", "b", "c", "e"]
        assert [n.tag for n in frame.frame_levelorder()] == ["a", "b", "e", "c"]

    def test_is_area_root(self, tree):
        nodes = by_tag(tree)
        frame = Frame(tree, {nodes["a"].node_id, nodes["c"].node_id})
        assert frame.is_area_root(nodes["c"])
        assert not frame.is_area_root(nodes["b"])


class TestLocalFanOut:
    def test_excludes_children_of_boundary_roots(self, tree):
        nodes = by_tag(tree)
        frame = Frame(tree, {nodes["a"].node_id, nodes["c"].node_id})
        # In the root area, c is a leaf: its 2 children belong below.
        assert frame.root_area.local_fan_out() == 3  # a has 3 children
        assert frame.area_of_root(nodes["c"]).local_fan_out() == 2

    def test_single_node_area(self, tree):
        nodes = by_tag(tree)
        frame = Frame(tree, {nodes["a"].node_id, nodes["g"].node_id})
        assert frame.area_of_root(nodes["g"]).local_fan_out() == 0
        assert frame.area_of_root(nodes["g"]).size == 1
