"""Tests for global-parameter persistence (Fig. 3's "Save κ and K")."""

import pytest

from repro.core import (
    GlobalParameters,
    Relation,
    Ruid2Labeling,
    SizeCapPartitioner,
    dump_parameters,
    load_parameters,
)
from repro.errors import NoParentError, StorageError
from repro.generator import generate_xmark, random_document


@pytest.fixture
def labeling():
    tree = random_document(250, seed=121, fanout_kind="geometric", mean=3)
    return Ruid2Labeling(tree, partitioner=SizeCapPartitioner(12))


class TestRoundTrip:
    def test_kappa_and_table_survive(self, labeling):
        params = load_parameters(dump_parameters(labeling))
        assert params.kappa == labeling.kappa
        assert [r.as_tuple() for r in params.ktable] == [
            r.as_tuple() for r in labeling.ktable
        ]
        assert params.tags is None

    def test_directory_survives(self, labeling):
        params = load_parameters(dump_parameters(labeling, include_directory=True))
        for node, label in labeling.items():
            assert params.tag_of(label) == node.tag

    def test_bad_blob_rejected(self):
        from repro.storage.codec import encode_value

        with pytest.raises(StorageError):
            load_parameters(encode_value(("nope", 1, 2, (), ())))
        with pytest.raises(StorageError):
            load_parameters(encode_value(("ruid2-params", 99, 2, (), ())))


class TestLabelOnlyClient:
    """The deployment §2.2 argues for: a client holding only κ and K."""

    def test_parent_without_document(self, labeling):
        params = load_parameters(dump_parameters(labeling))
        for node in labeling.tree.preorder():
            label = labeling.label_of(node)
            if node.parent is None:
                with pytest.raises(NoParentError):
                    params.parent(label)
            else:
                assert params.parent(label) == labeling.label_of(node.parent)

    def test_relations_without_document(self, labeling):
        params = load_parameters(dump_parameters(labeling))
        tree = labeling.tree
        nodes = tree.nodes()
        for first in nodes[::9]:
            for second in nodes[::7]:
                got = params.relation(
                    labeling.label_of(first), labeling.label_of(second)
                )
                if first is second:
                    assert got is Relation.SELF
                elif first.is_ancestor_of(second):
                    assert got is Relation.ANCESTOR
                elif second.is_ancestor_of(first):
                    assert got is Relation.DESCENDANT
                else:
                    want = tree.compare_document_order(first, second)
                    assert (got is Relation.PRECEDING) == (want < 0)

    def test_sort_restores_document_order(self, labeling):
        params = load_parameters(dump_parameters(labeling))
        labels = [labeling.label_of(node) for node in labeling.tree.preorder()]
        assert params.sort(labels[::-1]) == labels

    def test_candidates_cover_real_children(self, labeling):
        params = load_parameters(dump_parameters(labeling))
        for node in list(labeling.tree.preorder())[::5]:
            candidates = set(params.child_candidates(labeling.label_of(node)))
            real = {labeling.label_of(c) for c in node.children}
            assert real <= candidates

    def test_tag_search_via_directory(self):
        tree = generate_xmark(0.03, seed=5)
        labeling = Ruid2Labeling(tree, partitioner=SizeCapPartitioner(10))
        params = load_parameters(dump_parameters(labeling, include_directory=True))
        found = params.labels_with_tag("person")
        want = [labeling.label_of(n) for n in tree.find_by_tag("person")]
        assert found == want  # document order, thanks to sort()

    def test_tag_search_requires_directory(self, labeling):
        params = load_parameters(dump_parameters(labeling))
        with pytest.raises(StorageError):
            params.labels_with_tag("anything")

    def test_ancestors_chain(self, labeling):
        params = load_parameters(dump_parameters(labeling))
        deepest = max(labeling.tree.preorder(), key=lambda n: n.depth)
        chain = params.ancestors(labeling.label_of(deepest))
        assert chain == [labeling.label_of(a) for a in deepest.ancestors()]

    def test_memory_accounting(self, labeling):
        bare = load_parameters(dump_parameters(labeling))
        rich = load_parameters(dump_parameters(labeling, include_directory=True))
        assert rich.memory_bytes() > bare.memory_bytes() > 0


class TestMultilevelParameters:
    """Label-only client for Definition 4's multilevel identifiers."""

    @pytest.fixture
    def multi(self):
        from repro.core import MultilevelRuidLabeling

        tree = random_document(300, seed=122, fanout_kind="uniform", low=1, high=5)
        return MultilevelRuidLabeling(
            tree, levels=3, partitioners=SizeCapPartitioner(8)
        )

    def test_roundtrip(self, multi):
        from repro.core import dump_multilevel_parameters, load_multilevel_parameters

        params = load_multilevel_parameters(dump_multilevel_parameters(multi))
        assert params.levels == multi.levels
        assert params.memory_bytes() > 0

    def test_parent_without_document(self, multi):
        from repro.core import dump_multilevel_parameters, load_multilevel_parameters
        from repro.errors import NoParentError

        params = load_multilevel_parameters(dump_multilevel_parameters(multi))
        for node in multi.tree.preorder():
            label = multi.label_of(node)
            if node.parent is None:
                with pytest.raises(NoParentError):
                    params.parent(label)
            else:
                assert params.parent(label) == multi.label_of(node.parent)

    def test_relation_without_document(self, multi):
        from repro.core import dump_multilevel_parameters, load_multilevel_parameters

        params = load_multilevel_parameters(dump_multilevel_parameters(multi))
        tree = multi.tree
        nodes = tree.nodes()
        for first in nodes[::11]:
            for second in nodes[::13]:
                got = params.relation(multi.label_of(first), multi.label_of(second))
                if first is second:
                    assert got is Relation.SELF
                elif first.is_ancestor_of(second):
                    assert got is Relation.ANCESTOR
                elif second.is_ancestor_of(first):
                    assert got is Relation.DESCENDANT
                else:
                    want = tree.compare_document_order(first, second)
                    assert (got is Relation.PRECEDING) == (want < 0)

    def test_ancestors_chain(self, multi):
        from repro.core import dump_multilevel_parameters, load_multilevel_parameters

        params = load_multilevel_parameters(dump_multilevel_parameters(multi))
        deepest = max(multi.tree.preorder(), key=lambda n: n.depth)
        chain = params.ancestors(multi.label_of(deepest))
        assert chain == [multi.label_of(a) for a in deepest.ancestors()]

    def test_bad_blob_rejected(self):
        from repro.core import load_multilevel_parameters
        from repro.storage.codec import encode_value

        with pytest.raises(StorageError):
            load_multilevel_parameters(encode_value(("nope", 1, (), ())))

    def test_two_level_case(self):
        from repro.core import (
            MultilevelRuidLabeling,
            dump_multilevel_parameters,
            load_multilevel_parameters,
        )

        tree = random_document(100, seed=123)
        multi = MultilevelRuidLabeling(
            tree, levels=2, partitioners=SizeCapPartitioner(8)
        )
        params = load_multilevel_parameters(dump_multilevel_parameters(multi))
        for node in tree.preorder():
            if node.parent is not None:
                assert params.parent(multi.label_of(node)) == multi.label_of(node.parent)
