"""Tests for the LabeledDocument facade and §3.3 fragment reconstruction."""

import pytest

from repro.core import (
    LabeledDocument,
    Ruid2Labeling,
    SizeCapPartitioner,
    reconstruct_fragment,
)
from repro.errors import UnknownLabelError
from repro.xmltree import element, parse, serialize

DOC = """
<site>
 <people>
  <person id="p1"><name>Alice</name><age>31</age></person>
  <person id="p2"><name>Bob</name><age>17</age></person>
 </people>
 <items><item id="i1"><name>Lamp</name></item></items>
</site>
"""


@pytest.fixture
def document():
    return LabeledDocument(parse(DOC), partitioner=SizeCapPartitioner(4))


class TestFragmentReconstruction:
    def test_single_leaf_yields_root_path(self, document):
        age = document.tree.find_by_tag("age")[0]
        fragment = document.fragment([document.label_of(age)])
        assert [n.tag for n in fragment.preorder()] == ["site", "people", "person", "age"]

    def test_multiple_selections_share_skeleton(self, document):
        names = document.tree.find_by_tag("name")
        labels = [document.label_of(n) for n in names]
        fragment = document.fragment(labels)
        tags = [n.tag for n in fragment.preorder()]
        # one site, one people, two persons, one items/item, three names
        assert tags.count("site") == 1
        assert tags.count("people") == 1
        assert tags.count("person") == 2
        assert tags.count("name") == 3
        assert tags.count("item") == 1

    def test_document_order_preserved(self, document):
        # select in reverse order; the fragment must come out in
        # source document order (the §3.3 requirement)
        persons = document.tree.find_by_tag("person")
        labels = [document.label_of(p) for p in reversed(persons)]
        fragment = document.fragment(labels)
        ids = [n.attributes.get("id") for n in fragment.preorder() if n.tag == "person"]
        assert ids == ["p1", "p2"]

    def test_include_descendants(self, document):
        person = document.tree.find_by_tag("person")[0]
        fragment = document.fragment(
            [document.label_of(person)], include_descendants=True
        )
        tags = [n.tag for n in fragment.preorder()]
        assert "name" in tags and "age" in tags and "#text" in tags

    def test_content_copied(self, document):
        person = document.tree.find_by_tag("person")[1]
        fragment = document.fragment(
            [document.label_of(person)], include_descendants=True
        )
        assert 'id="p2"' in serialize(fragment)
        assert "Bob" in serialize(fragment)

    def test_source_untouched(self, document):
        size_before = document.tree.size()
        document.fragment([document.label_of(document.tree.find_by_tag("age")[0])])
        assert document.tree.size() == size_before

    def test_unknown_label_rejected(self, document):
        from repro.core import Ruid2Label

        with pytest.raises(UnknownLabelError):
            document.fragment([Ruid2Label(99, 99, False)])

    def test_standalone_function(self):
        tree = parse(DOC)
        labeling = Ruid2Labeling(tree, partitioner=SizeCapPartitioner(4))
        item = tree.find_by_tag("item")[0]
        fragment = reconstruct_fragment(labeling, [labeling.label_of(item)])
        assert [n.tag for n in fragment.preorder()] == ["site", "items", "item"]


class TestFacade:
    def test_select_both_strategies(self, document):
        assert len(document.select("//person", "ruid")) == 2
        assert len(document.select("//person", "navigational")) == 2

    def test_select_labels(self, document):
        labels = document.select_labels("//name")
        assert len(labels) == 3
        assert all(document.node_of(label).tag == "name" for label in labels)

    def test_fragment_for(self, document):
        fragment = document.fragment_for("//person[@id='p1']/name")
        assert [n.tag for n in fragment.preorder()] == ["site", "people", "person", "name"]

    def test_parent_label(self, document):
        name = document.tree.find_by_tag("name")[0]
        parent = document.parent_label(document.label_of(name))
        assert document.node_of(parent).tag == "person"

    def test_update_then_query(self, document):
        people = document.tree.find_by_tag("people")[0]
        report = document.insert(people, 2, element("person"))
        assert report.inserted_count == 1
        assert len(document.select("//person", "ruid")) == 3
        assert len(document.select("//person", "navigational")) == 3

    def test_delete_then_query(self, document):
        victim = document.tree.find_by_tag("person")[1]
        report = document.delete(victim)
        assert report.deleted_count == 5  # person, name, #text, age, #text
        assert len(document.select("//person", "ruid")) == 1

    def test_axes_refresh_after_update(self, document):
        people = document.tree.find_by_tag("people")[0]
        label_before = document.label_of(people)
        kids_before = document.axes.children(label_before)
        document.insert(people, 0, element("person"))
        kids_after = document.axes.children(document.label_of(people))
        assert len(kids_after) == len(kids_before) + 1

    def test_repr(self, document):
        assert "LabeledDocument" in repr(document)
