"""Tests for the §3.5 axis routines."""

import pytest

from repro.core import (
    AxisEngine,
    Ruid2Labeling,
    SizeCapPartitioner,
    candidate_children,
    candidate_siblings,
)
from repro.generator import generate_xmark, random_document
from repro.xmltree import build


@pytest.fixture
def labeling():
    tree = random_document(250, seed=21, fanout_kind="geometric", mean=3)
    return Ruid2Labeling(tree, partitioner=SizeCapPartitioner(12))


@pytest.fixture
def engine(labeling):
    return AxisEngine(labeling)


def resolve(labeling, labels):
    return [labeling.node_of(label) for label in labels]


class TestCandidateRoutines:
    def test_candidate_children_cover_real_children(self, labeling):
        for node in labeling.tree.preorder():
            label = labeling.label_of(node)
            candidates = candidate_children(label, labeling.kappa, labeling.ktable)
            real = {labeling.label_of(c) for c in node.children}
            assert real <= set(candidates)

    def test_candidate_count_equals_local_fanout(self, labeling):
        root_label = labeling.label_of(labeling.tree.root)
        candidates = candidate_children(root_label, labeling.kappa, labeling.ktable)
        assert len(candidates) == labeling.ktable.fan_out(1)

    def test_candidate_siblings_cover_real_siblings(self, labeling):
        for node in labeling.tree.preorder():
            label = labeling.label_of(node)
            preceding = candidate_siblings(label, labeling.kappa, labeling.ktable, True)
            following = candidate_siblings(label, labeling.kappa, labeling.ktable, False)
            assert {labeling.label_of(s) for s in node.preceding_siblings()} <= set(preceding)
            assert {labeling.label_of(s) for s in node.following_siblings()} <= set(following)

    def test_document_root_has_no_siblings(self, labeling):
        from repro.core import Ruid2Label

        assert candidate_siblings(Ruid2Label.ROOT, labeling.kappa, labeling.ktable, True) == []


class TestNodeLevelAxes:
    def test_children(self, labeling, engine):
        for node in labeling.tree.preorder():
            got = resolve(labeling, engine.children(labeling.label_of(node)))
            assert got == node.children

    def test_descendants(self, labeling, engine):
        for node in list(labeling.tree.preorder())[::3]:
            got = resolve(labeling, engine.descendants(labeling.label_of(node)))
            assert got == list(node.descendants())

    def test_siblings(self, labeling, engine):
        for node in labeling.tree.preorder():
            label = labeling.label_of(node)
            assert resolve(labeling, engine.preceding_siblings(label)) == node.preceding_siblings()
            assert resolve(labeling, engine.following_siblings(label)) == node.following_siblings()

    def test_parent_and_ancestors(self, labeling, engine):
        for node in labeling.tree.preorder():
            label = labeling.label_of(node)
            parent_label = engine.parent(label)
            if node.parent is None:
                assert parent_label is None
            else:
                assert labeling.node_of(parent_label) is node.parent
            assert resolve(labeling, engine.ancestors(label)) == list(node.ancestors())

    def test_preceding_following(self, labeling, engine):
        tree = labeling.tree
        order = tree.document_order_index()
        nodes = tree.nodes()
        for node in nodes[::7]:
            label = labeling.label_of(node)
            preceding = resolve(labeling, engine.preceding(label))
            following = resolve(labeling, engine.following(label))
            want_preceding = [
                other
                for other in nodes
                if order[other.node_id] < order[node.node_id]
                and not other.is_ancestor_of(node)
            ]
            want_following = [
                other
                for other in nodes
                if order[other.node_id] > order[node.node_id]
                and not node.is_ancestor_of(other)
            ]
            assert preceding == want_preceding
            assert following == want_following

    def test_axis_dispatch(self, labeling, engine):
        node = labeling.tree.root.children[0]
        label = labeling.label_of(node)
        assert resolve(labeling, engine.axis(label, "self")) == [node]
        assert resolve(labeling, engine.axis(label, "parent")) == [labeling.tree.root]
        assert resolve(labeling, engine.axis(label, "ancestor-or-self")) == [
            node,
            labeling.tree.root,
        ]
        combined = engine.axis(label, "descendant-or-self")
        assert resolve(labeling, combined)[0] is node
        with pytest.raises(ValueError):
            engine.axis(label, "sideways")

    def test_partition_where_axes_cross_areas(self):
        # Tiny areas force every axis through the frame machinery.
        tree = generate_xmark(0.02, seed=5)
        labeling = Ruid2Labeling(tree, partitioner=SizeCapPartitioner(4))
        engine = AxisEngine(labeling)
        for node in list(tree.preorder())[::5]:
            label = labeling.label_of(node)
            assert resolve(labeling, engine.children(label)) == node.children
            assert resolve(labeling, engine.descendants(label)) == list(node.descendants())


class TestGrandparentIdiom:
    def test_element_star_element_via_double_rparent(self):
        # §3.5: element1/*/element2 answered by applying rparent twice
        # to each element2 and filtering on the tag — no scan needed.
        tree = build(
            (
                "lib",
                [
                    ("shelf", [("box", ["book", "book"]), ("bag", ["book"])]),
                    ("desk", [("box", ["book"])]),
                ],
            )
        )
        labeling = Ruid2Labeling(tree, partitioner=SizeCapPartitioner(4))
        books = tree.find_by_tag("book")
        grandparents = set()
        for book in books:
            grandparent_label = labeling.rparent(labeling.rparent(labeling.label_of(book)))
            grandparents.add(labeling.node_of(grandparent_label))
        tags = {g.tag for g in grandparents}
        assert tags == {"shelf", "desk"}
