"""Tests for structural update and relabel accounting (§3.2)."""

import pytest

from repro.core import (
    Ruid2Labeling,
    Ruid2Updater,
    SizeCapPartitioner,
    UidLabeling,
    UidUpdater,
    diff_snapshots,
)
from repro.generator import random_document
from repro.xmltree import build, element, parse


def assert_consistent(labeling):
    """Every node's computed parent label matches its tree parent."""
    for node in labeling.tree.preorder():
        if node.parent is None:
            continue
        if isinstance(labeling, UidLabeling):
            got = labeling.parent_label(labeling.label_of(node))
        else:
            got = labeling.rparent(labeling.label_of(node))
        assert got == labeling.label_of(node.parent), node.tag


class TestDiff:
    def test_diff_snapshots(self):
        before = {1: "a", 2: "b", 3: "c"}
        after = {1: "a", 2: "B", 4: "d"}
        changes = diff_snapshots(before, after)
        assert [(c.node_id, c.old_label, c.new_label) for c in changes] == [(2, "b", "B")]


class TestUidUpdater:
    def test_insert_shifts_right_siblings_subtrees(self):
        # a(b, c(d, e)) with k=2; inserting before b relabels b and the
        # whole subtree of c.
        tree = build(("a", ["b", ("c", ["d", "e"])]))
        labeling = UidLabeling(tree, fan_out=3)  # headroom: no overflow
        updater = UidUpdater(labeling)
        report = updater.insert(tree.root, 0, element("new"))
        assert not report.overflow
        assert report.inserted_count == 1
        # b, c, d, e all shift
        assert report.relabeled_count == 4
        assert_consistent(labeling)

    def test_append_at_end_relabels_nothing(self):
        tree = build(("a", ["b", "c"]))
        labeling = UidLabeling(tree, fan_out=3)
        report = UidUpdater(labeling).insert(tree.root, 2, element("tail"))
        assert report.relabeled_count == 0
        assert_consistent(labeling)

    def test_overflow_renumbers_everything(self):
        tree = build(("a", ["b", "c", "d"]))  # k = 3, root full
        for leaf_parent in tree.root.children:
            leaf_parent.append_child(element("x"))
        labeling = UidLabeling(tree)
        assert labeling.fan_out == 3
        report = UidUpdater(labeling).insert(tree.root, 0, element("burst"))
        assert report.overflow
        assert labeling.fan_out == 4
        # every pre-existing non-root node changes identifier
        assert report.full_renumber
        assert_consistent(labeling)

    def test_delete_shifts_left(self):
        tree = build(("a", ["b", ("c", ["d"]), ("e", ["f"])]))
        labeling = UidLabeling(tree)
        report = UidUpdater(labeling).delete(tree.root.children[1])
        assert report.deleted_count == 2
        assert report.relabeled_count == 2  # e and f shift left
        assert_consistent(labeling)

    def test_insert_subtree_counts_all_new_nodes(self):
        tree = build(("a", ["b"]))
        labeling = UidLabeling(tree, fan_out=3)
        subtree = build(("s", ["t", "u"])).root
        report = UidUpdater(labeling).insert(tree.root, 1, subtree)
        assert report.inserted_count == 3
        assert_consistent(labeling)


class TestRuid2Updater:
    def test_insert_confined_to_one_area(self):
        tree = random_document(300, seed=41, fanout_kind="uniform", low=1, high=4)
        labeling = Ruid2Labeling(tree, partitioner=SizeCapPartitioner(10))
        updater = Ruid2Updater(labeling)
        target = tree.root.children[0]
        # children live in the area the target roots (if any), else in
        # the target's containing area
        if labeling.frame.is_area_root(target):
            target_area = labeling.frame.area_of_root(target)
        else:
            target_area = labeling.frame.area_containing(target)
        member_ids = {n.node_id for n in target_area.nodes}
        report = updater.insert(target, 0, element("new"))
        # every relabeled node is a member of the insertion area (its
        # child-area roots included — they are members by Definition 2)
        assert all(change.node_id in member_ids for change in report.changed)
        assert report.relabeled_count < 40  # bounded by area size, not doc size
        assert_consistent(labeling)

    def test_insert_never_changes_other_areas_globals(self):
        tree = random_document(200, seed=42, fanout_kind="uniform", low=1, high=4)
        labeling = Ruid2Labeling(tree, partitioner=SizeCapPartitioner(8))
        updater = Ruid2Updater(labeling)
        target = max(tree.preorder(), key=lambda n: n.depth).parent
        report = updater.insert(target, 0, element("new"))
        # insertion cannot move the frame: global indices are stable
        for change in report.changed:
            assert change.old_label.global_index == change.new_label.global_index
        assert not report.kappa_changed
        assert_consistent(labeling)

    def test_local_overflow_renumbers_area_only(self):
        tree = parse("<a><b><c/><c/><c/></b><d><e/><e/></d><f/></a>")
        labeling = Ruid2Labeling(tree, partitioner=SizeCapPartitioner(4))
        updater = Ruid2Updater(labeling)
        b = tree.root.children[0]
        report = updater.insert(b, 0, element("n4"))  # b now has 4 children
        assert report.overflow
        assert report.relabeled_count < len(labeling.snapshot())
        assert_consistent(labeling)

    def test_delete_leaf_area(self):
        tree = random_document(200, seed=43, fanout_kind="uniform", low=1, high=4)
        labeling = Ruid2Labeling(tree, partitioner=SizeCapPartitioner(8))
        updater = Ruid2Updater(labeling)
        deepest = max(tree.preorder(), key=lambda n: n.depth)
        report = updater.delete(deepest)
        assert report.deleted_count == 1
        assert_consistent(labeling)

    def test_delete_subtree_with_areas(self):
        tree = random_document(300, seed=44, fanout_kind="uniform", low=2, high=4)
        labeling = Ruid2Labeling(tree, partitioner=SizeCapPartitioner(6))
        updater = Ruid2Updater(labeling)
        victim = tree.root.children[0]
        size = victim.subtree_size()
        report = updater.delete(victim)
        assert report.deleted_count == size
        assert_consistent(labeling)

    def test_delete_is_frame_stable(self):
        """§3.2: deleting a subtree (even one containing whole areas)
        must not shift the global indices of surviving areas — 'the
        nodes in the descendant areas are not affected because the
        frame F is unchanged'."""
        tree = random_document(300, seed=44, fanout_kind="uniform", low=2, high=4)
        labeling = Ruid2Labeling(tree, partitioner=SizeCapPartitioner(6))
        updater = Ruid2Updater(labeling)
        victim = tree.root.children[0]
        report = updater.delete(victim)
        assert not report.frame_renumbered
        assert all(
            change.old_label.global_index == change.new_label.global_index
            for change in report.changed
        )
        # scope confined to the deletion area's members
        area = labeling.frame.area_containing(victim.parent or tree.root)
        assert report.relabeled_count <= area.size + len(area.child_area_roots)
        assert_consistent(labeling)

    def test_sticky_global_conflict_falls_back(self):
        """Pinning inconsistent globals triggers the fallback path."""
        from repro.core.ruid import StickyGlobalConflict, enumerate_ruid2

        tree = random_document(100, seed=47, fanout_kind="uniform", low=1, high=4)
        labeling = Ruid2Labeling(tree, partitioner=SizeCapPartitioner(8))
        some_root_id = next(
            rid for rid in labeling.area_root_ids if rid != tree.root.node_id
        )
        with pytest.raises(StickyGlobalConflict):
            enumerate_ruid2(
                tree,
                labeling.area_root_ids,
                min_kappa=labeling.kappa,
                fixed_globals={some_root_id: 10**9},  # hangs under nothing
            )
        with pytest.raises(StickyGlobalConflict):
            enumerate_ruid2(
                tree,
                labeling.area_root_ids,
                fixed_globals={tree.root.node_id: 2},
            )

    def test_order_oracle_survives_frame_stable_deletes(self):
        """After frame-stable deletions the frame ordinals may disagree
        with document order; the order oracle must not care (it uses
        local indices, not ordinals)."""
        import itertools

        from repro.core import Relation, Ruid2Order

        tree = random_document(200, seed=48, fanout_kind="uniform", low=2, high=4)
        labeling = Ruid2Labeling(tree, partitioner=SizeCapPartitioner(5))
        updater = Ruid2Updater(labeling)
        # delete a couple of area-bearing subtrees
        for _ in range(2):
            candidates = [
                c for c in tree.root.children if c.subtree_size() > 10
            ]
            if not candidates:
                break
            updater.delete(candidates[0])
        oracle = Ruid2Order(labeling.kappa, labeling.ktable)
        nodes = tree.nodes()
        for first, second in itertools.product(nodes[::5], nodes[::7]):
            got = oracle.relation(labeling.label_of(first), labeling.label_of(second))
            if first is second:
                assert got is Relation.SELF
            elif first.is_ancestor_of(second):
                assert got is Relation.ANCESTOR
            elif second.is_ancestor_of(first):
                assert got is Relation.DESCENDANT
            else:
                want = tree.compare_document_order(first, second)
                assert (got is Relation.PRECEDING) == (want < 0)

    def test_area_split_on_threshold(self):
        tree = random_document(120, seed=45, fanout_kind="uniform", low=1, high=3)
        labeling = Ruid2Labeling(tree, partitioner=SizeCapPartitioner(500))
        assert labeling.area_count() == 1
        updater = Ruid2Updater(labeling, split_threshold=50)
        target = max(tree.preorder(), key=lambda n: n.depth).parent
        updater.insert(target, 0, element("trigger"))
        assert labeling.area_count() >= 1  # may split if parent qualifies
        assert_consistent(labeling)

    def test_workload_consistency(self):
        import random

        tree = random_document(250, seed=46, fanout_kind="geometric", mean=3)
        labeling = Ruid2Labeling(tree, partitioner=SizeCapPartitioner(12))
        updater = Ruid2Updater(labeling)
        rng = random.Random(0)
        for step in range(30):
            nodes = tree.nodes()
            node = nodes[rng.randrange(len(nodes))]
            if rng.random() < 0.7 or node is tree.root:
                updater.insert(node, rng.randint(0, node.fan_out), element(f"w{step}"))
            else:
                updater.delete(node)
            assert_consistent(labeling)


class TestReportProperties:
    def test_relabeled_fraction(self):
        tree = build(("a", ["b", "c"]))
        labeling = UidLabeling(tree, fan_out=3)
        report = UidUpdater(labeling).insert(tree.root, 0, element("n"))
        assert 0 <= report.relabeled_fraction <= 1
        assert report.surviving_nodes == 3
        assert "insert" in report.summary()
