"""Unit tests for the pure k-ary UID arithmetic (paper formula (1))."""

import pytest

from repro.core import uid
from repro.errors import NoParentError, NumberingError


class TestParentFormula:
    def test_paper_formula_examples(self):
        # Fig. 1 arithmetic, k = 3: 23 -> 8, 26 -> 9, 27 -> 9, 8 -> 3, 9 -> 3.
        assert uid.parent(23, 3) == 8
        assert uid.parent(26, 3) == 9
        assert uid.parent(27, 3) == 9
        assert uid.parent(8, 3) == 3
        assert uid.parent(9, 3) == 3
        assert uid.parent(3, 3) == 1

    def test_root_has_no_parent(self):
        with pytest.raises(NoParentError):
            uid.parent(1, 3)

    def test_parent_child_inverse(self):
        for k in (1, 2, 3, 7):
            for identifier in range(1, 200):
                for ordinal in range(k):
                    child = uid.child(identifier, k, ordinal)
                    assert uid.parent(child, k) == identifier
                    assert uid.child_ordinal(child, k) == ordinal

    def test_invalid_arguments(self):
        with pytest.raises(NumberingError):
            uid.parent(0, 3)
        with pytest.raises(NumberingError):
            uid.parent(5, 0)
        with pytest.raises(NumberingError):
            uid.child(1, 3, 3)
        with pytest.raises(NoParentError):
            uid.child_ordinal(1, 3)


class TestChildrenRange:
    def test_formula(self):
        # children of i in [(i-1)k+2, ik+1]
        assert uid.children_range(1, 3) == (2, 4)
        assert uid.children_range(2, 3) == (5, 7)
        assert uid.children_range(3, 3) == (8, 10)
        assert uid.children_range(9, 3) == (26, 28)

    def test_ranges_tile_the_level(self):
        k = 4
        previous_end = uid.children_range(1, k)[1]
        for identifier in range(2, 50):
            low, high = uid.children_range(identifier, k)
            assert low == previous_end + 1
            previous_end = high


class TestLevels:
    def test_level_of(self):
        assert uid.level_of(1, 3) == 1
        for identifier in range(2, 5):
            assert uid.level_of(identifier, 3) == 2
        for identifier in range(5, 14):
            assert uid.level_of(identifier, 3) == 3

    def test_level_unary(self):
        assert uid.level_of(5, 1) == 5

    def test_capacity(self):
        assert uid.subtree_capacity(3, 0) == 0
        assert uid.subtree_capacity(3, 1) == 1
        assert uid.subtree_capacity(3, 2) == 4
        assert uid.subtree_capacity(3, 3) == 13
        assert uid.subtree_capacity(1, 7) == 7
        assert uid.max_identifier(2, 4) == 15

    def test_capacity_growth_is_exponential(self):
        assert uid.max_identifier(10, 10) > 10**9


class TestAncestry:
    def test_ancestors_chain(self):
        assert list(uid.ancestors(27, 3)) == [9, 3, 1]

    def test_is_ancestor(self):
        assert uid.is_ancestor(3, 27, 3)
        assert uid.is_ancestor(1, 27, 3)
        assert uid.is_ancestor(9, 27, 3)
        assert not uid.is_ancestor(8, 27, 3)
        assert not uid.is_ancestor(27, 9, 3)
        assert not uid.is_ancestor(27, 27, 3)  # proper

    def test_document_compare(self):
        # ancestors precede descendants
        assert uid.document_compare(3, 27, 3) == -1
        assert uid.document_compare(27, 3, 3) == 1
        # siblings compare left to right
        assert uid.document_compare(8, 9, 3) == -1
        # cousins: subtree of 8 precedes subtree of 9
        assert uid.document_compare(23, 26, 3) == -1
        # 2's subtree precedes 3's subtree entirely
        assert uid.document_compare(7, 8, 3) == -1
        assert uid.document_compare(1, 1, 3) == 0

    def test_document_compare_matches_preorder_enumeration(self):
        # Enumerate a complete 2-ary tree of height 4 in preorder and
        # check pairwise agreement.
        k, height = 2, 4
        order = []

        def visit(identifier, level):
            order.append(identifier)
            if level < height:
                low, high = uid.children_range(identifier, k)
                for child in range(low, high + 1):
                    visit(child, level + 1)

        visit(1, 1)
        rank = {identifier: index for index, identifier in enumerate(order)}
        for a in order:
            for b in order:
                want = (rank[a] > rank[b]) - (rank[a] < rank[b])
                assert uid.document_compare(a, b, k) == want
