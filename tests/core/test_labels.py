"""Tests for label value types and the Relation enum."""

import pytest

from repro.core import MultiLabel, Relation, Ruid2Label


class TestRuid2Label:
    def test_document_root(self):
        assert Ruid2Label.ROOT == Ruid2Label(1, 1, True)
        assert Ruid2Label.ROOT.is_document_root
        assert not Ruid2Label(2, 1, True).is_document_root
        assert not Ruid2Label(1, 2, False).is_document_root

    def test_validation(self):
        with pytest.raises(ValueError):
            Ruid2Label(0, 1, False)
        with pytest.raises(ValueError):
            Ruid2Label(1, 0, False)

    def test_equality_and_hash(self):
        assert Ruid2Label(2, 3, False) == Ruid2Label(2, 3, False)
        assert Ruid2Label(2, 3, False) != Ruid2Label(2, 3, True)
        assert len({Ruid2Label(2, 3, False), Ruid2Label(2, 3, False)}) == 1

    def test_str_matches_paper_notation(self):
        assert str(Ruid2Label(2, 7, False)) == "(2, 7, false)"
        assert str(Ruid2Label(10, 9, True)) == "(10, 9, true)"

    def test_bits(self):
        assert Ruid2Label(1, 1, True).bits() == 3  # 1 + 1 + flag
        assert Ruid2Label(8, 4, False).bits() == 4 + 3 + 1

    def test_as_tuple(self):
        assert Ruid2Label(2, 7, False).as_tuple() == (2, 7, False)


class TestMultiLabel:
    def test_levels(self):
        assert MultiLabel(8, ((5, True),)).levels == 2
        assert MultiLabel(2, ((4, False), (5, True))).levels == 3

    def test_paper_example3_notation(self):
        # n = {8, (a, true)} decomposed into {2, (4, false), (a, true)}
        two_level = MultiLabel(8, ((7, True),))
        three_level = MultiLabel(2, ((4, False), (7, True)))
        assert str(two_level) == "{8, (7, true)}"
        assert str(three_level) == "{2, (4, false), (7, true)}"

    def test_alpha_beta_bottom(self):
        label = MultiLabel(2, ((4, False), (7, True)))
        assert label.alpha == 7
        assert label.beta is True

    def test_upper_strips_bottom(self):
        label = MultiLabel(2, ((4, False), (7, True)))
        assert label.upper() == MultiLabel(2, ((4, False),))

    def test_extend(self):
        upper = MultiLabel(2, ((4, False),))
        assert upper.extend(7, True) == MultiLabel(2, ((4, False), (7, True)))

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiLabel(0, ())
        with pytest.raises(ValueError):
            MultiLabel(1, ((0, False),))

    def test_one_level_has_no_component_access(self):
        with pytest.raises(ValueError):
            _ = MultiLabel(5, ()).alpha
        with pytest.raises(ValueError):
            MultiLabel(5, ()).upper()

    def test_bits_accumulate(self):
        assert MultiLabel(8, ((5, True),)).bits() == 4 + (3 + 1)


class TestRelation:
    def test_precedes(self):
        assert Relation.ANCESTOR.precedes
        assert Relation.PRECEDING.precedes
        assert not Relation.FOLLOWING.precedes
        assert not Relation.DESCENDANT.precedes
        assert not Relation.SELF.precedes

    def test_inverse(self):
        assert Relation.ANCESTOR.inverse() is Relation.DESCENDANT
        assert Relation.DESCENDANT.inverse() is Relation.ANCESTOR
        assert Relation.PRECEDING.inverse() is Relation.FOLLOWING
        assert Relation.FOLLOWING.inverse() is Relation.PRECEDING
        assert Relation.SELF.inverse() is Relation.SELF
