"""Explicit contract tests for the uniform Labeling interface.

Every registered scheme must satisfy the same observable contract on
the same document; the sweeps in benchmarks rely on it.
"""

import pytest

from repro.baselines import UPDATABLE, all_schemes, get_scheme, scheme_names
from repro.core import Relation
from repro.core.scheme import Labeling, NumberingScheme
from repro.errors import NumberingError
from repro.generator import random_document
from repro.xmltree import element


@pytest.fixture(scope="module")
def tree():
    return random_document(120, seed=141, fanout_kind="uniform", low=1, high=4)


@pytest.fixture(scope="module", params=scheme_names())
def labeling(request, tree):
    return get_scheme(request.param).build(tree.copy())


class TestContract:
    def test_is_abc_instances(self, labeling):
        assert isinstance(labeling, Labeling)

    def test_scheme_name_matches_factory(self):
        for scheme in all_schemes():
            assert isinstance(scheme, NumberingScheme)
            built = scheme.build(random_document(20, seed=1))
            assert built.scheme_name == scheme.name

    def test_labels_iterate_in_document_order(self, labeling):
        labels = list(labeling.labels())
        nodes = labeling.tree.nodes()
        assert len(labels) == len(nodes)
        assert labels == [labeling.label_of(n) for n in nodes]

    def test_doc_compare_total_order(self, labeling):
        labels = list(labeling.labels())
        sample = labels[:: max(1, len(labels) // 15)]
        for first in sample:
            assert labeling.doc_compare(first, first) == 0
            for second in sample:
                forward = labeling.doc_compare(first, second)
                backward = labeling.doc_compare(second, first)
                assert forward == -backward

    def test_relation_inverse(self, labeling):
        labels = list(labeling.labels())
        sample = labels[:: max(1, len(labels) // 12)]
        for first in sample:
            for second in sample:
                forward = labeling.relation(first, second)
                backward = labeling.relation(second, first)
                assert backward is forward.inverse()

    def test_bits_accounting(self, labeling):
        assert labeling.max_label_bits() >= 1
        assert labeling.total_label_bits() >= labeling.max_label_bits()
        assert labeling.memory_bytes() >= 0

    def test_snapshot_covers_all_nodes(self, labeling):
        snapshot = labeling.snapshot()
        assert set(snapshot) == {n.node_id for n in labeling.tree.preorder()}


class TestUpdateContract:
    @pytest.mark.parametrize("scheme_name", UPDATABLE)
    def test_insert_report_consistency(self, tree, scheme_name):
        working = tree.copy()
        labeling = get_scheme(scheme_name).build(working)
        target = working.root.children[0]
        before = len(labeling.snapshot())
        report = labeling.insert(target, 0, element("fresh"))
        assert report.scheme == labeling.scheme_name
        assert report.operation == "insert"
        assert report.inserted_count == 1
        assert report.surviving_nodes == before
        assert len(labeling.snapshot()) == before + 1

    @pytest.mark.parametrize("scheme_name", UPDATABLE)
    def test_delete_report_consistency(self, tree, scheme_name):
        working = tree.copy()
        labeling = get_scheme(scheme_name).build(working)
        victim = working.root.children[0]
        size = victim.subtree_size()
        before = len(labeling.snapshot())
        report = labeling.delete(victim)
        assert report.operation == "delete"
        assert report.deleted_count == size
        assert report.surviving_nodes == before - size
        assert len(labeling.snapshot()) == before - size

    def test_multilevel_updates_rejected(self, tree):
        working = tree.copy()
        labeling = get_scheme("ruid-multi").build(working)
        with pytest.raises(NumberingError):
            labeling.insert(working.root, 0, element("x"))
        with pytest.raises(NumberingError):
            labeling.delete(working.root.children[0])
