"""Tests for partition strategies and the §2.3 fan-out adjustment."""

import pytest

from repro.core import (
    DepthStridePartitioner,
    ExplicitPartitioner,
    Frame,
    SingleAreaPartitioner,
    SizeCapPartitioner,
    lca_closure,
    partition_summary,
)
from repro.errors import PartitionError
from repro.generator import path_tree, random_document, star_tree
from repro.xmltree import build


class TestSingleArea:
    def test_only_root(self):
        tree = random_document(100, seed=1)
        roots = SingleAreaPartitioner().partition(tree)
        assert roots == {tree.root.node_id}


class TestExplicit:
    def test_accepts_nodes_and_ids(self):
        tree = build(("a", [("b", ["c"]), "d"]))
        b = tree.root.children[0]
        roots = ExplicitPartitioner([b]).partition(tree)
        assert roots == {tree.root.node_id, b.node_id}
        roots2 = ExplicitPartitioner([b.node_id]).partition(tree)
        assert roots2 == roots

    def test_root_always_added(self):
        tree = build(("a", ["b"]))
        roots = ExplicitPartitioner([]).partition(tree)
        assert tree.root.node_id in roots


class TestDepthStride:
    def test_stride_two(self):
        tree = path_tree(7)
        roots = DepthStridePartitioner(2, adjust_fan_out=False).partition(tree)
        depths = sorted(
            node.depth for node in tree.preorder() if node.node_id in roots
        )
        assert depths == [0, 2, 4, 6]

    def test_invalid_stride(self):
        with pytest.raises(PartitionError):
            DepthStridePartitioner(0)

    def test_frame_height_shrinks(self):
        tree = path_tree(40)
        roots = DepthStridePartitioner(4).partition(tree)
        assert len(roots) == 10


class TestSizeCap:
    def test_cap_respected_approximately(self):
        tree = random_document(400, seed=5, fanout_kind="uniform", low=1, high=5)
        cap = 20
        roots = SizeCapPartitioner(cap, adjust_fan_out=False).partition(tree)
        frame = Frame(tree, roots)
        for area in frame.areas.values():
            # the cap bounds the *interior*; boundary roots of child
            # areas are area members by Definition 2 and sit on top
            interior = area.size - len(area.child_area_roots)
            assert interior <= cap + tree.max_fan_out()

    def test_invalid_cap(self):
        with pytest.raises(PartitionError):
            SizeCapPartitioner(1)

    def test_star_single_area_when_cap_large(self):
        tree = star_tree(10)
        roots = SizeCapPartitioner(64).partition(tree)
        assert roots == {tree.root.node_id}


class TestLcaClosure:
    def test_fig7_scenario(self):
        # Paper Fig. 7: u1, u2, u3 are area roots in separate paths below
        # a non-root node n1; without adjustment the frame fan-out
        # exceeds the tree fan-out. Closure promotes n1.
        tree = build(
            (
                "r",
                [
                    (
                        "n1",
                        [
                            ("p1", [("u1", ["l1"])]),
                            ("p2", [("u2", ["l2"])]),
                            ("p3", [("u3", ["l3"])]),
                        ],
                    ),
                    "other",
                ],
            )
        )
        nodes = {n.tag: n for n in tree.preorder()}
        raw = {
            tree.root.node_id,
            nodes["u1"].node_id,
            nodes["u2"].node_id,
            nodes["u3"].node_id,
        }
        raw_frame = Frame(tree, raw)
        assert raw_frame.max_fan_out() == 3  # == tree max fan-out here, but:
        closed = lca_closure(tree, raw)
        assert nodes["n1"].node_id in closed
        closed_frame = Frame(tree, closed)
        # after closure, the root's frame children collapse to n1 alone
        assert len(closed_frame.frame_children[tree.root.node_id]) == 1

    def test_closure_bounds_frame_fanout(self):
        for seed in range(5):
            tree = random_document(300, seed=seed, fanout_kind="uniform", low=1, high=4)
            import random

            rng = random.Random(seed)
            nodes = tree.nodes()
            raw = {tree.root.node_id} | {
                nodes[rng.randrange(len(nodes))].node_id for _ in range(25)
            }
            closed = lca_closure(tree, raw)
            frame = Frame(tree, closed)
            assert frame.max_fan_out() <= max(1, tree.max_fan_out())

    def test_closure_is_superset_and_idempotent(self):
        tree = random_document(200, seed=9)
        import random

        nodes = tree.nodes()
        rng = random.Random(1)
        raw = {tree.root.node_id} | {
            nodes[rng.randrange(len(nodes))].node_id for _ in range(15)
        }
        closed = lca_closure(tree, raw)
        assert raw <= closed
        assert lca_closure(tree, closed) == closed

    def test_foreign_node_rejected(self):
        from repro.xmltree import element

        tree = build(("a", ["b"]))
        with pytest.raises(PartitionError):
            lca_closure(tree, {tree.root.node_id, element("z").node_id})


class TestSummary:
    def test_summary_fields(self):
        tree = random_document(200, seed=2)
        roots = SizeCapPartitioner(30).partition(tree)
        summary = partition_summary(tree, roots)
        assert summary["areas"] == len(roots)
        assert summary["kappa"] <= summary["tree_max_fanout"]
        assert summary["max_area_size"] >= summary["mean_area_size"]
