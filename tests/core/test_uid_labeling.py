"""Tests for the materialised original-UID labeling."""

import pytest

from repro.core import UidLabeling
from repro.errors import FanOutOverflowError, NoParentError, UnknownLabelError
from repro.generator import star_tree
from repro.xmltree import build, parse


@pytest.fixture
def tree():
    return parse("<a><b><c/><c/><c/></b><d><e/><e/></d><f/></a>")


class TestBuild:
    def test_levelorder_assignment(self, tree):
        labeling = UidLabeling(tree)
        uids = {node.tag + str(i): labeling.label_of(node)
                for i, node in enumerate(tree.preorder())}
        assert labeling.label_of(tree.root) == 1
        # root children: b, d, f -> 2, 3, 4 (k = 3)
        assert [labeling.label_of(c) for c in tree.root.children] == [2, 3, 4]
        # b's children occupy 5..7
        b = tree.root.children[0]
        assert [labeling.label_of(c) for c in b.children] == [5, 6, 7]

    def test_default_fanout_is_tree_max(self, tree):
        assert UidLabeling(tree).fan_out == 3

    def test_explicit_larger_fanout(self, tree):
        labeling = UidLabeling(tree, fan_out=5)
        assert labeling.fan_out == 5
        assert [labeling.label_of(c) for c in tree.root.children] == [2, 3, 4]

    def test_too_small_fanout_raises(self, tree):
        with pytest.raises(FanOutOverflowError):
            UidLabeling(tree, fan_out=2)

    def test_single_node(self):
        labeling = UidLabeling(build("solo"))
        assert labeling.label_of(labeling.tree.root) == 1
        assert len(labeling) == 1


class TestLookups:
    def test_node_of_roundtrip(self, tree):
        labeling = UidLabeling(tree)
        for node in tree.preorder():
            assert labeling.node_of(labeling.label_of(node)) is node

    def test_virtual_identifier_raises(self, tree):
        labeling = UidLabeling(tree)
        # slot under the leaf f (uid 4): children at 11..13, all virtual
        assert not labeling.exists(11)
        with pytest.raises(UnknownLabelError):
            labeling.node_of(11)

    def test_unlabeled_node_raises(self, tree):
        from repro.xmltree import element

        labeling = UidLabeling(tree)
        with pytest.raises(UnknownLabelError):
            labeling.label_of(element("foreign"))

    def test_items_in_document_order(self, tree):
        labeling = UidLabeling(tree)
        nodes = [node for node, _ in labeling.items()]
        assert nodes == tree.nodes()


class TestArithmeticAccessors:
    def test_parent_label_matches_tree(self, tree):
        labeling = UidLabeling(tree)
        for node in tree.preorder():
            if node.parent is None:
                with pytest.raises(NoParentError):
                    labeling.parent_label(labeling.label_of(node))
            else:
                assert labeling.parent_label(labeling.label_of(node)) == labeling.label_of(
                    node.parent
                )

    def test_ancestor_labels(self, tree):
        labeling = UidLabeling(tree)
        deepest = tree.find_by_tag("e")[1]
        chain = labeling.ancestor_labels(labeling.label_of(deepest))
        assert chain == [labeling.label_of(deepest.parent), 1]

    def test_children_labels_only_real(self, tree):
        labeling = UidLabeling(tree)
        d = tree.root.children[1]  # two children
        assert labeling.children_labels(labeling.label_of(d)) == [
            labeling.label_of(c) for c in d.children
        ]
        assert len(labeling.candidate_children(labeling.label_of(d))) == 3

    def test_document_compare_matches_tree(self, tree):
        labeling = UidLabeling(tree)
        nodes = tree.nodes()
        for first in nodes:
            for second in nodes:
                want = tree.compare_document_order(first, second)
                got = labeling.document_compare(
                    labeling.label_of(first), labeling.label_of(second)
                )
                assert got == want


class TestMeasurements:
    def test_max_label_and_bits(self, tree):
        labeling = UidLabeling(tree)
        assert labeling.max_label() == max(labeling.labels())
        assert labeling.label_bits(1) == 1
        assert labeling.label_bits(7) == 3

    def test_star_tree_is_compact(self):
        labeling = UidLabeling(star_tree(100))
        assert labeling.max_label() == 101

    def test_bit_budget_enforced(self):
        from repro.errors import IdentifierOverflowError
        from repro.generator import skewed_tree

        hard = skewed_tree(depth=30, heavy_fan_out=50)
        with pytest.raises(IdentifierOverflowError) as excinfo:
            UidLabeling(hard, bit_budget=64)
        assert excinfo.value.bits_required > 64
        assert excinfo.value.bits_allowed == 64
        # unlimited budget still works (Python big ints)
        unlimited = UidLabeling(hard)
        assert unlimited.max_label().bit_length() > 64

    def test_bit_budget_permissive_when_small(self, tree):
        labeling = UidLabeling(tree, bit_budget=32)
        assert labeling.max_label() < 2**32

    def test_reassign_sticky_fanout(self, tree):
        from repro.xmltree import element

        labeling = UidLabeling(tree)
        # deleting children cannot shrink the committed fan-out
        tree.delete_subtree(tree.root.children[0])
        overflow = labeling.reassign()
        assert not overflow
        assert labeling.fan_out == 3
