"""Tests for the global parameter table K."""

import pytest

from repro.core import KRow, KTable
from repro.errors import UnknownLabelError


@pytest.fixture
def fig5_table():
    """The table K of the paper's Fig. 5 (see Example 2): six areas,
    row layout (global, local-of-root, local fan-out)."""
    return KTable(
        [
            KRow(1, 1, 4),
            KRow(2, 2, 2),
            KRow(3, 3, 3),
            KRow(4, 4, 2),
            KRow(10, 9, 2),
            KRow(13, 5, 2),
        ]
    )


class TestConstruction:
    def test_rows_sorted(self):
        table = KTable([KRow(5, 1, 2), KRow(2, 3, 1), KRow(9, 2, 4)])
        assert [row.global_index for row in table] == [2, 5, 9]

    def test_duplicate_global_rejected(self):
        with pytest.raises(ValueError):
            KTable([KRow(2, 1, 1), KRow(2, 2, 2)])

    def test_add_keeps_sorted_and_unique(self, fig5_table):
        fig5_table.add(KRow(7, 2, 3))
        assert [row.global_index for row in fig5_table] == [1, 2, 3, 4, 7, 10, 13]
        with pytest.raises(ValueError):
            fig5_table.add(KRow(7, 9, 9))


class TestLookups:
    def test_row(self, fig5_table):
        assert fig5_table.row(10) == KRow(10, 9, 2)
        with pytest.raises(UnknownLabelError):
            fig5_table.row(99)

    def test_has_area(self, fig5_table):
        assert fig5_table.has_area(4)
        assert not fig5_table.has_area(5)

    def test_fan_out_floored_at_one(self):
        table = KTable([KRow(1, 1, 0)])
        assert table.fan_out(1) == 1

    def test_local_of_root(self, fig5_table):
        assert fig5_table.local_of_root(10) == 9

    def test_globals_in_range(self, fig5_table):
        assert fig5_table.globals_in_range(2, 4) == [2, 3, 4]
        assert fig5_table.globals_in_range(5, 9) == []
        assert fig5_table.globals_in_range(10, 99) == [10, 13]

    def test_replace(self, fig5_table):
        fig5_table.replace(KRow(2, 2, 5))
        assert fig5_table.fan_out(2) == 5
        with pytest.raises(UnknownLabelError):
            fig5_table.replace(KRow(50, 1, 1))


class TestPairIndex:
    def test_pair_index_derives_frame_parent(self, fig5_table):
        # κ = 4: frame parent of g is (g-2)//4 + 1
        pairs = fig5_table.build_pair_index(4)
        assert pairs[(1, 2)] == 2  # area 2 roots at local 2 of area 1
        assert pairs[(1, 3)] == 3
        assert pairs[(1, 4)] == 4
        assert pairs[(3, 9)] == 10  # (10-2)//4+1 == 3
        assert pairs[(3, 5)] == 13  # (13-2)//4+1 == 3
        assert (1, 1) not in pairs  # the top area has no upper entry

    def test_memory_accounting(self, fig5_table):
        assert fig5_table.memory_bytes() == 6 * 24
        assert len(fig5_table) == 6
