"""Tests for the metrics instruments and registry."""

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.metrics import DEFAULT_BUCKETS_NS


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_reset(self):
        counter = Counter("c")
        counter.inc(3)
        counter.reset()
        assert counter.value == 0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7

    def test_can_go_negative(self):
        gauge = Gauge("g")
        gauge.dec(3)
        assert gauge.value == -3


class TestHistogram:
    def test_counts_land_in_decade_buckets(self):
        histogram = Histogram("h")
        histogram.observe(500)        # <= 1_000
        histogram.observe(5_000)      # <= 10_000
        histogram.observe(10_000)     # inclusive upper bound
        assert histogram.counts[0] == 1
        assert histogram.counts[1] == 2
        assert histogram.count == 3
        assert histogram.total == 15_500

    def test_overflow_bucket(self):
        histogram = Histogram("h")
        histogram.observe(DEFAULT_BUCKETS_NS[-1] + 1)
        assert histogram.counts[-1] == 1

    def test_exact_min_max_mean(self):
        histogram = Histogram("h")
        for value in (100, 900, 2_000):
            histogram.observe(value)
        assert histogram.min == 100
        assert histogram.max == 2_000
        assert histogram.mean == pytest.approx(1_000)

    def test_percentiles_clamped_to_observed_range(self):
        histogram = Histogram("h")
        for value in (100, 200, 300):
            histogram.observe(value)
        for fraction in (0.0, 0.5, 0.95, 0.99, 1.0):
            estimate = histogram.percentile(fraction)
            assert 100 <= estimate <= 300

    def test_percentiles_ordered(self):
        histogram = Histogram("h")
        for value in (500, 5_000, 50_000, 500_000, 5_000_000):
            histogram.observe(value)
        assert histogram.p50 <= histogram.p95 <= histogram.p99 <= histogram.max

    def test_empty_percentile_is_zero(self):
        assert Histogram("h").p50 == 0.0

    def test_fraction_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(1.5)

    def test_summary_keys(self):
        histogram = Histogram("h")
        histogram.observe(42)
        summary = histogram.summary()
        assert set(summary) == {
            "count", "sum", "mean", "min", "max", "p50", "p95", "p99"
        }
        assert summary["count"] == 1
        assert summary["p99"] == 42

    def test_reset(self):
        histogram = Histogram("h")
        histogram.observe(7)
        histogram.reset()
        assert histogram.count == 0
        assert histogram.min is None
        assert histogram.summary()["max"] == 0

    def test_needs_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=())


class TestTimer:
    def test_observes_elapsed_ns(self):
        registry = MetricsRegistry()
        with registry.timer("op") as timer:
            pass
        assert timer.elapsed_ns > 0
        assert registry.histogram("op").count == 1


class TestRegistry:
    def test_get_or_create_identity(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_snapshot_flattens_everything(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(3)
        registry.gauge("pool").set(7)
        registry.histogram("lat").observe(1_000)
        registry.register_source("io", lambda: {"reads": 9})
        snapshot = registry.snapshot()
        assert snapshot["hits"] == 3
        assert snapshot["pool"] == 7
        assert snapshot["lat.count"] == 1
        assert snapshot["io.reads"] == 9

    def test_source_is_pulled_live(self):
        registry = MetricsRegistry()
        ledger = {"x": 1}
        registry.register_source("s", lambda: dict(ledger))
        assert registry.snapshot()["s.x"] == 1
        ledger["x"] = 5
        assert registry.snapshot()["s.x"] == 5

    def test_reregister_replaces_unregister_removes(self):
        registry = MetricsRegistry()
        registry.register_source("s", lambda: {"x": 1})
        registry.register_source("s", lambda: {"x": 2})
        assert registry.snapshot()["s.x"] == 2
        registry.unregister_source("s")
        assert "s.x" not in registry.snapshot()

    def test_rows_sorted(self):
        registry = MetricsRegistry()
        registry.counter("z").inc()
        registry.counter("a").inc()
        names = [name for name, _ in registry.rows()]
        assert names == sorted(names)

    def test_reset_zeroes_instruments_but_not_sources(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(4)
        registry.histogram("h").observe(1)
        registry.register_source("s", lambda: {"x": 11})
        registry.reset()
        snapshot = registry.snapshot()
        assert snapshot["c"] == 0
        assert snapshot["h.count"] == 0
        assert snapshot["s.x"] == 11
