"""Tests for the slow-query log."""

import pytest

from repro.obs import SlowQueryLog

MS = 1_000_000  # ns per millisecond


class TestThreshold:
    def test_fast_queries_are_dropped_but_counted(self):
        log = SlowQueryLog(threshold_ms=10.0)
        assert log.record("//a", "ruid", 1 * MS) is None
        assert log.seen_count == 1
        assert log.slow_count == 0
        assert len(log) == 0

    def test_slow_queries_are_retained(self):
        log = SlowQueryLog(threshold_ms=10.0)
        record = log.record("//a", "ruid", 25 * MS, results=3)
        assert record is not None
        assert record.elapsed_ms == pytest.approx(25.0)
        assert record.attrs == {"results": 3}
        assert log.slow_count == 1

    def test_zero_threshold_retains_everything(self):
        log = SlowQueryLog(threshold_ms=0.0)
        assert log.record("//a", "ruid", 1) is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            SlowQueryLog(capacity=0)
        with pytest.raises(ValueError):
            SlowQueryLog(threshold_ms=-1.0)


class TestBoundedWorstN:
    def test_keeps_the_worst_when_full(self):
        log = SlowQueryLog(threshold_ms=0.0, capacity=3)
        for elapsed in (5, 1, 9, 3, 7):
            log.record(f"q{elapsed}", "ruid", elapsed * MS)
        retained = [record.expression for record in log.entries()]
        assert retained == ["q9", "q7", "q5"]
        assert log.slow_count == 5  # evicted entries still counted

    def test_faster_than_everything_retained_is_dropped(self):
        log = SlowQueryLog(threshold_ms=0.0, capacity=2)
        log.record("a", "ruid", 10 * MS)
        log.record("b", "ruid", 20 * MS)
        assert log.record("c", "ruid", 1 * MS) is None
        assert [r.expression for r in log.entries()] == ["b", "a"]

    def test_entries_sorted_slowest_first_with_stable_ties(self):
        log = SlowQueryLog(threshold_ms=0.0, capacity=4)
        log.record("first", "ruid", 5 * MS)
        log.record("second", "ruid", 5 * MS)
        expressions = [record.expression for record in log.entries()]
        assert expressions == ["first", "second"]

    def test_worst(self):
        log = SlowQueryLog(threshold_ms=0.0)
        assert log.worst() is None
        log.record("a", "ruid", 2 * MS)
        log.record("b", "ruid", 8 * MS)
        assert log.worst().expression == "b"

    def test_rows_and_clear(self):
        log = SlowQueryLog(threshold_ms=0.0)
        log.record("a", "ruid", int(1.5 * MS))
        assert log.rows() == [("a", "ruid", 1.5)]
        log.clear()
        assert log.rows() == []
        assert log.seen_count == 0
        assert log.slow_count == 0

    def test_plan_is_carried(self):
        log = SlowQueryLog(threshold_ms=0.0)
        plan = object()
        record = log.record("a", "ruid", 1 * MS, plan=plan)
        assert record.plan is plan
