"""Tests for hierarchical trace spans and the ring-buffer recorder."""

import json

from repro.obs import NULL_TRACER, NullTracer, Tracer


class TestSpans:
    def test_span_records_duration_and_attrs(self):
        tracer = Tracer()
        with tracer.span("work", kind="test") as span:
            pass
        assert span.end_ns is not None
        assert span.duration_ns >= 0
        assert span.attrs == {"kind": "test"}
        assert tracer.finished() == [span]

    def test_nesting_sets_parent_and_depth(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert inner.parent_id == outer.span_id
        assert inner.depth == outer.depth + 1
        assert tracer.current is None

    def test_children_are_inside_parent_interval(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.start_ns <= inner.start_ns
        assert inner.end_ns <= outer.end_ns

    def test_set_updates_attrs(self):
        tracer = Tracer()
        with tracer.span("s", a=1) as span:
            span.set(b=2)
        assert span.attrs == {"a": 1, "b": 2}

    def test_event_is_zero_duration_and_recorded(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            event = tracer.event("ping", reason="x")
        assert event.parent_id == outer.span_id
        assert event.end_ns is not None
        assert event in tracer.finished()

    def test_annotate_targets_innermost_open_span(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner") as inner:
                tracer.annotate(route="batched")
        assert inner.attrs["route"] == "batched"

    def test_annotate_once_first_write_wins(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            tracer.annotate_once(route="per-node")
            tracer.annotate_once(route="batched")
        assert span.attrs["route"] == "per-node"

    def test_annotate_without_open_span_is_noop(self):
        tracer = Tracer()
        tracer.annotate(x=1)
        tracer.annotate_once(x=1)
        assert tracer.finished() == []


class TestRingBuffer:
    def test_capacity_caps_and_counts_drops(self):
        tracer = Tracer(capacity=3)
        for index in range(5):
            tracer.event("e", index=index)
        finished = tracer.finished()
        assert len(finished) == 3
        assert tracer.dropped == 2
        # newest spans win
        assert [span.attrs["index"] for span in finished] == [2, 3, 4]

    def test_clear(self):
        tracer = Tracer(capacity=2)
        for _ in range(4):
            tracer.event("e")
        tracer.clear()
        assert tracer.finished() == []
        assert tracer.dropped == 0


class TestExporters:
    def test_roots_and_children(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child"):
                pass
            with tracer.span("child"):
                pass
        assert tracer.roots() == [root]
        assert len(tracer.children_of(root)) == 2

    def test_to_json_round_trips(self):
        tracer = Tracer()
        with tracer.span("s", n=1):
            pass
        decoded = json.loads(tracer.to_json())
        assert decoded[0]["name"] == "s"
        assert decoded[0]["attrs"] == {"n": 1}

    def test_to_json_stringifies_foreign_attrs(self):
        class Odd:
            def __str__(self):
                return "odd!"

        tracer = Tracer()
        with tracer.span("s", thing=Odd()):
            pass
        decoded = json.loads(tracer.to_json())
        assert decoded[0]["attrs"]["thing"] == "odd!"

    def test_format_tree_indents_children(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("leaf", axis="child"):
                pass
        rendering = tracer.format_tree()
        lines = rendering.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  leaf")
        assert "axis=child" in lines[1]


class TestNullTracer:
    def test_shared_singleton_is_disabled(self):
        assert isinstance(NULL_TRACER, NullTracer)
        assert NULL_TRACER.enabled is False

    def test_all_operations_are_noops(self):
        tracer = NullTracer()
        with tracer.span("anything", x=1) as span:
            span.set(y=2)
        tracer.annotate(z=3)
        tracer.annotate_once(z=3)
        tracer.event("e")
        assert tracer.finished() == []
        assert tracer.roots() == []
        assert tracer.to_json() == "[]"
        assert tracer.format_tree() == ""
        assert tracer.current is None
        assert tracer.dropped == 0

    def test_span_is_shared_instance(self):
        tracer = NullTracer()
        assert tracer.span("a") is tracer.span("b")

    def test_capacity_validation(self):
        import pytest

        with pytest.raises(ValueError):
            Tracer(capacity=0)
