"""Tests for the federated deployment simulation (§4)."""

import pytest

from repro.core import Ruid2Labeling, SizeCapPartitioner
from repro.errors import StorageError, UnknownLabelError
from repro.generator import generate_xmark
from repro.storage import FederatedDocument


@pytest.fixture(scope="module")
def labeling():
    tree = generate_xmark(scale=0.08, seed=161)
    return Ruid2Labeling(tree, partitioner=SizeCapPartitioner(12))


@pytest.fixture
def federation(labeling):
    return FederatedDocument(labeling, site_count=4)


class TestPlacement:
    def test_every_area_owned_once(self, labeling, federation):
        owned = [area for site in federation.sites for area in site.areas]
        assert sorted(owned) == sorted(
            labeling.global_of_area_root(r)
            for r in labeling.frame.frame_preorder()
        )

    def test_every_node_stored(self, labeling, federation):
        stored = sum(len(site.rows) for site in federation.sites)
        assert stored == len(labeling.snapshot())

    def test_round_robin_balances(self, federation):
        loads = [
            rows for _name, _areas, rows, _status, _backoff in federation.site_loads()
        ]
        assert max(loads) < sum(loads)  # no site holds everything

    def test_custom_placement(self, labeling):
        federation = FederatedDocument(labeling, site_count=2, placement=lambda a: 0)
        assert len(federation.sites[0].rows) == len(labeling.snapshot())
        assert len(federation.sites[1].rows) == 0

    def test_bad_placement_rejected(self, labeling):
        with pytest.raises(StorageError):
            FederatedDocument(labeling, site_count=2, placement=lambda a: 7)
        with pytest.raises(StorageError):
            FederatedDocument(labeling, site_count=0)

    def test_coordinator_footprint_is_small(self, labeling, federation):
        document_rows = len(labeling.snapshot())
        # κ+K is per-area, not per-node
        assert federation.coordinator_bytes < document_rows * 24


class TestOperationCosts:
    def test_fetch_costs_one_message(self, labeling, federation):
        node = labeling.tree.find_by_tag("person")[0]
        row, messages = federation.fetch(labeling.label_of(node))
        assert row[0] == "person"
        assert messages == 1

    def test_parent_fetch_costs_one_message(self, labeling, federation):
        node = max(labeling.tree.preorder(), key=lambda n: n.depth)
        row, messages = federation.fetch_parent(labeling.label_of(node))
        assert row[0] == node.parent.tag
        assert messages == 1  # the arithmetic is coordinator-local

    def test_ancestry_check_costs_zero_messages(self, labeling, federation):
        deepest = max(labeling.tree.preorder(), key=lambda n: n.depth)
        root_label = labeling.label_of(labeling.tree.root)
        answer, messages = federation.ancestry_check(
            root_label, labeling.label_of(deepest)
        )
        assert answer is True
        assert messages == 0

    def test_routed_tag_search_contacts_fewer_sites(self, labeling, federation):
        routed, routed_messages = federation.find_tag("city", routed=True)
        federation.reset_messages()
        broadcast, broadcast_messages = federation.find_tag("city", routed=False)
        assert [pair[0] for pair in routed] == [pair[0] for pair in broadcast]
        assert routed_messages <= broadcast_messages
        assert broadcast_messages == len(federation.sites)

    def test_tag_results_in_document_order(self, labeling, federation):
        matches, _ = federation.find_tag("person")
        labels = [pair[0] for pair in matches]
        assert labels == federation.parameters.sort(labels)
        want = [labeling.label_of(n) for n in labeling.tree.find_by_tag("person")]
        assert labels == want

    def test_unknown_label_raises(self, federation):
        from repro.core import Ruid2Label

        with pytest.raises(UnknownLabelError):
            federation.fetch(Ruid2Label(10**6, 1, False))
