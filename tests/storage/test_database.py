"""Tests for the XML database facade."""

import pytest

from repro.core import MultiRuidScheme, Ruid2Label, Ruid2Scheme, UidScheme
from repro.errors import StorageError, UnknownLabelError
from repro.storage import XmlDatabase, label_key
from repro.xmltree import parse


@pytest.fixture
def doc_tree():
    return parse(
        "<site><people><person><name>A</name></person>"
        "<person><name>B</name></person></people><items><item/></items></site>"
    )


class TestLabelKey:
    def test_ruid2(self):
        assert label_key(Ruid2Label(2, 7, False)) == (2, 7, False)

    def test_multilabel(self):
        from repro.core import MultiLabel

        assert label_key(MultiLabel(2, ((4, False), (7, True)))) == (2, 4, False, 7, True)

    def test_int_and_tuple(self):
        assert label_key(5) == (5,)
        assert label_key((1, 2)) == (1, 2)

    def test_unsupported(self):
        with pytest.raises(StorageError):
            label_key(3.14)


class TestStoreAndFetch:
    @pytest.mark.parametrize("scheme", [UidScheme(), Ruid2Scheme(max_area_size=4), MultiRuidScheme(levels=2)])
    def test_roundtrip_all_schemes(self, doc_tree, scheme):
        tree = doc_tree.copy()
        labeling = scheme.build(tree)
        database = XmlDatabase(page_size=512, pool_pages=32)
        document = database.store_document("d", tree, labeling)
        for node in tree.preorder():
            row = document.fetch(labeling.label_of(node))
            assert row[1] == node.tag

    def test_fetch_parent(self, doc_tree):
        labeling = Ruid2Scheme(max_area_size=4).build(doc_tree)
        database = XmlDatabase()
        document = database.store_document("d", doc_tree, labeling)
        person = doc_tree.find_by_tag("person")[0]
        row = document.fetch_parent(labeling.label_of(person))
        assert row[1] == "people"

    def test_fetch_unknown_label(self, doc_tree):
        labeling = Ruid2Scheme().build(doc_tree)
        database = XmlDatabase()
        document = database.store_document("d", doc_tree, labeling)
        with pytest.raises(UnknownLabelError):
            document.fetch(Ruid2Label(99, 99, False))

    def test_duplicate_document_name(self, doc_tree):
        labeling = Ruid2Scheme().build(doc_tree)
        database = XmlDatabase()
        database.store_document("d", doc_tree, labeling)
        with pytest.raises(StorageError):
            database.store_document("d", doc_tree, labeling)

    def test_document_lookup(self, doc_tree):
        labeling = Ruid2Scheme().build(doc_tree)
        database = XmlDatabase()
        stored = database.store_document("d", doc_tree, labeling)
        assert database.document("d") is stored
        with pytest.raises(StorageError):
            database.document("missing")


class TestQueriesAndOrder:
    def test_nodes_with_tag(self, doc_tree):
        labeling = Ruid2Scheme(max_area_size=4).build(doc_tree)
        database = XmlDatabase()
        document = database.store_document("d", doc_tree, labeling)
        rows = list(document.nodes_with_tag("person"))
        assert len(rows) == 2

    def test_scan_document_order_sorted_by_global_then_local(self, doc_tree):
        labeling = Ruid2Scheme(max_area_size=3).build(doc_tree)
        database = XmlDatabase()
        document = database.store_document("d", doc_tree, labeling)
        keys = [row[0] for row in document.scan_document_order()]
        assert keys == sorted(keys)  # the paper's (global, local) sort

    def test_area_routing(self, doc_tree):
        labeling = Ruid2Scheme(max_area_size=3).build(doc_tree)
        database = XmlDatabase()
        document = database.store_document(
            "d", doc_tree, labeling, partition_by_area=True
        )
        all_rows, scanned_all = document.nodes_with_tag_routed("person")
        assert len(all_rows) == 2
        # route to only the areas that contain 'person' labels
        target_areas = {
            labeling.label_of(n).global_index for n in doc_tree.find_by_tag("person")
        }
        routed_rows, scanned_routed = document.nodes_with_tag_routed(
            "person", areas=sorted(target_areas)
        )
        assert len(routed_rows) == 2
        assert scanned_routed <= scanned_all

    def test_routing_requires_partitioned_store(self, doc_tree):
        labeling = Ruid2Scheme().build(doc_tree)
        database = XmlDatabase()
        document = database.store_document("d", doc_tree, labeling)
        with pytest.raises(StorageError):
            document.nodes_with_tag_routed("person")

    def test_routing_requires_ruid_labels(self, doc_tree):
        labeling = UidScheme().build(doc_tree)
        database = XmlDatabase()
        with pytest.raises(StorageError):
            database.store_document("d", doc_tree, labeling, partition_by_area=True)


class TestIoAccounting:
    def test_parent_fetch_io(self):
        from repro.generator import random_document

        tree = random_document(400, seed=61)
        labeling = Ruid2Scheme(max_area_size=16).build(tree)
        database = XmlDatabase(page_size=512, pool_pages=4)
        document = database.store_document("d", tree, labeling)
        node = max(tree.preorder(), key=lambda n: n.depth)
        snapshot = database.io_snapshot()
        document.fetch_parent(labeling.label_of(node))
        delta = database.io_delta(snapshot)
        # the label arithmetic is free; only the row fetch pays pages
        assert delta["disk_reads"] <= 10


class _ExplodingLabeling:
    """Labeling stub that fails after labeling a few nodes, the way a
    FanOutOverflowError surfaces from a real scheme mid-shred."""

    def __init__(self, inner, explode_after):
        self.inner = inner
        self.remaining = explode_after

    def label_of(self, node):
        from repro.errors import FanOutOverflowError

        if self.remaining <= 0:
            raise FanOutOverflowError("injected mid-shred overflow")
        self.remaining -= 1
        return self.inner.label_of(node)

    def __getattr__(self, name):
        return getattr(self.inner, name)


class TestStoreDocumentRollback:
    def test_failed_shred_leaves_no_orphan_tables(self, doc_tree):
        from repro.errors import FanOutOverflowError

        labeling = Ruid2Scheme(max_area_size=4).build(doc_tree)
        database = XmlDatabase()
        exploding = _ExplodingLabeling(labeling, explode_after=3)
        with pytest.raises(FanOutOverflowError):
            database.store_document("doc", doc_tree, exploding)
        assert database.catalog.table_names() == []
        with pytest.raises(StorageError):
            database.document("doc")

    def test_failed_area_shred_drops_area_tables_too(self, doc_tree):
        from repro.errors import FanOutOverflowError

        labeling = Ruid2Scheme(max_area_size=2).build(doc_tree)
        size = doc_tree.size()
        database = XmlDatabase()
        # explode during the per-area pass, after the node table loaded
        exploding = _ExplodingLabeling(labeling, explode_after=size + 2)
        with pytest.raises(FanOutOverflowError):
            database.store_document("doc", doc_tree, exploding, partition_by_area=True)
        assert database.catalog.table_names() == []

    def test_store_succeeds_after_rollback(self, doc_tree):
        from repro.errors import FanOutOverflowError

        labeling = Ruid2Scheme(max_area_size=4).build(doc_tree)
        database = XmlDatabase()
        with pytest.raises(FanOutOverflowError):
            database.store_document(
                "doc", doc_tree, _ExplodingLabeling(labeling, explode_after=1)
            )
        document = database.store_document("doc", doc_tree, labeling)
        assert len(document) == doc_tree.size()
