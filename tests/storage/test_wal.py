"""Unit tests for the write-ahead log and the pager's crash lifecycle."""

import zlib

import pytest

from repro.errors import ChecksumError, StorageError
from repro.storage import Pager, Wal


def _filled_pager(pages=4, page_size=128, pool_pages=2, wal=None):
    pager = Pager(page_size=page_size, pool_pages=pool_pages, wal=wal)
    for index in range(pages):
        page = pager.allocate()
        page.data[0] = index + 1
        pager.mark_dirty(page)
    return pager


class TestWalAppendReplay:
    def test_pages_before_commit_are_not_replayed(self):
        wal = Wal()
        wal.append_page(0, b"a" * 16)
        result = wal.replay()
        assert result.pages == {}
        assert result.commits_applied == 0
        assert result.discarded_uncommitted == 1

    def test_commit_makes_pages_durable(self):
        wal = Wal()
        wal.append_page(0, b"a" * 16)
        wal.append_page(1, b"b" * 16)
        wal.append_commit(b"meta")
        result = wal.replay()
        assert result.pages == {0: b"a" * 16, 1: b"b" * 16}
        assert result.metadata == b"meta"
        assert result.commits_applied == 1
        assert result.halt is None

    def test_later_image_wins(self):
        wal = Wal()
        wal.append_page(0, b"old!" * 4)
        wal.append_commit()
        wal.append_page(0, b"new!" * 4)
        wal.append_commit()
        assert wal.replay().pages[0] == b"new!" * 4

    def test_uncommitted_tail_discarded(self):
        wal = Wal()
        wal.append_page(0, b"a" * 16)
        wal.append_commit(b"m1")
        wal.append_page(0, b"z" * 16)  # never committed
        result = wal.replay()
        assert result.pages[0] == b"a" * 16
        assert result.metadata == b"m1"
        assert result.discarded_uncommitted == 1

    def test_torn_tail_quarantined(self):
        wal = Wal()
        wal.append_page(0, b"a" * 16)
        wal.append_commit(b"m1")
        wal.append_page(0, b"z" * 16)
        wal.append_commit(b"m2")
        torn = wal.tear()
        assert torn > 0
        result = wal.replay()
        # the second commit was torn: state rolls back to the first
        assert result.pages[0] == b"a" * 16
        assert result.metadata == b"m1"
        assert result.halt == "torn-record"
        assert result.quarantined_bytes > 0

    def test_bitflip_in_log_quarantines_from_there(self):
        wal = Wal()
        wal.append_page(0, b"a" * 16)
        wal.append_commit(b"m1")
        committed_size = wal.size_bytes()
        wal.append_page(0, b"z" * 16)
        wal.append_commit(b"m2")
        wal.damage(committed_size + 30)  # inside the second page image
        result = wal.replay()
        assert result.pages[0] == b"a" * 16
        assert result.metadata == b"m1"
        assert result.halt == "corrupt-record"

    def test_prefix_replays_like_the_original(self):
        wal = Wal()
        for index in range(4):
            wal.append_page(index, bytes([index]) * 8)
            wal.append_commit(str(index).encode())
        full = wal.replay()
        again = wal.prefix(wal.record_count).replay()
        assert again.pages == full.pages
        assert again.metadata == full.metadata
        half = wal.prefix(4).replay()  # two page records + two commits
        assert half.metadata == b"1"
        assert half.pages == {0: bytes([0]) * 8, 1: bytes([1]) * 8}

    def test_prefix_with_torn_tail_halts(self):
        wal = Wal()
        wal.append_page(0, b"a" * 8)
        wal.append_commit(b"m")
        wal.append_page(0, b"b" * 8)
        torn = wal.prefix(2, torn_tail_bytes=10)
        result = torn.replay()
        assert result.metadata == b"m"
        assert result.halt == "torn-record"

    def test_prefix_bounds_checked(self):
        with pytest.raises(StorageError):
            Wal().prefix(1)


class TestTornTailBoundaries:
    """Tears landing exactly on record boundaries — the off-by-one
    cases a torn-write scanner gets wrong first."""

    def test_tear_of_exactly_one_whole_record_is_clean(self):
        """Dropping precisely the final record's bytes leaves the log
        ending on the previous boundary: recovery must see a clean
        log, not a torn record."""
        wal = Wal()
        wal.append_page(0, b"a" * 16)
        wal.append_commit(b"m1")
        size_before = wal.size_bytes()
        wal.append_page(0, b"z" * 16)
        last_len = wal.size_bytes() - size_before
        assert wal.tear(drop_bytes=last_len) == last_len
        result = wal.replay()
        assert result.halt is None
        assert result.quarantined_bytes == 0
        assert result.pages[0] == b"a" * 16
        assert result.metadata == b"m1"

    def test_tear_is_clamped_to_the_final_record(self):
        wal = Wal()
        wal.append_page(0, b"a" * 16)
        wal.append_commit(b"m1")
        size_before = wal.size_bytes()
        wal.append_page(0, b"z" * 16)
        last_len = wal.size_bytes() - size_before
        # asking for more than the last record drops only that record
        assert wal.tear(drop_bytes=10 * last_len) == last_len
        assert wal.size_bytes() == size_before
        assert wal.replay().halt is None

    def test_one_byte_tear_quarantines_the_record(self):
        wal = Wal()
        wal.append_page(0, b"a" * 16)
        wal.append_commit(b"m1")
        wal.append_page(0, b"z" * 16)
        assert wal.tear(drop_bytes=1) == 1
        result = wal.replay()
        assert result.halt == "torn-record"
        assert result.quarantined_bytes > 0
        assert result.metadata == b"m1"

    def test_prefix_at_exact_boundary_is_clean(self):
        wal = Wal()
        wal.append_page(0, b"a" * 8)
        wal.append_commit(b"m")
        wal.append_page(0, b"b" * 8)
        result = wal.prefix(2).replay()
        assert result.halt is None
        assert result.quarantined_bytes == 0
        assert result.metadata == b"m"

    def test_prefix_torn_tail_never_completes_the_record(self):
        """torn_tail_bytes larger than the next record must be capped
        below a full record — otherwise the 'torn' tail would replay
        as a valid record and un-tear the crash."""
        wal = Wal()
        wal.append_page(0, b"a" * 8)
        wal.append_commit(b"m")
        wal.append_page(0, b"b" * 8)
        wal.append_commit(b"m2")
        torn = wal.prefix(2, torn_tail_bytes=1_000_000)
        assert torn.size_bytes() < wal.size_bytes()
        result = torn.replay()
        assert result.halt == "torn-record"
        assert result.metadata == b"m"

    def test_header_sized_tail_is_still_torn(self):
        """A tail holding a complete header but no payload must halt as
        torn, not crash the scanner."""
        import struct

        header_size = struct.calcsize(">4sBQII")
        wal = Wal()
        wal.append_page(0, b"a" * 8)
        wal.append_commit(b"m")
        wal.append_page(0, b"b" * 8)
        torn = wal.prefix(2, torn_tail_bytes=header_size)
        result = torn.replay()
        assert result.halt == "torn-record"
        assert result.metadata == b"m"


class TestWalCheckpoint:
    def test_checkpoint_truncates_and_rebases(self):
        wal = Wal()
        wal.append_page(0, b"a" * 8)
        wal.append_commit(b"m1")
        wal.checkpoint({0: b"a" * 8}, b"m1")
        assert wal.record_count == 0
        result = wal.replay()
        assert result.pages == {0: b"a" * 8}
        assert result.metadata == b"m1"

    def test_appends_after_checkpoint_layer_on_base(self):
        wal = Wal()
        wal.checkpoint({0: b"a" * 8, 1: b"b" * 8}, b"base")
        wal.append_page(1, b"B" * 8)
        wal.append_commit(b"m2")
        result = wal.replay()
        assert result.pages == {0: b"a" * 8, 1: b"B" * 8}
        assert result.metadata == b"m2"


class TestPagerChecksums:
    def test_damage_is_caught_on_cold_read(self):
        pager = _filled_pager()
        pager.flush()
        pager.damage(0, 5, 0x40)
        with pytest.raises(ChecksumError) as exc_info:
            pager.read(0)
        assert exc_info.value.page_id == 0
        assert pager.stats.checksum_failures == 1

    def test_clean_pages_read_fine(self):
        pager = _filled_pager()
        pager.flush()
        pager._pool.clear()
        for page_id in pager.stored_page_ids():
            pager.read(page_id)
        assert pager.stats.checksum_failures == 0

    def test_damage_validates_arguments(self):
        pager = _filled_pager()
        with pytest.raises(StorageError):
            pager.damage(99, 0, 0xFF)
        with pytest.raises(StorageError):
            pager.damage(0, 10_000, 0xFF)
        with pytest.raises(StorageError):
            pager.damage(0, 0, 0)


class TestPagerCrashRecover:
    def test_crash_discards_dirty_pool(self):
        wal = Wal()
        pager = _filled_pager(wal=wal)
        pager.commit(b"m")
        committed = dict(pager._disk)
        page = pager.read(0)
        page.data[1] = 0xEE
        pager.mark_dirty(page)
        pager.crash(tear_bytes=0)
        result = pager.recover()
        assert result.metadata == b"m"
        assert pager._disk == committed
        assert pager.stats.recoveries == 1

    def test_recover_requires_wal(self):
        with pytest.raises(StorageError):
            Pager(page_size=128, pool_pages=2).recover()

    def test_wal_counters_charged(self):
        wal = Wal()
        pager = _filled_pager(wal=wal)
        pager.commit(b"")
        assert pager.stats.wal_appends == wal.record_count
        assert pager.stats.wal_bytes == wal.size_bytes()

    def test_commits_after_recovery_are_durable(self):
        """Recovery truncates the quarantined tail: a commit logged
        after recovering from a torn log must itself be replayable."""
        wal = Wal()
        pager = _filled_pager(wal=wal)
        pager.commit(b"m1")
        page = pager.read(0)
        page.data[2] = 7
        pager.mark_dirty(page)
        pager.commit(b"m2")
        wal.tear()  # m2 torn mid-write
        pager.crash(tear_bytes=0)
        assert pager.recover().metadata == b"m1"
        page = pager.read(1)
        page.data[2] = 9
        pager.mark_dirty(page)
        pager.commit(b"m3")
        pager.crash(tear_bytes=0)
        result = pager.recover()
        assert result.metadata == b"m3"
        assert pager._disk[1][2] == 9

    def test_recovered_pages_pass_checksums(self):
        wal = Wal()
        pager = _filled_pager(wal=wal)
        pager.commit(b"m")
        pager.crash(tear_bytes=0)
        pager.recover()
        for page_id in pager.stored_page_ids():
            raw = pager._disk[page_id]
            assert zlib.crc32(raw) == pager._checksums[page_id]
            pager.read(page_id)
