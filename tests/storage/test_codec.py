"""Tests for the order-preserving key codec and value codec."""

import pytest

from repro.errors import StorageError
from repro.storage import decode_key, decode_value, encode_key, encode_value


class TestKeyRoundTrip:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            1,
            -1,
            255,
            256,
            -256,
            2**100,
            -(2**100),
            "",
            "hello",
            "with\x00null",
            "unicode — 世界",
            b"",
            b"raw\x00bytes\xff",
            (),
            (1, 2, 3),
            ("a", 1, True),
            ((1, 2), (3, (4,))),
            (None, False, ""),
        ],
    )
    def test_roundtrip(self, value):
        assert decode_key(encode_key(value)) == value

    def test_trailing_bytes_rejected(self):
        with pytest.raises(StorageError):
            decode_key(encode_key(5) + b"\x01")

    def test_truncated_rejected(self):
        with pytest.raises(StorageError):
            decode_key(encode_key("hello")[:-1])


class TestKeyOrdering:
    def test_integer_order(self):
        values = [-(2**70), -1000, -256, -2, -1, 0, 1, 2, 255, 256, 2**70]
        encoded = [encode_key(v) for v in values]
        assert encoded == sorted(encoded)

    def test_string_order(self):
        values = ["", "a", "a\x00", "a\x01", "aa", "ab", "b"]
        encoded = [encode_key(v) for v in values]
        assert encoded == sorted(encoded)

    def test_tuple_lexicographic(self):
        values = [(1,), (1, 1), (1, 2), (2,), (2, 0)]
        encoded = [encode_key(v) for v in values]
        assert encoded == sorted(encoded)

    def test_tuple_prefix_sorts_first(self):
        assert encode_key(("a",)) < encode_key(("a", "b"))
        assert encode_key((1, 2)) < encode_key((1, 2, 0))

    def test_type_rank(self):
        # None < bool < int < str < bytes
        values = [None, False, True, -5, 10, "x", b"x"]
        encoded = [encode_key(v) for v in values]
        assert encoded == sorted(encoded)

    def test_mixed_label_tuples(self):
        # The (global, local, flag) rUID storage key
        labels = [(1, 1, True), (2, 2, False), (2, 2, True), (2, 7, False), (10, 9, True)]
        encoded = [encode_key(l) for l in labels]
        assert encoded == sorted(encoded)

    def test_unsupported_type(self):
        with pytest.raises(StorageError):
            encode_key(3.14)  # floats are not comparable keys here
        with pytest.raises(StorageError):
            encode_key([1, 2])


class TestValueCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -42,
            2**80,
            3.5,
            -0.25,
            "",
            "text",
            b"blob",
            (),
            (1, "a", None, (2.5, b"x")),
        ],
    )
    def test_roundtrip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_nested_row(self):
        row = ((2, 7, False), "person", "element", None)
        assert decode_value(encode_value(row)) == row

    def test_trailing_bytes_rejected(self):
        with pytest.raises(StorageError):
            decode_value(encode_value(1) + b"\x00")

    def test_unsupported_type(self):
        with pytest.raises(StorageError):
            encode_value({"a": 1})
