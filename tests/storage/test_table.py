"""Tests for typed tables, primary keys, and secondary indexes."""

import pytest

from repro.errors import DuplicateKeyError, StorageError
from repro.storage import Column, Pager, Schema, Table


@pytest.fixture
def table():
    pager = Pager(page_size=512, pool_pages=16)
    return Table(
        "people",
        Schema([Column("id", "int"), Column("name", "str"), Column("age", "int")]),
        pager,
        primary_key=["id"],
    )


class TestSchema:
    def test_duplicate_column_rejected(self):
        with pytest.raises(StorageError):
            Schema([Column("a"), Column("a")])

    def test_empty_schema_rejected(self):
        with pytest.raises(StorageError):
            Schema([])

    def test_validate_row_arity(self, table):
        with pytest.raises(StorageError):
            table.insert((1, "too-short"))

    def test_validate_kind(self, table):
        with pytest.raises(StorageError):
            table.insert((1, 42, 30))  # name must be str

    def test_nullable(self, table):
        table.insert((1, None, None))
        assert table.get(1) == (1, None, None)

    def test_project(self):
        schema = Schema([Column("a"), Column("b"), Column("c")])
        assert schema.project((1, 2, 3), ["c", "a"]) == (3, 1)


class TestCrud:
    def test_insert_get(self, table):
        table.insert((1, "ada", 36))
        table.insert((2, "bob", 17))
        assert table.get(1) == (1, "ada", 36)
        assert table.get(2) == (2, "bob", 17)
        assert table.get(99) is None
        assert len(table) == 2

    def test_duplicate_pk(self, table):
        table.insert((1, "ada", 36))
        with pytest.raises(DuplicateKeyError):
            table.insert((1, "imposter", 0))

    def test_delete(self, table):
        table.insert((1, "ada", 36))
        assert table.delete(1)
        assert table.get(1) is None
        assert not table.delete(1)
        assert len(table) == 0

    def test_scan(self, table):
        for i in range(20):
            table.insert((i, f"p{i}", i))
        assert len(list(table.scan())) == 20

    def test_scan_pk_order(self, table):
        for i in (5, 1, 9, 3):
            table.insert((i, f"p{i}", i))
        assert [row[0] for row in table.scan_pk_order()] == [1, 3, 5, 9]

    def test_range_pk(self, table):
        for i in range(10):
            table.insert((i, f"p{i}", i))
        rows = list(table.range_pk((3,), (6,)))
        assert [row[0] for row in rows] == [3, 4, 5, 6]


class TestSecondaryIndex:
    def test_lookup(self, table):
        table.insert((1, "ada", 36))
        table.insert((2, "bob", 17))
        table.insert((3, "ada", 80))
        table.create_index("by_name", ["name"])
        rows = list(table.lookup("by_name", "ada"))
        assert sorted(row[0] for row in rows) == [1, 3]
        assert list(table.lookup("by_name", "nobody")) == []

    def test_index_backfills(self, table):
        table.insert((1, "ada", 36))
        table.create_index("by_name", ["name"])
        assert [row[0] for row in table.lookup("by_name", "ada")] == [1]

    def test_index_maintained_on_insert_delete(self, table):
        table.create_index("by_age", ["age"])
        table.insert((1, "ada", 36))
        table.insert((2, "bob", 36))
        table.delete(1)
        rows = list(table.lookup("by_age", 36))
        assert [row[0] for row in rows] == [2]

    def test_composite_index_prefix(self, table):
        table.create_index("by_name_age", ["name", "age"])
        table.insert((1, "ada", 36))
        table.insert((2, "ada", 17))
        table.insert((3, "bob", 36))
        # full composite
        assert [r[0] for r in table.lookup("by_name_age", "ada", 17)] == [2]
        # prefix on name alone
        assert sorted(r[0] for r in table.lookup("by_name_age", "ada")) == [1, 2]

    def test_duplicate_index_name(self, table):
        table.create_index("i", ["name"])
        with pytest.raises(StorageError):
            table.create_index("i", ["age"])

    def test_unknown_index_column(self, table):
        with pytest.raises(StorageError):
            table.create_index("bad", ["missing"])

    def test_unknown_index_lookup(self, table):
        with pytest.raises(StorageError):
            list(table.lookup("nope", 1))
