"""Tests for the paged B+-tree."""

import random

import pytest

from repro.errors import DuplicateKeyError, PageOverflowError
from repro.storage import BPlusTree, Pager, decode_key, decode_value, encode_key, encode_value


@pytest.fixture
def tree():
    return BPlusTree(Pager(page_size=256, pool_pages=16))


def put(tree, key, value):
    tree.insert(encode_key(key), encode_value(value))


def get(tree, key):
    raw = tree.get(encode_key(key))
    return None if raw is None else decode_value(raw)


class TestBasics:
    def test_empty(self, tree):
        assert get(tree, 1) is None
        assert len(tree) == 0
        assert list(tree.items()) == []

    def test_insert_get(self, tree):
        put(tree, 5, "five")
        put(tree, 3, "three")
        assert get(tree, 5) == "five"
        assert get(tree, 3) == "three"
        assert get(tree, 4) is None

    def test_duplicate_rejected(self, tree):
        put(tree, 1, "a")
        with pytest.raises(DuplicateKeyError):
            put(tree, 1, "b")

    def test_replace(self, tree):
        put(tree, 1, "a")
        tree.insert(encode_key(1), encode_value("b"), replace=True)
        assert get(tree, 1) == "b"

    def test_oversized_record_rejected(self, tree):
        with pytest.raises(PageOverflowError):
            tree.insert(encode_key("k"), b"x" * 4096)


class TestSplitsAndScale:
    @pytest.mark.parametrize("count,seed", [(200, 0), (1000, 1)])
    def test_random_inserts(self, count, seed):
        tree = BPlusTree(Pager(page_size=256, pool_pages=8))
        rng = random.Random(seed)
        keys = list(range(count))
        rng.shuffle(keys)
        for key in keys:
            put(tree, key, key * 3)
        for key in range(count):
            assert get(tree, key) == key * 3
        ordered = [decode_key(k) for k, _ in tree.items()]
        assert ordered == sorted(ordered)
        assert len(ordered) == count

    def test_sequential_inserts(self):
        tree = BPlusTree(Pager(page_size=256, pool_pages=8))
        for key in range(500):
            put(tree, key, None)
        assert len(tree) == 500

    def test_string_keys(self):
        tree = BPlusTree(Pager(page_size=512, pool_pages=8))
        words = [f"word-{i:04d}" for i in range(300)]
        random.Random(2).shuffle(words)
        for word in words:
            put(tree, word, word.upper())
        assert get(tree, "word-0123") == "WORD-0123"
        ordered = [decode_key(k) for k, _ in tree.items()]
        assert ordered == sorted(words)


class TestRange:
    def test_range_bounds(self, tree):
        for key in range(0, 100, 2):
            put(tree, key, key)
        got = [decode_key(k) for k, _ in tree.range(encode_key(10), encode_key(20))]
        assert got == [10, 12, 14, 16, 18, 20]

    def test_range_open_ends(self, tree):
        for key in range(10):
            put(tree, key, key)
        assert len(list(tree.range(None, encode_key(4)))) == 5
        assert len(list(tree.range(encode_key(5), None))) == 5

    def test_range_missing_bounds(self, tree):
        for key in range(0, 20, 2):
            put(tree, key, key)
        got = [decode_key(k) for k, _ in tree.range(encode_key(3), encode_key(9))]
        assert got == [4, 6, 8]

    def test_range_across_splits(self):
        tree = BPlusTree(Pager(page_size=256, pool_pages=8))
        for key in range(400):
            put(tree, key, None)
        got = [decode_key(k) for k, _ in tree.range(encode_key(100), encode_key(299))]
        assert got == list(range(100, 300))


class TestDelete:
    def test_delete_existing(self, tree):
        for key in range(50):
            put(tree, key, key)
        assert tree.delete(encode_key(25))
        assert get(tree, 25) is None
        assert len(tree) == 49

    def test_delete_missing(self, tree):
        put(tree, 1, "a")
        assert not tree.delete(encode_key(9))

    def test_delete_all_then_reinsert(self):
        tree = BPlusTree(Pager(page_size=256, pool_pages=8))
        for key in range(200):
            put(tree, key, key)
        for key in range(200):
            assert tree.delete(encode_key(key))
        assert len(tree) == 0
        put(tree, 5, "back")
        assert get(tree, 5) == "back"


class TestIoAccounting:
    def test_operations_charge_io(self):
        pager = Pager(page_size=256, pool_pages=2)
        tree = BPlusTree(pager)
        for key in range(300):
            put(tree, key, key)
        assert pager.stats.disk_reads > 0
        assert pager.stats.disk_writes > 0

    def test_point_lookup_io_bounded_by_height(self):
        pager = Pager(page_size=256, pool_pages=4)
        tree = BPlusTree(pager)
        for key in range(2000):
            put(tree, key, None)
        snapshot = pager.stats.snapshot()
        get(tree, 1234)
        delta = pager.stats.delta_since(snapshot)
        # a point lookup touches at most the tree height in pages
        assert delta["buffer_misses"] + delta["buffer_hits"] <= 8
