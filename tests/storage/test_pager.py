"""Tests for the pager and LRU buffer pool."""

import pytest

from repro.errors import StorageError
from repro.storage import Pager


class TestAllocation:
    def test_allocate_sequential_ids(self):
        pager = Pager(page_size=128, pool_pages=4)
        pages = [pager.allocate() for _ in range(3)]
        assert [p.page_id for p in pages] == [0, 1, 2]
        assert pager.page_count == 3

    def test_pages_zeroed(self):
        pager = Pager(page_size=128, pool_pages=4)
        page = pager.allocate()
        assert bytes(page.data) == b"\x00" * 128

    def test_invalid_config(self):
        with pytest.raises(StorageError):
            Pager(page_size=16)
        with pytest.raises(StorageError):
            Pager(pool_pages=0)


class TestReadWrite:
    def test_read_unallocated_raises(self):
        pager = Pager(page_size=128, pool_pages=2)
        with pytest.raises(StorageError):
            pager.read(42)

    def test_mutation_survives_eviction(self):
        pager = Pager(page_size=128, pool_pages=2)
        page = pager.allocate()
        page.data[0:5] = b"hello"
        pager.mark_dirty(page)
        # force eviction by touching other pages
        for _ in range(4):
            pager.allocate()
        fetched = pager.read(page.page_id)
        assert bytes(fetched.data[0:5]) == b"hello"

    def test_unwritten_mutation_lost_after_eviction_without_dirty(self):
        # Contract check: callers MUST mark_dirty; this documents why.
        pager = Pager(page_size=128, pool_pages=1)
        page = pager.allocate()
        pager.read(page.page_id)  # ensure pooled
        # allocate() marks dirty itself, so flush the state first
        pager.flush()
        page2 = pager.read(page.page_id)
        page2.data[0:3] = b"abc"  # not marked dirty
        pager.allocate()  # evicts page2 silently
        again = pager.read(page.page_id)
        assert bytes(again.data[0:3]) == b"\x00\x00\x00"

    def test_flush_writes_dirty_pages(self):
        pager = Pager(page_size=128, pool_pages=4)
        page = pager.allocate()
        page.data[0] = 7
        pager.mark_dirty(page)
        writes_before = pager.stats.disk_writes
        pager.flush()
        assert pager.stats.disk_writes > writes_before


class TestStats:
    def test_hits_and_misses(self):
        pager = Pager(page_size=128, pool_pages=2)
        first = pager.allocate()
        pager.read(first.page_id)
        assert pager.stats.buffer_hits == 1
        # evict by allocating beyond pool
        pager.allocate()
        pager.allocate()
        pager.read(first.page_id)
        assert pager.stats.buffer_misses >= 1
        assert pager.stats.disk_reads >= 1

    def test_eviction_counted(self):
        pager = Pager(page_size=128, pool_pages=2)
        for _ in range(5):
            pager.allocate()
        assert pager.stats.evictions >= 3

    def test_snapshot_delta(self):
        pager = Pager(page_size=128, pool_pages=2)
        pager.allocate()
        snapshot = pager.stats.snapshot()
        for _ in range(3):
            pager.allocate()
        delta = pager.stats.delta_since(snapshot)
        assert delta["evictions"] >= 1

    def test_hit_ratio_bounds(self):
        pager = Pager(page_size=128, pool_pages=2)
        assert pager.stats.hit_ratio == 1.0
        page = pager.allocate()
        pager.read(page.page_id)
        assert 0.0 <= pager.stats.hit_ratio <= 1.0

    def test_reset(self):
        pager = Pager(page_size=128, pool_pages=2)
        pager.allocate()
        pager.stats.reset()
        assert pager.stats.total_io == 0

    def test_disk_bytes(self):
        pager = Pager(page_size=128, pool_pages=2)
        pager.allocate()
        pager.allocate()
        assert pager.disk_bytes() == 256
