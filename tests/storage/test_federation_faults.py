"""Fault-tolerant federation: replication, failover and stale-synopsis
degradation (the ISSUE's federation acceptance scenario)."""

import pytest

from repro.core import Ruid2Labeling, SizeCapPartitioner
from repro.errors import SiteUnavailableError, StorageError
from repro.generator import generate_xmark
from repro.storage import FaultInjector, FederatedDocument


@pytest.fixture(scope="module")
def labeling():
    tree = generate_xmark(scale=0.05, seed=97)
    return Ruid2Labeling(tree, partitioner=SizeCapPartitioner(12))


@pytest.fixture
def degraded(labeling):
    """Three sites, rf=2, site1 down via the fault injector."""
    faults = FaultInjector(seed=5)
    federation = FederatedDocument(
        labeling, site_count=3, replication_factor=2, faults=faults
    )
    faults.take_site_down("site1")
    return federation


def _all_tags(labeling):
    return sorted({node.tag for node in labeling.tree.preorder()})


class TestReplication:
    def test_every_area_on_rf_sites(self, labeling):
        federation = FederatedDocument(labeling, site_count=3, replication_factor=2)
        holders = {area: 0 for area in federation._sites_of_area}
        for site in federation.sites:
            for area in site.areas + site.replica_areas:
                holders[area] += 1
        assert set(holders.values()) == {2}

    def test_rf_validated(self, labeling):
        with pytest.raises(StorageError):
            FederatedDocument(labeling, site_count=3, replication_factor=4)
        with pytest.raises(StorageError):
            FederatedDocument(labeling, site_count=3, replication_factor=0)

    def test_rf1_site_down_is_fatal(self, labeling):
        federation = FederatedDocument(labeling, site_count=3, replication_factor=1)
        federation.take_site_down("site0")
        victim_area = federation.sites[0].areas[0]
        victim = next(
            label
            for label in labeling.snapshot().values()
            if label.global_index == victim_area
        )
        with pytest.raises(SiteUnavailableError):
            federation.fetch(victim)


class TestDegradedReads:
    def test_every_label_fetchable_with_one_site_down(self, labeling, degraded):
        reference = FederatedDocument(labeling, site_count=3)
        for label in labeling.snapshot().values():
            row, messages = degraded.fetch(label)
            assert row == reference.fetch(label)[0]
            assert messages >= 1

    def test_parent_fetch_survives_outage(self, labeling, degraded):
        deepest = max(labeling.tree.preorder(), key=lambda n: n.depth)
        row, _messages = degraded.fetch_parent(labeling.label_of(deepest))
        assert row[0] == deepest.parent.tag

    def test_degraded_cost_is_ledgered(self, labeling, degraded):
        for label in labeling.snapshot().values():
            degraded.fetch(label)
        snapshot = degraded.stats_snapshot()
        # site1 owned primaries, so some fetches must have failed over
        assert snapshot["failovers"] > 0
        # every failed contact forces one retry against the next
        # replica; once site1's breaker opens it is skipped for free,
        # so failed messages stop short of the failover count
        assert snapshot["messages_failed"] == snapshot["retries"]
        assert 0 < snapshot["messages_failed"] <= snapshot["failovers"]
        assert snapshot["breaker_skips"] > 0
        assert snapshot["breakers_open"] >= 1
        assert snapshot["backoff_seconds"] > 0
        assert degraded.sites[1].messages_received == 0

    def test_no_ledger_noise_when_healthy(self, labeling):
        federation = FederatedDocument(labeling, site_count=3, replication_factor=2)
        for label in labeling.snapshot().values():
            federation.fetch(label)
        snapshot = federation.stats_snapshot()
        assert snapshot["failovers"] == 0
        assert snapshot["retries"] == 0
        assert snapshot["backoff_seconds"] == 0

    def test_all_replicas_down_raises(self, labeling):
        federation = FederatedDocument(labeling, site_count=3, replication_factor=2)
        for site in federation.sites:
            federation.take_site_down(site.name)
        root_label = labeling.label_of(labeling.tree.root)
        with pytest.raises(SiteUnavailableError):
            federation.fetch(root_label)

    def test_restore_ends_degradation(self, labeling, degraded):
        degraded.faults.restore_site("site1")
        # injector-driven restores bypass FederatedDocument.restore_site,
        # so the tripped breaker must be closed explicitly
        degraded.reset_breakers()
        degraded.reset_messages()
        for label in labeling.snapshot().values():
            degraded.fetch(label)
        assert degraded.stats_snapshot()["failovers"] == 0


class TestDegradedTagSearch:
    def test_find_tag_correct_for_every_label(self, labeling, degraded):
        reference = FederatedDocument(labeling, site_count=3)
        for tag in _all_tags(labeling):
            rows, _messages = degraded.find_tag(tag)
            want, _ = reference.find_tag(tag)
            assert rows == want  # same rows, same document order

    def test_replicas_do_not_duplicate_matches(self, labeling):
        # healthy rf=2: each area answered exactly once despite 2 copies
        federation = FederatedDocument(labeling, site_count=3, replication_factor=2)
        reference = FederatedDocument(labeling, site_count=3)
        for tag in _all_tags(labeling):
            assert federation.find_tag(tag)[0] == reference.find_tag(tag)[0]

    def test_stale_synopsis_falls_back_to_broadcast(self, labeling, degraded):
        tag = _all_tags(labeling)[0]
        want, _ = degraded.find_tag(tag)
        degraded.bump_epoch()
        assert degraded.synopsis_is_stale
        degraded.reset_messages()
        rows, _messages = degraded.find_tag(tag, routed=True)
        assert rows == want
        assert degraded.stats_snapshot()["stale_fallbacks"] == 1
        degraded.resync()
        assert not degraded.synopsis_is_stale
        assert degraded.parameters.epoch == degraded.epoch
        degraded.reset_messages()
        degraded.find_tag(tag, routed=True)
        assert degraded.stats_snapshot()["stale_fallbacks"] == 0

    def test_site_loads_reports_status(self, degraded):
        status = {
            name: state
            for name, _areas, _rows, state, _backoff in degraded.site_loads()
        }
        assert status["site1"] == "down"
        assert status["site0"] == status["site2"] == "up"

    def test_site_loads_reports_per_site_backoff(self, labeling, degraded):
        for label in labeling.snapshot().values():
            degraded.fetch(label)
        backoff = {
            name: seconds
            for name, _areas, _rows, _state, seconds in degraded.site_loads()
        }
        # waits accrue against the replicas being retried, and the sum
        # must reconcile with the global ledger
        assert sum(backoff.values()) > 0
        snapshot = degraded.stats_snapshot()
        assert sum(backoff.values()) == pytest.approx(snapshot["backoff_seconds"])
