"""Tests for the slotted-page heap file."""

import pytest

from repro.errors import PageOverflowError, StorageError
from repro.storage import HeapFile, Pager, Rid


@pytest.fixture
def heap():
    return HeapFile(Pager(page_size=256, pool_pages=8))


class TestInsertGet:
    def test_roundtrip(self, heap):
        rid = heap.insert(b"hello")
        assert heap.get(rid) == b"hello"

    def test_many_records_span_pages(self, heap):
        rids = [heap.insert(f"record-{i:03d}".encode()) for i in range(200)]
        pages = {rid.page_id for rid in rids}
        assert len(pages) > 1
        for index, rid in enumerate(rids):
            assert heap.get(rid) == f"record-{index:03d}".encode()

    def test_oversized_record_rejected(self, heap):
        with pytest.raises(PageOverflowError):
            heap.insert(b"x" * 1000)

    def test_empty_record(self, heap):
        rid = heap.insert(b"")
        assert heap.get(rid) == b""


class TestDelete:
    def test_delete_then_get_raises(self, heap):
        rid = heap.insert(b"gone")
        heap.delete(rid)
        with pytest.raises(StorageError):
            heap.get(rid)

    def test_slot_reuse(self, heap):
        rid = heap.insert(b"first")
        heap.delete(rid)
        rid2 = heap.insert(b"second")
        assert rid2.page_id == rid.page_id
        assert rid2.slot == rid.slot

    def test_bad_rid(self, heap):
        heap.insert(b"x")
        with pytest.raises(StorageError):
            heap.get(Rid(0, 99))

    def test_compaction_reclaims_space(self, heap):
        # fill a page, delete everything, verify new records fit again
        rids = []
        while True:
            rid = heap.insert(b"y" * 40)
            if rid.page_id != 0:
                break
            rids.append(rid)
        for rid in rids:
            heap.delete(rid)
        fresh = [heap.insert(b"z" * 40) for _ in range(len(rids))]
        assert {r.page_id for r in fresh} <= {0, 1}


class TestUpdateScan:
    def test_update_moves_record(self, heap):
        rid = heap.insert(b"old")
        new_rid = heap.update(rid, b"new-value")
        assert heap.get(new_rid) == b"new-value"

    def test_scan_returns_live_records(self, heap):
        rids = [heap.insert(f"r{i}".encode()) for i in range(10)]
        heap.delete(rids[3])
        heap.delete(rids[7])
        records = {raw for _, raw in heap.scan()}
        assert records == {f"r{i}".encode() for i in range(10) if i not in (3, 7)}
        assert len(heap) == 8
