"""WAL group commit: batching semantics and batch-boundary recovery.

The contract under test (docs/ROBUSTNESS.md): with
``group_commit_size > 1`` a logical commit defers its physical record;
a flush writes ONE record and pays ONE sync for the whole batch; and
recovery applies **whole batches or none** — a crash can lose an open
batch entirely, but can never surface a strict prefix of one.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import StorageError
from repro.storage.iostats import IoStats
from repro.storage.wal import REC_BATCH, Wal


def _run_txns(wal: Wal, count: int, pages_per_txn: int = 2):
    """*count* transactions: a few page images then a logical commit."""
    page_id = 0
    for txn in range(count):
        for _ in range(pages_per_txn):
            wal.append_page(page_id, b"txn%d-p%d" % (txn, page_id))
            page_id += 1
        wal.append_commit(b"meta%d" % txn)


class TestBatching:
    def test_classic_mode_is_unchanged(self):
        wal = Wal()
        _run_txns(wal, 3)
        stats = wal.wal_stats
        assert stats.logical_commits == 3
        assert stats.physical_commit_records == 3
        assert stats.batch_records == 0
        assert stats.syncs == 3
        assert wal.pending_commits() == 0

    def test_size_trigger_coalesces_syncs(self):
        wal = Wal(group_commit_size=4)
        _run_txns(wal, 8)
        stats = wal.wal_stats
        assert stats.logical_commits == 8
        assert stats.syncs == 2  # two full batches
        assert stats.batch_records == 2
        assert stats.batched_commits == 8
        assert stats.flush_size == 2
        assert stats.max_batch == 4

    def test_syncs_strictly_below_commits_at_batch_four(self):
        # the ISSUE's acceptance gate, as a unit assertion
        wal = Wal(group_commit_size=4)
        _run_txns(wal, 16)
        wal.flush_commits()
        assert wal.wal_stats.syncs < wal.wal_stats.logical_commits

    def test_deferred_commit_returns_none_flush_returns_lsn(self):
        wal = Wal(group_commit_size=3)
        assert wal.append_commit(b"a") is None
        assert wal.append_commit(b"b") is None
        lsn = wal.append_commit(b"c")
        assert isinstance(lsn, int)
        assert wal.append_commit(b"d") is None
        assert isinstance(wal.flush_commits(), int)
        assert wal.flush_commits() is None  # nothing pending
        assert wal.wal_stats.flush_explicit == 1

    def test_single_commit_flush_writes_plain_commit_record(self):
        wal = Wal(group_commit_size=8)
        wal.append_commit(b"solo")
        wal.flush_commits()
        stats = wal.wal_stats
        assert stats.batch_records == 0
        assert stats.physical_commit_records == 1
        result = wal.replay()
        assert result.commits_applied == 1
        assert result.metadata == b"solo"

    def test_window_expiry_flushes_at_next_commit(self):
        wal = Wal(group_commit_size=100, group_commit_window_s=0.005)
        assert wal.append_commit(b"a") is None  # opens the batch
        time.sleep(0.01)
        # the window expired: the next commit joins the batch and flushes
        lsn = wal.append_commit(b"b")
        assert isinstance(lsn, int)
        assert wal.wal_stats.flush_window == 1
        assert wal.pending_commits() == 0
        assert wal.replay().commits_applied == 2

    def test_iostats_charged_per_sync_and_batch(self):
        ledger = IoStats()
        wal = Wal(stats=ledger, group_commit_size=4)
        _run_txns(wal, 8)
        assert ledger.wal_syncs == 2
        assert ledger.wal_batches == 2

    def test_group_size_must_be_positive(self):
        with pytest.raises(StorageError):
            Wal(group_commit_size=0)


class TestBoundaryCorrectness:
    def test_explicit_flush_excludes_later_transactions_pages(self):
        """Pages logged after the batch's last commit stay uncommitted
        even though they physically precede the batch record."""
        wal = Wal(group_commit_size=8)
        wal.append_page(1, b"committed")
        wal.append_commit(b"c1")
        wal.append_page(1, b"rewrite-uncommitted")
        wal.append_page(2, b"new-uncommitted")
        wal.flush_commits()
        result = wal.replay()
        assert result.pages == {1: b"committed"}
        assert result.commits_applied == 1
        assert result.discarded_uncommitted == 2

    def test_early_image_commits_while_later_rewrite_stays_pending(self):
        """A page written in txn A (batched) and rewritten by an
        in-flight txn B keeps A's image in the committed state."""
        wal = Wal(group_commit_size=2)
        wal.append_page(7, b"A")
        wal.append_commit(b"a")
        wal.append_page(7, b"B")  # txn B starts rewriting page 7
        wal.append_commit(b"b")  # txn B commits -> size trigger fires
        result = wal.replay()
        assert result.pages == {7: b"B"}
        assert result.commits_applied == 2
        # now the asymmetric case: B never commits
        wal2 = Wal(group_commit_size=8)
        wal2.append_page(7, b"A")
        wal2.append_commit(b"a")
        wal2.append_page(7, b"B")
        wal2.flush_commits()
        result2 = wal2.replay()
        assert result2.pages == {7: b"A"}
        assert result2.discarded_uncommitted == 1

    def test_checkpoint_absorbs_open_batch(self):
        wal = Wal(group_commit_size=8)
        wal.append_page(1, b"img")
        wal.append_commit(b"c1")
        assert wal.pending_commits() == 1
        wal.checkpoint({1: b"img"}, b"c1")
        assert wal.pending_commits() == 0
        assert wal.wal_stats.flush_checkpoint == 1
        result = wal.replay()
        assert result.pages == {1: b"img"}
        assert result.metadata == b"c1"


class TestCrashAtEveryPoint:
    """Truncate the log after every record (plus torn-tail variants of
    the next record) and recover: the committed image must always be a
    whole-batch prefix of history — never a partial batch."""

    BATCH = 3
    TXNS = 7  # 2 full batches flushed, 1 commit left pending

    def _build(self):
        wal = Wal(group_commit_size=self.BATCH)
        _run_txns(wal, self.TXNS, pages_per_txn=1)
        return wal

    def test_whole_batches_or_none_at_every_truncation_point(self):
        wal = self._build()
        valid_counts = {0, self.BATCH, 2 * self.BATCH}
        seen = set()
        for point in range(wal.record_count + 1):
            result = wal.prefix(point).replay()
            assert result.commits_applied in valid_counts, (
                f"crash after record {point} surfaced "
                f"{result.commits_applied} commits — a partial batch"
            )
            if result.commits_applied:
                # metadata is the LAST commit of a complete batch
                last = result.commits_applied - 1
                assert result.metadata == b"meta%d" % last
                # every page of every applied batch is present
                for txn in range(result.commits_applied):
                    assert wal.prefix(point).replay().pages[txn] == (
                        b"txn%d-p%d" % (txn, txn)
                    )
            seen.add(result.commits_applied)
        # the harness actually exercised both batch boundaries
        assert seen == valid_counts

    def test_torn_tail_never_surfaces_a_partial_batch(self):
        wal = self._build()
        for point in range(wal.record_count):
            for torn in (1, 5, 11):
                result = wal.prefix(point, torn_tail_bytes=torn).replay()
                assert result.commits_applied in (0, self.BATCH, 2 * self.BATCH)
                assert result.halt == "torn-record"
                assert result.quarantined_bytes > 0

    def test_corrupt_batch_record_quarantines_batch(self):
        wal = Wal(group_commit_size=2)
        _run_txns(wal, 2, pages_per_txn=1)  # pages + one REC_BATCH
        assert wal.wal_stats.batch_records == 1
        # flip a bit inside the batch record (the last record's payload)
        wal.damage(len(wal._buf) - 1)
        result = wal.replay()
        assert result.halt == "corrupt-record"
        assert result.commits_applied == 0
        assert result.pages == {}

    def test_replay_counts_batches(self):
        wal = self._build()
        wal.flush_commits()  # the 7th commit goes out as a singleton
        result = wal.replay()
        assert result.commits_applied == self.TXNS
        assert result.batches_applied == 2
        assert result.metadata == b"meta%d" % (self.TXNS - 1)

    def test_prefix_drops_pending_batch(self):
        wal = self._build()
        assert wal.pending_commits() == 1
        crashed = wal.prefix(wal.record_count)
        assert crashed.pending_commits() == 0
        assert crashed.group_commit_size == self.BATCH
        assert crashed.replay().commits_applied == 2 * self.BATCH


def test_batch_record_kind_is_on_the_wire():
    """The wire format really contains REC_BATCH records (not commits
    replayed from memory state)."""
    wal = Wal(group_commit_size=2)
    _run_txns(wal, 2)
    kinds = [wal._buf[offset + 4] for offset in wal._offsets]  # magic is 4B
    assert REC_BATCH in kinds
    # round-trip through a byte-identical clone
    clone = wal.prefix(wal.record_count)
    assert clone.replay().commits_applied == 2
