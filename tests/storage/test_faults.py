"""Unit tests for the deterministic fault injector."""

import pytest

from repro.errors import ChecksumError, InjectedFaultError, StorageError
from repro.storage import FaultInjector, Pager


def _pager_with_pages(pages=3, faults=None):
    pager = Pager(page_size=128, pool_pages=8, faults=faults)
    for index in range(pages):
        page = pager.allocate()
        page.data[0] = index + 1
        pager.mark_dirty(page)
    return pager


class TestWriteFailures:
    def test_nth_write_fails_once(self):
        faults = FaultInjector(seed=7)
        pager = _pager_with_pages(faults=faults)
        faults.fail_after_writes(2)
        with pytest.raises(InjectedFaultError):
            pager.flush()
        assert faults.fired["write"] == 1
        # one-shot: the retry goes through
        pager.flush()
        assert faults.fired["write"] == 1

    def test_failed_write_leaves_wal_untouched(self):
        from repro.storage import Wal

        wal = Wal()
        faults = FaultInjector(seed=7)
        pager = Pager(page_size=128, pool_pages=8, wal=wal, faults=faults)
        page = pager.allocate()
        page.data[0] = 0xAB
        pager.mark_dirty(page)
        faults.fail_after_writes(1)
        with pytest.raises(InjectedFaultError):
            pager.flush()
        assert wal.record_count == 0  # fault fires before the append

    def test_disarm(self):
        faults = FaultInjector()
        pager = _pager_with_pages(faults=faults)
        faults.fail_after_writes(1)
        faults.disarm_write_failure()
        pager.flush()
        assert faults.fired["write"] == 0

    def test_countdown_validated(self):
        with pytest.raises(StorageError):
            FaultInjector().fail_after_writes(0)


class TestBitFlips:
    def test_flip_is_caught_by_checksum(self):
        faults = FaultInjector(seed=11)
        pager = _pager_with_pages(faults=faults)
        pager.flush()
        page_id, _offset, _bit = faults.flip_page_bit(pager)
        with pytest.raises(ChecksumError):
            pager.read(page_id)
        assert pager.stats.checksum_failures == 1
        assert faults.fired["bitflip"] == 1

    def test_same_seed_same_damage(self):
        first = FaultInjector(seed=42).flip_page_bit(_pager_with_pages())
        second = FaultInjector(seed=42).flip_page_bit(_pager_with_pages())
        assert first == second

    def test_pinned_coordinates(self):
        faults = FaultInjector()
        pager = _pager_with_pages()
        pager.flush()
        assert faults.flip_page_bit(pager, page_id=1, offset=3, bit=6) == (1, 3, 6)
        with pytest.raises(ChecksumError):
            pager.read(1)

    def test_empty_disk_rejected(self):
        with pytest.raises(StorageError):
            FaultInjector().flip_page_bit(Pager(page_size=128, pool_pages=2))


class TestReadPathChaos:
    def _cold_pager(self, faults):
        pager = _pager_with_pages(faults=faults)
        pager.flush()
        pager._pool.clear()
        return pager

    def test_transient_fault_fires_on_cold_read(self):
        faults = FaultInjector(seed=1)
        pager = self._cold_pager(faults)
        faults.arm_read_faults(transient_rate=1.0, max_fires=1)
        from repro.errors import TransientFetchError

        with pytest.raises(TransientFetchError):
            pager.read(0)
        # one-shot budget spent: the retry reads clean
        assert pager.read(0).data[0] == 1
        assert faults.fired["read_transient"] == 1

    def test_warm_reads_never_fault(self):
        faults = FaultInjector(seed=1)
        pager = _pager_with_pages(faults=faults)  # pool still warm
        faults.arm_read_faults(transient_rate=1.0)
        for page_id in range(3):
            pager.read(page_id)
        assert faults.fired["read_transient"] == 0

    def test_latency_spike_uses_injected_sleep(self):
        slept = []
        faults = FaultInjector(seed=1)
        pager = self._cold_pager(faults)
        faults.arm_read_faults(
            latency_rate=1.0, latency_s=0.25, max_fires=2, sleep=slept.append
        )
        pager.read(0)
        pager._pool.clear()
        pager.read(1)
        assert slept == [0.25, 0.25]
        assert faults.fired["read_latency"] == 2

    def test_fetch_time_bitflip_caught_by_crc(self):
        faults = FaultInjector(seed=9)
        pager = self._cold_pager(faults)
        faults.arm_read_faults(bitflip_rate=1.0, max_fires=1)
        with pytest.raises(ChecksumError):
            pager.read(0)
        # the flip is persistent: the page stays poisoned after disarm
        faults.disarm_read_faults()
        with pytest.raises(ChecksumError):
            pager.read(0)
        assert faults.fired["read_bitflip"] == 1

    def test_same_seed_same_schedule(self):
        def run(seed):
            faults = FaultInjector(seed=seed)
            pager = self._cold_pager(faults)
            faults.arm_read_faults(transient_rate=0.5)
            outcomes = []
            for page_id in range(3):
                pager._pool.clear()
                try:
                    pager.read(page_id)
                    outcomes.append("ok")
                except Exception as exc:
                    outcomes.append(type(exc).__name__)
            return outcomes

        assert run(21) == run(21)

    def test_rates_validated(self):
        with pytest.raises(StorageError):
            FaultInjector().arm_read_faults(transient_rate=1.5)
        with pytest.raises(StorageError):
            FaultInjector().arm_read_faults(bitflip_rate=-0.1)
        with pytest.raises(StorageError):
            FaultInjector().arm_read_faults(latency_rate=0.5, latency_s=0)

    def test_disarm_clears_all_rates(self):
        faults = FaultInjector()
        faults.arm_read_faults(transient_rate=1.0, max_fires=5)
        faults.disarm_read_faults()
        pager = self._cold_pager(faults)
        pager.read(0)
        assert faults.fired["read_transient"] == 0


class TestSiteOutages:
    def test_registry_round_trip(self):
        faults = FaultInjector()
        faults.take_site_down("site1")
        assert faults.site_is_down("site1")
        assert not faults.site_is_down("site0")
        faults.restore_site("site1")
        assert not faults.site_is_down("site1")

    def test_restore_all(self):
        faults = FaultInjector()
        faults.take_site_down("a")
        faults.take_site_down("b")
        faults.restore_all_sites()
        assert faults.down_sites() == set()

    def test_random_victim_is_deterministic(self):
        names = ["site0", "site1", "site2"]
        first = FaultInjector(seed=3).take_random_site_down(names)
        second = FaultInjector(seed=3).take_random_site_down(names)
        assert first == second
        with pytest.raises(StorageError):
            FaultInjector().take_random_site_down([])
