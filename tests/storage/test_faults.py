"""Unit tests for the deterministic fault injector."""

import pytest

from repro.errors import ChecksumError, InjectedFaultError, StorageError
from repro.storage import FaultInjector, Pager


def _pager_with_pages(pages=3, faults=None):
    pager = Pager(page_size=128, pool_pages=8, faults=faults)
    for index in range(pages):
        page = pager.allocate()
        page.data[0] = index + 1
        pager.mark_dirty(page)
    return pager


class TestWriteFailures:
    def test_nth_write_fails_once(self):
        faults = FaultInjector(seed=7)
        pager = _pager_with_pages(faults=faults)
        faults.fail_after_writes(2)
        with pytest.raises(InjectedFaultError):
            pager.flush()
        assert faults.fired["write"] == 1
        # one-shot: the retry goes through
        pager.flush()
        assert faults.fired["write"] == 1

    def test_failed_write_leaves_wal_untouched(self):
        from repro.storage import Wal

        wal = Wal()
        faults = FaultInjector(seed=7)
        pager = Pager(page_size=128, pool_pages=8, wal=wal, faults=faults)
        page = pager.allocate()
        page.data[0] = 0xAB
        pager.mark_dirty(page)
        faults.fail_after_writes(1)
        with pytest.raises(InjectedFaultError):
            pager.flush()
        assert wal.record_count == 0  # fault fires before the append

    def test_disarm(self):
        faults = FaultInjector()
        pager = _pager_with_pages(faults=faults)
        faults.fail_after_writes(1)
        faults.disarm_write_failure()
        pager.flush()
        assert faults.fired["write"] == 0

    def test_countdown_validated(self):
        with pytest.raises(StorageError):
            FaultInjector().fail_after_writes(0)


class TestBitFlips:
    def test_flip_is_caught_by_checksum(self):
        faults = FaultInjector(seed=11)
        pager = _pager_with_pages(faults=faults)
        pager.flush()
        page_id, _offset, _bit = faults.flip_page_bit(pager)
        with pytest.raises(ChecksumError):
            pager.read(page_id)
        assert pager.stats.checksum_failures == 1
        assert faults.fired["bitflip"] == 1

    def test_same_seed_same_damage(self):
        first = FaultInjector(seed=42).flip_page_bit(_pager_with_pages())
        second = FaultInjector(seed=42).flip_page_bit(_pager_with_pages())
        assert first == second

    def test_pinned_coordinates(self):
        faults = FaultInjector()
        pager = _pager_with_pages()
        pager.flush()
        assert faults.flip_page_bit(pager, page_id=1, offset=3, bit=6) == (1, 3, 6)
        with pytest.raises(ChecksumError):
            pager.read(1)

    def test_empty_disk_rejected(self):
        with pytest.raises(StorageError):
            FaultInjector().flip_page_bit(Pager(page_size=128, pool_pages=2))


class TestSiteOutages:
    def test_registry_round_trip(self):
        faults = FaultInjector()
        faults.take_site_down("site1")
        assert faults.site_is_down("site1")
        assert not faults.site_is_down("site0")
        faults.restore_site("site1")
        assert not faults.site_is_down("site1")

    def test_restore_all(self):
        faults = FaultInjector()
        faults.take_site_down("a")
        faults.take_site_down("b")
        faults.restore_all_sites()
        assert faults.down_sites() == set()

    def test_random_victim_is_deterministic(self):
        names = ["site0", "site1", "site2"]
        first = FaultInjector(seed=3).take_random_site_down(names)
        second = FaultInjector(seed=3).take_random_site_down(names)
        assert first == second
        with pytest.raises(StorageError):
            FaultInjector().take_random_site_down([])
