"""Shared fixtures and an import-path shim.

The shim makes ``pytest`` work even when the package has not been
installed (no-network environments cannot run PEP-517 editable
installs; see setup.py).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, _SRC)

import pytest

from repro.generator import generate_dblp, generate_xmark, random_document
from repro.xmltree import build, parse


@pytest.fixture
def small_tree():
    """A 9-node mixed-fan-out tree used across unit tests."""
    return parse("<a><b><c/><c/><c/></b><d><e/><e/></d><f/></a>")


@pytest.fixture
def medium_tree():
    """A ~500-node random tree (seeded, stable across runs)."""
    return random_document(500, seed=11, fanout_kind="uniform", low=1, high=6)


@pytest.fixture
def deep_tree():
    """A recursion-heavy tree: depth 5, breadth 3 (364 nodes)."""

    def rec(depth):
        if depth == 0:
            return "leaf"
        return ("n", [rec(depth - 1) for _ in range(3)])

    return build(rec(5))


@pytest.fixture(scope="session")
def xmark_tree():
    return generate_xmark(scale=0.05, seed=3)


@pytest.fixture(scope="session")
def dblp_tree():
    return generate_dblp(entries=120, seed=4)
