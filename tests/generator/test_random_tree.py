"""Tests for the parametric random tree generator."""

import random

import pytest

from repro.errors import ReproError
from repro.generator import (
    FanOutDistribution,
    RandomTreeConfig,
    generate_tree,
    random_document,
    random_node,
)


class TestDeterminism:
    def test_same_seed_same_tree(self):
        first = random_document(300, seed=5)
        second = random_document(300, seed=5)
        assert [n.tag for n in first.preorder()] == [n.tag for n in second.preorder()]

    def test_different_seed_differs(self):
        first = random_document(300, seed=5)
        second = random_document(300, seed=6)
        assert [n.tag for n in first.preorder()] != [n.tag for n in second.preorder()]


class TestBudget:
    @pytest.mark.parametrize("count", [1, 2, 50, 500])
    def test_exact_node_count(self, count):
        tree = random_document(count, seed=1)
        assert tree.size() == count

    def test_invalid_count(self):
        with pytest.raises(ReproError):
            generate_tree(RandomTreeConfig(node_count=0))


class TestDistributions:
    def test_uniform_bounds(self):
        config = RandomTreeConfig(
            node_count=500, fan_out=FanOutDistribution(kind="uniform", low=2, high=4)
        )
        tree = generate_tree(config, seed=3)
        for node in tree.preorder():
            if node.children and node.fan_out < 2:
                # only budget exhaustion can undercut the minimum
                assert tree.size() == 500

    def test_constant(self):
        config = RandomTreeConfig(
            node_count=40, fan_out=FanOutDistribution(kind="constant", value=3)
        )
        tree = generate_tree(config, seed=1)
        internal = [n for n in tree.preorder() if n.children]
        assert all(n.fan_out == 3 for n in internal[:-1])

    def test_zipf_produces_disparity(self):
        config = RandomTreeConfig(
            node_count=2000,
            fan_out=FanOutDistribution(kind="zipf", exponent=1.2, maximum=80),
        )
        tree = generate_tree(config, seed=7)
        from repro.xmltree import compute_stats

        assert compute_stats(tree).fan_out_disparity > 3

    def test_geometric_mean(self):
        distribution = FanOutDistribution(kind="geometric", mean=4.0)
        rng = random.Random(0)
        samples = [distribution.sample(rng) for _ in range(3000)]
        assert 3.0 < sum(samples) / len(samples) < 5.0

    def test_unknown_kind(self):
        with pytest.raises(ReproError):
            FanOutDistribution(kind="cauchy").sample(random.Random(0))


class TestOptions:
    def test_max_depth_respected(self):
        config = RandomTreeConfig(node_count=1000, max_depth=4)
        tree = generate_tree(config, seed=2)
        assert tree.height() <= 4

    def test_text_sprinkling(self):
        config = RandomTreeConfig(node_count=200, text_probability=1.0)
        tree = generate_tree(config, seed=2)
        from repro.xmltree import NodeKind

        texts = [n for n in tree.preorder() if n.kind is NodeKind.TEXT]
        assert texts

    def test_attributes(self):
        config = RandomTreeConfig(node_count=100, attribute_probability=1.0)
        tree = generate_tree(config, seed=2)
        assert all("id" in n.attributes for n in tree.preorder() if n.parent is not None)

    def test_random_node(self):
        tree = random_document(50, seed=8)
        rng = random.Random(0)
        picked = {random_node(tree, rng).node_id for _ in range(60)}
        assert len(picked) > 5
        assert tree.root.node_id not in picked

    def test_random_node_single_node_tree(self):
        from repro.xmltree import build

        with pytest.raises(ReproError):
            random_node(build("solo"), random.Random(0))
