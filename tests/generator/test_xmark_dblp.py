"""Tests for the XMark-like and DBLP-like document generators."""

from repro.generator import DBLP_QUERIES, XMARK_QUERIES, generate_dblp, generate_xmark
from repro.query import XPathEngine
from repro.xmltree import compute_stats


class TestXmark:
    def test_deterministic(self):
        first = generate_xmark(0.03, seed=1)
        second = generate_xmark(0.03, seed=1)
        assert [n.tag for n in first.preorder()] == [n.tag for n in second.preorder()]

    def test_scale_grows_document(self):
        small = generate_xmark(0.02, seed=1).size()
        large = generate_xmark(0.1, seed=1).size()
        assert large > small * 2

    def test_expected_sections(self):
        tree = generate_xmark(0.03, seed=2)
        top = [n.tag for n in tree.root.children]
        assert top == ["regions", "categories", "people", "open_auctions", "closed_auctions"]

    def test_references_are_valid(self):
        tree = generate_xmark(0.05, seed=3)
        person_ids = {n.attributes["id"] for n in tree.find_by_tag("person")}
        for ref in tree.find_by_tag("personref"):
            assert ref.attributes["person"] in person_ids
        item_ids = {n.attributes["id"] for n in tree.find_by_tag("item")}
        for ref in tree.find_by_tag("itemref"):
            assert ref.attributes["item"] in item_ids

    def test_queries_run_and_agree(self):
        tree = generate_xmark(0.04, seed=4)
        engine = XPathEngine(tree)
        for query in XMARK_QUERIES:
            navigational = engine.select(query, "navigational")
            ruid = engine.select(query, "ruid")
            assert [n.node_id for n in navigational] == [n.node_id for n in ruid], query


class TestDblp:
    def test_shallow_wide_shape(self):
        tree = generate_dblp(entries=200, seed=1)
        stats = compute_stats(tree)
        assert stats.height <= 4
        assert tree.root.fan_out == 200

    def test_entry_fields(self):
        tree = generate_dblp(entries=50, seed=2)
        for entry in tree.root.children:
            child_tags = {c.tag for c in entry.children}
            assert "title" in child_tags
            assert "year" in child_tags
            assert "author" in child_tags

    def test_queries_run_and_agree(self):
        tree = generate_dblp(entries=80, seed=3)
        engine = XPathEngine(tree)
        for query in DBLP_QUERIES:
            navigational = engine.select(query, "navigational")
            ruid = engine.select(query, "ruid")
            assert [n.node_id for n in navigational] == [n.node_id for n in ruid], query
