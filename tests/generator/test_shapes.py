"""Tests for canonical shapes."""

import pytest

from repro.errors import ReproError
from repro.generator import (
    comb_tree,
    fig1_tree,
    fig4_tree,
    kary_tree,
    path_tree,
    shape_catalog,
    skewed_tree,
    star_tree,
)


class TestBasicShapes:
    def test_path(self):
        tree = path_tree(10)
        assert tree.size() == 10
        assert tree.height() == 10
        assert tree.max_fan_out() == 1

    def test_star(self):
        tree = star_tree(25)
        assert tree.size() == 26
        assert tree.height() == 2
        assert tree.max_fan_out() == 25

    def test_comb(self):
        tree = comb_tree(10)
        assert tree.height() == 10
        assert tree.max_fan_out() == 2

    def test_skewed(self):
        tree = skewed_tree(depth=15, heavy_fan_out=40)
        assert tree.max_fan_out() == 41  # heavy leaves + the chain child
        assert tree.height() == 15

    def test_kary(self):
        tree = kary_tree(3, 4)
        assert tree.size() == 40

    @pytest.mark.parametrize("factory,args", [
        (path_tree, (0,)),
        (star_tree, (-1,)),
        (comb_tree, (0,)),
        (skewed_tree, (0, 5)),
    ])
    def test_validation(self, factory, args):
        with pytest.raises(ReproError):
            factory(*args)

    def test_catalog(self):
        catalog = shape_catalog(100)
        assert set(catalog) == {"path", "star", "comb", "skewed", "binary"}
        for tree in catalog.values():
            assert tree.size() > 10


class TestPaperTrees:
    def test_fig1_tags_carry_uids(self):
        tree = fig1_tree()
        tags = {n.tag for n in tree.preorder()}
        assert tags == {"n1", "n2", "n3", "n8", "n9", "n23", "n26", "n27"}

    def test_fig4_has_expected_marked_nodes(self):
        tree = fig4_tree()
        tags = {n.tag for n in tree.preorder()}
        assert {"r", "a2", "a3", "a4", "a5", "a6"} <= tags
        assert tree.root.fan_out == 4
