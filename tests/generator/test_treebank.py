"""Tests for the treebank-like generator."""

from repro.core import Ruid2Scheme, UidScheme
from repro.generator import TREEBANK_QUERIES, generate_treebank
from repro.query import XPathEngine
from repro.xmltree import compute_stats


class TestGeneration:
    def test_deterministic(self):
        first = generate_treebank(sentences=8, seed=3)
        second = generate_treebank(sentences=8, seed=3)
        assert [n.tag for n in first.preorder()] == [n.tag for n in second.preorder()]

    def test_recursion_heavy(self):
        tree = generate_treebank(sentences=15, max_depth=16, seed=4)
        stats = compute_stats(tree)
        assert stats.max_tag_recursion >= 3  # same category nests
        assert stats.height > 8
        assert stats.max_fan_out <= 20  # small fan-outs throughout

    def test_depth_cap_respected(self):
        tree = generate_treebank(sentences=10, max_depth=6, seed=5)
        # grammar tails can add a few levels past the cap before
        # collapsing; the bound is cap + longest forced chain
        assert tree.height() <= 6 + 8

    def test_text_toggle(self):
        with_text = generate_treebank(sentences=3, seed=6, with_text=True)
        without = generate_treebank(sentences=3, seed=6, with_text=False)
        from repro.xmltree import NodeKind

        assert any(n.kind is NodeKind.TEXT for n in with_text.preorder())
        assert not any(n.kind is NodeKind.TEXT for n in without.preorder())


class TestObservationOne:
    def test_ruid_labels_narrower_than_uid_on_recursion(self):
        """Observation 1: recursion-heavy trees are where rUID beats
        UID on identifier width."""
        tree = generate_treebank(sentences=25, max_depth=18, seed=7)
        uid_bits = UidScheme().build(tree).max_label_bits()
        ruid_bits = Ruid2Scheme(max_area_size=12).build(tree).max_label_bits()
        assert ruid_bits < uid_bits

    def test_queries_agree_across_strategies(self):
        tree = generate_treebank(sentences=12, seed=8)
        engine = XPathEngine(tree)
        for query in TREEBANK_QUERIES:
            navigational = engine.select(query, "navigational")
            ruid = engine.select(query, "ruid")
            assert [n.node_id for n in navigational] == [
                n.node_id for n in ruid
            ], query
