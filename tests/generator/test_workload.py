"""Tests for update workload generation and replay."""

import pytest

from repro.core import Ruid2Scheme, UidScheme
from repro.errors import ReproError
from repro.generator import (
    UpdateWorkloadConfig,
    apply_workload,
    generate_update_workload,
    random_document,
)


class TestGeneration:
    def test_op_count(self):
        tree = random_document(200, seed=71)
        ops = generate_update_workload(tree, UpdateWorkloadConfig(operations=25), seed=1)
        assert len(ops) == 25

    def test_deterministic(self):
        tree = random_document(200, seed=71)
        first = generate_update_workload(tree, UpdateWorkloadConfig(operations=20), seed=2)
        second = generate_update_workload(tree, UpdateWorkloadConfig(operations=20), seed=2)
        assert first == second

    def test_insert_fraction(self):
        tree = random_document(300, seed=72)
        ops = generate_update_workload(
            tree, UpdateWorkloadConfig(operations=60, insert_fraction=1.0), seed=3
        )
        assert all(op.kind == "insert" for op in ops)

    @pytest.mark.parametrize("bias", ["uniform", "shallow", "deep"])
    def test_biases_run(self, bias):
        tree = random_document(150, seed=73)
        ops = generate_update_workload(
            tree, UpdateWorkloadConfig(operations=15, depth_bias=bias), seed=4
        )
        assert len(ops) == 15

    def test_unknown_bias(self):
        tree = random_document(50, seed=74)
        with pytest.raises(ReproError):
            generate_update_workload(
                tree, UpdateWorkloadConfig(operations=5, depth_bias="sideways"), seed=5
            )

    def test_source_tree_untouched(self):
        tree = random_document(100, seed=75)
        size_before = tree.size()
        generate_update_workload(tree, UpdateWorkloadConfig(operations=30), seed=6)
        assert tree.size() == size_before


class TestReplay:
    def test_replay_identical_across_schemes(self):
        base = random_document(200, seed=76, fanout_kind="uniform", low=1, high=4)
        ops = generate_update_workload(base, UpdateWorkloadConfig(operations=30), seed=7)

        def replay(scheme):
            tree = base.copy()
            labeling = scheme.build(tree)
            reports = list(apply_workload(tree, ops, labeling.insert, labeling.delete))
            return tree, reports

        tree_uid, reports_uid = replay(UidScheme())
        tree_ruid, reports_ruid = replay(Ruid2Scheme(max_area_size=10))
        # both replays converge to the same document shape
        assert [n.tag for n in tree_uid.preorder()] == [n.tag for n in tree_ruid.preorder()]
        assert len(reports_uid) == len(reports_ruid) == 30

    def test_op_paths_stable(self):
        base = random_document(100, seed=77)
        ops = generate_update_workload(
            base, UpdateWorkloadConfig(operations=10, insert_fraction=0.5), seed=8
        )
        tree = base.copy()
        for op in ops:
            node = op.locate(tree)
            if op.kind == "insert":
                from repro.xmltree import element

                tree.insert_node(node, op.position, element(op.tag))
            else:
                tree.delete_subtree(node)
        # replay completed without path errors
        assert tree.size() > 0
