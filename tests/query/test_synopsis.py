"""Tests for the path summary (DataGuide) and tag→area synopsis."""

import pytest

from repro.core import Ruid2Labeling, SizeCapPartitioner
from repro.generator import generate_xmark
from repro.query import PathSummary, TagAreaSynopsis
from repro.xmltree import parse


@pytest.fixture
def tree():
    return parse(
        "<site><people><person><name>A</name></person>"
        "<person><name>B</name><age>9</age></person></people>"
        "<items><item><name>L</name></item></items></site>"
    )


class TestPathSummary:
    def test_distinct_paths(self, tree):
        summary = PathSummary(tree)
        expected = {
            ("site",),
            ("site", "people"),
            ("site", "people", "person"),
            ("site", "people", "person", "name"),
            ("site", "people", "person", "age"),
            ("site", "items"),
            ("site", "items", "item"),
            ("site", "items", "item", "name"),
        }
        assert set(summary.paths()) == expected
        assert summary.distinct_paths == len(expected)

    def test_counts(self, tree):
        summary = PathSummary(tree)
        assert summary.count(("site", "people", "person")) == 2
        assert summary.count(("site", "people", "person", "name")) == 2
        assert summary.count(("site", "people", "person", "age")) == 1
        assert summary.count(("site", "nope")) == 0
        assert summary.count(("wrongroot",)) == 0

    def test_contains(self, tree):
        summary = PathSummary(tree)
        assert ("site", "items", "item") in summary
        assert ("site", "items", "person") not in summary

    def test_paths_ending_with(self, tree):
        summary = PathSummary(tree)
        endings = summary.paths_ending_with("name")
        assert set(endings) == {
            ("site", "people", "person", "name"),
            ("site", "items", "item", "name"),
        }

    def test_text_nodes_excluded_by_default(self, tree):
        summary = PathSummary(tree)
        assert all("#text" not in path for path in summary.paths())

    def test_summary_is_much_smaller_than_document(self):
        tree = generate_xmark(scale=0.2, seed=13)
        summary = PathSummary(tree)
        assert summary.distinct_paths < tree.size() / 5


class TestTagAreaSynopsis:
    def test_areas_cover_all_occurrences(self, tree):
        labeling = Ruid2Labeling(tree, partitioner=SizeCapPartitioner(4))
        synopsis = TagAreaSynopsis(labeling)
        for node in tree.preorder():
            label = labeling.label_of(node)
            assert label.global_index in synopsis.areas_for(node.tag)

    def test_unknown_tag(self, tree):
        labeling = Ruid2Labeling(tree, partitioner=SizeCapPartitioner(4))
        synopsis = TagAreaSynopsis(labeling)
        assert synopsis.areas_for("ghost") == []
        assert synopsis.selectivity("ghost") == 0.0

    def test_selectivity_bounds(self):
        tree = generate_xmark(scale=0.1, seed=14)
        labeling = Ruid2Labeling(tree, partitioner=SizeCapPartitioner(16))
        synopsis = TagAreaSynopsis(labeling)
        for tag in ("person", "item", "city"):
            assert 0.0 < synopsis.selectivity(tag) <= 1.0
        # a rare tag should be much more selective than a ubiquitous one
        assert synopsis.selectivity("city") < 1.0

    def test_intersection(self, tree):
        labeling = Ruid2Labeling(tree, partitioner=SizeCapPartitioner(4))
        synopsis = TagAreaSynopsis(labeling)
        both = synopsis.areas_for_all(iter(["person", "age"]))
        assert set(both) <= set(synopsis.areas_for("person"))
        assert synopsis.areas_for_all(iter(["person", "ghost"])) == []

    def test_refresh_after_update(self, tree):
        from repro.core import Ruid2Updater
        from repro.xmltree import element

        labeling = Ruid2Labeling(tree, partitioner=SizeCapPartitioner(4))
        synopsis = TagAreaSynopsis(labeling)
        updater = Ruid2Updater(labeling)
        people = tree.find_by_tag("people")[0]
        updater.insert(people, 0, element("robot"))
        assert synopsis.areas_for("robot") == []  # stale until refresh
        synopsis.refresh()
        robot = tree.find_by_tag("robot")[0]
        assert labeling.label_of(robot).global_index in synopsis.areas_for("robot")

    def test_routing_integration(self):
        """The synopsis drives §4 routing end-to-end."""
        from repro.storage import XmlDatabase
        from repro.core.scheme import Ruid2SchemeLabeling

        tree = generate_xmark(scale=0.08, seed=15)
        adapter = Ruid2SchemeLabeling(tree, partitioner=SizeCapPartitioner(16))
        synopsis = TagAreaSynopsis(adapter.core)
        database = XmlDatabase(page_size=1024, pool_pages=64)
        document = database.store_document("d", tree, adapter, partition_by_area=True)
        blind_rows, blind_count = document.nodes_with_tag_routed("person")
        routed_rows, routed_count = document.nodes_with_tag_routed(
            "person", synopsis.areas_for("person")
        )
        assert len(routed_rows) == len(blind_rows)
        assert routed_count <= blind_count
