"""Tests for EXPLAIN / EXPLAIN ANALYZE — engine plans and twig plans.

The plan must be *stable* (same query, same plan), *complete* (every
step accounted for, with a recognised route), and under ANALYZE the
executed result must be identical to a plain ``query()`` run. Twig
plans are checked across all baseline numbering schemes: candidate
counts and join-algorithm choices depend only on the document, never
on the scheme that labels it.
"""

import pytest

from repro.baselines import get_scheme
from repro.core import Ruid2Scheme
from repro.generator import generate_xmark
from repro.query import TwigMatcher, XPathEngine
from repro.xmltree import parse

SCHEMES = ("uid", "ruid2", "dewey", "prepost", "region", "ordpath")

ENGINE_QUERIES = (
    "/site/people/person",            # child chain
    "//person/name",                  # descendant then child
    "//person[name]/name",            # predicate (per-node fallback)
    "//open_auction[bidder]/seller",  # twig-shaped XPath
    "//ghost_tag",                    # synopsis-prunable
    "//person/name | //item/name",    # union
)


@pytest.fixture(scope="module")
def xmark_tree():
    return generate_xmark(scale=0.05, seed=404)


@pytest.fixture(scope="module")
def engine(xmark_tree):
    labeling = Ruid2Scheme(max_area_size=16).build(xmark_tree)
    return XPathEngine(xmark_tree, labeling=labeling)


class TestExplainStatic:
    @pytest.mark.parametrize("query", ENGINE_QUERIES)
    def test_complete_one_step_plan_per_location_step(self, engine, query):
        plan = engine.explain(query)
        assert not plan.analyzed
        assert plan.expression == query
        compiled = engine.compile(query)
        paths = getattr(compiled, "paths", [compiled])
        assert len(plan.paths) == len(paths)
        for path_plan, path in zip(plan.paths, paths):
            assert len(path_plan.steps) == len(path.steps)
            for step in path_plan.steps:
                assert step.axis
                assert step.test
                assert step.route in ("batched", "per-node", "pruned")

    @pytest.mark.parametrize("query", ENGINE_QUERIES)
    def test_stable_across_repeats(self, engine, query):
        first = engine.explain(query).as_dict()
        second = engine.explain(query).as_dict()
        # the second compile is served from the plan cache
        second["cache_hit"] = first["cache_hit"]
        assert first == second

    def test_cache_hit_flag(self, xmark_tree):
        fresh = XPathEngine(
            xmark_tree, labeling=Ruid2Scheme(max_area_size=16).build(xmark_tree)
        )
        assert fresh.explain("//never/seen").cache_hit is False
        assert fresh.explain("//never/seen").cache_hit is True

    def test_pruned_step_reports_zero_estimate(self, engine):
        plan = engine.explain("//ghost_tag")
        last = plan.paths[0].steps[-1]
        assert last.route == "pruned"
        assert last.estimate == 0

    def test_predicate_step_falls_back_per_node(self, engine):
        plan = engine.explain("//person[name]")
        assert plan.paths[0].steps[-1].predicates == 1
        assert plan.paths[0].steps[-1].route == "per-node"

    def test_navigational_strategy_routes(self, engine):
        plan = engine.explain("//person/name", strategy="navigational")
        for step in plan.paths[0].steps:
            assert step.route == "navigational"

    def test_scalar_expression(self, engine):
        plan = engine.explain("count(//person)")
        assert plan.scalar
        assert plan.paths == []
        assert "scalar" in plan.format()

    def test_format_lists_every_step(self, engine):
        plan = engine.explain("//person/name | //item/name")
        rendering = plan.format()
        assert rendering.startswith("EXPLAIN '//person/name | //item/name'")
        total_steps = sum(len(p.steps) for p in plan.paths)
        assert len(plan.step_rows()) == total_steps


class TestExplainAnalyze:
    @pytest.mark.parametrize("query", ENGINE_QUERIES)
    @pytest.mark.parametrize("strategy", ("ruid", "navigational"))
    def test_result_identical_to_plain_query(self, engine, query, strategy):
        plan = engine.explain(query, strategy=strategy, analyze=True)
        expected = engine.select(query, strategy)
        assert plan.analyzed
        assert plan.result_count == len(expected)
        assert [n.node_id for n in plan.result] == [n.node_id for n in expected]

    @pytest.mark.parametrize("query", ENGINE_QUERIES)
    def test_every_step_measured(self, engine, query):
        plan = engine.explain(query, analyze=True)
        assert plan.total_ns is not None and plan.total_ns > 0
        for path_plan in plan.paths:
            for step in path_plan.steps:
                assert step.calls >= 1
                assert step.time_ns is not None
                assert step.in_count is not None
                assert step.out_count is not None

    def test_final_out_count_is_result_cardinality(self, engine):
        plan = engine.explain("//person/name", analyze=True)
        assert plan.paths[0].steps[-1].out_count == plan.result_count

    def test_observed_route_matches_prediction(self, engine):
        plan = engine.explain("//person/name", analyze=True)
        for step in plan.paths[0].steps:
            assert step.observed_route == step.route

    def test_analyze_does_not_pollute_engine_tracer(self, xmark_tree):
        fresh = XPathEngine(
            xmark_tree, labeling=Ruid2Scheme(max_area_size=16).build(xmark_tree)
        )
        fresh.explain("//person", analyze=True)
        assert fresh.evaluator("ruid").tracer is None

    def test_analyzed_format_has_measured_columns(self, engine):
        rendering = engine.explain("//person/name", analyze=True).format()
        assert "EXPLAIN ANALYZE" in rendering
        assert "results:" in rendering
        for column in ("calls", "in", "out", "ms", "observed"):
            assert column in rendering


TWIG_PATTERNS = (
    "person[name]",
    "open_auction[bidder][seller]",
    "person[profile//interest]",
    "site//person[address/city]",
)


class TestTwigExplain:
    @pytest.fixture(scope="class")
    def tree(self):
        return generate_xmark(scale=0.04, seed=405)

    @pytest.mark.parametrize("scheme_name", SCHEMES)
    @pytest.mark.parametrize("pattern", TWIG_PATTERNS)
    def test_static_plan_per_scheme(self, tree, scheme_name, pattern):
        matcher = TwigMatcher(get_scheme(scheme_name).build(tree))
        plan = matcher.explain(pattern, scheme=scheme_name)
        assert plan.scheme == scheme_name
        assert not plan.analyzed
        assert plan.nodes[0].depth == 0
        assert plan.nodes[0].algorithm == "-"
        for node_plan in plan.nodes:
            assert node_plan.algorithm in ("-", "rparent", "nested", "stack")
            assert node_plan.candidates >= 0

    @pytest.mark.parametrize("pattern", TWIG_PATTERNS)
    def test_plan_is_scheme_independent(self, tree, pattern):
        reference = TwigMatcher(get_scheme("dewey").build(tree)).explain(pattern)
        reference_rows = [
            (n.tag, n.axis, n.depth, n.candidates, n.algorithm)
            for n in reference.nodes
        ]
        for scheme_name in SCHEMES:
            plan = TwigMatcher(get_scheme(scheme_name).build(tree)).explain(pattern)
            rows = [
                (n.tag, n.axis, n.depth, n.candidates, n.algorithm)
                for n in plan.nodes
            ]
            assert rows == reference_rows, scheme_name

    @pytest.mark.parametrize("scheme_name", SCHEMES)
    def test_analyze_matches_plain_match(self, tree, scheme_name):
        matcher = TwigMatcher(get_scheme(scheme_name).build(tree))
        for pattern in TWIG_PATTERNS:
            plan = matcher.explain(pattern, analyze=True)
            assert plan.analyzed
            assert plan.match_count == len(matcher.match(pattern))
            root = plan.nodes[0]
            assert root.survivors == plan.match_count
            assert root.time_ns is not None

    def test_analyze_marks_skipped_branches(self):
        tree = parse("<a><b/><b/></a>")
        matcher = TwigMatcher(Ruid2Scheme(max_area_size=4).build(tree))
        plan = matcher.explain("a[ghost][b]", analyze=True)
        assert plan.match_count == 0
        tags = {n.tag: n for n in plan.nodes}
        # the empty ghost branch kills the match; b is never evaluated
        assert tags["ghost"].survivors == 0
        assert tags["b"].skipped

    def test_format_indents_pattern_tree(self, tree):
        matcher = TwigMatcher(get_scheme("dewey").build(tree))
        rendering = matcher.explain("person[name]", analyze=True).format()
        assert "EXPLAIN ANALYZE twig" in rendering
        assert "\n  name" in rendering  # depth-1 indent
        assert "matches:" in rendering
