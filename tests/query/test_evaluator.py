"""Tests for XPath evaluation semantics (both strategies)."""

import pytest

from repro.query import XPathEngine
from repro.xmltree import parse

DOC = """<site>
 <people>
  <person id="p1"><name>Alice</name><age>31</age></person>
  <person id="p2"><name>Bob</name><age>17</age></person>
  <person id="p3"><name>Cara</name><age>44</age></person>
 </people>
 <items>
  <item id="i1"><name>Lamp</name><price>19</price></item>
  <item id="i2"><name>Desk</name><price>140</price></item>
 </items>
</site>"""


@pytest.fixture(scope="module")
def engine():
    return XPathEngine(parse(DOC))


BOTH = pytest.mark.parametrize("strategy", ["navigational", "ruid"])


class TestSelection:
    @BOTH
    def test_absolute_child_path(self, engine, strategy):
        assert [n.tag for n in engine.select("/site/people/person", strategy)] == [
            "person"
        ] * 3

    @BOTH
    def test_descendant_shorthand(self, engine, strategy):
        assert engine.count("//name") == 5

    @BOTH
    def test_root_element_matched_by_descendants(self, engine, strategy):
        assert engine.count("//site") == 1

    @BOTH
    def test_wildcard(self, engine, strategy):
        assert [n.tag for n in engine.select("/site/*", strategy)] == ["people", "items"]

    @BOTH
    def test_parent_step(self, engine, strategy):
        result = engine.select("//age/..", strategy)
        assert {n.tag for n in result} == {"person"}
        assert len(result) == 3

    @BOTH
    def test_document_order_result(self, engine, strategy):
        names = engine.select("//name", strategy)
        values = [n.text_content() for n in names]
        assert values == ["Alice", "Bob", "Cara", "Lamp", "Desk"]

    @BOTH
    def test_union(self, engine, strategy):
        result = engine.select("//person/name | //item/price", strategy)
        assert len(result) == 5


class TestPredicates:
    @BOTH
    def test_position(self, engine, strategy):
        person = engine.select("/site/people/person[2]", strategy)
        assert engine.select_strings("/site/people/person[2]/name", strategy) == ["Bob"]
        assert len(person) == 1

    @BOTH
    def test_last(self, engine, strategy):
        assert engine.select_strings("//person[last()]/name", strategy) == ["Cara"]

    @BOTH
    def test_attribute_filter(self, engine, strategy):
        assert engine.select_strings("//person[@id='p2']/name", strategy) == ["Bob"]

    @BOTH
    def test_numeric_comparison(self, engine, strategy):
        assert engine.count("//person[age > 18]") == 2
        assert engine.count("//item[price <= 19]") == 1

    @BOTH
    def test_string_comparison_on_child(self, engine, strategy):
        assert engine.count("//person[name = 'Alice']") == 1
        assert engine.count("//person[name != 'Alice']") == 2

    @BOTH
    def test_boolean_connectives(self, engine, strategy):
        assert engine.count("//person[age > 18 and name != 'Cara']") == 1
        assert engine.count("//person[age < 18 or name = 'Cara']") == 2

    @BOTH
    def test_existence_predicate(self, engine, strategy):
        assert engine.count("//person[age]") == 3
        assert engine.count("//person[profile]") == 0

    @BOTH
    def test_position_function(self, engine, strategy):
        assert engine.count("//person[position() < 3]") == 2

    @BOTH
    def test_reverse_axis_positions(self, engine, strategy):
        # preceding-sibling counts backwards from the context node
        result = engine.select_strings(
            "//person[3]/preceding-sibling::person[1]/name", strategy
        )
        assert result == ["Bob"]


class TestFunctions:
    def test_count(self, engine):
        value = engine.evaluator("navigational").evaluate(engine.compile("count(//person)"))
        assert value == 3.0

    @BOTH
    def test_contains(self, engine, strategy):
        assert engine.count("//name[contains(., 'a')]") == 2  # Cara, Lamp

    @BOTH
    def test_starts_with(self, engine, strategy):
        assert engine.count("//name[starts-with(., 'D')]") == 1

    @BOTH
    def test_not(self, engine, strategy):
        assert engine.count("//person[not(age > 18)]") == 1

    @BOTH
    def test_name_function(self, engine, strategy):
        assert engine.count("//*[name() = 'item']") == 2

    @BOTH
    def test_string_length(self, engine, strategy):
        assert engine.count("//name[string-length() > 4]") == 1  # Alice

    def test_unsupported_function(self, engine):
        from repro.errors import UnsupportedFeatureError

        with pytest.raises(UnsupportedFeatureError):
            engine.select("//person[normalize-space(.)]")


class TestAxes:
    @BOTH
    def test_ancestor(self, engine, strategy):
        assert engine.count("//age/ancestor::site") == 1
        # site + people + the three person elements (deduplicated)
        assert engine.count("//age/ancestor::*") == 5

    @BOTH
    def test_following_preceding(self, engine, strategy):
        assert engine.count("//person[1]/following::name") == 4
        assert engine.count("//person[2]/preceding::name") == 1

    @BOTH
    def test_sibling_axes(self, engine, strategy):
        assert engine.count("//person/following-sibling::person") == 2
        assert engine.count("//item[2]/preceding-sibling::item") == 1

    @BOTH
    def test_descendant_or_self(self, engine, strategy):
        assert engine.count("//people/descendant-or-self::*") == 10

    @BOTH
    def test_text_nodes(self, engine, strategy):
        assert engine.count("//person/name/text()") == 3


# Strategy-agreement coverage (navigational vs labeled vs every
# numbering scheme, on this corpus and four generated ones) lives in
# tests/differential/test_differential.py.
