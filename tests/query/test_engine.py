"""Tests for the XPathEngine facade."""

import pytest

from repro.core import Ruid2Scheme
from repro.errors import QueryError
from repro.query import XPathEngine
from repro.xmltree import parse


@pytest.fixture
def tree():
    return parse("<a><b><c>one</c></b><b><c>two</c></b></a>")


class TestFacade:
    def test_compile_is_memoised(self, tree):
        engine = XPathEngine(tree)
        first = engine.compile("//c")
        second = engine.compile("//c")
        assert first is second

    def test_unknown_strategy(self, tree):
        with pytest.raises(QueryError):
            XPathEngine(tree).select("//c", strategy="quantum")

    def test_labeling_built_on_demand(self, tree):
        engine = XPathEngine(tree)
        assert engine.select("//c", "ruid")  # triggers labeling build
        assert engine.labeling() is engine.labeling()

    def test_prebuilt_labeling_reused(self, tree):
        labeling = Ruid2Scheme(max_area_size=4).build(tree)
        engine = XPathEngine(tree, labeling=labeling)
        assert engine.labeling() is labeling
        assert engine.count("//c", "ruid") == 2

    def test_select_strings(self, tree):
        assert XPathEngine(tree).select_strings("//c") == ["one", "two"]

    def test_context_node(self, tree):
        engine = XPathEngine(tree)
        second_b = tree.root.children[1]
        got = engine.select("c", context=second_b)
        assert [n.text_content() for n in got] == ["two"]

    def test_scalar_result_rejected_by_select(self, tree):
        with pytest.raises(QueryError):
            XPathEngine(tree).select("count(//c)", "navigational")

    def test_evaluate_scalar(self, tree):
        engine = XPathEngine(tree)
        value = engine.evaluator("navigational").evaluate(engine.compile("count(//c)"))
        assert value == 2.0
