"""Tests for the query fast path.

Covers the rank index (document-order ranks + interval ancestry), the
compiled-plan LRU cache and its counters, synopsis pruning, the fixed
``sort_nodes`` ranks for unindexed nodes, cardinality-based join
selection, and the rank-accelerated stack-tree join.
"""

import random

import pytest

from repro.baselines import get_scheme
from repro.generator import generate_xmark, random_document
from repro.query import (
    NavigationalEvaluator,
    SchemeEvaluator,
    XPathEngine,
    choose_join_algorithm,
    join_nodes,
    stack_tree_join,
)
from repro.query.joins import NESTED_LOOP_CUTOFF
from repro.xmltree import element
from repro.xmltree.node import NodeKind, XmlNode


@pytest.fixture(scope="module")
def corpus():
    return random_document(180, seed=77, fanout_kind="uniform", low=1, high=4)


@pytest.fixture(scope="module")
def xmark():
    return generate_xmark(scale=0.05, seed=11)


class TestRankIndex:
    def test_ranks_match_document_order(self, corpus):
        labeling = get_scheme("ruid2", max_area_size=8).build(corpus)
        index = labeling.rank_index()
        order = corpus.document_order_index()
        for node in corpus.preorder():
            assert index.rank_of(labeling.label_of(node)) == order[node.node_id]

    def test_intervals_match_ancestry(self, corpus):
        labeling = get_scheme("ruid2", max_area_size=8).build(corpus)
        index = labeling.rank_index()
        nodes = corpus.nodes()
        sample = nodes[:: max(1, len(nodes) // 15)]
        for upper in sample:
            for lower in sample:
                u = labeling.label_of(upper)
                d = labeling.label_of(lower)
                assert index.covers(u, d) == upper.is_ancestor_of(lower)
                assert index.covers(u, d, self_or=True) == (
                    upper is lower or upper.is_ancestor_of(lower)
                )

    def test_every_scheme_agrees(self, corpus):
        order = corpus.document_order_index()
        for scheme_name in ("uid", "dewey", "prepost", "region", "ordpath"):
            labeling = get_scheme(scheme_name).build(corpus)
            index = labeling.rank_index()
            for node in corpus.preorder():
                assert index.rank_of(labeling.label_of(node)) == order[node.node_id]

    def test_try_ranks_rejects_unknown_labels(self, corpus):
        labeling = get_scheme("ruid2", max_area_size=8).build(corpus)
        index = labeling.rank_index()
        known = [labeling.label_of(n) for n in corpus.nodes()[:4]]
        assert index.try_ranks(known) is not None
        assert index.try_ranks([*known, object()]) is None

    def test_rebuilt_after_update(self, corpus):
        tree = random_document(60, seed=5, fanout_kind="uniform", low=1, high=3)
        labeling = get_scheme("ruid2", max_area_size=8).build(tree)
        before = labeling.rank_index()
        generation = labeling.generation
        assert labeling.rank_index() is before  # stable within a generation
        labeling.insert(tree.root, 0, element("fresh"))
        assert labeling.generation > generation
        after = labeling.rank_index()
        assert after is not before
        order = tree.document_order_index()
        for node in tree.preorder():
            assert after.rank_of(labeling.label_of(node)) == order[node.node_id]


class TestPlanCache:
    def test_identity_and_counters(self, xmark):
        engine = XPathEngine(xmark)
        first = engine.compile("//person/name")
        assert engine.compile("//person/name") is first
        assert engine.stats.plan_misses == 1
        assert engine.stats.plan_hits == 1

    def test_lru_eviction(self, xmark):
        engine = XPathEngine(xmark, plan_cache_size=2)
        engine.compile("//a")
        engine.compile("//b")
        engine.compile("//a")  # refresh 'a'; 'b' is now least recent
        engine.compile("//c")  # evicts 'b'
        assert engine.stats.plan_evictions == 1
        hits = engine.stats.plan_hits
        engine.compile("//a")  # survived
        assert engine.stats.plan_hits == hits + 1
        misses = engine.stats.plan_misses
        engine.compile("//b")  # evicted — reparse
        assert engine.stats.plan_misses == misses + 1


class TestSynopsisPruning:
    def test_missing_tag_short_circuits(self, xmark):
        engine = XPathEngine(xmark)
        assert engine.select("//no_such_tag_anywhere", "ruid") == []
        assert engine.stats.synopsis_skips >= 1
        assert engine.select("//no_such_tag_anywhere", "navigational") == []

    def test_missing_attribute_short_circuits(self, xmark):
        engine = XPathEngine(xmark)
        skips = engine.stats.synopsis_skips
        ruid = engine.select("//person[@no_such_attribute]", "ruid")
        assert ruid == engine.select("//person[@no_such_attribute]", "navigational")
        assert engine.stats.synopsis_skips > skips

    def test_present_tags_unaffected(self, xmark):
        engine = XPathEngine(xmark)
        ruid = engine.select("//person/name", "ruid")
        nav = engine.select("//person/name", "navigational")
        assert [n.node_id for n in ruid] == [n.node_id for n in nav]
        assert ruid  # non-empty: nothing was wrongly pruned


class TestSortNodes:
    def test_explicit_ranks_for_unindexed_nodes(self, xmark):
        evaluator = NavigationalEvaluator(xmark)
        person = xmark.find_by_tag("person")[0]
        attributes = evaluator.axis_nodes(person, "attribute")
        assert attributes, "fixture person should carry attributes"
        mixed = [evaluator.document_node, xmark.root, person, *attributes]
        rng = random.Random(3)
        baseline = evaluator.sort_nodes(mixed)
        for _ in range(5):
            shuffled = list(mixed)
            rng.shuffle(shuffled)
            assert evaluator.sort_nodes(shuffled) == baseline
        # document node first, attributes directly after their element
        assert baseline[0] is evaluator.document_node
        assert baseline[1] is xmark.root
        position = baseline.index(person)
        assert set(baseline[position + 1 : position + 1 + len(attributes)]) == set(
            attributes
        )

    def test_detached_node_sorts_last(self, xmark):
        evaluator = NavigationalEvaluator(xmark)
        stray = XmlNode("stray", NodeKind.ELEMENT)
        ordered = evaluator.sort_nodes([stray, xmark.root])
        assert ordered == [xmark.root, stray]


class TestJoinSelection:
    def test_choice_by_cardinality(self):
        assert choose_join_algorithm(1, 1) == "nested"
        assert choose_join_algorithm(8, NESTED_LOOP_CUTOFF // 8) == "nested"
        assert choose_join_algorithm(NESTED_LOOP_CUTOFF, 2) == "stack"
        assert choose_join_algorithm(1000, 1000) == "stack"

    def test_auto_matches_stack(self, corpus):
        labeling = get_scheme("ruid2", max_area_size=8).build(corpus)
        nodes = corpus.nodes()
        for ancestors, descendants in (
            (nodes[:3], nodes[:5]),  # tiny — routed to nested loop
            (nodes[::3], nodes[::2]),  # large — routed to stack-tree
        ):
            auto = join_nodes(labeling, ancestors, descendants, algorithm="auto")
            stack = join_nodes(labeling, ancestors, descendants, algorithm="stack")
            assert [(id(a), id(d)) for a, d in auto] == [
                (id(a), id(d)) for a, d in stack
            ]


class TestRankedStackJoin:
    @pytest.mark.parametrize("scheme_name", ("uid", "ruid2", "dewey", "prepost", "region"))
    @pytest.mark.parametrize("self_or", (False, True))
    def test_matches_comparator_path(self, corpus, scheme_name, self_or):
        labeling = get_scheme(scheme_name).build(corpus)
        nodes = corpus.nodes()
        a_labels = [labeling.label_of(n) for n in nodes[::3]]
        d_labels = [labeling.label_of(n) for n in nodes[::2]]
        # duplicates and A∩D overlap exercise the tie-handling rules
        a_labels += a_labels[:5]
        d_labels += a_labels[:3]
        ranked = stack_tree_join(labeling, a_labels, d_labels, self_or=self_or)
        comparator = stack_tree_join(
            labeling, a_labels, d_labels, self_or=self_or, use_rank_index=False
        )
        assert ranked == comparator

    def test_unknown_labels_fall_back(self, corpus):
        labeling = get_scheme("region").build(corpus)
        nodes = corpus.nodes()
        a_labels = [labeling.label_of(n) for n in nodes[::4]]
        d_labels = [labeling.label_of(n) for n in nodes[::3]]
        # region labels are tuples; a synthetic one is outside the index
        synthetic = (10**9, 10**9 + 1, 0)
        assert labeling.rank_index().try_ranks([synthetic]) is None
        pairs = stack_tree_join(labeling, [*a_labels, synthetic], d_labels)
        expected = stack_tree_join(labeling, a_labels, d_labels)
        assert pairs == expected


class TestBatchedEvaluator:
    QUERIES = (
        "//person",
        "//person/name",
        "/site//item",
        "//bidder/ancestor::open_auction",
        "//name/..",
        "//text()",
        "//node()",
        "/site/*",
        "//person/address/city",
        "descendant::item/name",
    )

    def test_batched_equals_legacy_and_navigational(self, xmark):
        labeling = get_scheme("ruid2", max_area_size=24).build(xmark)
        engine = XPathEngine(xmark, labeling=labeling)
        legacy = SchemeEvaluator(labeling, batched=False, memoize=False)
        for query in self.QUERIES:
            compiled = engine.compile(query)
            nav = [n.node_id for n in engine.select(query, "navigational")]
            fast = [n.node_id for n in engine.select(query, "ruid")]
            assert fast == nav, query
            assert [n.node_id for n in legacy.select(compiled)] == nav, query
        assert engine.stats.batched_steps > 0

    def test_axis_memo_counts(self, xmark):
        labeling = get_scheme("ruid2", max_area_size=24).build(xmark)
        evaluator = SchemeEvaluator(labeling)
        compiled = XPathEngine(xmark).compile("//open_auction[bidder]/seller")
        evaluator.select(compiled)
        misses = evaluator.stats.axis_cache_misses
        assert misses > 0
        evaluator.select(compiled)
        assert evaluator.stats.axis_cache_misses == misses  # all warm
        assert evaluator.stats.axis_cache_hits > 0
