"""Tests for the XPath parser / AST."""

import pytest

from repro.errors import UnsupportedFeatureError, XPathSyntaxError
from repro.query import parse_xpath
from repro.query.ast import (
    BinaryOp,
    FunctionCall,
    Literal,
    LocationPath,
    Number,
    Step,
    Union_,
)


class TestPaths:
    def test_absolute_path(self):
        path = parse_xpath("/a/b")
        assert isinstance(path, LocationPath)
        assert path.absolute
        assert [s.axis for s in path.steps] == ["child", "child"]
        assert [str(s.test) for s in path.steps] == ["a", "b"]

    def test_relative_path(self):
        path = parse_xpath("a/b")
        assert not path.absolute

    def test_root_only(self):
        path = parse_xpath("/")
        assert path.absolute
        assert path.steps == ()

    def test_double_slash_expansion(self):
        path = parse_xpath("//b")
        assert [s.axis for s in path.steps] == ["descendant-or-self", "child"]
        assert path.steps[0].test.node_type == "node"

    def test_internal_double_slash(self):
        path = parse_xpath("a//b")
        assert [s.axis for s in path.steps] == ["child", "descendant-or-self", "child"]

    def test_explicit_axes(self):
        path = parse_xpath("ancestor::x/following-sibling::y")
        assert [s.axis for s in path.steps] == ["ancestor", "following-sibling"]

    def test_attribute_abbreviation(self):
        path = parse_xpath("@id")
        assert path.steps[0].axis == "attribute"
        assert path.steps[0].test.name == "id"

    def test_dot_and_dotdot(self):
        path = parse_xpath("./..")
        assert [s.axis for s in path.steps] == ["self", "parent"]

    def test_star_test(self):
        path = parse_xpath("/*")
        assert path.steps[0].test.name is None
        assert path.steps[0].test.node_type is None

    def test_node_type_tests(self):
        path = parse_xpath("text()")
        assert path.steps[0].test.node_type == "text"

    def test_unknown_axis(self):
        with pytest.raises(UnsupportedFeatureError):
            parse_xpath("sideways::a")


class TestPredicates:
    def test_position_predicate(self):
        path = parse_xpath("a[2]")
        assert path.steps[0].predicates == (Number(2.0),)

    def test_attribute_comparison(self):
        path = parse_xpath("a[@id='x']")
        predicate = path.steps[0].predicates[0]
        assert isinstance(predicate, BinaryOp)
        assert predicate.op == "="
        assert isinstance(predicate.left, LocationPath)
        assert predicate.right == Literal("x")

    def test_boolean_connectives(self):
        predicate = parse_xpath("a[b and c or d]").steps[0].predicates[0]
        assert isinstance(predicate, BinaryOp)
        assert predicate.op == "or"
        assert predicate.left.op == "and"

    def test_parenthesised(self):
        predicate = parse_xpath("a[(b or c) and d]").steps[0].predicates[0]
        assert predicate.op == "and"
        assert predicate.left.op == "or"

    def test_function_call(self):
        predicate = parse_xpath("a[contains(b, 'x')]").steps[0].predicates[0]
        assert isinstance(predicate, FunctionCall)
        assert predicate.name == "contains"
        assert len(predicate.arguments) == 2

    def test_nested_path_predicate(self):
        predicate = parse_xpath("a[b/c = 1]").steps[0].predicates[0]
        assert isinstance(predicate.left, LocationPath)
        assert len(predicate.left.steps) == 2

    def test_multiple_predicates(self):
        step = parse_xpath("a[b][2]").steps[0]
        assert len(step.predicates) == 2

    def test_comparison_operators(self):
        for op in ("=", "!=", "<", "<=", ">", ">="):
            predicate = parse_xpath(f"a[b {op} 1]").steps[0].predicates[0]
            assert predicate.op == op


class TestUnion:
    def test_union(self):
        union = parse_xpath("a | b | c")
        assert isinstance(union, Union_)
        assert len(union.paths) == 3

    def test_no_union_returns_path(self):
        assert isinstance(parse_xpath("a"), LocationPath)


class TestErrors:
    @pytest.mark.parametrize(
        "expression",
        ["", "a[", "a]", "a[]", "a[@]", "/a/", "a::", "::a", "a b", "a[1", "position(])"],
    )
    def test_malformed(self, expression):
        with pytest.raises((XPathSyntaxError, UnsupportedFeatureError)):
            parse_xpath(expression)

    def test_str_roundtrip_smoke(self):
        for expression in ("/a/b[2]", "//x[@y='1']", "a | b"):
            assert str(parse_xpath(expression))
