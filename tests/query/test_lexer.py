"""Tests for the XPath lexer."""

import pytest

from repro.errors import XPathSyntaxError
from repro.query import tokenize
from repro.query.tokens import TokenKind


def kinds(expression):
    return [token.kind for token in tokenize(expression)][:-1]  # drop END


class TestTokens:
    def test_simple_path(self):
        assert kinds("/a/b") == [
            TokenKind.SLASH,
            TokenKind.NAME,
            TokenKind.SLASH,
            TokenKind.NAME,
        ]

    def test_double_slash(self):
        assert kinds("//a") == [TokenKind.DOUBLE_SLASH, TokenKind.NAME]

    def test_axis_separator(self):
        assert kinds("child::a") == [TokenKind.NAME, TokenKind.AXIS_SEP, TokenKind.NAME]

    def test_predicate_tokens(self):
        assert kinds("a[@x='1']") == [
            TokenKind.NAME,
            TokenKind.LBRACKET,
            TokenKind.AT,
            TokenKind.NAME,
            TokenKind.EQUALS,
            TokenKind.STRING,
            TokenKind.RBRACKET,
        ]

    def test_comparators(self):
        assert kinds("a != b <= c >= d < e > f") == [
            TokenKind.NAME, TokenKind.NOT_EQUALS,
            TokenKind.NAME, TokenKind.LESS_EQUAL,
            TokenKind.NAME, TokenKind.GREATER_EQUAL,
            TokenKind.NAME, TokenKind.LESS,
            TokenKind.NAME, TokenKind.GREATER,
            TokenKind.NAME,
        ]

    def test_numbers(self):
        tokens = tokenize("1 2.5 .75")
        assert [t.text for t in tokens[:-1]] == ["1", "2.5", ".75"]
        assert all(t.kind is TokenKind.NUMBER for t in tokens[:-1])

    def test_dots(self):
        assert kinds(". ..") == [TokenKind.DOT, TokenKind.DOTDOT]

    def test_keywords(self):
        assert kinds("a and b or c") == [
            TokenKind.NAME,
            TokenKind.AND,
            TokenKind.NAME,
            TokenKind.OR,
            TokenKind.NAME,
        ]

    def test_strings_both_quotes(self):
        tokens = tokenize("'single' \"double\"")
        assert [t.text for t in tokens[:-1]] == ["single", "double"]

    def test_union_and_star(self):
        assert kinds("a|*") == [TokenKind.NAME, TokenKind.PIPE, TokenKind.STAR]

    def test_hyphenated_names(self):
        tokens = tokenize("preceding-sibling::a")
        assert tokens[0].text == "preceding-sibling"

    def test_positions_recorded(self):
        tokens = tokenize("ab cd")
        assert tokens[0].position == 0
        assert tokens[1].position == 3


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(XPathSyntaxError):
            tokenize("'oops")

    def test_unexpected_character(self):
        with pytest.raises(XPathSyntaxError):
            tokenize("a # b")
