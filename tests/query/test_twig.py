"""Tests for twig-pattern matching."""

import pytest

from repro.baselines import get_scheme, scheme_names
from repro.core import Ruid2Scheme
from repro.errors import QueryError
from repro.generator import generate_xmark
from repro.query import TwigMatcher, TwigNode, XPathEngine, parse_twig
from repro.xmltree import parse


@pytest.fixture
def tree():
    return parse(
        "<site><people>"
        "<person><name>A</name><profile><interest/></profile></person>"
        "<person><name>B</name></person>"
        "<person><age>5</age></person>"
        "</people><items><item><name>L</name></item></items></site>"
    )


class TestParser:
    def test_simple_chain(self):
        twig = parse_twig("a/b/c")
        assert twig.tag == "a"
        assert twig.branches[0].tag == "b"
        assert twig.branches[0].branches[0].tag == "c"
        assert twig.branches[0].axis == "child"

    def test_descendant_edges(self):
        twig = parse_twig("a//c")
        assert twig.branches[0].axis == "descendant"

    def test_branches(self):
        twig = parse_twig("person[name][profile//interest]")
        assert len(twig.branches) == 2
        assert twig.branches[0].tag == "name"
        assert twig.branches[1].tag == "profile"
        assert twig.branches[1].branches[0].axis == "descendant"

    def test_star(self):
        assert parse_twig("*").tag is None

    def test_leading_slashes(self):
        assert parse_twig("//person").tag == "person"
        assert parse_twig("/site").tag == "site"

    @pytest.mark.parametrize("bad", ["", "a[", "a]", "a[]", "a/", "[a]", "a b"])
    def test_malformed(self, bad):
        with pytest.raises(QueryError):
            parse_twig(bad)

    def test_str_reparses(self):
        for pattern in ("a/b", "person[name][profile]", "a//b[c]"):
            twig = parse_twig(pattern)
            assert parse_twig(str(twig)) == twig


class TestMatching:
    def test_child_branch_filter(self, tree):
        matcher = TwigMatcher(Ruid2Scheme(max_area_size=4).build(tree))
        persons = matcher.match("person[name]")
        assert len(persons) == 2
        assert all(n.tag == "person" for n in persons)

    def test_descendant_branch(self, tree):
        matcher = TwigMatcher(Ruid2Scheme(max_area_size=4).build(tree))
        assert matcher.count("person[//interest]") == 1
        assert matcher.count("people[//interest]") == 1
        assert matcher.count("site[//interest]") == 1

    def test_multi_branch(self, tree):
        matcher = TwigMatcher(Ruid2Scheme(max_area_size=4).build(tree))
        assert matcher.count("person[name][profile]") == 1
        assert matcher.count("person[name][age]") == 0

    def test_star_patterns(self, tree):
        matcher = TwigMatcher(Ruid2Scheme(max_area_size=4).build(tree))
        # any element with a name child: 2 persons + 1 item
        assert matcher.count("*[name]") == 3

    def test_document_order(self, tree):
        matcher = TwigMatcher(Ruid2Scheme(max_area_size=4).build(tree))
        matches = matcher.match("person[name]")
        order = tree.document_order_index()
        ranks = [order[n.node_id] for n in matches]
        assert ranks == sorted(ranks)

    def test_no_match(self, tree):
        matcher = TwigMatcher(Ruid2Scheme(max_area_size=4).build(tree))
        assert matcher.match("ghost[anything]") == []


class TestAgainstXPath:
    """Twig root bindings must agree with the equivalent XPath filter."""

    CASES = (
        ("person[name]", "//person[name]"),
        ("person[profile/interest]", "//person[profile/interest]"),
        ("open_auction[bidder]", "//open_auction[bidder]"),
        ("person[address/city]", "//person[address/city]"),
        ("site[//city]", "//site[descendant::city]"),
    )

    @pytest.mark.parametrize("twig_pattern,xpath", CASES)
    def test_agreement_on_xmark(self, twig_pattern, xpath):
        tree = generate_xmark(scale=0.06, seed=171)
        labeling = Ruid2Scheme(max_area_size=16).build(tree)
        matcher = TwigMatcher(labeling)
        engine = XPathEngine(tree, labeling=labeling)
        twig_nodes = matcher.match(twig_pattern)
        xpath_nodes = engine.select(xpath, "navigational")
        assert [n.node_id for n in twig_nodes] == [n.node_id for n in xpath_nodes]

    @pytest.mark.parametrize("scheme_name", scheme_names())
    def test_every_scheme_matches_identically(self, scheme_name):
        tree = generate_xmark(scale=0.04, seed=172)
        matcher = TwigMatcher(get_scheme(scheme_name).build(tree))
        reference = TwigMatcher(get_scheme("dewey").build(tree))
        for pattern in ("person[name]", "open_auction[bidder][seller]"):
            got = [n.node_id for n in matcher.match(pattern)]
            want = [n.node_id for n in reference.match(pattern)]
            assert got == want, (scheme_name, pattern)
