"""Edge-case tests for XPath value semantics (coercions, comparisons)."""

import math

import pytest

from repro.query import XPathEngine
from repro.query.evaluator import _compare, _number, _string, _truth, string_value
from repro.xmltree import parse


@pytest.fixture
def engine():
    return parse_engine(
        "<r><a>1</a><a>2</a><a>3</a><b>x</b><empty/>"
        "<n>007</n><neg>-4</neg><f>2.5</f></r>"
    )


def parse_engine(source):
    return XPathEngine(parse(source))


class TestCoercions:
    def test_truth(self):
        assert _truth("x") and not _truth("")
        assert _truth(1.0) and not _truth(0.0)
        assert _truth([object()]) and not _truth([])
        assert _truth(True) and not _truth(False)

    def test_string(self):
        assert _string(True) == "true"
        assert _string(False) == "false"
        assert _string(3.0) == "3"
        assert _string(3.5) == "3.5"
        assert _string([]) == ""

    def test_number(self):
        assert _number("42") == 42.0
        assert _number("  ") != _number("  ")  # NaN
        assert math.isnan(_number("abc"))
        assert _number(True) == 1.0
        assert _number(False) == 0.0


class TestExistentialComparison:
    def test_nodeset_vs_literal_any_match(self, engine):
        # //a = '2' is true because SOME a equals '2'
        assert engine.count("/r[a = '2']") == 1
        assert engine.count("/r[a = '9']") == 0

    def test_nodeset_vs_nodeset(self, engine):
        # exists a, n with equal string values? '007' != any of 1,2,3
        assert engine.count("/r[a = n]") == 0
        assert engine.count("/r[a != a]") == 1  # 1 != 2 exists

    def test_numeric_comparisons(self, engine):
        assert engine.count("/r[a > 2]") == 1
        assert engine.count("/r[a >= 3]") == 1
        assert engine.count("/r[neg < 0]") == 1
        assert engine.count("/r[f = 2.5]") == 1

    def test_number_string_equality_coerces(self, engine):
        # '007' = 7 numerically
        assert engine.count("/r[n = 7]") == 1
        # but string-compared against another node-set it stays '007'
        assert engine.count("/r[n = '007']") == 1

    def test_empty_nodeset_never_compares_true(self, engine):
        assert engine.count("/r[ghost = ghost]") == 0
        assert engine.count("/r[ghost != ghost]") == 0

    def test_compare_helper_direct(self):
        assert _compare("=", 2.0, "2")
        assert _compare("!=", "a", "b")
        assert not _compare("<", "5", 2.0)
        assert _compare(">=", 2.0, 2.0)


class TestStringValue:
    def test_element_concatenates_descendant_text(self):
        tree = parse("<a>x<b>y</b>z</a>")
        assert string_value(tree.root) == "xyz"

    def test_empty_element(self, engine):
        empty = engine.tree.find_by_tag("empty")[0]
        assert string_value(empty) == ""

    def test_predicates_on_empty_string_value(self, engine):
        assert engine.count("//empty[. = '']") == 1
        assert engine.count("//b[. = 'x']") == 1


class TestPositionEdgeCases:
    def test_position_beyond_size(self, engine):
        assert engine.count("//a[9]") == 0

    def test_fractional_position_never_matches(self, engine):
        # position() == 1.5 is false for every integer position
        assert engine.count("//a[position() = 1.5]") == 0

    def test_last_on_singleton(self, engine):
        assert engine.count("//b[last()]") == 1

    def test_chained_predicates_renumber(self, engine):
        # [position() > 1][1] selects the second a
        result = engine.select_strings("//a[position() > 1][1]")
        assert result == ["2"]
