"""Tests for structural joins over labels."""

import itertools

import pytest

from repro.baselines import get_scheme, scheme_names
from repro.generator import generate_xmark, random_document
from repro.query import join_nodes, nested_loop_join, stack_tree_join


def reference_pairs(tree, ancestors, descendants, self_or=False):
    pairs = []
    order = tree.document_order_index()
    sorted_d = sorted(descendants, key=lambda n: order[n.node_id])
    sorted_a = sorted(ancestors, key=lambda n: order[n.node_id])
    for d in sorted_d:
        for a in sorted_a:
            if a.is_ancestor_of(d) or (self_or and a is d):
                pairs.append((a, d))
    return pairs


@pytest.fixture(scope="module")
def corpus():
    return random_document(200, seed=131, fanout_kind="uniform", low=1, high=4)


class TestAgainstReference:
    @pytest.mark.parametrize("algorithm", ["stack", "nested"])
    @pytest.mark.parametrize("self_or", [False, True])
    def test_matches_reference(self, corpus, algorithm, self_or):
        labeling = get_scheme("ruid2", max_area_size=8).build(corpus)
        nodes = corpus.nodes()
        ancestors = nodes[::3]
        descendants = nodes[::2]
        got = join_nodes(
            labeling, ancestors, descendants, algorithm=algorithm, self_or=self_or
        )
        want = reference_pairs(corpus, ancestors, descendants, self_or=self_or)
        assert [(id(a), id(d)) for a, d in got] == [(id(a), id(d)) for a, d in want]

    @pytest.mark.parametrize("scheme_name", scheme_names())
    def test_every_scheme_joins_identically(self, corpus, scheme_name):
        labeling = get_scheme(scheme_name).build(corpus)
        nodes = corpus.nodes()
        ancestors = nodes[::5]
        descendants = nodes[::4]
        got = join_nodes(labeling, ancestors, descendants, algorithm="stack")
        want = reference_pairs(corpus, ancestors, descendants)
        assert len(got) == len(want)
        assert [(id(a), id(d)) for a, d in got] == [(id(a), id(d)) for a, d in want]


class TestAlgorithms:
    def test_stack_equals_nested(self, corpus):
        labeling = get_scheme("ruid2", max_area_size=16).build(corpus)
        nodes = corpus.nodes()
        a_labels = [labeling.label_of(n) for n in nodes[::4]]
        d_labels = [labeling.label_of(n) for n in nodes[::3]]
        stack = stack_tree_join(labeling, a_labels, d_labels)
        nested = nested_loop_join(labeling, a_labels, d_labels)
        assert stack == nested

    def test_empty_inputs(self, corpus):
        labeling = get_scheme("ruid2").build(corpus)
        some = [labeling.label_of(corpus.root)]
        assert stack_tree_join(labeling, [], some) == []
        assert stack_tree_join(labeling, some, []) == []

    def test_unknown_algorithm(self, corpus):
        labeling = get_scheme("ruid2").build(corpus)
        with pytest.raises(ValueError):
            join_nodes(labeling, [], [], algorithm="quantum")

    def test_typical_query_shape(self):
        """person ⋈ name on the auction corpus — the standard use."""
        tree = generate_xmark(scale=0.05, seed=16)
        labeling = get_scheme("ruid2", max_area_size=16).build(tree)
        persons = tree.find_by_tag("person")
        names = tree.find_by_tag("name")
        pairs = join_nodes(labeling, persons, names, algorithm="stack")
        # every person contributes exactly one (person, name) pair
        assert len(pairs) == len(persons)
        assert all(a.tag == "person" and d.tag == "name" for a, d in pairs)

    def test_output_in_descendant_document_order(self, corpus):
        labeling = get_scheme("dewey").build(corpus)
        nodes = corpus.nodes()
        pairs = join_nodes(labeling, nodes[::6], nodes[::2], algorithm="stack")
        order = corpus.document_order_index()
        d_ranks = [order[d.node_id] for _a, d in pairs]
        assert d_ranks == sorted(d_ranks)
