"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "subclass",
        [
            errors.XmlSyntaxError,
            errors.TreeStructureError,
            errors.NumberingError,
            errors.StorageError,
            errors.QueryError,
        ],
    )
    def test_all_derive_from_repro_error(self, subclass):
        assert issubclass(subclass, errors.ReproError)

    def test_numbering_subtypes(self):
        for subtype in (
            errors.IdentifierOverflowError,
            errors.FanOutOverflowError,
            errors.UnknownLabelError,
            errors.NoParentError,
            errors.PartitionError,
        ):
            assert issubclass(subtype, errors.NumberingError)

    def test_storage_subtypes(self):
        for subtype in (
            errors.PageOverflowError,
            errors.DuplicateKeyError,
            errors.TableNotFoundError,
        ):
            assert issubclass(subtype, errors.StorageError)

    def test_query_subtypes(self):
        assert issubclass(errors.XPathSyntaxError, errors.QueryError)
        assert issubclass(errors.UnsupportedFeatureError, errors.QueryError)


class TestMessages:
    def test_xml_syntax_error_position(self):
        error = errors.XmlSyntaxError("bad", line=3, column=7)
        assert error.line == 3
        assert error.column == 7
        assert "line 3" in str(error)

    def test_xml_syntax_error_without_position(self):
        assert "line" not in str(errors.XmlSyntaxError("bad"))

    def test_xpath_syntax_error_offset(self):
        error = errors.XPathSyntaxError("bad", position=5)
        assert "offset 5" in str(error)
        assert error.position == 5

    def test_overflow_carries_budgets(self):
        error = errors.IdentifierOverflowError("too big", bits_required=80, bits_allowed=64)
        assert error.bits_required == 80
        assert error.bits_allowed == 64

    def test_catch_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.DuplicateKeyError("dup")
