"""Gap-filling tests for public API surface not covered elsewhere."""

import pytest

from repro.core import (
    Ruid2Labeling,
    SizeCapPartitioner,
    dump_parameters,
    load_parameters,
)
from repro.generator import random_document
from repro.xmltree import parse


@pytest.fixture(scope="module")
def labeling():
    tree = random_document(150, seed=181, fanout_kind="uniform", low=1, high=4)
    return Ruid2Labeling(tree, partitioner=SizeCapPartitioner(8))


class TestGlobalParametersCandidates:
    def test_sibling_candidates_cover_real_siblings(self, labeling):
        params = load_parameters(dump_parameters(labeling))
        for node in list(labeling.tree.preorder())[::4]:
            label = labeling.label_of(node)
            preceding = set(params.sibling_candidates(label, preceding=True))
            following = set(params.sibling_candidates(label, preceding=False))
            assert {
                labeling.label_of(s) for s in node.preceding_siblings()
            } <= preceding
            assert {
                labeling.label_of(s) for s in node.following_siblings()
            } <= following

    def test_document_root_has_no_sibling_candidates(self, labeling):
        from repro.core import Ruid2Label

        params = load_parameters(dump_parameters(labeling))
        assert params.sibling_candidates(Ruid2Label.ROOT, preceding=True) == []
        assert params.sibling_candidates(Ruid2Label.ROOT, preceding=False) == []


class TestTreeUtilities:
    def test_find_all(self):
        tree = parse("<a><b x='1'/><b/><c x='1'/></a>")
        hits = tree.find_all(lambda n: n.get("x") == "1")
        assert [n.tag for n in hits] == ["b", "c"]

    def test_elements_excludes_text(self):
        tree = parse("<a>hi<b/></a>")
        assert [n.tag for n in tree.elements()] == ["a", "b"]

    def test_node_repr_forms(self):
        tree = parse("<a>hi<b/></a>", keep_comments=True)
        for node in tree.preorder():
            assert repr(node)
        assert repr(tree)


class TestCliMultilevel:
    def test_label_with_multilevel_scheme(self, tmp_path, capsys):
        from repro.cli import main
        from repro.generator import generate_xmark
        from repro.xmltree import write_file

        path = str(tmp_path / "doc.xml")
        write_file(generate_xmark(scale=0.02, seed=19), path)
        assert main(["label", path, "--scheme", "ruid-multi", "--limit", "4"]) == 0
        out = capsys.readouterr().out
        assert "max label bits" in out


class TestAxisEngineIndexes:
    def test_labels_in_area_covers_every_node(self, labeling):
        from repro.core import AxisEngine

        engine = AxisEngine(labeling)
        seen = set()
        for root in labeling.frame.frame_preorder():
            g = labeling.global_of_area_root(root)
            seen.update(engine.labels_in_area(g))
        assert seen == set(labeling.labels())

    def test_slot_map_matches_candidates(self, labeling):
        from repro.core import AxisEngine, candidate_children

        engine = AxisEngine(labeling)
        for node in list(labeling.tree.preorder())[::5]:
            label = labeling.label_of(node)
            fast = engine.children(label)
            slow = [
                c
                for c in candidate_children(label, labeling.kappa, labeling.ktable)
                if labeling.exists(c)
            ]
            assert fast == slow


class TestOrdpathParentStripsNestedCarets:
    def test_multi_caret(self):
        from repro.baselines.ordpath import parent_of

        # a deeply careted component chain still strips to the parent
        assert parent_of((1, 2, 4, 6, 1)) == (1,)
        assert parent_of((3, 0, -2, 5)) == (3,)

    def test_parent_of_caret_label(self):
        from repro.baselines.ordpath import parent_of

        # (5, 2, 1) is a child of (5): strip 1, then carets 2
        assert parent_of((5, 2, 1)) == (5,)
