"""Cross-scheme agreement: every scheme answers structure identically."""

import itertools

import pytest

from repro.baselines import all_schemes
from repro.core import Relation
from repro.generator import generate_xmark, random_document


@pytest.fixture(scope="module")
def corpus():
    return [
        random_document(150, seed=101, fanout_kind="uniform", low=1, high=5),
        random_document(150, seed=102, fanout_kind="zipf", exponent=1.3, maximum=30),
        generate_xmark(scale=0.03, seed=103),
    ]


class TestAgreement:
    def test_all_schemes_agree_on_relations(self, corpus):
        for tree in corpus:
            labelings = [scheme.build(tree) for scheme in all_schemes()]
            nodes = tree.nodes()
            sample = nodes[:: max(1, len(nodes) // 10)]
            for first, second in itertools.product(sample, repeat=2):
                relations = {
                    labeling.scheme_name: labeling.relation(
                        labeling.label_of(first), labeling.label_of(second)
                    )
                    for labeling in labelings
                }
                assert len(set(relations.values())) == 1, relations

    def test_all_schemes_agree_on_doc_compare(self, corpus):
        tree = corpus[0]
        labelings = [scheme.build(tree) for scheme in all_schemes()]
        nodes = tree.nodes()
        for first, second in zip(nodes[::7], nodes[::5]):
            signs = {
                labeling.scheme_name: labeling.doc_compare(
                    labeling.label_of(first), labeling.label_of(second)
                )
                for labeling in labelings
            }
            assert len(set(signs.values())) == 1, signs

    def test_is_ancestor_consistency(self, corpus):
        tree = corpus[1]
        labelings = [scheme.build(tree) for scheme in all_schemes()]
        deepest = max(tree.preorder(), key=lambda n: n.depth)
        for labeling in labelings:
            for ancestor in deepest.ancestors():
                assert labeling.is_ancestor(
                    labeling.label_of(ancestor), labeling.label_of(deepest)
                ), labeling.scheme_name
