"""End-to-end flows: parse → label → store → query → update."""

import pytest

from repro.baselines import get_scheme
from repro.core import Ruid2Scheme, SizeCapPartitioner
from repro.generator import generate_xmark
from repro.query import XPathEngine
from repro.storage import XmlDatabase
from repro.xmltree import element, parse, serialize


class TestFullPipeline:
    def test_parse_label_store_query(self, xmark_tree):
        tree = xmark_tree.copy()
        labeling = Ruid2Scheme(max_area_size=24).build(tree)
        database = XmlDatabase(page_size=1024, pool_pages=64)
        document = database.store_document("auction", tree, labeling)

        # every stored row fetches back and its parent resolves
        for node in list(tree.preorder())[::13]:
            label = labeling.label_of(node)
            assert document.fetch(label)[1] == node.tag
            if node.parent is not None:
                assert document.fetch_parent(label)[1] == node.parent.tag

        # XPath over the same labeling
        engine = XPathEngine(tree, labeling=labeling)
        people = engine.select("/site/people/person", "ruid")
        assert people == tree.find_by_tag("person")

    def test_serialize_reparse_relabel_consistency(self, xmark_tree):
        text = serialize(xmark_tree)
        again = parse(text)
        labeling = Ruid2Scheme(max_area_size=16).build(again)
        for node in again.preorder():
            if node.parent is not None:
                assert labeling.parent_label(labeling.label_of(node)) == labeling.label_of(
                    node.parent
                )

    def test_update_then_query(self):
        tree = parse("<lib><shelf><book>X</book></shelf></lib>")
        labeling = Ruid2Scheme(max_area_size=4).build(tree)
        shelf = tree.find_by_tag("shelf")[0]
        for index in range(5):
            new_book = element("book")
            labeling.insert(shelf, index, new_book)
        engine = XPathEngine(tree, labeling=labeling)
        assert engine.count("//book", "ruid") == 6
        assert engine.count("//book", "navigational") == 6

    def test_query_agreement_after_update_workload(self):
        from repro.generator import (
            UpdateWorkloadConfig,
            apply_workload,
            generate_update_workload,
            random_document,
        )

        tree = random_document(200, seed=91, fanout_kind="uniform", low=1, high=4)
        labeling = Ruid2Scheme(max_area_size=8).build(tree)
        ops = generate_update_workload(tree, UpdateWorkloadConfig(operations=20), seed=92)
        list(apply_workload(tree, ops, labeling.insert, labeling.delete))
        engine = XPathEngine(tree, labeling=labeling)
        for query in ("//section", "//item/..", "//*[position() = 1]"):
            assert [n.node_id for n in engine.select(query, "navigational")] == [
                n.node_id for n in engine.select(query, "ruid")
            ]


class TestCrossSchemeStorage:
    @pytest.mark.parametrize("scheme_name", ["uid", "ruid2", "dewey", "prepost", "region"])
    def test_store_and_scan_every_scheme(self, scheme_name, dblp_tree):
        tree = dblp_tree.copy()
        labeling = get_scheme(scheme_name).build(tree)
        database = XmlDatabase(page_size=1024, pool_pages=32)
        document = database.store_document("bib", tree, labeling)
        assert len(document) == tree.size()
        titles = list(document.nodes_with_tag("title"))
        assert len(titles) == len(tree.find_by_tag("title"))
