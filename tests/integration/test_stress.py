"""Stress tests for the trickiest interleavings.

These are slow-ish (seconds) deliberate torture runs: long mixed
update workloads with area splitting enabled, frame-stable deletions,
and full structural re-verification (bijection, parents, order oracle,
axes) after every burst.
"""

import itertools
import random

import pytest

from repro.core import (
    AxisEngine,
    Relation,
    Ruid2Labeling,
    Ruid2Order,
    Ruid2Updater,
    SizeCapPartitioner,
)
from repro.generator import generate_xmark, path_tree, random_document, star_tree
from repro.core.multilevel import MultilevelRuidLabeling
from repro.xmltree import element


def verify_everything(labeling: Ruid2Labeling, sample_stride: int = 7) -> None:
    tree = labeling.tree
    # bijection + parents
    seen = set()
    for node in tree.preorder():
        label = labeling.label_of(node)
        assert label not in seen
        seen.add(label)
        assert labeling.node_of(label) is node
        if node.parent is not None:
            assert labeling.rparent(label) == labeling.label_of(node.parent)
    # order oracle
    oracle = Ruid2Order(labeling.kappa, labeling.ktable)
    nodes = tree.nodes()
    for first, second in itertools.product(
        nodes[::sample_stride], nodes[:: sample_stride + 2]
    ):
        got = oracle.relation(labeling.label_of(first), labeling.label_of(second))
        if first is second:
            assert got is Relation.SELF
        elif first.is_ancestor_of(second):
            assert got is Relation.ANCESTOR
        elif second.is_ancestor_of(first):
            assert got is Relation.DESCENDANT
        else:
            want = tree.compare_document_order(first, second)
            assert (got is Relation.PRECEDING) == (want < 0)
    # axes on a fresh engine
    engine = AxisEngine(labeling)
    for node in nodes[:: sample_stride * 3]:
        label = labeling.label_of(node)
        assert [labeling.node_of(c) for c in engine.children(label)] == node.children
        assert [labeling.node_of(d) for d in engine.descendants(label)] == list(
            node.descendants()
        )


class TestLongMixedWorkloadWithSplits:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_torture(self, seed):
        tree = random_document(250, seed=300 + seed, fanout_kind="geometric", mean=3)
        labeling = Ruid2Labeling(tree, partitioner=SizeCapPartitioner(10))
        updater = Ruid2Updater(labeling, split_threshold=20)
        rng = random.Random(seed)
        for burst in range(6):
            for step in range(15):
                nodes = tree.nodes()
                node = nodes[rng.randrange(len(nodes))]
                roll = rng.random()
                if roll < 0.6 or node is tree.root:
                    updater.insert(
                        node, rng.randint(0, node.fan_out), element(f"s{burst}_{step}")
                    )
                elif roll < 0.9 and node.subtree_size() <= 12:
                    updater.delete(node)
                else:
                    # delete a potentially area-bearing subtree
                    if node is not tree.root and node.subtree_size() <= 60:
                        updater.delete(node)
            verify_everything(labeling)


class TestExtremeShapes:
    def test_star_then_deepen(self):
        tree = star_tree(150)
        labeling = Ruid2Labeling(tree, partitioner=SizeCapPartitioner(12))
        updater = Ruid2Updater(labeling)
        # grow a deep chain out of one leaf of the star
        current = tree.root.children[75]
        for step in range(40):
            fresh = element(f"deep{step}")
            updater.insert(current, 0, fresh)
            current = fresh
        verify_everything(labeling, sample_stride=11)

    def test_path_then_widen(self):
        tree = path_tree(80)
        labeling = Ruid2Labeling(tree, partitioner=SizeCapPartitioner(6))
        updater = Ruid2Updater(labeling)
        spine = [n for n in tree.preorder()][::10]
        for index, node in enumerate(spine):
            for j in range(4):
                updater.insert(node, 0, element(f"w{index}_{j}"))
        verify_everything(labeling, sample_stride=9)

    def test_multilevel_on_star_and_path(self):
        for tree in (star_tree(120), path_tree(120)):
            multi = MultilevelRuidLabeling(
                tree, levels=3, partitioners=SizeCapPartitioner(6)
            )
            for node in tree.preorder():
                if node.parent is not None:
                    assert multi.rparent(multi.label_of(node)) == multi.label_of(
                        node.parent
                    )


class TestXmarkFullVerification:
    def test_xmark_small_areas(self):
        tree = generate_xmark(scale=0.06, seed=301)
        labeling = Ruid2Labeling(tree, partitioner=SizeCapPartitioner(3))
        verify_everything(labeling, sample_stride=13)
