"""Long-haul update consistency across the updatable schemes.

The same seeded workload is replayed under every scheme; after every
operation the labeling must remain a bijection with correct parents,
and the relabel accounting must be internally consistent.
"""

import pytest

from repro.baselines import UPDATABLE, get_scheme
from repro.errors import NoParentError
from repro.generator import (
    UpdateWorkloadConfig,
    apply_workload,
    generate_update_workload,
    random_document,
)


@pytest.fixture(scope="module")
def base_tree():
    return random_document(250, seed=111, fanout_kind="geometric", mean=3)


@pytest.fixture(scope="module")
def ops(base_tree):
    return generate_update_workload(
        base_tree, UpdateWorkloadConfig(operations=40, insert_fraction=0.7), seed=112
    )


def check_full_consistency(labeling):
    seen = set()
    for node in labeling.tree.preorder():
        label = labeling.label_of(node)
        assert label not in seen
        seen.add(label)
        assert labeling.node_of(label) is node
        if node.parent is None:
            with pytest.raises(NoParentError):
                labeling.parent_label(label)
        else:
            assert labeling.parent_label(label) == labeling.label_of(node.parent)


@pytest.mark.parametrize("scheme_name", UPDATABLE)
class TestWorkloadConsistency:
    def test_consistent_after_every_op(self, scheme_name, base_tree, ops):
        tree = base_tree.copy()
        labeling = get_scheme(scheme_name).build(tree)
        for report in apply_workload(tree, ops, labeling.insert, labeling.delete):
            assert report.relabeled_count <= report.surviving_nodes
            assert report.scheme == labeling.scheme_name
        check_full_consistency(labeling)

    def test_reports_track_operations(self, scheme_name, base_tree, ops):
        tree = base_tree.copy()
        labeling = get_scheme(scheme_name).build(tree)
        reports = list(apply_workload(tree, ops, labeling.insert, labeling.delete))
        assert len(reports) == len(ops)
        inserts = sum(1 for r in reports if r.operation == "insert")
        deletes = sum(1 for r in reports if r.operation == "delete")
        assert inserts == sum(1 for op in ops if op.kind == "insert")
        assert deletes == sum(1 for op in ops if op.kind == "delete")


class TestRelativeRobustness:
    """The paper's §3.2 ordering, asserted as an integration invariant."""

    def test_ruid_beats_uid_and_prepost(self, base_tree, ops):
        from repro.analysis import run_workload_per_scheme

        schemes = [
            get_scheme("uid"),
            get_scheme("ruid2", max_area_size=12),
            get_scheme("prepost"),
            get_scheme("posdepth"),
        ]
        summaries = {
            s.scheme: s for s in run_workload_per_scheme(base_tree, schemes, ops)
        }
        assert summaries["ruid2"].mean_relabeled <= summaries["uid"].mean_relabeled
        assert summaries["ruid2"].mean_relabeled < summaries["prepost"].mean_relabeled
        assert summaries["ruid2"].mean_relabeled < summaries["posdepth"].mean_relabeled
