"""Tests for the ElementTree bridge."""

import xml.etree.ElementTree as ET

from repro.xmltree import NodeKind, from_etree, parse, to_etree


class TestFromEtree:
    def test_structure(self):
        element = ET.fromstring('<a x="1"><b>hi</b><c/></a>')
        tree = from_etree(element)
        assert [n.tag for n in tree.elements()] == ["a", "b", "c"]
        assert tree.root.attributes == {"x": "1"}

    def test_text_and_tail(self):
        element = ET.fromstring("<a>head<b/>tail</a>")
        tree = from_etree(element)
        texts = [n.text for n in tree.preorder() if n.kind is NodeKind.TEXT]
        assert texts == ["head", "tail"]

    def test_whitespace_dropped_by_default(self):
        element = ET.fromstring("<a>\n  <b/>\n</a>")
        tree = from_etree(element)
        assert tree.size() == 2

    def test_accepts_elementtree_object(self):
        doc = ET.ElementTree(ET.fromstring("<a><b/></a>"))
        tree = from_etree(doc)
        assert tree.root.tag == "a"


class TestToEtree:
    def test_roundtrip(self):
        tree = parse('<a x="1">head<b y="2">inner</b>tail<c/></a>')
        doc = to_etree(tree)
        back = from_etree(doc)
        assert [n.tag for n in back.preorder()] == [n.tag for n in tree.preorder()]
        assert back.root.attributes == tree.root.attributes

    def test_text_folding(self):
        tree = parse("<a>head<b/>tail</a>")
        root = to_etree(tree).getroot()
        assert root.text == "head"
        assert root[0].tail == "tail"

    def test_materialised_attributes_fold_back(self):
        tree = parse('<a x="1"/>')
        tree.materialise_attributes()
        root = to_etree(tree).getroot()
        assert root.get("x") == "1"
        assert len(root) == 0
