"""Tests for the spec builder and imperative TreeBuilder."""

import pytest

from repro.errors import TreeStructureError
from repro.xmltree import NodeKind, TreeBuilder, build, complete_kary_tree


class TestSpecBuilder:
    def test_leaf_string(self):
        tree = build("solo")
        assert tree.root.tag == "solo"
        assert tree.size() == 1

    def test_children_list(self):
        tree = build(("a", ["b", "c"]))
        assert [n.tag for n in tree.preorder()] == ["a", "b", "c"]

    def test_attributes_only(self):
        tree = build(("a", {"x": "1"}))
        assert tree.root.attributes == {"x": "1"}

    def test_attributes_and_children(self):
        tree = build(("a", {"x": "1"}, ["b"]))
        assert tree.root.attributes == {"x": "1"}
        assert tree.root.children[0].tag == "b"

    def test_text_shorthand(self):
        tree = build(("a", "hello"))
        assert tree.root.children[0].kind is NodeKind.TEXT
        assert tree.root.children[0].text == "hello"

    def test_explicit_text_node(self):
        tree = build(("a", [("#text", "hi"), "b"]))
        assert tree.root.children[0].kind is NodeKind.TEXT
        assert tree.root.children[1].tag == "b"

    def test_nested(self):
        tree = build(("a", [("b", [("c", ["d"])])]))
        assert tree.height() == 4

    @pytest.mark.parametrize("bad", [(), 42, ("a", 42), ("a", {}, [], "extra"), ("#text",)])
    def test_invalid_specs(self, bad):
        with pytest.raises(TreeStructureError):
            build(bad)


class TestTreeBuilder:
    def test_basic_sequence(self):
        builder = TreeBuilder()
        builder.start("a")
        builder.start("b")
        builder.text("hi")
        builder.end()
        builder.element("c", {"x": "1"})
        builder.end()
        tree = builder.finish()
        assert [n.tag for n in tree.preorder()] == ["a", "b", "#text", "c"]
        assert tree.find_by_tag("c")[0].attributes == {"x": "1"}

    def test_unclosed_raises(self):
        builder = TreeBuilder()
        builder.start("a")
        with pytest.raises(TreeStructureError):
            builder.finish()

    def test_end_without_start_raises(self):
        with pytest.raises(TreeStructureError):
            TreeBuilder().end()

    def test_text_outside_element_raises(self):
        with pytest.raises(TreeStructureError):
            TreeBuilder().text("floating")

    def test_second_root_raises(self):
        builder = TreeBuilder()
        builder.start("a")
        builder.end()
        with pytest.raises(TreeStructureError):
            builder.start("b")

    def test_empty_finish_raises(self):
        with pytest.raises(TreeStructureError):
            TreeBuilder().finish()


class TestCompleteKary:
    def test_sizes(self):
        tree = complete_kary_tree(2, 4)
        assert tree.size() == 15
        assert tree.height() == 4
        assert tree.max_fan_out() == 2

    def test_height_one(self):
        tree = complete_kary_tree(5, 1)
        assert tree.size() == 1

    def test_fanout_zero(self):
        tree = complete_kary_tree(0, 3)
        assert tree.size() == 1

    def test_invalid(self):
        with pytest.raises(TreeStructureError):
            complete_kary_tree(2, 0)
