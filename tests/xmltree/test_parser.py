"""Unit tests for the from-scratch XML parser."""

import pytest

from repro.errors import XmlSyntaxError
from repro.xmltree import NodeKind, parse
from repro.xmltree.parser import EventKind, decode_entities, iter_events


class TestBasicParsing:
    def test_single_element(self):
        tree = parse("<root/>")
        assert tree.root.tag == "root"
        assert tree.root.is_leaf

    def test_nested_elements(self):
        tree = parse("<a><b><c/></b><d/></a>")
        assert [n.tag for n in tree.preorder()] == ["a", "b", "c", "d"]

    def test_attributes(self):
        tree = parse('<a x="1" y=\'two\'/>')
        assert tree.root.attributes == {"x": "1", "y": "two"}

    def test_text_nodes(self):
        tree = parse("<a>hello <b>world</b>!</a>")
        texts = [n.text for n in tree.preorder() if n.kind is NodeKind.TEXT]
        assert texts == ["hello ", "world", "!"]

    def test_whitespace_text_dropped_by_default(self):
        tree = parse("<a>\n  <b/>\n</a>")
        assert tree.size() == 2

    def test_whitespace_text_kept_on_request(self):
        tree = parse("<a>\n  <b/>\n</a>", keep_whitespace_text=True)
        assert tree.size() == 4

    def test_text_folded_when_not_materialised(self):
        tree = parse("<a>hi</a>", materialise_text=False)
        assert tree.size() == 1
        assert tree.root.text == "hi"

    def test_xml_declaration(self):
        tree = parse('<?xml version="1.0" encoding="UTF-8"?><a/>')
        assert tree.root.tag == "a"

    def test_doctype_skipped(self):
        tree = parse('<!DOCTYPE a [<!ELEMENT a EMPTY>]><a/>')
        assert tree.root.tag == "a"

    def test_comments_dropped_by_default(self):
        tree = parse("<a><!-- note --><b/></a>")
        assert tree.size() == 2

    def test_comments_kept_on_request(self):
        tree = parse("<a><!-- note --><b/></a>", keep_comments=True)
        kinds = [n.kind for n in tree.preorder()]
        assert NodeKind.COMMENT in kinds

    def test_cdata(self):
        tree = parse("<a><![CDATA[<not a tag> & raw]]></a>")
        assert tree.root.children[0].text == "<not a tag> & raw"

    def test_processing_instruction_skipped(self):
        tree = parse("<a><?target data?><b/></a>")
        assert tree.size() == 2


class TestEntities:
    def test_predefined_entities(self):
        tree = parse("<a>&lt;&gt;&amp;&apos;&quot;</a>")
        assert tree.root.children[0].text == "<>&'\""

    def test_numeric_references(self):
        tree = parse("<a>&#65;&#x42;</a>")
        assert tree.root.children[0].text == "AB"

    def test_entities_in_attributes(self):
        tree = parse('<a x="&amp;&#33;"/>')
        assert tree.root.attributes["x"] == "&!"

    def test_unknown_entity_raises(self):
        with pytest.raises(XmlSyntaxError):
            parse("<a>&nope;</a>")

    def test_decode_entities_plain(self):
        assert decode_entities("no entities") == "no entities"


class TestErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "<a>",  # unclosed
            "<a></b>",  # mismatched
            "<a/><b/>",  # two roots
            "text only",  # no root
            "",  # empty
            "</a>",  # closing without opening
            '<a x="1" x="2"/>',  # duplicate attribute
            "<a x=1/>",  # unquoted attribute
            '<a x="<"/>',  # '<' in attribute value
            "<a><!-- unterminated </a>",
            "<1bad/>",  # bad name start
        ],
    )
    def test_malformed_raises(self, source):
        with pytest.raises(XmlSyntaxError):
            parse(source)

    def test_error_carries_position(self):
        with pytest.raises(XmlSyntaxError) as excinfo:
            parse("<a>\n<b></c></a>")
        assert excinfo.value.line == 2


class TestEventStream:
    def test_events_for_simple_document(self):
        events = list(iter_events('<a x="1">t<b/></a>'))
        kinds = [e.kind for e in events]
        assert kinds == [
            EventKind.START_ELEMENT,
            EventKind.TEXT,
            EventKind.START_ELEMENT,
            EventKind.END_ELEMENT,
            EventKind.END_ELEMENT,
        ]
        assert events[0].attributes == {"x": "1"}

    def test_self_closing_produces_start_end(self):
        events = list(iter_events("<a/>"))
        assert [e.kind for e in events] == [EventKind.START_ELEMENT, EventKind.END_ELEMENT]

    def test_comment_and_pi_events(self):
        events = list(iter_events("<a><!--c--><?pi data?></a>"))
        kinds = [e.kind for e in events]
        assert EventKind.COMMENT in kinds
        assert EventKind.PROCESSING_INSTRUCTION in kinds


class TestUnicode:
    def test_unicode_content(self):
        tree = parse("<a>héllo — 世界</a>")
        assert tree.root.children[0].text == "héllo — 世界"

    def test_unicode_tag_names(self):
        tree = parse("<café/>")
        assert tree.root.tag == "café"
