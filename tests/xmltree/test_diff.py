"""Tests for the structural differ (self-verifying: apply and compare)."""

import random

import pytest

from repro.baselines import get_scheme
from repro.generator import random_document
from repro.xmltree import (
    NodeKind,
    XmlNode,
    apply_edit_script,
    apply_through_labeling,
    diff_trees,
    parse,
)


def structurally_equal(first, second) -> bool:
    a_nodes, b_nodes = list(first.preorder()), list(second.preorder())
    if len(a_nodes) != len(b_nodes):
        return False
    return all(
        (a.tag, a.kind, a.text, a.attributes) == (b.tag, b.kind, b.text, b.attributes)
        for a, b in zip(a_nodes, b_nodes)
    )


def check_roundtrip(old_source, new_source):
    old = parse(old_source)
    new = parse(new_source)
    ops = diff_trees(old, new)
    transformed = apply_edit_script(old, ops)
    assert structurally_equal(transformed, new), [str(o) for o in ops]
    return ops


class TestBasicDiffs:
    def test_identical_trees_empty_script(self):
        ops = check_roundtrip("<a><b/><c/></a>", "<a><b/><c/></a>")
        assert ops == []

    def test_single_insert(self):
        ops = check_roundtrip("<a><b/></a>", "<a><b/><c/></a>")
        assert len(ops) == 1
        assert ops[0].kind == "insert"

    def test_single_delete(self):
        ops = check_roundtrip("<a><b/><c/></a>", "<a><b/></a>")
        assert len(ops) == 1
        assert ops[0].kind == "delete"

    def test_insert_in_middle(self):
        check_roundtrip("<a><b/><d/></a>", "<a><b/><c/><d/></a>")

    def test_subtree_replacement(self):
        check_roundtrip(
            "<a><b><x/><y/></b></a>",
            "<a><b><x/><z/></b></a>",
        )

    def test_text_change_is_replace(self):
        check_roundtrip("<a><b>old</b></a>", "<a><b>new</b></a>")

    def test_attribute_change_is_replace(self):
        check_roundtrip('<a><b x="1"/></a>', '<a><b x="2"/></a>')

    def test_reorder(self):
        check_roundtrip("<a><b/><c/><d/></a>", "<a><d/><b/><c/></a>")

    def test_deep_nested_edit(self):
        check_roundtrip(
            "<a><b><c><d>1</d></c></b><e/></a>",
            "<a><b><c><d>1</d><d>2</d></c></b><e/></a>",
        )

    def test_different_roots_rejected(self):
        with pytest.raises(ValueError):
            diff_trees(parse("<a/>"), parse("<b/>"))

    def test_duplicate_siblings(self):
        check_roundtrip(
            "<a><p>x</p><p>x</p><p>y</p></a>",
            "<a><p>x</p><p>y</p><p>x</p></a>",
        )

    def test_root_attribute_change_is_patched(self):
        # found by hypothesis: the root cannot be replaced, so its own
        # content changes travel as a 'patch' op (zero relabeling)
        ops = check_roundtrip('<a x="1"><b/></a>', '<a x="2"><b/></a>')
        assert [op.kind for op in ops] == ["patch"]

    def test_root_patch_through_labeling_relabels_nothing(self):
        old = parse('<a x="1"><b/></a>')
        new = parse('<a x="2"><b/></a>')
        ops = diff_trees(old, new)
        labeling = get_scheme("ruid2").build(old)
        reports = apply_through_labeling(labeling, ops)
        assert all(r.relabeled_count == 0 for r in reports)
        assert old.root.attributes == {"x": "2"}


class TestRandomisedRoundTrip:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_mutations(self, seed):
        rng = random.Random(seed)
        old = random_document(120, seed=seed, fanout_kind="uniform", low=1, high=4)
        new = old.copy()
        # random structural mutations on the copy
        for step in range(12):
            nodes = new.nodes()
            node = nodes[rng.randrange(len(nodes))]
            action = rng.random()
            if action < 0.5 or node is new.root:
                fresh = XmlNode(f"m{step}", NodeKind.ELEMENT)
                new.insert_node(node, rng.randint(0, node.fan_out), fresh)
            elif action < 0.8 and node.subtree_size() < 15:
                new.delete_subtree(node)
            else:
                node.attributes["touched"] = str(step)
        ops = diff_trees(old, new)
        transformed = apply_edit_script(old, ops)
        assert structurally_equal(transformed, new)


class TestThroughLabelings:
    @pytest.mark.parametrize("scheme_name", ["uid", "ruid2", "dewey", "ordpath"])
    def test_replay_through_scheme(self, scheme_name):
        old = random_document(100, seed=31, fanout_kind="uniform", low=1, high=4)
        new = old.copy()
        rng = random.Random(31)
        for step in range(8):
            nodes = new.nodes()
            node = nodes[rng.randrange(len(nodes))]
            new.insert_node(node, rng.randint(0, node.fan_out),
                            XmlNode(f"n{step}", NodeKind.ELEMENT))
        ops = diff_trees(old, new)
        labeling = get_scheme(scheme_name).build(old)
        reports = apply_through_labeling(labeling, ops)
        assert len(reports) == len(ops)
        assert structurally_equal(old, new)
        # labeling still consistent after the whole script
        for node in old.preorder():
            if node.parent is not None:
                assert labeling.parent_label(labeling.label_of(node)) == labeling.label_of(
                    node.parent
                )
