"""Tests for topology statistics."""

from repro.generator import path_tree, skewed_tree, star_tree
from repro.xmltree import build, compute_stats, parse


class TestComputeStats:
    def test_counts(self):
        tree = parse('<a x="1"><b>hi</b><c/></a>')
        stats = compute_stats(tree)
        assert stats.node_count == 4  # a, b, #text, c
        assert stats.element_count == 3
        assert stats.text_count == 1
        assert stats.leaf_count == 2  # #text and c
        assert stats.internal_count == 2

    def test_fan_out(self):
        tree = build(("a", [("b", ["c", "d", "e"]), "f"]))
        stats = compute_stats(tree)
        assert stats.max_fan_out == 3
        assert stats.mean_fan_out == 2.5
        assert stats.fan_out_histogram == {2: 1, 3: 1}

    def test_levels(self):
        tree = build(("a", [("b", ["c"]), "d"]))
        stats = compute_stats(tree)
        assert stats.height == 3
        assert stats.level_widths == [1, 2, 1]

    def test_recursion_degree(self):
        tree = path_tree(50)  # all nodes share a tag
        stats = compute_stats(tree)
        assert stats.max_tag_recursion == 50

    def test_no_recursion(self):
        tree = build(("a", ["b", "c"]))
        assert compute_stats(tree).max_tag_recursion == 1

    def test_disparity_star(self):
        stats = compute_stats(star_tree(99))
        assert stats.fan_out_disparity == 1.0  # single internal node

    def test_disparity_skewed(self):
        stats = compute_stats(skewed_tree(depth=20, heavy_fan_out=100))
        assert stats.fan_out_disparity > 10

    def test_as_row_keys(self):
        row = compute_stats(parse("<a/>")).as_row()
        assert set(row) == {
            "nodes",
            "height",
            "max_fanout",
            "mean_fanout",
            "disparity",
            "recursion",
            "tags",
        }

    def test_deep_tree_no_recursion_error(self):
        stats = compute_stats(path_tree(3000))
        assert stats.height == 3000
