"""Serializer tests, including the parse/serialize round-trip."""

import pytest

from repro.xmltree import build, parse, serialize
from repro.xmltree.serializer import escape_attribute, escape_text


def structurally_equal(first, second) -> bool:
    nodes_first = list(first.preorder())
    nodes_second = list(second.preorder())
    if len(nodes_first) != len(nodes_second):
        return False
    for a, b in zip(nodes_first, nodes_second):
        if (a.tag, a.kind, a.text, a.attributes) != (b.tag, b.kind, b.text, b.attributes):
            return False
    return True


class TestEscaping:
    def test_escape_text(self):
        assert escape_text("a<b>&c") == "a&lt;b&gt;&amp;c"

    def test_escape_attribute(self):
        assert escape_attribute('say "hi" & <go>') == "say &quot;hi&quot; &amp; &lt;go>"


class TestSerialize:
    def test_empty_element_self_closes(self):
        assert serialize(parse("<a/>")) == "<a/>"

    def test_attributes_rendered(self):
        out = serialize(parse('<a x="1"/>'))
        assert out == '<a x="1"/>'

    def test_text_rendered(self):
        assert serialize(parse("<a>hi</a>")) == "<a>hi</a>"

    def test_declaration(self):
        out = serialize(parse("<a/>"), declaration=True)
        assert out.startswith("<?xml")

    def test_pretty_print_indents(self):
        out = serialize(parse("<a><b><c/></b></a>"), indent="  ")
        assert "\n  <b>" in out
        assert "\n    <c/>" in out

    def test_special_chars_roundtrip(self):
        source = "<a>&lt;tag&gt; &amp; more</a>"
        assert serialize(parse(source)) == source


class TestRoundTrip:
    @pytest.mark.parametrize(
        "source",
        [
            "<a/>",
            "<a><b/><c/></a>",
            '<a x="1" y="2"><b z="&quot;"/></a>',
            "<a>text <b>inner</b> tail</a>",
            "<a>&amp;&lt;&gt;</a>",
            "<root><x><y><z>deep</z></y></x></root>",
        ],
    )
    def test_parse_serialize_parse(self, source):
        tree = parse(source)
        again = parse(serialize(tree))
        assert structurally_equal(tree, again)

    def test_pretty_roundtrip_data_centric(self):
        tree = parse("<a><b><c/></b><d/></a>")
        pretty = serialize(tree, indent="    ")
        again = parse(pretty)  # whitespace text dropped on re-parse
        assert structurally_equal(tree, again)

    def test_generated_trees_roundtrip(self):
        from repro.generator import generate_xmark

        tree = generate_xmark(scale=0.02, seed=9)
        again = parse(serialize(tree))
        assert structurally_equal(tree, again)


class TestSpecialNodes:
    def test_comment_rendered(self):
        tree = parse("<a><!-- note --><b/></a>", keep_comments=True)
        assert "<!-- note -->" in serialize(tree)

    def test_materialised_attribute_node_standalone(self):
        from repro.xmltree import XmlTree, attribute

        from repro.xmltree import element

        root = element("holder")
        root.append_child(attribute("id", 'x"y'))
        out = serialize(XmlTree(root))
        # attribute children are folded into the element's dict form on
        # real documents; standalone rendering is a debug view
        assert "holder" in out

    def test_mixed_content_no_indent_inside(self):
        tree = parse("<p>one <b>two</b> three</p>")
        pretty = serialize(tree, indent="  ")
        assert "one <b>two</b> three" in pretty


class TestWriteFile(object):
    def test_write_file(self, tmp_path):
        from repro.xmltree import parse_file, write_file

        tree = parse('<a x="1"><b>t</b></a>')
        path = str(tmp_path / "doc.xml")
        write_file(tree, path, declaration=True)
        again = parse_file(path)
        assert structurally_equal(tree, again)
