"""Unit tests for the node model."""

import pytest

from repro.errors import TreeStructureError
from repro.xmltree import NodeKind, XmlNode, element, text


def make_family():
    parent = element("parent")
    first = parent.append_child(element("first"))
    second = parent.append_child(element("second"))
    third = parent.append_child(element("third"))
    return parent, first, second, third


class TestStructure:
    def test_append_child_sets_parent(self):
        parent, first, *_ = make_family()
        assert first.parent is parent
        assert parent.children[0] is first

    def test_insert_child_at_position(self):
        parent, first, second, third = make_family()
        new = element("new")
        parent.insert_child(1, new)
        assert [c.tag for c in parent.children] == ["first", "new", "second", "third"]

    def test_insert_rejects_attached_node(self):
        parent, first, *_ = make_family()
        other = element("other")
        with pytest.raises(TreeStructureError):
            other.append_child(first)

    def test_insert_rejects_cycle(self):
        parent, first, *_ = make_family()
        with pytest.raises(TreeStructureError):
            first.append_child(parent)

    def test_insert_rejects_self_cycle(self):
        node = element("n")
        with pytest.raises(TreeStructureError):
            node.append_child(node)

    def test_insert_position_out_of_range(self):
        parent, *_ = make_family()
        with pytest.raises(TreeStructureError):
            parent.insert_child(99, element("x"))

    def test_detach(self):
        parent, first, second, third = make_family()
        second.detach()
        assert second.parent is None
        assert [c.tag for c in parent.children] == ["first", "third"]

    def test_detach_root_is_noop(self):
        node = element("solo")
        assert node.detach() is node


class TestNavigation:
    def test_depth(self):
        parent, first, *_ = make_family()
        grand = first.append_child(element("grand"))
        assert parent.depth == 0
        assert first.depth == 1
        assert grand.depth == 2

    def test_child_position(self):
        parent, first, second, third = make_family()
        assert parent.child_position() == 0  # root convention
        assert first.child_position() == 0
        assert third.child_position() == 2

    def test_ancestors(self):
        parent, first, *_ = make_family()
        grand = first.append_child(element("grand"))
        assert [a.tag for a in grand.ancestors()] == ["first", "parent"]

    def test_descendants_preorder(self):
        parent, first, second, third = make_family()
        first.append_child(element("grand"))
        tags = [d.tag for d in parent.descendants()]
        assert tags == ["first", "grand", "second", "third"]

    def test_subtree_size(self):
        parent, first, *_ = make_family()
        first.append_child(element("grand"))
        assert parent.subtree_size() == 5
        assert first.subtree_size() == 2

    def test_siblings(self):
        parent, first, second, third = make_family()
        assert second.preceding_siblings() == [first]
        assert second.following_siblings() == [third]
        assert parent.preceding_siblings() == []
        assert parent.following_siblings() == []

    def test_is_ancestor_of(self):
        parent, first, second, _ = make_family()
        grand = first.append_child(element("grand"))
        assert parent.is_ancestor_of(grand)
        assert first.is_ancestor_of(grand)
        assert not grand.is_ancestor_of(parent)
        assert not second.is_ancestor_of(grand)
        assert not parent.is_ancestor_of(parent)  # proper ancestry

    def test_fan_out_and_leaf(self):
        parent, first, *_ = make_family()
        assert parent.fan_out == 3
        assert not parent.is_leaf
        assert first.is_leaf
        assert parent.is_root
        assert not first.is_root


class TestContent:
    def test_text_content_concatenates(self):
        node = element("p")
        node.append_child(text("hello "))
        child = node.append_child(element("b"))
        child.append_child(text("world"))
        assert node.text_content() == "hello world"

    def test_attribute_get(self):
        node = XmlNode("n", attributes={"id": "x1"})
        assert node.get("id") == "x1"
        assert node.get("missing") is None
        assert node.get("missing", "d") == "d"

    def test_path(self):
        parent, first, *_ = make_family()
        grand = first.append_child(element("grand"))
        assert grand.path() == "/parent/first/grand"

    def test_node_ids_unique(self):
        nodes = [element("x") for _ in range(100)]
        assert len({n.node_id for n in nodes}) == 100

    def test_kind_constructors(self):
        assert text("hi").kind is NodeKind.TEXT
        assert element("e").kind is NodeKind.ELEMENT
