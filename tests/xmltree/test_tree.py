"""Unit tests for XmlTree traversals and structural queries."""

import pytest

from repro.errors import TreeStructureError
from repro.xmltree import XmlTree, build, element, parse


@pytest.fixture
def tree():
    # a(b(c, d(e)), f(g), h)
    return build(("a", [("b", ["c", ("d", ["e"])]), ("f", ["g"]), "h"]))


class TestTraversals:
    def test_preorder(self, tree):
        assert [n.tag for n in tree.preorder()] == list("abcdefgh")

    def test_postorder(self, tree):
        assert [n.tag for n in tree.postorder()] == list("cedbgfha")

    def test_levelorder(self, tree):
        assert [n.tag for n in tree.levelorder()] == list("abfhcdge")

    def test_levels(self, tree):
        levels = [[n.tag for n in level] for level in tree.levels()]
        assert levels == [["a"], ["b", "f", "h"], ["c", "d", "g"], ["e"]]

    def test_find_by_tag(self, tree):
        assert [n.tag for n in tree.find_by_tag("g")] == ["g"]
        assert tree.find_by_tag("nope") == []

    def test_postorder_matches_reversed_structure(self, tree):
        pre = [n.node_id for n in tree.preorder()]
        post = [n.node_id for n in tree.postorder()]
        assert sorted(pre) == sorted(post)
        assert pre[0] == post[-1]  # root first / last


class TestShape:
    def test_size_height_fanout(self, tree):
        assert tree.size() == 8
        assert tree.height() == 4
        assert tree.max_fan_out() == 3

    def test_fan_out_histogram(self, tree):
        histogram = tree.fan_out_histogram()
        assert histogram == {3: 1, 2: 1, 1: 2}

    def test_single_node_tree(self):
        tree = XmlTree(element("solo"))
        assert tree.size() == 1
        assert tree.height() == 1
        assert tree.max_fan_out() == 0


class TestRelationships:
    def test_contains(self, tree):
        inner = tree.find_by_tag("e")[0]
        assert tree.contains(inner)
        assert not tree.contains(element("foreign"))

    def test_lca(self, tree):
        by = {n.tag: n for n in tree.preorder()}
        assert tree.lowest_common_ancestor(by["c"], by["e"]) is by["b"]
        assert tree.lowest_common_ancestor(by["c"], by["g"]) is by["a"]
        assert tree.lowest_common_ancestor(by["b"], by["e"]) is by["b"]
        assert tree.lowest_common_ancestor(by["e"], by["e"]) is by["e"]

    def test_lca_foreign_node_raises(self, tree):
        with pytest.raises(TreeStructureError):
            tree.lowest_common_ancestor(tree.root, element("foreign"))

    def test_compare_document_order_total(self, tree):
        nodes = tree.nodes()
        order = tree.document_order_index()
        for first in nodes:
            for second in nodes:
                got = tree.compare_document_order(first, second)
                want = (order[first.node_id] > order[second.node_id]) - (
                    order[first.node_id] < order[second.node_id]
                )
                assert got == want

    def test_document_order_index_is_snapshot(self, tree):
        index = tree.document_order_index()
        assert index[tree.root.node_id] == 0
        assert len(index) == tree.size()


class TestEditing:
    def test_insert_node(self, tree):
        target = tree.find_by_tag("f")[0]
        new = tree.insert_node(target, 0, element("new"))
        assert target.children[0] is new
        assert tree.size() == 9

    def test_insert_foreign_parent_raises(self, tree):
        with pytest.raises(TreeStructureError):
            tree.insert_node(element("foreign"), 0, element("new"))

    def test_delete_subtree(self, tree):
        target = tree.find_by_tag("b")[0]
        removed = tree.delete_subtree(target)
        assert {n.tag for n in removed} == {"b", "c", "d", "e"}
        assert tree.size() == 4

    def test_delete_root_raises(self, tree):
        with pytest.raises(TreeStructureError):
            tree.delete_subtree(tree.root)


class TestUtility:
    def test_copy_is_deep(self, tree):
        clone = tree.copy()
        assert clone.size() == tree.size()
        assert [n.tag for n in clone.preorder()] == [n.tag for n in tree.preorder()]
        original_ids = {n.node_id for n in tree.preorder()}
        clone_ids = {n.node_id for n in clone.preorder()}
        assert not original_ids & clone_ids

    def test_materialise_attributes(self):
        tree = parse('<a x="1" y="2"><b z="3"/></a>')
        created = tree.materialise_attributes()
        assert created == 3
        attrs = [n.tag for n in tree.preorder() if n.kind.value == "attribute"]
        assert attrs == ["x", "y", "z"]
        # idempotent
        assert tree.materialise_attributes() == 0
