"""Unit tests for the circuit breaker state machine (fake clock)."""

import random

import pytest

from repro.errors import CircuitOpen, StorageError
from repro.resilience import CLOSED, HALF_OPEN, OPEN, BackoffPolicy, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_breaker(threshold=3, base=1.0, cap=100.0, jitter="none"):
    clock = FakeClock()
    breaker = CircuitBreaker(
        "dep",
        failure_threshold=threshold,
        backoff=BackoffPolicy(base=base, cap=cap, jitter=jitter,
                              rng=random.Random(1)),
        clock=clock,
    )
    return breaker, clock


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        breaker, _ = make_breaker()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            CircuitBreaker("dep", failure_threshold=0)

    def test_trips_open_at_threshold(self):
        breaker, _ = make_breaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_success_resets_the_failure_run(self):
        breaker, _ = make_breaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_guard_raises_typed_circuit_open(self):
        breaker, _ = make_breaker(threshold=1)
        breaker.record_failure()
        with pytest.raises(CircuitOpen) as exc_info:
            breaker.guard()
        err = exc_info.value
        assert err.breaker == "dep"
        assert err.retry_after_s > 0
        assert isinstance(err, StorageError)

    def test_half_open_after_window(self):
        breaker, clock = make_breaker(threshold=1, base=1.0)
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(1.0)
        assert breaker.state == HALF_OPEN

    def test_half_open_admits_one_probe(self):
        breaker, clock = make_breaker(threshold=1, base=1.0)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # concurrent caller rejected

    def test_probe_success_closes(self):
        breaker, clock = make_breaker(threshold=1, base=1.0)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_with_longer_window(self):
        breaker, clock = make_breaker(threshold=1, base=1.0, jitter="none")
        breaker.record_failure()  # open #1: window 1.0
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()  # open #2: window 2.0
        assert breaker.state == OPEN
        clock.advance(1.0)
        assert breaker.state == OPEN  # 2s window not yet elapsed
        clock.advance(1.0)
        assert breaker.state == HALF_OPEN

    def test_reset_force_closes(self):
        breaker, _ = make_breaker(threshold=1)
        breaker.record_failure()
        breaker.reset()
        assert breaker.state == CLOSED
        assert breaker.retry_after_s() == 0.0


class TestRetryAfter:
    def test_counts_down_with_the_clock(self):
        breaker, clock = make_breaker(threshold=1, base=2.0, jitter="none")
        breaker.record_failure()
        assert breaker.retry_after_s() == pytest.approx(2.0)
        clock.advance(1.5)
        assert breaker.retry_after_s() == pytest.approx(0.5)

    def test_zero_when_closed(self):
        breaker, _ = make_breaker()
        assert breaker.retry_after_s() == 0.0


class TestStats:
    def test_lifetime_counters(self):
        breaker, clock = make_breaker(threshold=1, base=1.0)
        breaker.allow()
        breaker.record_success()
        breaker.record_failure()
        breaker.allow()  # rejected: open
        stats = breaker.stats()
        assert stats["calls_allowed"] == 1
        assert stats["calls_rejected"] == 1
        assert stats["failures"] == 1
        assert stats["successes"] == 1
        assert stats["opens"] == 1
        assert stats["is_open"] == 1
        clock.advance(1.0)
        breaker.allow()
        breaker.record_success()
        assert breaker.stats()["is_open"] == 0

    def test_decorrelated_windows_vary(self):
        """The default schedule is decorrelated jitter: consecutive
        open windows should not repeat a fixed doubling sequence."""
        clock = FakeClock()
        breaker = CircuitBreaker(
            "dep",
            failure_threshold=1,
            backoff=BackoffPolicy(base=0.05, cap=5.0, jitter="decorrelated",
                                  rng=random.Random(9)),
            clock=clock,
        )
        windows = []
        for _ in range(5):
            breaker.record_failure()
            windows.append(breaker.retry_after_s())
            clock.advance(windows[-1] + 0.001)
            assert breaker.allow()
        assert len(set(round(w, 9) for w in windows)) > 1
