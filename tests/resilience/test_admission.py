"""Unit tests for token-based admission control."""

import threading

import pytest

from repro.errors import Overloaded, ReproError
from repro.obs.metrics import MetricsRegistry
from repro.resilience import AdmissionController


class TestValidation:
    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            AdmissionController(max_concurrent=0)
        with pytest.raises(ValueError):
            AdmissionController(max_queue=-1)
        with pytest.raises(ValueError):
            AdmissionController(queue_timeout_s=0)


class TestTokens:
    def test_admits_up_to_max_concurrent(self):
        controller = AdmissionController(max_concurrent=2, max_queue=0)
        with controller.admit():
            with controller.admit():
                assert controller.in_flight() == 2

    def test_sheds_beyond_tokens_plus_queue(self):
        controller = AdmissionController(max_concurrent=1, max_queue=0)
        with controller.admit():
            with pytest.raises(Overloaded) as exc_info:
                with controller.admit():
                    pass
        err = exc_info.value
        assert err.in_flight == 1
        assert err.retry_after_s > 0
        assert isinstance(err, ReproError)

    def test_release_frees_the_token(self):
        controller = AdmissionController(max_concurrent=1, max_queue=0)
        with controller.admit():
            pass
        with controller.admit():
            assert controller.in_flight() == 1
        assert controller.in_flight() == 0

    def test_released_even_when_body_raises(self):
        controller = AdmissionController(max_concurrent=1, max_queue=0)
        with pytest.raises(RuntimeError):
            with controller.admit():
                raise RuntimeError("boom")
        assert controller.in_flight() == 0

    def test_queue_timeout_sheds(self):
        controller = AdmissionController(
            max_concurrent=1, max_queue=4, queue_timeout_s=0.05
        )
        with controller.admit():
            with pytest.raises(Overloaded):
                with controller.admit():
                    pass
        assert controller.as_dict()["timed_out"] == 1

    def test_queued_request_proceeds_when_token_frees(self):
        controller = AdmissionController(
            max_concurrent=1, max_queue=4, queue_timeout_s=5.0
        )
        entered = threading.Event()
        release = threading.Event()
        results = []

        def holder():
            with controller.admit():
                entered.set()
                release.wait(timeout=5.0)

        def waiter():
            with controller.admit():
                results.append("ran")

        hold_thread = threading.Thread(target=holder)
        hold_thread.start()
        assert entered.wait(timeout=5.0)
        wait_thread = threading.Thread(target=waiter)
        wait_thread.start()
        # give the waiter time to join the queue, then free the token
        deadline = threading.Event()
        deadline.wait(timeout=0.05)
        release.set()
        wait_thread.join(timeout=5.0)
        hold_thread.join(timeout=5.0)
        assert results == ["ran"]
        snapshot = controller.as_dict()
        assert snapshot["admitted"] == 2
        assert snapshot["rejected"] == 0


class TestObservability:
    def test_counters_and_peaks(self):
        controller = AdmissionController(max_concurrent=2, max_queue=0)
        with controller.admit():
            with controller.admit():
                with pytest.raises(Overloaded):
                    controller.admit().__enter__()
        snapshot = controller.as_dict()
        assert snapshot["admitted"] == 2
        assert snapshot["rejected"] == 1
        assert snapshot["peak_in_flight"] == 2
        assert snapshot["in_flight"] == 0

    def test_bind_exposes_gauges(self):
        registry = MetricsRegistry()
        controller = AdmissionController(max_concurrent=3)
        controller.bind(registry)
        with controller.admit():
            snapshot = registry.snapshot()
        assert snapshot["resilience.admission.in_flight"] == 1
        assert snapshot["resilience.admission.max_concurrent"] == 3
