"""Unit tests for jittered backoff policies."""

import random

import pytest

from repro.errors import StorageError
from repro.resilience import JITTER_MODES, BackoffPolicy


class TestValidation:
    def test_base_must_be_positive(self):
        with pytest.raises(StorageError):
            BackoffPolicy(base=0)

    def test_cap_at_least_base(self):
        with pytest.raises(StorageError):
            BackoffPolicy(base=1.0, cap=0.5)

    def test_unknown_jitter_rejected(self):
        with pytest.raises(StorageError):
            BackoffPolicy(jitter="fibonacci")

    def test_attempt_budget_validated(self):
        with pytest.raises(StorageError):
            BackoffPolicy(max_attempts=0)

    def test_attempt_numbers_are_one_based(self):
        with pytest.raises(StorageError):
            BackoffPolicy().delay(0)


class TestNoneJitter:
    def test_doubles_per_attempt_until_cap(self):
        policy = BackoffPolicy(base=0.1, cap=1.0, jitter="none")
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)
        assert policy.delay(5) == pytest.approx(1.0)  # capped
        assert policy.delay(50) == pytest.approx(1.0)


class TestFullJitter:
    def test_uniform_over_zero_to_exponential(self):
        policy = BackoffPolicy(
            base=0.1, cap=10.0, jitter="full", rng=random.Random(42)
        )
        for attempt in range(1, 8):
            exponential = min(10.0, 0.1 * 2 ** (attempt - 1))
            for _ in range(50):
                assert 0.0 <= policy.delay(attempt) <= exponential

    def test_seeded_schedule_reproduces(self):
        first = BackoffPolicy(jitter="full", rng=random.Random(7))
        second = BackoffPolicy(jitter="full", rng=random.Random(7))
        assert [first.delay(n) for n in range(1, 6)] == [
            second.delay(n) for n in range(1, 6)
        ]


class TestDecorrelatedJitter:
    def test_bounded_by_base_and_three_times_previous(self):
        policy = BackoffPolicy(
            base=0.1, cap=100.0, jitter="decorrelated", rng=random.Random(3)
        )
        previous = 0.0
        for attempt in range(1, 20):
            delay = policy.delay(attempt, previous=previous)
            upper = max(0.1, 3.0 * (previous if previous > 0 else 0.1))
            assert 0.1 <= delay <= upper
            previous = delay

    def test_cap_clamps(self):
        policy = BackoffPolicy(base=0.1, cap=0.15, jitter="decorrelated")
        for attempt in range(1, 10):
            assert policy.delay(attempt, previous=5.0) <= 0.15

    def test_default_is_deterministic(self):
        # no rng passed: a fresh Random(0) each time
        assert BackoffPolicy().delay(1) == BackoffPolicy().delay(1)


class TestBudget:
    def test_exhausted_counts_the_first_try(self):
        policy = BackoffPolicy(max_attempts=3)
        assert not policy.exhausted(2)
        assert policy.exhausted(3)
        assert policy.exhausted(4)

    def test_no_budget_never_exhausts(self):
        assert not BackoffPolicy().exhausted(10_000)

    def test_modes_are_exported(self):
        assert set(JITTER_MODES) == {"none", "full", "decorrelated"}
