"""ResilientNodeStore: retries, breaker, and memory-store fallback.

Every stack here is built fresh per test so the buffer pool and the
paged store's row caches start cold — armed read faults then hit the
very first probe instead of being absorbed by a warm cache.
"""

import random

import pytest

from repro.baselines.registry import get_scheme
from repro.errors import TransientFetchError, UnknownLabelError
from repro.resilience import BackoffPolicy, CircuitBreaker, ResilientNodeStore
from repro.resilience.breaker import OPEN
from repro.obs.metrics import MetricsRegistry
from repro.storage.database import XmlDatabase, label_key
from repro.storage.faults import FaultInjector
from repro.store import MemoryNodeStore, PagedNodeStore
from repro.xmltree import parse

DOC = """<library>
 <shelf id="s1">
  <book><title>One</title><year>1999</year></book>
  <book><title>Two</title><year>2004</year></book>
 </shelf>
 <shelf id="s2">
  <book><title>Three</title><year>2011</year></book>
 </shelf>
</library>"""

NO_SLEEP = lambda seconds: None  # noqa: E731


def build_stack(
    faults=None,
    breaker=None,
    backoff=None,
    with_fallback=True,
    pool_pages=2,
):
    tree = parse(DOC)
    labeling = get_scheme("ruid2").build(tree)
    database = XmlDatabase(page_size=512, pool_pages=pool_pages, faults=faults)
    document = database.store_document("lib", tree, labeling)
    primary = PagedNodeStore(document)
    fallback = MemoryNodeStore(labeling) if with_fallback else None
    resilient = ResilientNodeStore(
        primary,
        fallback=fallback,
        breaker=breaker,
        backoff=backoff,
        sleep=NO_SLEEP,
    )
    database.pager.flush()  # persist the freshly built ranks table
    database.pager._pool.clear()  # ...then force every first probe cold
    return resilient, primary, fallback, database, tree, labeling


class TestHealthyPassthrough:
    def test_answers_match_the_primary(self):
        resilient, primary, _, _, tree, labeling = build_stack()
        root = resilient.root_label()
        assert root == label_key(labeling.label_of(tree.root))
        assert resilient.size() == primary.size()
        assert resilient.children_of(root) == primary.children_of(root)
        assert resilient.labels_with_tag("book") == primary.labels_with_tag("book")
        assert not resilient.degraded()

    def test_semantic_errors_pass_through(self):
        resilient, _, _, _, _, _ = build_stack()
        with pytest.raises(UnknownLabelError):
            resilient.rank_of(("nope", 1, 2, 3))
        assert not resilient.degraded()


class TestRetries:
    def test_transient_faults_cleared_by_retry(self):
        faults = FaultInjector(seed=5)
        resilient, _, _, _, _, _ = build_stack(faults=faults)
        faults.arm_read_faults(transient_rate=1.0, max_fires=2)
        root = resilient.root_label()  # 2 transients, then success
        assert root is not None
        counters = resilient.as_dict()
        assert counters["retries"] == 2
        assert counters["primary_errors"] == 2
        assert counters["backoff_seconds"] > 0
        assert not resilient.degraded()
        assert faults.fired["read_transient"] == 2

    def test_exhausted_retries_degrade_to_fallback(self):
        faults = FaultInjector(seed=5)
        resilient, _, _, _, tree, labeling = build_stack(faults=faults)
        faults.arm_read_faults(transient_rate=1.0)  # unbounded
        root = resilient.root_label()
        assert root == label_key(labeling.label_of(tree.root))
        assert resilient.degraded()
        assert resilient.as_dict()["fallback_calls"] >= 1

    def test_no_fallback_raises_typed(self):
        faults = FaultInjector(seed=5)
        resilient, _, _, _, _, _ = build_stack(
            faults=faults, with_fallback=False
        )
        faults.arm_read_faults(transient_rate=1.0)
        with pytest.raises(TransientFetchError):
            resilient.root_label()


class TestFallbackDialect:
    """Degraded answers must stay in the paged label dialect."""

    def degraded_stack(self):
        faults = FaultInjector(seed=5)
        stack = build_stack(faults=faults)
        faults.arm_read_faults(transient_rate=1.0)
        return stack

    def test_record_rekeyed(self):
        resilient, _, _, _, tree, labeling = self.degraded_stack()
        root = label_key(labeling.label_of(tree.root))
        record = resilient.record(root)
        assert record.label == root
        assert record.tag == "library"

    def test_traversal_round_trips(self):
        resilient, _, _, _, tree, labeling = self.degraded_stack()
        root = resilient.root_label()
        children = resilient.children_of(root)
        assert len(children) == 2
        for child in children:
            assert resilient.parent_of(child) == root
        assert resilient.parent_of(root) is None
        books = resilient.labels_with_tag("book")
        assert len(books) == 3
        assert [resilient.string_value(t) for t in
                resilient.labels_with_tag("title")] == ["One", "Two", "Three"]

    def test_node_for_and_label_for(self):
        resilient, _, _, _, _, _ = self.degraded_stack()
        books = resilient.labels_with_tag("book")
        nodes = [resilient.node_for(label) for label in books]
        assert [node.tag for node in nodes] == ["book"] * 3
        for label, node in zip(books, nodes):
            assert resilient.label_for(node) == label
        order = resilient.order_by_id()
        ranks = [order[node.node_id] for node in nodes]
        assert ranks == sorted(ranks)


class TestBreaker:
    def test_repeated_failures_open_the_breaker(self):
        faults = FaultInjector(seed=5)
        breaker = CircuitBreaker(
            "paged-reads",
            failure_threshold=2,
            backoff=BackoffPolicy(base=60.0, cap=600.0, jitter="none"),
        )
        resilient, _, _, _, _, _ = build_stack(faults=faults, breaker=breaker)
        faults.arm_read_faults(transient_rate=1.0)
        resilient.root_label()  # retries exhaust, breaker trips
        assert breaker.state == OPEN
        before = resilient.as_dict()["primary_calls"]
        resilient.size()  # breaker open: primary never touched
        assert resilient.as_dict()["primary_calls"] == before
        assert resilient.degraded()

    def test_reset_and_disarm_restore_the_primary(self):
        faults = FaultInjector(seed=5)
        breaker = CircuitBreaker(
            "paged-reads",
            failure_threshold=2,
            backoff=BackoffPolicy(base=60.0, cap=600.0, jitter="none"),
        )
        resilient, _, _, _, _, _ = build_stack(faults=faults, breaker=breaker)
        faults.arm_read_faults(transient_rate=1.0)
        resilient.root_label()
        faults.disarm_read_faults()
        breaker.reset()
        fallback_calls = resilient.as_dict()["fallback_calls"]
        assert resilient.size() == 18  # the document's node count
        assert resilient.as_dict()["fallback_calls"] == fallback_calls


class TestObservability:
    def test_bind_exposes_counters_and_breaker(self):
        registry = MetricsRegistry()
        resilient, _, _, _, _, _ = build_stack()
        resilient.bind(registry)
        resilient.root_label()
        snapshot = registry.snapshot()
        assert snapshot["resilience.store.primary_calls"] >= 1
        assert snapshot["resilience.store.fallback_calls"] == 0
        assert snapshot["resilience.store.breaker.is_open"] == 0

    def test_stats_snapshot_delegates_to_primary(self):
        resilient, primary, _, _, _, _ = build_stack()
        resilient.root_label()
        assert resilient.stats_snapshot() == primary.stats_snapshot()
