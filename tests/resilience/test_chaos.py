"""Cross-layer chaos schedules.

The invariant every schedule asserts: under injected faults a query
either returns the **baseline-correct answer** or raises a **typed
ReproError** — never a wrong answer, never an untyped crash, and (by
construction: injected sleeps, fake clocks) never a hang.

Chaos is seeded; a failing schedule reproduces from its seed alone.
"""

import pytest

from repro.baselines.registry import get_scheme
from repro.core import Ruid2Labeling, SizeCapPartitioner
from repro.errors import ReproError, SiteUnavailableError
from repro.generator import generate_xmark
from repro.query.parser import parse_xpath
from repro.resilience import BackoffPolicy, CircuitBreaker, ResilientNodeStore
from repro.storage import FaultInjector, FederatedDocument
from repro.storage.database import XmlDatabase, label_key
from repro.store import MemoryNodeStore, PagedNodeStore, StoreEvaluator

from tests.differential.conftest import (
    CORPORA,
    baseline_keys,
    corpus_tree,
    paged_result_keys,
)

NO_SLEEP = lambda seconds: None  # noqa: E731

pytestmark = pytest.mark.chaos

#: corpora small enough to rebuild per seed; queries come with them
CHAOS_CORPORA = ("site", "random")
CHAOS_SEEDS = (1, 2, 3)


def build_chaos_stack(corpus: str, seed: int, with_fallback: bool = True):
    """A fresh paged stack with an armed injector and a resilient
    wrapper; fresh per schedule so fault state never leaks."""
    tree = corpus_tree(corpus)
    labeling = get_scheme("ruid2").build(tree)
    faults = FaultInjector(seed=seed)
    database = XmlDatabase(page_size=1024, pool_pages=4, faults=faults)
    document = database.store_document(corpus, tree, labeling)
    primary = PagedNodeStore(document)
    fallback = MemoryNodeStore(labeling) if with_fallback else None
    resilient = ResilientNodeStore(
        primary,
        fallback=fallback,
        breaker=CircuitBreaker(
            "paged-reads",
            failure_threshold=5,
            backoff=BackoffPolicy(base=0.01, cap=0.1, jitter="none"),
        ),
        sleep=NO_SLEEP,
    )
    key_map = {
        label_key(labeling.label_of(node)): node.node_id
        for node in tree.preorder()
    }
    chill(database)
    return resilient, faults, database, key_map


def chill(database) -> None:
    """Persist dirty pages, then empty the pool: the next probe of any
    page is a cold read (the path the injector attacks)."""
    database.pager.flush()
    database.pager._pool.clear()


class TestReadPathChaos:
    @pytest.mark.parametrize("corpus", CHAOS_CORPORA)
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_with_fallback_always_correct(self, corpus, seed):
        """Transient faults + latency spikes, memory fallback armed:
        every query must match the navigational baseline exactly."""
        resilient, faults, database, key_map = build_chaos_stack(corpus, seed)
        faults.arm_read_faults(
            transient_rate=0.3,
            latency_rate=0.2,
            latency_s=0.001,
            sleep=NO_SLEEP,
        )
        evaluator = StoreEvaluator(resilient)
        for query in CORPORA[corpus][1]:
            chill(database)
            got = paged_result_keys(
                resilient, key_map, evaluator.select(parse_xpath(query))
            )
            assert got == baseline_keys(corpus, query), (corpus, seed, query)
        # the schedule must actually have injected something
        assert faults.fired["read_transient"] + faults.fired["read_latency"] > 0

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_without_fallback_correct_or_typed(self, seed):
        """No fallback: a query under fault pressure either matches the
        baseline or dies with a typed ReproError."""
        corpus = "site"
        resilient, faults, database, key_map = build_chaos_stack(
            corpus, seed, with_fallback=False
        )
        faults.arm_read_faults(transient_rate=0.4, sleep=NO_SLEEP)
        evaluator = StoreEvaluator(resilient)
        outcomes = {"correct": 0, "typed": 0}
        for query in CORPORA[corpus][1]:
            chill(database)
            resilient.breaker.reset()
            try:
                got = paged_result_keys(
                    resilient, key_map, evaluator.select(parse_xpath(query))
                )
            except ReproError:
                outcomes["typed"] += 1
                continue
            assert got == baseline_keys(corpus, query), (seed, query)
            outcomes["correct"] += 1
        assert sum(outcomes.values()) == len(CORPORA[corpus][1])

    def test_bitflip_poisons_the_page_and_degrades(self):
        """A fetch-time bit flip persists on disk: retries keep failing
        the CRC, so the resilient store must degrade to memory — and
        the answers stay correct."""
        corpus = "site"
        resilient, faults, database, key_map = build_chaos_stack(corpus, 7)
        faults.arm_read_faults(bitflip_rate=1.0, max_fires=1)
        evaluator = StoreEvaluator(resilient)
        for query in CORPORA[corpus][1]:
            chill(database)
            got = paged_result_keys(
                resilient, key_map, evaluator.select(parse_xpath(query))
            )
            assert got == baseline_keys(corpus, query), query
        assert faults.fired["read_bitflip"] == 1
        assert resilient.degraded()
        counters = resilient.as_dict()
        assert counters["primary_errors"] > 0  # ChecksumError retries


class TestFederationChaos:
    @pytest.fixture(scope="class")
    def labeling(self):
        tree = generate_xmark(scale=0.05, seed=97)
        return Ruid2Labeling(tree, partitioner=SizeCapPartitioner(12))

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_random_outage_correct_or_typed(self, labeling, seed):
        """Take a seeded-random site down mid-run: with rf=2 every
        fetch still answers correctly; with rf=1 the lost areas fail
        typed. Either way: correct or typed, nothing else."""
        faults = FaultInjector(seed=seed)
        federation = FederatedDocument(
            labeling,
            site_count=3,
            replication_factor=2,
            faults=faults,
            backoff_jitter="decorrelated",
        )
        reference = FederatedDocument(labeling, site_count=3)
        labels = list(labeling.snapshot().values())
        half = len(labels) // 2
        for label in labels[:half]:
            assert federation.fetch(label)[0] == reference.fetch(label)[0]
        victim = faults.take_random_site_down(
            site.name for site in federation.sites
        )
        for label in labels[half:]:
            assert federation.fetch(label)[0] == reference.fetch(label)[0]
        snapshot = federation.stats_snapshot()
        assert snapshot["failovers"] > 0
        faults.restore_site(victim)
        federation.reset_breakers()

    def test_rf1_outage_is_typed_not_wrong(self, labeling):
        faults = FaultInjector(seed=11)
        federation = FederatedDocument(
            labeling, site_count=3, replication_factor=1, faults=faults
        )
        reference = FederatedDocument(labeling, site_count=3)
        victim = faults.take_random_site_down(
            site.name for site in federation.sites
        )
        down_areas = set(
            next(s for s in federation.sites if s.name == victim).areas
        )
        for label in labeling.snapshot().values():
            if label.global_index in down_areas:
                with pytest.raises(SiteUnavailableError):
                    federation.fetch(label)
            else:
                assert federation.fetch(label)[0] == reference.fetch(label)[0]

    def test_attempt_budget_fails_fast(self, labeling):
        """A bounded attempt budget turns a dead replica set into a
        typed error after max_attempts contacts, not an endless scan."""
        faults = FaultInjector(seed=2)
        federation = FederatedDocument(
            labeling,
            site_count=3,
            replication_factor=2,
            faults=faults,
            max_attempts=1,
        )
        for site in federation.sites:
            faults.take_site_down(site.name)
        label = labeling.label_of(labeling.tree.root)
        with pytest.raises(SiteUnavailableError):
            federation.fetch(label)
