"""Unit tests for cooperative deadlines (fake-clock, deterministic)."""

import pytest

from repro.errors import QueryError, QueryTimeout, ReproError
from repro.resilience import Deadline


class FakeClock:
    """Manually advanced monotonic nanosecond clock."""

    def __init__(self, start_ns: int = 0):
        self.now_ns = start_ns

    def __call__(self) -> int:
        return self.now_ns

    def advance_ms(self, ms: float) -> None:
        self.now_ns += int(ms * 1e6)


class TestConstruction:
    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            Deadline(0)
        with pytest.raises(ValueError):
            Deadline(-5)

    def test_check_interval_validated(self):
        with pytest.raises(ValueError):
            Deadline(10, check_interval=0)

    def test_fresh_deadline_has_full_budget(self):
        clock = FakeClock()
        deadline = Deadline(100, clock=clock)
        assert deadline.remaining_ms() == pytest.approx(100)
        assert deadline.elapsed_ms() == 0
        assert not deadline.expired()


class TestTick:
    def test_tick_raises_after_budget(self):
        clock = FakeClock()
        deadline = Deadline(10, clock=clock, check_interval=1)
        deadline.tick()
        clock.advance_ms(11)
        with pytest.raises(QueryTimeout):
            deadline.tick()

    def test_countdown_skips_clock_until_interval(self):
        clock = FakeClock()
        deadline = Deadline(10, clock=clock, check_interval=4)
        clock.advance_ms(50)  # already expired, but unchecked
        deadline.tick()
        deadline.tick()
        deadline.tick()  # three ticks < interval: no clock read yet
        with pytest.raises(QueryTimeout):
            deadline.tick()  # fourth tick reads the clock

    def test_batched_items_force_early_check(self):
        """A set-at-a-time step with a big batch must not coast for
        another 63 ticks: the item weight drains the countdown."""
        clock = FakeClock()
        deadline = Deadline(10, clock=clock, check_interval=64)
        clock.advance_ms(50)
        with pytest.raises(QueryTimeout):
            deadline.tick(items=1000)

    def test_partial_work_counters_on_timeout(self):
        clock = FakeClock()
        deadline = Deadline(10, clock=clock, check_interval=1)
        deadline.tick(items=3)
        deadline.tick(items=4)
        clock.advance_ms(20)
        with pytest.raises(QueryTimeout) as exc_info:
            deadline.tick(items=1)
        err = exc_info.value
        assert err.steps == 3
        assert err.items == 8
        assert err.budget_ms == pytest.approx(10)
        assert err.elapsed_ms == pytest.approx(20)

    def test_check_is_unconditional(self):
        clock = FakeClock()
        deadline = Deadline(10, clock=clock, check_interval=64)
        clock.advance_ms(11)
        with pytest.raises(QueryTimeout):
            deadline.check()

    def test_timeout_is_a_typed_query_error(self):
        clock = FakeClock()
        deadline = Deadline(1, clock=clock, check_interval=1)
        clock.advance_ms(2)
        with pytest.raises(QueryError):
            deadline.tick()
        clock.advance_ms(2)
        with pytest.raises(ReproError):
            deadline.tick()


class TestObservers:
    def test_elapsed_and_remaining_track_the_clock(self):
        clock = FakeClock()
        deadline = Deadline(100, clock=clock)
        clock.advance_ms(30)
        assert deadline.elapsed_ms() == pytest.approx(30)
        assert deadline.remaining_ms() == pytest.approx(70)
        clock.advance_ms(80)
        assert deadline.remaining_ms() == pytest.approx(-10)
        assert deadline.expired()

    def test_repr_mentions_budget(self):
        assert "budget=50ms" in repr(Deadline(50, clock=FakeClock()))
