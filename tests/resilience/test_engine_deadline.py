"""Deadlines carried through the query engine, plus the failure ledger
(per-error-type counters and the slow log's failure ring)."""

import pytest

from repro.baselines.registry import get_scheme
from repro.errors import QueryTimeout, TransientFetchError
from repro.obs.slowlog import SlowQueryLog
from repro.query.engine import XPathEngine
from repro.query.twig import TwigMatcher
from repro.resilience import Deadline
from repro.storage.database import XmlDatabase
from repro.storage.faults import FaultInjector
from repro.store import PagedNodeStore
from repro.xmltree import parse

DOC = """<site>
 <people>
  <person id="p1"><name>Alice</name><age>31</age></person>
  <person id="p2"><name>Bob</name><age>17</age></person>
 </people>
 <items>
  <item id="i1"><name>Lamp</name><price>19</price></item>
  <item id="i2"><name>Desk</name><price>140</price></item>
 </items>
</site>"""


class TickingClock:
    """Monotonic ns clock that advances a fixed step per read, so
    timeouts depend only on how many checks ran — never on host speed."""

    def __init__(self, step_ms: float = 1.0):
        self.now_ns = 0
        self.step_ns = int(step_ms * 1e6)

    def __call__(self) -> int:
        self.now_ns += self.step_ns
        return self.now_ns


def expired_deadline() -> Deadline:
    # every clock read advances 1ms against a 1ms budget, and
    # check_interval=1 makes every tick consult the clock
    return Deadline(1, clock=TickingClock(step_ms=1.0), check_interval=1)


def build_store_engine(faults=None, **engine_kwargs):
    tree = parse(DOC)
    labeling = get_scheme("ruid2").build(tree)
    database = XmlDatabase(page_size=512, pool_pages=2, faults=faults)
    document = database.store_document("site", tree, labeling)
    store = PagedNodeStore(document)
    database.pager.flush()  # persist the ranks table before chilling
    database.pager._pool.clear()
    return XPathEngine(None, store=store, **engine_kwargs), database


class TestSelectDeadline:
    @pytest.mark.parametrize("strategy", ["ruid", "navigational"])
    def test_expired_deadline_raises_typed_timeout(self, strategy):
        engine = XPathEngine(parse(DOC))
        with pytest.raises(QueryTimeout) as exc_info:
            engine.select("//name", strategy=strategy,
                          deadline=expired_deadline())
        err = exc_info.value
        assert err.budget_ms == pytest.approx(1)
        assert err.steps >= 1  # partial work was counted

    def test_expired_deadline_on_the_store_strategy(self):
        engine, _ = build_store_engine()
        with pytest.raises(QueryTimeout):
            engine.select("//person[age > 20]/name", strategy="store",
                          deadline=expired_deadline())

    @pytest.mark.parametrize("strategy", ["ruid", "navigational"])
    def test_generous_deadline_changes_nothing(self, strategy):
        engine = XPathEngine(parse(DOC))
        plain = engine.select("//person[age > 20]/name", strategy=strategy)
        bounded = engine.select("//person[age > 20]/name", strategy=strategy,
                                deadline=Deadline(60_000))
        assert [n.node_id for n in bounded] == [n.node_id for n in plain]

    def test_numeric_deadline_coerced_to_milliseconds(self):
        engine = XPathEngine(parse(DOC))
        result = engine.select("//name", deadline=60_000)
        assert len(result) == 4

    def test_deadline_cleared_after_the_query(self):
        engine = XPathEngine(parse(DOC))
        engine.select("//name", deadline=Deadline(60_000))
        assert engine.evaluator("ruid").deadline is None

    def test_deadline_cleared_after_a_timeout(self):
        engine = XPathEngine(parse(DOC))
        with pytest.raises(QueryTimeout):
            engine.select("//name", deadline=expired_deadline())
        assert engine.evaluator("ruid").deadline is None
        # and the engine still works
        assert len(engine.select("//name")) == 4


class TestFailureLedger:
    def test_error_counted_by_type(self):
        engine = XPathEngine(parse(DOC))
        with pytest.raises(QueryTimeout):
            engine.select("//name", deadline=expired_deadline())
        assert engine.stats.queries_failed == 1
        assert engine.stats.error_counts() == {"QueryTimeout": 1}
        assert engine.stats.as_dict()["errors.QueryTimeout"] == 1

    def test_storage_faults_counted_on_the_fast_path(self):
        """No observability attached: the unobserved path must still
        ledger the typed failure."""
        faults = FaultInjector(seed=3)
        engine, _ = build_store_engine(faults=faults)
        faults.arm_read_faults(transient_rate=1.0)
        with pytest.raises(TransientFetchError):
            engine.select("//name", strategy="store")
        assert engine.stats.error_counts() == {"TransientFetchError": 1}

    def test_slow_log_failure_ring_captures_plan(self):
        slow_log = SlowQueryLog(threshold_ms=10_000)
        engine = XPathEngine(parse(DOC), slow_log=slow_log)
        with pytest.raises(QueryTimeout):
            engine.select("//person/name", deadline=expired_deadline())
        assert slow_log.failure_count == 1
        failure = slow_log.failures()[0]
        assert failure.expression == "//person/name"
        assert failure.error_type == "QueryTimeout"
        assert "deadline" in failure.attrs["error"]
        assert failure.plan is not None  # the static plan still compiled
        # the failure ring is separate from the slow heap
        assert len(slow_log) == 0
        slow_log.clear()
        assert slow_log.failure_count == 0
        assert slow_log.failures() == []

    def test_metrics_registry_sees_error_counters(self):
        engine = XPathEngine(parse(DOC))
        with pytest.raises(QueryTimeout):
            engine.select("//name", deadline=expired_deadline())
        assert engine.metrics.snapshot()["query.errors.QueryTimeout"] == 1


class TestTwigDeadline:
    def test_match_raises_on_expired_budget(self):
        tree = parse(DOC)
        labeling = get_scheme("ruid2").build(tree)
        matcher = TwigMatcher(labeling)
        matcher.set_deadline(expired_deadline())
        with pytest.raises(QueryTimeout):
            matcher.match("site//person[name]")

    def test_clearing_restores_the_matcher(self):
        tree = parse(DOC)
        labeling = get_scheme("ruid2").build(tree)
        matcher = TwigMatcher(labeling)
        matcher.set_deadline(expired_deadline())
        with pytest.raises(QueryTimeout):
            matcher.match("person[name]")
        matcher.set_deadline(None)
        assert len(matcher.match("person[name]")) == 2
