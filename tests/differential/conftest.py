"""Shared machinery for the cross-scheme differential harness.

One corpus = one document plus the query set exercised against it.
For every corpus the navigational evaluator (plain DOM walking, no
labels anywhere) is the ground truth; each numbering scheme answers
the same queries through a :class:`StructuralView` built from *its
own* rank index and parent arithmetic, so a wrong scheme produces
divergent results rather than a crash.

Everything expensive (trees, baselines, per-scheme views) is built
once per session and memoised here.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import pytest

from repro.baselines.registry import get_scheme
from repro.concurrent import SnapshotEvaluator, StructuralView
from repro.errors import UnknownLabelError
from repro.storage.database import XmlDatabase, label_key
from repro.store import PagedNodeStore, SqliteNodeStore, StoreEvaluator
from repro.generator import (
    DBLP_QUERIES,
    RandomTreeConfig,
    TREEBANK_QUERIES,
    XMARK_QUERIES,
    generate_dblp,
    generate_treebank,
    generate_tree,
    generate_xmark,
)
from repro.query.engine import XPathEngine
from repro.query.parser import parse_xpath
from repro.xmltree import parse
from repro.xmltree.tree import XmlTree

SITE_DOC = """<site>
 <people>
  <person id="p1"><name>Alice</name><age>31</age></person>
  <person id="p2"><name>Bob</name><age>17</age></person>
  <person id="p3"><name>Cara</name><age>44</age></person>
 </people>
 <items>
  <item id="i1"><name>Lamp</name><price>19</price></item>
  <item id="i2"><name>Desk</name><price>140</price></item>
 </items>
</site>"""

#: the former tests/query ad-hoc agreement queries, kept verbatim so
#: the coverage that lived there moves here rather than disappearing
SITE_QUERIES = (
    "/site/people/person",
    "//name",
    "//person[age > 20]/name",
    "//item/following-sibling::*",
    "//price/ancestor::item",
    "//person[2]/preceding::*",
    "//people/descendant::name[2]",
    "//*[name() != 'site']",
    "//person[@id = 'p2']/name",
    "//item/name/text()",
)

RANDOM_QUERIES = (
    "//*",
    "/*/*",
    "//item",
    "//entry/ancestor::*",
    "//group/descendant-or-self::*",
    "//*[2]/following-sibling::*",
    "//record/..",
)

#: corpus name → (tree factory, query tuple)
CORPORA = {
    "site": (lambda: parse(SITE_DOC), SITE_QUERIES),
    "random": (
        lambda: generate_tree(RandomTreeConfig(node_count=400), seed=11),
        RANDOM_QUERIES,
    ),
    "xmark": (lambda: generate_xmark(scale=0.08, seed=3), XMARK_QUERIES),
    "dblp": (lambda: generate_dblp(entries=60, seed=7), DBLP_QUERIES),
    "treebank": (
        lambda: generate_treebank(sentences=6, max_depth=10, seed=5),
        TREEBANK_QUERIES,
    ),
}

_trees: Dict[str, XmlTree] = {}
_engines: Dict[str, XPathEngine] = {}
_baselines: Dict[Tuple[str, str], List] = {}
_views: Dict[Tuple[str, str], StructuralView] = {}


def corpus_tree(name: str) -> XmlTree:
    tree = _trees.get(name)
    if tree is None:
        _trees[name] = tree = CORPORA[name][0]()
    return tree


def corpus_engine(name: str) -> XPathEngine:
    engine = _engines.get(name)
    if engine is None:
        _engines[name] = engine = XPathEngine(corpus_tree(name))
    return engine


def result_keys(nodes, tree: XmlTree) -> List:
    """Comparable identities for a result node-set.

    Real document nodes compare by ``node_id``. Transient attribute
    nodes (synthesized per evaluation, so ids differ between
    evaluators) compare by (owner id, name, value).
    """
    order = tree.document_order_index()
    keys = []
    for node in nodes:
        if node.node_id in order:
            keys.append(node.node_id)
        else:
            owner = node.parent.node_id if node.parent is not None else None
            keys.append(("attr", owner, node.tag, node.text))
    return keys


def baseline_keys(corpus: str, query: str) -> List:
    key = (corpus, query)
    cached = _baselines.get(key)
    if cached is None:
        engine = corpus_engine(corpus)
        result = engine.select(query, strategy="navigational")
        _baselines[key] = cached = result_keys(result, corpus_tree(corpus))
    return cached


def scheme_view(corpus: str, scheme: str) -> StructuralView:
    key = (corpus, scheme)
    view = _views.get(key)
    if view is None:
        labeling = get_scheme(scheme).build(corpus_tree(corpus))
        _views[key] = view = StructuralView.from_labeling(labeling)
    return view


def snapshot_select(corpus: str, scheme: str, query: str) -> List:
    evaluator = SnapshotEvaluator(scheme_view(corpus, scheme))
    return evaluator.select(parse_xpath(query))


#: corpus → (paged store, evaluator, flattened label key → source node_id)
_paged: Dict[str, Tuple[PagedNodeStore, StoreEvaluator, Dict]] = {}


def build_paged(tree, labeling, name: str = "doc", pool_pages: int = 32):
    """Shred (tree, labeling) and return (store, evaluator, key map).

    The key map ties paged labels (flattened storage key tuples) back
    to the source tree's node ids, so paged results are comparable to
    the navigational baseline.
    """
    database = XmlDatabase(page_size=1024, pool_pages=pool_pages)
    document = database.store_document(name, tree, labeling)
    store = PagedNodeStore(document)
    key_map = {
        label_key(labeling.label_of(node)): node.node_id
        for node in tree.preorder()
    }
    return store, StoreEvaluator(store), key_map


def paged_stack(corpus: str):
    stack = _paged.get(corpus)
    if stack is None:
        labeling = get_scheme("ruid2").build(corpus_tree(corpus))
        _paged[corpus] = stack = build_paged(corpus_tree(corpus), labeling, corpus)
    return stack


def paged_result_keys(store, key_map, nodes) -> List:
    """:func:`result_keys` semantics for a paged result set: stored
    nodes map through their label to the source ``node_id``; transient
    attribute nodes compare by (owner id, name, value)."""
    keys = []
    for node in nodes:
        try:
            label = store.label_for(node)
        except UnknownLabelError:
            owner = (
                key_map.get(store.label_for(node.parent))
                if node.parent is not None
                else None
            )
            keys.append(("attr", owner, node.tag, node.text))
            continue
        keys.append(key_map[label])
    return keys


def paged_select_keys(corpus: str, query: str) -> List:
    store, evaluator, key_map = paged_stack(corpus)
    return paged_result_keys(store, key_map, evaluator.select(parse_xpath(query)))


#: (corpus, scheme) → (sqlite store, evaluator, preorder rank → node_id)
_sqlite: Dict[Tuple[str, str], Tuple[SqliteNodeStore, StoreEvaluator, Dict]] = {}


def build_sqlite(tree, labeling, name: str = "doc"):
    """Shred (tree, labeling) into an in-memory accel table and return
    (store, evaluator, key map).

    The key map ties sqlite labels (preorder ranks) back to the source
    tree's node ids — the shred runs off *labeling*'s own rank index
    and parent arithmetic, so a buggy scheme diverges here exactly as
    it would in the snapshot battery.
    """
    store = SqliteNodeStore.shred(name, labeling)
    index = labeling.rank_index()
    key_map = {
        rank: labeling.node_of(label).node_id
        for label, rank in index.rank.items()
    }
    return store, StoreEvaluator(store), key_map


def sqlite_stack(corpus: str, scheme: str = "ruid2"):
    key = (corpus, scheme)
    stack = _sqlite.get(key)
    if stack is None:
        labeling = get_scheme(scheme).build(corpus_tree(corpus))
        _sqlite[key] = stack = build_sqlite(
            corpus_tree(corpus), labeling, corpus
        )
    return stack


def sqlite_result_keys(store, key_map, nodes) -> List:
    """:func:`result_keys` semantics for a sqlite result set."""
    keys = []
    for node in nodes:
        try:
            label = store.label_for(node)
        except UnknownLabelError:
            owner = (
                key_map.get(store.label_for(node.parent))
                if node.parent is not None
                else None
            )
            keys.append(("attr", owner, node.tag, node.text))
            continue
        keys.append(key_map[label])
    return keys


def sqlite_select_keys(corpus: str, query: str, scheme: str = "ruid2") -> List:
    store, evaluator, key_map = sqlite_stack(corpus, scheme)
    return sqlite_result_keys(store, key_map, evaluator.select(parse_xpath(query)))


@pytest.fixture(autouse=True, scope="session")
def _clear_caches_at_exit():
    yield
    _trees.clear()
    _engines.clear()
    _baselines.clear()
    _views.clear()
    _paged.clear()
    _sqlite.clear()
