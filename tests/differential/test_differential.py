"""Cross-scheme differential harness.

Every (corpus, query) pair runs through *all* numbering schemes (via
structural snapshots built from each scheme's own rank index and
parent arithmetic) plus the labeled fast path, and must return a
node-for-node identical result to the navigational baseline. This
replaces the ad-hoc per-scheme agreement assertions that used to live
in ``tests/query/test_evaluator.py``.
"""

from __future__ import annotations

import pytest

from repro.baselines.registry import UPDATABLE, get_scheme, scheme_names
from repro.concurrent import SnapshotEvaluator, StructuralView
from repro.generator import UpdateWorkloadConfig, apply_workload, generate_update_workload
from repro.query.engine import XPathEngine
from repro.query.parser import parse_xpath

from .conftest import (
    CORPORA,
    baseline_keys,
    build_paged,
    build_sqlite,
    corpus_engine,
    corpus_tree,
    paged_result_keys,
    paged_select_keys,
    result_keys,
    snapshot_select,
    sqlite_select_keys,
)

CASES = [
    pytest.param(corpus, query, id=f"{corpus}-{query}")
    for corpus, (_, queries) in CORPORA.items()
    for query in queries
]

SCHEMES = scheme_names()


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize(("corpus", "query"), CASES)
class TestSchemeAgreement:
    """All schemes answer every corpus query exactly like navigation."""

    def test_snapshot_matches_navigational(self, corpus, query, scheme):
        got = result_keys(snapshot_select(corpus, scheme, query), corpus_tree(corpus))
        assert got == baseline_keys(corpus, query), (
            f"scheme {scheme!r} diverged from navigational baseline "
            f"on {corpus}:{query}"
        )

    def test_sqlite_store_matches_navigational(self, corpus, query, scheme):
        """The fourth backend: the same (corpus, query, scheme) triple
        shredded into a sqlite accel table — off *this scheme's* rank
        index and parent arithmetic — and answered through SQL axis
        pushdown, node-for-node against navigation."""
        got = sqlite_select_keys(corpus, query, scheme)
        assert got == baseline_keys(corpus, query), (
            f"sqlite store over scheme {scheme!r} diverged from "
            f"navigational baseline on {corpus}:{query}"
        )


@pytest.mark.parametrize(("corpus", "query"), CASES)
def test_fast_path_matches_navigational(corpus, query):
    """The engine's labeled (rank-index) route agrees with navigation."""
    engine = corpus_engine(corpus)
    got = result_keys(engine.select(query, strategy="ruid"), corpus_tree(corpus))
    assert got == baseline_keys(corpus, query)


@pytest.mark.parametrize(("corpus", "query"), CASES)
def test_paged_store_matches_navigational(corpus, query):
    """Every corpus query, shredded into the paged store and answered
    through the buffer pool with no live DOM, returns a node-for-node
    identical result to navigation."""
    assert paged_select_keys(corpus, query) == baseline_keys(corpus, query)


def test_paged_store_post_update_and_restore():
    """After an insert/delete workload the relabeled tree re-shreds
    into a fresh paged store that still agrees with navigation on the
    updated document — the re-store path a frozen-generation store
    requires after writes."""
    from repro.query.parser import parse_xpath as compile_query

    tree = CORPORA["xmark"][0]()  # fresh copy; factories are deterministic
    labeling = get_scheme("ruid2").build(tree)
    ops = generate_update_workload(
        tree, UpdateWorkloadConfig(operations=30, insert_fraction=0.7), seed=29
    )
    for _report in apply_workload(tree, ops, labeling.insert, labeling.delete):
        pass

    store, evaluator, key_map = build_paged(tree, labeling, "updated")
    engine = XPathEngine(tree)
    for query in CORPORA["xmark"][1]:
        want = result_keys(engine.select(query, strategy="navigational"), tree)
        got = paged_result_keys(
            store, key_map, evaluator.select(compile_query(query))
        )
        assert got == want, f"paged store diverged post-update on {query}"


def test_sqlite_store_post_update_and_reshred():
    """After an insert/delete workload the relabeled tree re-shreds
    into a fresh accel table (new generation stamped in the meta row)
    that still agrees with navigation on the updated document."""
    from .conftest import sqlite_result_keys

    tree = CORPORA["xmark"][0]()  # fresh copy; factories are deterministic
    labeling = get_scheme("ruid2").build(tree)
    ops = generate_update_workload(
        tree, UpdateWorkloadConfig(operations=30, insert_fraction=0.7), seed=29
    )
    for _report in apply_workload(tree, ops, labeling.insert, labeling.delete):
        pass

    store, evaluator, key_map = build_sqlite(tree, labeling, "updated")
    assert store.generation == labeling.generation  # meta row re-stamped
    engine = XPathEngine(tree)
    for query in CORPORA["xmark"][1]:
        want = result_keys(engine.select(query, strategy="navigational"), tree)
        got = sqlite_result_keys(
            store, key_map, evaluator.select(parse_xpath(query))
        )
        assert got == want, f"sqlite store diverged post-update on {query}"


@pytest.mark.parametrize("corpus", list(CORPORA))
def test_result_sets_preserve_document_order(corpus):
    """Snapshot results come back in document order for every scheme."""
    tree = corpus_tree(corpus)
    order = tree.document_order_index()
    for scheme in SCHEMES:
        result = snapshot_select(corpus, scheme, "//*")
        ranks = [order[node.node_id] for node in result]
        assert ranks == sorted(ranks), f"{scheme} broke document order on {corpus}"


@pytest.mark.parametrize("scheme", sorted(UPDATABLE))
def test_post_update_agreement(scheme):
    """After a recorded insert/delete workload, a fresh snapshot built
    from the relabeled tree still agrees with navigation on that tree.

    Each scheme replays the same ordinal-path workload against its own
    copy of the corpus, so a relabeling bug shows up as divergence here
    rather than in the static tests above.
    """
    tree = CORPORA["xmark"][0]()  # fresh copy; factories are deterministic
    labeling = get_scheme(scheme).build(tree)
    ops = generate_update_workload(
        tree, UpdateWorkloadConfig(operations=40, insert_fraction=0.7), seed=19
    )
    for _report in apply_workload(tree, ops, labeling.insert, labeling.delete):
        pass

    view = StructuralView.from_labeling(labeling)
    snapshot = SnapshotEvaluator(view)
    engine = XPathEngine(tree)
    for query in CORPORA["xmark"][1]:
        want = result_keys(engine.select(query, strategy="navigational"), tree)
        got = result_keys(snapshot.select(parse_xpath(query)), tree)
        assert got == want, f"{scheme} diverged post-update on {query}"


@pytest.mark.parametrize("chain_limit", [2, 8])
def test_delta_chain_view_matches_navigational(chain_limit):
    """The concurrent write path's chained delta views answer every
    corpus query node-for-node like navigation on the mutated tree.

    A small ``chain_limit`` forces compaction folds mid-workload, so
    both chained-delta and freshly-folded views are exercised; the
    large limit keeps one deep chain alive to the end.
    """
    from repro.concurrent import ConcurrentDocument, DeltaView

    tree = CORPORA["xmark"][0]()
    doc = ConcurrentDocument(tree, scheme="ruid2", delta_chain_limit=chain_limit)
    with doc.pin():
        pass  # materialise the base so every edit publishes eagerly
    ops = generate_update_workload(
        tree, UpdateWorkloadConfig(operations=30, insert_fraction=0.7), seed=37
    )
    for _report in apply_workload(tree, ops, doc.insert, doc.delete):
        pass
    stats = doc.stats_snapshot()
    assert stats["snapshot_builds_delta"] > 0, "workload never exercised deltas"
    engine = XPathEngine(tree)
    with doc.pin() as snap:
        if chain_limit > 2 and stats["delta_fallbacks"] == 0:
            assert isinstance(snap.view, DeltaView)
        for query in CORPORA["xmark"][1]:
            want = result_keys(engine.select(query, strategy="navigational"), tree)
            got = result_keys(snap.select(query), tree)
            assert got == want, (
                f"delta chain (limit={chain_limit}) diverged from "
                f"navigation on {query}"
            )


def test_post_update_cardinalities_agree_across_schemes():
    """All updatable schemes, replaying the same workload on identical
    tree copies, report identical result sizes for every query."""
    counts = {}
    for scheme in sorted(UPDATABLE):
        tree = CORPORA["xmark"][0]()
        labeling = get_scheme(scheme).build(tree)
        ops = generate_update_workload(
            tree, UpdateWorkloadConfig(operations=25), seed=23
        )
        for _report in apply_workload(tree, ops, labeling.insert, labeling.delete):
            pass
        snapshot = SnapshotEvaluator(StructuralView.from_labeling(labeling))
        counts[scheme] = [
            len(snapshot.select(parse_xpath(q))) for q in CORPORA["xmark"][1]
        ]
    baseline = counts.pop(sorted(UPDATABLE)[0])
    for scheme, sizes in counts.items():
        assert sizes == baseline, f"{scheme} cardinalities diverged: {sizes}"
