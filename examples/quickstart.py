#!/usr/bin/env python3
"""Quickstart: label a document with 2-level rUID and use the labels.

Run:  python examples/quickstart.py
"""

from repro import Ruid2Scheme, parse
from repro.core import Relation, Ruid2Order

DOCUMENT = """
<library>
  <shelf genre="databases">
    <book year="2002"><title>A Structural Numbering Scheme for XML Data</title></book>
    <book year="1999"><title>Index Structures for Path Expressions</title></book>
  </shelf>
  <shelf genre="systems">
    <book year="2001"><title>Containment Queries in RDBMS</title></book>
  </shelf>
</library>
"""


def main() -> None:
    # 1. Parse (the library ships its own XML parser).
    tree = parse(DOCUMENT)
    print(f"parsed {tree.size()} nodes, height {tree.height()}")

    # 2. Build the 2-level rUID labeling (paper Definition 3 / Fig. 3).
    labeling = Ruid2Scheme(max_area_size=4).build(tree)
    core = labeling.core
    print(f"\nkappa = {core.kappa}, {core.area_count()} UID-local areas")
    print("table K (global, local-of-root, fan-out):")
    for row in core.ktable:
        print(f"  {row.as_tuple()}")

    print("\nlabels (document order):")
    for node, label in core.items():
        print(f"  {label!s:>18}  <{node.tag}>")

    # 3. Parent computation is pure arithmetic on (kappa, K) — the
    #    paper's Fig. 6 algorithm; no tree access happens here.
    a_title = tree.find_by_tag("title")[0]
    label = labeling.label_of(a_title)
    parent_label = labeling.parent_label(label)
    grandparent_label = labeling.parent_label(parent_label)
    print(f"\nrparent({label}) = {parent_label}  -> <{labeling.node_of(parent_label).tag}>")
    print(f"rparent^2        = {grandparent_label}  -> <{labeling.node_of(grandparent_label).tag}>")

    # 4. Document order / ancestry from labels alone (Lemmas 1-3).
    oracle = Ruid2Order(core.kappa, core.ktable)
    books = tree.find_by_tag("book")
    first, last = labeling.label_of(books[0]), labeling.label_of(books[-1])
    print(f"\nrelation({first}, {last}) = {oracle.relation(first, last).name}")
    root_label = labeling.label_of(tree.root)
    print(f"is_ancestor(root, last book) = {oracle.relation(root_label, last) is Relation.ANCESTOR}")

    # 5. XPath axes generated from identifiers (section 3.5).
    axes = labeling.axes
    shelf_label = labeling.label_of(tree.find_by_tag("shelf")[0])
    children = axes.children(shelf_label)
    print(f"\nchildren of first shelf: {[str(c) for c in children]}")
    following = axes.following(shelf_label)
    print(f"following axis size: {len(following)}")


if __name__ == "__main__":
    main()
