#!/usr/bin/env python3
"""Structural-update robustness: the paper's Fig. 1 and §3.2, live.

Replays the exact Fig. 1 insertion under the original UID, then runs a
mixed insert/delete workload under every updatable scheme and prints
the relabel-scope table (experiment E5).

Run:  python examples/update_robustness.py
"""

from repro.analysis import RELABEL_HEADERS, format_table, run_workload_per_scheme
from repro.baselines import get_scheme
from repro.core import UidLabeling, UidUpdater
from repro.generator import (
    UpdateWorkloadConfig,
    fig1_tree,
    generate_update_workload,
    generate_xmark,
)
from repro.xmltree import element


def fig1_demo() -> None:
    print("=== Paper Fig. 1: one insertion under the original UID ===")
    tree = fig1_tree()
    labeling = UidLabeling(tree, fan_out=3)
    print("before:", {n.tag: labeling.label_of(n) for n in tree.preorder()})
    report = UidUpdater(labeling).insert(tree.root, 1, element("inserted"))
    print("relabeled:", {c.old_label: c.new_label for c in report.changed})
    print(report.summary())

    print("\nA second insertion behind the new node overflows k=3:")
    report2 = UidUpdater(labeling).insert(tree.root, 3, element("second"))
    print(report2.summary(), f"(k grew to {labeling.fan_out})")


def workload_demo() -> None:
    print("\n=== E5: 100-operation workload on a ~1k-node document ===")
    tree = generate_xmark(scale=0.15, seed=7)
    ops = generate_update_workload(
        tree, UpdateWorkloadConfig(operations=100, insert_fraction=0.8), seed=8
    )
    schemes = [
        get_scheme("uid"),
        get_scheme("ruid2", max_area_size=16),
        get_scheme("dewey"),
        get_scheme("ordpath"),
        get_scheme("prepost"),
        get_scheme("region", gap=8),
        get_scheme("posdepth"),
    ]
    summaries = run_workload_per_scheme(tree, schemes, ops)
    print(format_table(RELABEL_HEADERS, [s.as_row() for s in summaries]))
    print(
        "\nrUID confines each update to one UID-local area (plus the K rows\n"
        "of its child areas); UID relabels right-sibling subtrees and\n"
        "renumbers everything on overflow; pre/post shifts half the document."
    )


if __name__ == "__main__":
    fig1_demo()
    workload_demo()
