#!/usr/bin/env python3
"""Scalability: identifier explosion and the multilevel cure (§1, §3.1).

Builds shape-adversarial documents, shows the original UID's
identifiers overflowing 64-bit integers while 2- and 3-level rUID stay
small, and prints the analytic enumeration-capacity grid (experiments
E4/E9).

Run:  python examples/large_documents.py
"""

from repro.analysis import capacity_grid, format_table, measure_bits
from repro.core import (
    MultiRuidScheme,
    MultilevelRuidLabeling,
    Ruid2Scheme,
    SizeCapPartitioner,
    UidScheme,
)
from repro.generator import skewed_tree


def bits_demo() -> None:
    print("=== identifier width on skewed recursive documents ===")
    rows = []
    for depth in (10, 30, 60):
        tree = skewed_tree(depth=depth, heavy_fan_out=80)
        uid_bits = measure_bits(UidScheme().build(tree)).max_bits
        ruid2_bits = measure_bits(Ruid2Scheme(max_area_size=8).build(tree)).max_bits
        ruid3_bits = measure_bits(
            MultiRuidScheme(levels=3, partitioners=SizeCapPartitioner(8)).build(tree)
        ).max_bits
        rows.append((depth, tree.size(), uid_bits, ruid2_bits, ruid3_bits))
    print(format_table(
        ("chain depth", "nodes", "uid max bits", "ruid2 max bits", "ruid3 max bits"),
        rows,
    ))
    print("\nUID must pad every node to the document's maximal fan-out, so a")
    print("deep chain next to one wide node costs ~depth*log2(fanout) bits —")
    print('"the value easily exceeds the maximal manageable integer value,')
    print('even when the real nodes in the data source are few" (§1).')


def capacity_demo() -> None:
    print("\n=== enumerable height per 64-bit budget (E9) ===")
    rows = [
        (r["fan_out"], r["height@m=1"], r["height@m=2"], r["height@m=3"])
        for r in capacity_grid((2, 8, 32, 128), 64, levels=(1, 2, 3))
    ]
    print(format_table(("fan-out", "m=1 (uid)", "m=2", "m=3"), rows))
    print("\neach extra rUID level multiplies the enumerable height —")
    print('"using m-level rUID, we can enumerate approximately e^m nodes" (§3.1).')


def multilevel_demo() -> None:
    print("\n=== a 3-level label, decomposed (Definition 4 / Example 3) ===")
    tree = skewed_tree(depth=40, heavy_fan_out=30)
    labeling = MultilevelRuidLabeling(tree, levels=3, partitioners=SizeCapPartitioner(6))
    deepest = max(tree.preorder(), key=lambda n: n.depth)
    label = labeling.label_of(deepest)
    print(f"deepest node label: {label}")
    chain = labeling.rancestors(label)
    print(f"ancestors recovered by per-level arithmetic: {len(chain)}")
    print(f"top frame holds {labeling.top_frame_size()} nodes "
          f"('small enough to be stored', §2.4)")


if __name__ == "__main__":
    bits_demo()
    capacity_demo()
    multilevel_demo()
