#!/usr/bin/env python3
"""Storing labeled XML in the relational substrate (§2.1, §4, §5).

Shreds a document into the paged storage engine under several
numbering schemes and contrasts their access paths:

* parent lookups — arithmetic schemes pay one row fetch, interval
  schemes pay index probes first;
* the §4 table-routing trick — per-area tables selected by global
  index.

Run:  python examples/storage_io.py
"""

from repro.analysis import format_table
from repro.baselines import get_scheme
from repro.core import Ruid2Scheme
from repro.generator import generate_xmark
from repro.storage import XmlDatabase


def parent_io_demo(tree) -> None:
    print("=== parent lookup: arithmetic vs index-dependent schemes ===")
    targets = sorted(
        (n for n in tree.preorder() if n.parent is not None),
        key=lambda n: -n.depth,
    )[:100]
    rows = []
    for name in ("uid", "ruid2", "dewey", "prepost", "region"):
        labeling = get_scheme(name).build(tree)
        database = XmlDatabase(page_size=1024, pool_pages=8)
        document = database.store_document("doc", tree, labeling)
        snapshot = database.io_snapshot()
        for node in targets:
            document.fetch_parent(labeling.label_of(node))
        delta = database.io_delta(snapshot)
        rows.append(
            (
                name,
                "no" if labeling.parent_needs_index else "yes",
                getattr(labeling, "index_probes", 0),
                delta["disk_reads"],
            )
        )
    print(format_table(
        ("scheme", "arithmetic parent", "index probes", "disk reads"), rows
    ))
    print("\nUID/rUID/Dewey compute the parent label in main memory and only")
    print("pay the final row fetch; pre/post and region must first search")
    print("their label indexes — the asymmetry the paper's §2.2 highlights.")


def routing_demo(tree) -> None:
    print("\n=== §4 table routing: one table per UID-local area ===")
    labeling = Ruid2Scheme(max_area_size=24).build(tree)
    database = XmlDatabase(page_size=1024, pool_pages=128)
    document = database.store_document("doc", tree, labeling, partition_by_area=True)
    rows = []
    for tag in ("person", "bidder", "price", "city"):
        matches, blind = document.nodes_with_tag_routed(tag)
        areas = sorted(
            {labeling.label_of(n).global_index for n in tree.find_by_tag(tag)}
        )
        routed, scanned = document.nodes_with_tag_routed(tag, areas)
        rows.append((tag, len(matches), blind, scanned))
    print(format_table(("tag", "matches", "tables (blind)", "tables (routed)"), rows))
    print("\nnaming tables by (tag-part, global index) lets the engine open")
    print("only the areas a structural pre-filter admits — §4's proposal.")


if __name__ == "__main__":
    tree = generate_xmark(scale=0.15, seed=21)
    print(f"document: {tree.size()} nodes\n")
    parent_io_demo(tree)
    routing_demo(tree)
