#!/usr/bin/env python3
"""Structural joins, twig patterns, and summaries over labels.

Everything here runs on *identifiers*: the stack-tree join needs only
``doc_compare``/``relation``, the twig matcher adds one ``rparent``
per child-edge candidate, and the DataGuide/synopsis pre-filters tell
the matcher which areas can contain matches at all.

Run:  python examples/structural_joins.py
"""

import time

from repro.analysis import format_table
from repro.core import Ruid2Scheme
from repro.generator import generate_xmark
from repro.query import (
    PathSummary,
    TagAreaSynopsis,
    TwigMatcher,
    nested_loop_join,
    stack_tree_join,
)


def joins_demo(tree, labeling) -> None:
    print("=== structural join: person ⋈ name ===")
    persons = [labeling.label_of(n) for n in tree.find_by_tag("person")]
    names = [labeling.label_of(n) for n in tree.find_by_tag("name")]

    start = time.perf_counter()
    stack_pairs = stack_tree_join(labeling, persons, names)
    stack_ms = (time.perf_counter() - start) * 1e3
    start = time.perf_counter()
    nested_pairs = nested_loop_join(labeling, persons, names)
    nested_ms = (time.perf_counter() - start) * 1e3
    assert stack_pairs == nested_pairs

    print(f"|A|={len(persons)} |D|={len(names)} -> {len(stack_pairs)} pairs")
    print(f"stack-tree: {stack_ms:.2f} ms   nested-loop: {nested_ms:.2f} ms")


def twig_demo(tree, labeling) -> None:
    print("\n=== twig patterns ===")
    matcher = TwigMatcher(labeling)
    rows = []
    for pattern in (
        "person[name]",
        "person[profile//interest]",
        "open_auction[bidder][seller]",
        "person[address/city]",
    ):
        matches = matcher.match(pattern)
        rows.append((pattern, len(matches)))
    print(format_table(("pattern", "matches"), rows))


def summaries_demo(tree, labeling) -> None:
    print("\n=== structural summaries ===")
    summary = PathSummary(tree)
    print(f"DataGuide: {summary.distinct_paths} distinct paths "
          f"for {tree.size()} nodes")
    for path in summary.paths_ending_with("city"):
        print(f"  //city occurs as {'/'.join(path)}  "
              f"(count {summary.count(path)})")

    synopsis = TagAreaSynopsis(labeling.core)
    rows = [
        (tag, len(synopsis.areas_for(tag)), f"{synopsis.selectivity(tag):.0%}")
        for tag in ("person", "bidder", "city", "interest")
    ]
    print()
    print(format_table(("tag", "candidate areas", "of all areas"), rows,
                       title="tag→area synopsis (the §4 routing pre-filter)"))


if __name__ == "__main__":
    tree = generate_xmark(scale=0.2, seed=41)
    labeling = Ruid2Scheme(max_area_size=16).build(tree)
    print(f"document: {tree.size()} nodes, {labeling.core.area_count()} areas\n")
    joins_demo(tree, labeling)
    twig_demo(tree, labeling)
    summaries_demo(tree, labeling)
