#!/usr/bin/env python3
"""XPath evaluation: rUID identifier arithmetic vs DOM navigation.

Evaluates the XMark-flavoured query set under both strategies,
verifies they agree, and times them (experiment E8 / observation 3).

Run:  python examples/xpath_queries.py
"""

import time

from repro.analysis import format_table
from repro.core import Ruid2Scheme
from repro.generator import XMARK_QUERIES, generate_xmark
from repro.query import XPathEngine


def main() -> None:
    tree = generate_xmark(scale=0.2, seed=11)
    print(f"document: {tree.size()} nodes")
    labeling = Ruid2Scheme(max_area_size=24).build(tree)
    engine = XPathEngine(tree, labeling=labeling)

    rows = []
    for query in XMARK_QUERIES:
        navigational = engine.select(query, "navigational")
        ruid = engine.select(query, "ruid")
        assert [n.node_id for n in navigational] == [n.node_id for n in ruid]

        start = time.perf_counter()
        for _ in range(5):
            engine.select(query, "ruid")
        ruid_ms = (time.perf_counter() - start) * 200

        start = time.perf_counter()
        for _ in range(5):
            engine.select(query, "navigational")
        nav_ms = (time.perf_counter() - start) * 200

        rows.append((query, len(ruid), round(ruid_ms, 2), round(nav_ms, 2)))

    print(format_table(("query", "results", "ruid_ms", "nav_ms"), rows))
    print("\nboth strategies return identical node-sets in document order;")
    print("the rUID strategy never touches parent/child pointers — every")
    print("axis is generated from (kappa, K) identifier arithmetic.")

    # A taste of the supported XPath core:
    print("\nsample answers:")
    for query in (
        "/site/people/person[1]/name",
        "//person[profile]/name",
        "//open_auction[bidder]/itemref",
    ):
        values = engine.select_strings(query, "ruid")
        print(f"  {query}  ->  {values[:3]}{'...' if len(values) > 3 else ''}")


if __name__ == "__main__":
    main()
