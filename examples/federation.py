#!/usr/bin/env python3
"""Distributed deployment (§4): areas scattered over network sites.

The coordinator holds only κ and table K (a few KB); node content
lives on the site that owns its UID-local area. Structural reasoning
(parent, ancestry, document order) costs **zero** network messages;
fetches cost exactly one; tag searches are routed to the owning sites.

Run:  python examples/federation.py
"""

from repro.analysis import format_table
from repro.core import Ruid2Labeling, SizeCapPartitioner
from repro.generator import generate_xmark
from repro.storage import FederatedDocument


def main() -> None:
    tree = generate_xmark(scale=0.15, seed=31)
    labeling = Ruid2Labeling(tree, partitioner=SizeCapPartitioner(16))
    federation = FederatedDocument(labeling, site_count=4)

    print(f"document: {tree.size()} nodes in {labeling.area_count()} areas")
    print(f"coordinator replica (kappa + K): {federation.coordinator_bytes} bytes\n")

    print(format_table(("site", "areas", "rows", "status", "backoff_s"),
                       federation.site_loads(),
                       title="placement (round-robin by area)"))

    deepest = max(tree.preorder(), key=lambda n: n.depth)
    label = labeling.label_of(deepest)

    rows = []
    _, messages = federation.fetch(label)
    rows.append(("fetch one node", messages))
    _, messages = federation.fetch_parent(label)
    rows.append(("fetch its parent (rparent at coordinator)", messages))
    root_label = labeling.label_of(tree.root)
    _, messages = federation.ancestry_check(root_label, label)
    rows.append(("ancestor test (pure arithmetic)", messages))
    federation.reset_messages()
    _, messages = federation.find_tag("city", routed=True)
    rows.append(("find //city, routed via synopsis", messages))
    federation.reset_messages()
    _, messages = federation.find_tag("city", routed=False)
    rows.append(("find //city, broadcast", messages))

    print()
    print(format_table(("operation", "network messages"), rows))
    print("\nthe paper's point, end to end: once (kappa, K) is in the")
    print("coordinator's memory, hierarchy questions never cross the network.")


if __name__ == "__main__":
    main()
