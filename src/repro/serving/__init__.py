"""Sharded async serving tier: ring placement + scatter-gather.

The production-shaped deployment of the paper's numbering schemes:
documents (or a large document's UID-local areas) are partitioned into
shards, placed on sites by a consistent-hash ring with virtual nodes,
and queried through an asyncio scatter-gather executor that reuses the
resilience kit — deadlines, admission control, per-site circuit
breakers, seeded backoff — on the event loop. The open-loop load
generator drives it for the E20 SLO gate. docs/SERVING.md has the
architecture; tests/serving and tests/property/test_ring_properties.py
pin the invariants.
"""

from .cluster import MergeKey, RoutingSynopsis, ServingSite, ShardedCluster
from .executor import AsyncAdmission, ScatterGatherExecutor
from .loadgen import (
    Arrival,
    ArrivalOutcome,
    LoadReport,
    OpenLoopLoadGenerator,
    poisson_schedule,
)
from .ring import ConsistentHashRing, stable_hash
from .shards import (
    RankOwnership,
    Shard,
    area_shards,
    rank_block_shards,
    validate_partition,
)

__all__ = [
    "Arrival",
    "ArrivalOutcome",
    "AsyncAdmission",
    "ConsistentHashRing",
    "LoadReport",
    "MergeKey",
    "OpenLoopLoadGenerator",
    "RankOwnership",
    "RoutingSynopsis",
    "ScatterGatherExecutor",
    "ServingSite",
    "Shard",
    "ShardedCluster",
    "area_shards",
    "poisson_schedule",
    "rank_block_shards",
    "stable_hash",
    "validate_partition",
]
