"""Consistent-hash ring with virtual nodes.

The serving tier places shard units (documents, or a large document's
UID-local areas) on sites through a hash ring rather than a modulo so
that membership changes are *local*: adding or removing one site moves
only the keys whose ring arcs changed hands — about ``K/n`` of them —
instead of reshuffling everything. ``vnode_count`` virtual points per
site smooth the arc lengths so load spreads evenly even with a handful
of sites.

Hashing is :func:`hashlib.blake2b`-based and therefore **stable across
process restarts**: routing must never depend on Python's per-process
``hash()`` randomisation, or a restarted coordinator would disagree
with its own previous placement. The property suite pins exactly that
invariant (plus full coverage and the ≤ ``K/n`` + slack movement
bound).
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.errors import StorageError

__all__ = ["ConsistentHashRing", "stable_hash"]


def stable_hash(key: str) -> int:
    """A 64-bit hash of *key* that is identical in every process.

    ``PYTHONHASHSEED`` randomises ``hash(str)`` per interpreter, which
    would make ring placement a per-process accident; blake2b gives a
    fast keyed-free digest with the same value everywhere.
    """
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ConsistentHashRing:
    """Maps string keys to site names via a sorted ring of vnode points.

    Parameters
    ----------
    sites:
        Initial site names (order-insensitive: the ring's layout
        depends only on the set of names and ``vnode_count``).
    vnode_count:
        Virtual points per site. More points → smoother balance at the
        cost of a larger sorted array; 64 keeps the max/min site load
        ratio low for single-digit site counts.
    """

    __slots__ = ("vnode_count", "_points", "_sites")

    def __init__(self, sites: Iterable[str] = (), vnode_count: int = 64):
        if vnode_count < 1:
            raise StorageError(f"vnode_count must be >= 1, got {vnode_count}")
        self.vnode_count = vnode_count
        #: sorted (point hash, site name) pairs; ties (hash collisions
        #: between different sites) break on the name, deterministically
        self._points: List[Tuple[int, str]] = []
        self._sites: set = set()
        for name in sites:
            self.add_site(name)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def add_site(self, name: str) -> None:
        if name in self._sites:
            raise StorageError(f"site {name!r} is already on the ring")
        self._sites.add(name)
        self._points.extend(
            (stable_hash(f"{name}#{index}"), name)
            for index in range(self.vnode_count)
        )
        self._points.sort()

    def remove_site(self, name: str) -> None:
        if name not in self._sites:
            raise StorageError(f"site {name!r} is not on the ring")
        self._sites.discard(name)
        self._points = [point for point in self._points if point[1] != name]

    def sites(self) -> FrozenSet[str]:
        return frozenset(self._sites)

    def __len__(self) -> int:
        return len(self._sites)

    def __contains__(self, name: str) -> bool:
        return name in self._sites

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def site_for(self, key: str) -> str:
        """The site owning *key*: the first vnode point clockwise."""
        chain = self.chain_for(key, 1)
        return chain[0]

    def chain_for(self, key: str, length: int) -> List[str]:
        """The first ``length`` *distinct* sites clockwise from *key*.

        Element 0 is the primary; the rest are the replica/failover
        order. Shorter than *length* when the ring has fewer sites.
        """
        if not self._points:
            raise StorageError("hash ring has no sites")
        if length < 1:
            raise StorageError(f"chain length must be >= 1, got {length}")
        points = self._points
        # sort keys are (hash, name); "￿" makes the probe sort
        # after every real name at the same hash
        start = bisect_right(points, (stable_hash(key), "￿"))
        chain: List[str] = []
        seen = set()
        for offset in range(len(points)):
            site = points[(start + offset) % len(points)][1]
            if site in seen:
                continue
            seen.add(site)
            chain.append(site)
            if len(chain) == length:
                break
        return chain

    def assignment(self, keys: Sequence[str]) -> Dict[str, str]:
        """key → primary site for every key (restart-stable)."""
        return {key: self.site_for(key) for key in keys}

    def __repr__(self) -> str:
        return (
            f"<ConsistentHashRing sites={sorted(self._sites)} "
            f"vnodes={self.vnode_count}>"
        )
