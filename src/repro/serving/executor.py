"""Asyncio scatter-gather over the sharded cluster.

One coordinator event loop multiplexes thousands of in-flight queries
instead of holding a thread per request: every network wait (simulated
site latency, retry backoff, queue waits) is an ``await``, so the loop
interleaves requests exactly where a real serving tier would.

The resilience primitives are the PR 6 ones, reused on the async path:

* :class:`~repro.resilience.Deadline` rides each request end-to-end —
  checked before every scatter round and carried into the site-side
  evaluator's cooperative ticks;
* a per-site :class:`~repro.resilience.CircuitBreaker` lets the
  coordinator skip a flapping site for free along the replica chain;
* retry pacing between failover rounds comes from a seeded
  :class:`~repro.resilience.BackoffPolicy` (awaited, never slept);
* :class:`AsyncAdmission` adapts the existing
  :class:`~repro.resilience.AdmissionController` token bucket to the
  event loop through its non-blocking surface, keeping the same
  counters, the same typed :class:`~repro.errors.Overloaded`, and the
  same ``resilience.admission.*`` gauges.

A scatter either returns the complete, document-ordered answer or
raises a typed error — there are no partial results. ``serving.*``
metrics (latency histogram, per-outcome counters) land in the shared
:class:`~repro.obs.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import asyncio
import random
from collections import OrderedDict
from time import perf_counter_ns
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    ReproError,
    SiteUnavailableError,
    TransientFetchError,
)
from repro.obs.metrics import MetricsRegistry
from repro.query.parser import parse_xpath
from repro.resilience import AdmissionController, BackoffPolicy, CircuitBreaker
from repro.resilience.deadline import Deadline
from repro.serving.cluster import MergeKey, ShardedCluster
from repro.xmltree.node import XmlNode

__all__ = ["AsyncAdmission", "ScatterGatherExecutor"]

#: compiled plans kept by the executor's LRU
PLAN_CACHE_SIZE = 256

#: scatter errors that are retryable along a shard's replica chain
FAILOVER_ERRORS = (SiteUnavailableError, TransientFetchError)


class AsyncAdmission:
    """Event-loop admission gate over an :class:`AdmissionController`.

    Token accounting, limits, counters and the typed ``Overloaded``
    all live in the wrapped controller (thread-safe, non-blocking);
    this class only supplies the *waiting* — an ``asyncio`` future per
    queued request, woken in FIFO order as tokens free up.
    """

    def __init__(self, controller: Optional[AdmissionController] = None):
        self.controller = (
            controller if controller is not None else AdmissionController()
        )
        self._waiters: "OrderedDict[int, asyncio.Future]" = OrderedDict()
        self._next_ticket = 0

    async def acquire(self) -> None:
        controller = self.controller
        if controller.try_acquire():
            return
        controller.queue_enter()  # raises Overloaded when the queue is full
        loop = asyncio.get_running_loop()
        deadline = loop.time() + controller.queue_timeout_s
        while True:
            remaining = deadline - loop.time()
            if remaining <= 0:
                controller.queue_exit(timed_out=True)  # raises Overloaded
            ticket = self._next_ticket
            self._next_ticket += 1
            waiter: asyncio.Future = loop.create_future()
            self._waiters[ticket] = waiter
            try:
                await asyncio.wait_for(waiter, timeout=remaining)
            except asyncio.TimeoutError:
                controller.queue_exit(timed_out=True)  # raises Overloaded
            except BaseException:
                # cancellation must not leak the queue slot
                controller.queue_exit(timed_out=False)
                raise
            finally:
                self._waiters.pop(ticket, None)
            if controller.try_acquire():
                controller.queue_exit(timed_out=False)
                return
            # a raced coroutine took the freed token; re-wait on the
            # remaining queue budget

    def release(self) -> None:
        self.controller.release()
        # wake the longest-waiting queued request (if any)
        while self._waiters:
            _ticket, waiter = next(iter(self._waiters.items()))
            self._waiters.popitem(last=False)
            if not waiter.done():
                waiter.set_result(None)
                break

    def __repr__(self) -> str:
        return f"<AsyncAdmission over {self.controller!r}>"


class ScatterGatherExecutor:
    """Route → scatter → gather → merge, for one sharded cluster.

    Parameters
    ----------
    cluster:
        The deployment to execute against.
    admission:
        Optional :class:`AdmissionController` guarding the tier's edge
        (wrapped in :class:`AsyncAdmission`); ``None`` admits freely.
    registry:
        Shared metrics registry; a private one is created otherwise.
        ``serving.*`` instruments and the cluster's pull source are
        registered on it.
    max_rounds:
        Walks of a shard's replica chain before the scatter gives up
        with :class:`SiteUnavailableError`.
    backoff:
        Retry pacing between failover rounds; seeded decorrelated
        jitter by default, awaited through the cluster's injectable
        ``sleep`` so tests never wait on the wall clock.
    """

    def __init__(
        self,
        cluster: ShardedCluster,
        admission: Optional[AdmissionController] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer=None,
        plan_cache_size: int = PLAN_CACHE_SIZE,
        max_rounds: int = 3,
        backoff: Optional[BackoffPolicy] = None,
        breaker_threshold: int = 5,
        breaker_cooldown_s: float = 0.05,
    ):
        self.cluster = cluster
        self.tracer = tracer
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.admission = (
            AsyncAdmission(admission) if admission is not None else None
        )
        if admission is not None:
            admission.bind(self.metrics)
        cluster.bind(self.metrics)
        self.max_rounds = max_rounds
        seed = cluster.faults.seed if cluster.faults is not None else 0
        self.backoff = (
            backoff
            if backoff is not None
            else BackoffPolicy(
                base=0.001,
                cap=0.05,
                jitter="decorrelated",
                rng=random.Random(seed),
            )
        )
        #: per-site breakers on the coordinator's scatter path
        self.breakers: Dict[str, CircuitBreaker] = {
            name: CircuitBreaker(
                f"serving.{name}",
                failure_threshold=breaker_threshold,
                backoff=BackoffPolicy(
                    base=breaker_cooldown_s,
                    cap=max(breaker_cooldown_s, 2.0),
                    jitter="decorrelated",
                    rng=random.Random(seed + index + 1),
                ),
            )
            for index, name in enumerate(sorted(cluster.sites))
        }
        self._plan_cache_size = max(1, plan_cache_size)
        self._plans: "OrderedDict[str, object]" = OrderedDict()
        self._latency = self.metrics.histogram("serving.latency_ns")
        self._counters = {
            name: self.metrics.counter(f"serving.{name}")
            for name in (
                "requests",
                "ok",
                "shed",
                "timeouts",
                "failed",
                "scatter_messages",
                "failovers",
                "breaker_skips",
                "routed",
                "broadcasts",
                "stale_fallbacks",
                "retry_rounds",
            )
        }
        self._in_flight = self.metrics.gauge("serving.in_flight")

    # ------------------------------------------------------------------
    def compile(self, expression: str):
        """Parse through the executor's LRU plan cache (single-loop,
        so no lock is needed)."""
        plans = self._plans
        compiled = plans.get(expression)
        if compiled is not None:
            plans.move_to_end(expression)
            return compiled
        compiled = parse_xpath(expression)
        plans[expression] = compiled
        if len(plans) > self._plan_cache_size:
            plans.popitem(last=False)
        return compiled

    # ------------------------------------------------------------------
    async def select(
        self,
        doc: str,
        expression: str,
        deadline=None,
    ) -> List[XmlNode]:
        """The complete document-ordered node-set of *expression*.

        *deadline* is a :class:`Deadline` or a budget in milliseconds.
        Raises typed errors only: ``Overloaded`` (shed at the edge),
        ``QueryTimeout`` (budget exhausted), ``SiteUnavailableError``
        (a shard's whole replica chain is gone), ``QueryError``
        (non-node-set expression).
        """
        if deadline is not None and not hasattr(deadline, "tick"):
            deadline = Deadline(float(deadline))
        counters = self._counters
        counters["requests"].inc()
        if self.admission is not None:
            try:
                await self.admission.acquire()
            except ReproError:
                counters["shed"].inc()
                raise
            try:
                return await self._admitted_select(doc, expression, deadline)
            finally:
                self.admission.release()
        return await self._admitted_select(doc, expression, deadline)

    async def _admitted_select(
        self, doc: str, expression: str, deadline
    ) -> List[XmlNode]:
        counters = self._counters
        self._in_flight.inc()
        start = perf_counter_ns()
        try:
            compiled = self.compile(expression)
            shard_ids, routed = self.cluster.route(doc, compiled)
            if routed:
                counters["routed"].inc()
            else:
                counters["broadcasts"].inc()
                if self.cluster.synopsis_is_stale(doc):
                    counters["stale_fallbacks"].inc()
                    if self.tracer is not None:
                        self.tracer.event(
                            "serving.stale_fallback", doc=doc,
                        )
            if not shard_ids:
                # the synopsis proves no shard holds a result node;
                # still a served request, just one costing no messages
                counters["ok"].inc()
                return []
            merged = await self._scatter(doc, compiled, shard_ids, deadline)
            counters["ok"].inc()
            return merged
        except ReproError as exc:
            from repro.errors import QueryTimeout

            if isinstance(exc, QueryTimeout):
                counters["timeouts"].inc()
            else:
                counters["failed"].inc()
            raise
        finally:
            self._in_flight.dec()
            self._latency.observe(perf_counter_ns() - start)

    async def _scatter(
        self,
        doc: str,
        compiled,
        shard_ids: Sequence[str],
        deadline,
    ) -> List[XmlNode]:
        """Fan out over replica chains until every shard answered."""
        cluster = self.cluster
        counters = self._counters
        #: shard_id → index into its replica chain to try next
        position: Dict[str, int] = {shard: 0 for shard in shard_ids}
        gathered: Dict[str, List[Tuple[MergeKey, XmlNode]]] = {}
        delay = 0.0
        for round_index in range(self.max_rounds):
            if deadline is not None:
                deadline.check()
            pending = [shard for shard in shard_ids if shard not in gathered]
            if not pending:
                break
            if round_index:
                counters["retry_rounds"].inc()
                delay = self.backoff.delay(round_index, previous=delay)
                await cluster.sleep(delay)
            groups = self._group_by_site(pending, position)
            if not groups:
                continue  # every pending chain is breaker-skipped this round
            tasks = [
                cluster.call_site(
                    site_name, doc, compiled, group, deadline=deadline,
                    tracer=self.tracer,
                )
                for site_name, group in groups
            ]
            counters["scatter_messages"].inc(len(tasks))
            outcomes = await asyncio.gather(*tasks, return_exceptions=True)
            for (site_name, group), outcome in zip(groups, outcomes):
                breaker = self.breakers[site_name]
                if isinstance(outcome, BaseException):
                    if not isinstance(outcome, FAILOVER_ERRORS):
                        raise outcome  # typed but not retryable (timeout etc.)
                    breaker.record_failure()
                    if self.tracer is not None:
                        self.tracer.event(
                            "serving.message_failed",
                            site=site_name,
                            error=type(outcome).__name__,
                        )
                    for shard in group:
                        position[shard] += 1
                    continue
                breaker.record_success()
                partials: Dict[str, List[Tuple[MergeKey, XmlNode]]] = {
                    shard: [] for shard in group
                }
                wanted = set(group)
                for key, node in outcome:
                    owner = cluster.keyed(doc, node)[1]
                    if owner in wanted:
                        partials[owner].append((key, node))
                for shard in group:
                    chain_pos = position[shard] % len(
                        cluster.chains[shard]
                    )
                    if chain_pos > 0:
                        counters["failovers"].inc()
                        if self.tracer is not None:
                            self.tracer.event(
                                "serving.failover",
                                shard=shard,
                                site=site_name,
                                replica_position=chain_pos,
                            )
                    gathered[shard] = partials[shard]
        missing = [shard for shard in shard_ids if shard not in gathered]
        if missing:
            raise SiteUnavailableError(
                f"shards {missing} unreachable after {self.max_rounds} "
                f"replica-chain rounds"
            )
        return self._merge(gathered, shard_ids)

    def _group_by_site(
        self, pending: Sequence[str], position: Dict[str, int]
    ) -> List[Tuple[str, List[str]]]:
        """Group pending shards by the next site on each replica chain,
        skipping open breakers for free (charged, never contacted)."""
        cluster = self.cluster
        groups: Dict[str, List[str]] = {}
        for shard in pending:
            chain = cluster.chains[shard]
            site_name = chain[position[shard] % len(chain)]
            breaker = self.breakers[site_name]
            if not breaker.allow():
                self._counters["breaker_skips"].inc()
                if self.tracer is not None:
                    self.tracer.event(
                        "serving.breaker_open", shard=shard, site=site_name
                    )
                position[shard] += 1
                continue
            groups.setdefault(site_name, []).append(shard)
        return sorted(groups.items())

    @staticmethod
    def _merge(
        gathered: Dict[str, List[Tuple[MergeKey, XmlNode]]],
        shard_ids: Sequence[str],
    ) -> List[XmlNode]:
        """Gather: shards partition the rank space, so concatenating
        the disjoint partials and sorting by merge key *is* document
        order — the same (rank, transient, tag) key the single-site
        evaluators sort by."""
        rows: List[Tuple[MergeKey, XmlNode]] = []
        for shard in shard_ids:
            rows.extend(gathered[shard])
        rows.sort(key=lambda row: row[0])
        return [node for _key, node in rows]

    # ------------------------------------------------------------------
    def select_sync(
        self, doc: str, expression: str, deadline=None
    ) -> List[XmlNode]:
        """Run one select on a private event loop (CLI / tests)."""
        return asyncio.run(self.select(doc, expression, deadline=deadline))

    async def select_batch(
        self, requests: Sequence[Tuple[str, str]], deadline_ms=None
    ) -> List[object]:
        """Concurrent selects; element i is the node list for request i
        or the typed ReproError it raised."""

        async def one(doc: str, expression: str):
            try:
                budget = Deadline(deadline_ms) if deadline_ms else None
                return await self.select(doc, expression, deadline=budget)
            except ReproError as exc:
                return exc

        return list(
            await asyncio.gather(
                *(one(doc, expression) for doc, expression in requests)
            )
        )

    def stats_snapshot(self) -> Dict[str, float]:
        snapshot = {
            name: counter.value for name, counter in self._counters.items()
        }
        snapshot["in_flight"] = self._in_flight.value
        snapshot["breakers_open"] = sum(
            1
            for breaker in self.breakers.values()
            if breaker.state == "open"
        )
        return snapshot

    def __repr__(self) -> str:
        return (
            f"<ScatterGatherExecutor {self.cluster!r} "
            f"rounds={self.max_rounds}>"
        )
