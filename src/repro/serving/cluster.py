"""Sharded serving cluster: sites, placement, and routing state.

:class:`ShardedCluster` owns the deployment shape the scatter-gather
executor runs against: a :class:`~repro.serving.ring.ConsistentHashRing`
placing every shard on a replica chain of sites, one frozen
:class:`~repro.concurrent.snapshot.StructuralView` per document (the
structural index each site evaluates against — the "Indices in XML
Databases" pattern of distributing the index, not the raw document),
and an **epoch-stamped routing synopsis** per document mapping a tag
to the shards that contain it.

A site answers a scatter call by evaluating the query against the
shared structural index and returning only the result nodes whose
ranks fall in the shards it was asked for. Shards partition the rank
space, so the union over contacted shards is exactly the single-site
answer — that identity is what the sharded differential suite pins.

Failure simulation mirrors the federation layer: sites can be taken
down directly or through a seeded
:class:`~repro.storage.faults.FaultInjector`, per-message transient
faults and latency spikes come from a seeded RNG, and the simulated
network latency is an *async* sleep so thousands of in-flight queries
overlap their waits on one event loop.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.concurrent.snapshot import SnapshotEvaluator, StructuralView
from repro.errors import (
    QueryError,
    SiteUnavailableError,
    StorageError,
    TransientFetchError,
)
from repro.query.ast import LocationPath, NodeTest, Union_
from repro.serving.ring import ConsistentHashRing
from repro.serving.shards import RankOwnership, Shard
from repro.xmltree.node import NodeKind, XmlNode

__all__ = ["MergeKey", "RoutingSynopsis", "ServingSite", "ShardedCluster"]

#: (rank, transient flag, tag) — the exact sort key the single-site
#: evaluators use, so a merged scatter result reproduces their order
MergeKey = Tuple[int, int, str]


async def _no_sleep(_seconds: float) -> None:
    return None


class RoutingSynopsis:
    """tag → shards that contain at least one element with that tag.

    Epoch-stamped like the federation's
    :class:`~repro.query.synopsis.TagAreaSynopsis` replica: a
    structural update bumps the document epoch, and a synopsis whose
    epoch lags answers no routing question — the executor broadcasts
    instead (counted as a stale fallback) until :meth:`refresh` runs.
    """

    __slots__ = ("epoch", "_tag_shards")

    def __init__(
        self, view: StructuralView, ownership: RankOwnership, epoch: int
    ):
        self.epoch = epoch
        tag_shards: Dict[str, FrozenSet[str]] = {}
        for tag in view.tag_ids:
            owners = {
                ownership.owner_of(rank) for rank in view.tag_ranks(tag)
            }
            tag_shards[tag] = frozenset(owners)
        self._tag_shards = tag_shards

    def shards_for(self, tag: str) -> FrozenSet[str]:
        return self._tag_shards.get(tag, frozenset())


class ServingSite:
    """One serving site: the shards it hosts and their evaluators."""

    __slots__ = (
        "name",
        "latency_s",
        "down",
        "messages_received",
        "_views",
        "_evaluators",
        "_shards",
    )

    def __init__(self, name: str, latency_s: float = 0.0):
        self.name = name
        self.latency_s = latency_s
        self.down = False
        self.messages_received = 0
        self._views: Dict[str, StructuralView] = {}
        self._evaluators: Dict[str, SnapshotEvaluator] = {}
        self._shards: Dict[str, Shard] = {}

    def attach(self, doc: str, view: StructuralView, shard: Shard) -> None:
        self._views[doc] = view
        if doc not in self._evaluators:
            self._evaluators[doc] = SnapshotEvaluator(view)
        self._shards[shard.shard_id] = shard

    def detach(self, shard_id: str) -> Optional[Shard]:
        return self._shards.pop(shard_id, None)

    def hosted_shards(self) -> List[str]:
        return sorted(self._shards)

    def evaluator_for(self, doc: str) -> SnapshotEvaluator:
        try:
            return self._evaluators[doc]
        except KeyError:
            raise StorageError(
                f"site {self.name} hosts no shards of {doc!r}"
            ) from None

    def execute(
        self,
        doc: str,
        compiled,
        shard_ids: Sequence[str],
        keyed: Callable[[str, XmlNode], Tuple[MergeKey, str]],
        deadline=None,
        tracer=None,
    ) -> List[Tuple[MergeKey, XmlNode]]:
        """Evaluate *compiled* and keep nodes owned by *shard_ids*.

        Synchronous CPU work — the async wrapper in the cluster applies
        latency/fault simulation around it. The full evaluation runs
        against the shared structural index; the per-shard filter is
        what makes scatter results disjoint and their union complete.
        """
        evaluator = self.evaluator_for(doc)
        wanted = set(shard_ids)
        for shard_id in wanted:
            if shard_id not in self._shards:
                raise StorageError(
                    f"site {self.name} does not host shard {shard_id}"
                )
        if deadline is not None:
            evaluator.set_deadline(deadline)
        try:
            if tracer is not None:
                with tracer.span(
                    "serving.site_call", site=self.name, doc=doc
                ) as span:
                    result = evaluator.select(compiled)
                    span.set(results=len(result))
            else:
                result = evaluator.select(compiled)
        finally:
            if deadline is not None:
                evaluator.set_deadline(None)
        owned: List[Tuple[MergeKey, XmlNode]] = []
        for node in result:
            key, owner = keyed(doc, node)
            if owner in wanted:
                owned.append((key, node))
        return owned


class ShardedCluster:
    """Placement + routing state for the scatter-gather executor.

    Parameters
    ----------
    site_count / site_names:
        The serving fleet; names default to ``site0 .. siteN-1``.
    replication_factor:
        Distinct sites per shard chain (primary + failover replicas),
        straight off the hash ring.
    vnode_count:
        Virtual points per site on the ring.
    site_latency_s:
        Simulated one-way latency per message, awaited on the event
        loop (injectable ``sleep`` for deterministic tests).
    faults:
        Optional :class:`~repro.storage.faults.FaultInjector`; its site
        outages apply here exactly as in the federation layer, and its
        seed drives the per-message chaos RNG.
    """

    def __init__(
        self,
        site_count: int = 4,
        replication_factor: int = 1,
        site_names: Optional[Sequence[str]] = None,
        vnode_count: int = 64,
        site_latency_s: float = 0.0,
        faults=None,
        sleep=None,
    ):
        names = (
            list(site_names)
            if site_names is not None
            else [f"site{index}" for index in range(site_count)]
        )
        if not names:
            raise StorageError("need at least one site")
        if replication_factor < 1:
            raise StorageError("replication factor must be >= 1")
        if replication_factor > len(names):
            raise StorageError(
                f"replication factor {replication_factor} exceeds "
                f"{len(names)} sites"
            )
        self.replication_factor = replication_factor
        self.ring = ConsistentHashRing(names, vnode_count=vnode_count)
        self.sites: Dict[str, ServingSite] = {
            name: ServingSite(name, latency_s=site_latency_s) for name in names
        }
        self.faults = faults
        self.sleep = sleep if sleep is not None else _no_sleep
        #: per-message chaos: transient failure / latency-spike rates
        self._chaos_rng = random.Random(
            faults.seed if faults is not None else 0
        )
        self._transient_rate = 0.0
        self._spike_rate = 0.0
        self._spike_s = 0.0
        #: shard_id → Shard / replica chain (site names, primary first)
        self.shards: Dict[str, Shard] = {}
        self.chains: Dict[str, List[str]] = {}
        #: doc → view / ownership / synopsis / epoch
        self._views: Dict[str, StructuralView] = {}
        self._ownership: Dict[str, RankOwnership] = {}
        self._synopses: Dict[str, RoutingSynopsis] = {}
        self._epochs: Dict[str, int] = {}
        self._doc_shards: Dict[str, List[str]] = {}
        self.injected = {"transients": 0, "spikes": 0}

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------
    def add_document(
        self, doc: str, view: StructuralView, shards: Sequence[Shard]
    ) -> None:
        """Place *shards* (a full partition of *view*) on the ring."""
        if doc in self._views:
            raise StorageError(f"document {doc!r} is already deployed")
        ownership = RankOwnership(shards, size=len(view.ids_by_rank))
        self._views[doc] = view
        self._ownership[doc] = ownership
        self._epochs[doc] = 0
        self._doc_shards[doc] = [shard.shard_id for shard in shards]
        for shard in shards:
            chain = self.ring.chain_for(shard.shard_id, self.replication_factor)
            self.shards[shard.shard_id] = shard
            self.chains[shard.shard_id] = chain
            for site_name in chain:
                self.sites[site_name].attach(doc, view, shard)
        self._synopses[doc] = RoutingSynopsis(view, ownership, epoch=0)

    def documents(self) -> List[str]:
        return sorted(self._views)

    def view_of(self, doc: str) -> StructuralView:
        try:
            return self._views[doc]
        except KeyError:
            raise StorageError(f"unknown document {doc!r}") from None

    def shard_ids(self, doc: str) -> List[str]:
        try:
            return list(self._doc_shards[doc])
        except KeyError:
            raise StorageError(f"unknown document {doc!r}") from None

    # ------------------------------------------------------------------
    # Epoch / synopsis lifecycle
    # ------------------------------------------------------------------
    def bump_epoch(self, doc: str) -> int:
        """Record a structural change; routing goes stale until resync."""
        self._epochs[doc] = self._epochs.get(doc, 0) + 1
        return self._epochs[doc]

    def resync(self, doc: str) -> None:
        """Rebuild the routing synopsis at the current epoch."""
        self._synopses[doc] = RoutingSynopsis(
            self._views[doc], self._ownership[doc], epoch=self._epochs[doc]
        )

    def synopsis_is_stale(self, doc: str) -> bool:
        return self._synopses[doc].epoch != self._epochs[doc]

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route(self, doc: str, compiled) -> Tuple[List[str], bool]:
        """Shards that can contain result nodes of *compiled*.

        Returns ``(shard_ids, routed)``. Routing prunes on the last
        location step's name test: every result node of a location path
        matches its final node test, so the synopsis' shard set for
        that tag is a sound superset of the result's owners. Anything
        else — kind tests, parent/ancestor final steps, scalar
        expressions, a stale synopsis — broadcasts to the full plan.
        """
        all_shards = self.shard_ids(doc)
        if self.synopsis_is_stale(doc):
            return all_shards, False
        tags = self._result_tags(compiled)
        if tags is None:
            return all_shards, False
        synopsis = self._synopses[doc]
        admitted: set = set()
        for tag in tags:
            admitted.update(synopsis.shards_for(tag))
        return sorted(admitted), True

    @staticmethod
    def _result_tags(compiled) -> Optional[List[str]]:
        """Concrete result tags of *compiled*, or None if unprunable."""
        if isinstance(compiled, Union_):
            paths = list(compiled.paths)
        elif isinstance(compiled, LocationPath):
            paths = [compiled]
        else:
            return None
        tags: List[str] = []
        for path in paths:
            if not path.steps:
                return None
            last = path.steps[-1]
            test = last.test
            if last.axis == "attribute":
                return None
            if (
                not isinstance(test, NodeTest)
                or test.node_type is not None
                or test.name in (None, "*")
            ):
                return None
            tags.append(test.name)
        return tags

    # ------------------------------------------------------------------
    # Result identity (merge keys + shard ownership)
    # ------------------------------------------------------------------
    def keyed(self, doc: str, node: XmlNode) -> Tuple[MergeKey, str]:
        """(merge key, owning shard) of one result node.

        Real view nodes key on their own rank. Transient attribute
        nodes (synthesized per evaluation) key just after their owner
        element, exactly like the single-site evaluators'
        ``sort_nodes``; the document node belongs with rank 0.
        """
        view = self._views[doc]
        ownership = self._ownership[doc]
        rank = view.rank.get(node.node_id)
        if rank is not None:
            return (rank, 0, ""), ownership.owner_of(rank)
        if node.kind is NodeKind.DOCUMENT:
            return (-1, 0, ""), ownership.owner_of(0)
        parent = node.parent
        if parent is None or parent.node_id not in view.rank:
            raise QueryError(
                f"result node {node!r} has no rank in document {doc!r}"
            )
        parent_rank = view.rank[parent.node_id]
        return (parent_rank, 1, node.tag or ""), ownership.owner_of(parent_rank)

    # ------------------------------------------------------------------
    # Fault control (mirrors the federation layer)
    # ------------------------------------------------------------------
    def take_site_down(self, name: str) -> None:
        self._site(name).down = True

    def restore_site(self, name: str) -> None:
        self._site(name).down = False

    def site_is_down(self, name: str) -> bool:
        site = self._site(name)
        if site.down:
            return True
        return self.faults is not None and self.faults.site_is_down(name)

    def arm_message_faults(
        self,
        transient_rate: float = 0.0,
        spike_rate: float = 0.0,
        spike_s: float = 0.0,
    ) -> None:
        """Give every scatter message a seeded chance of misbehaving."""
        for label, rate in (
            ("transient_rate", transient_rate),
            ("spike_rate", spike_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise StorageError(f"{label} must be in [0, 1], got {rate}")
        if spike_rate and spike_s <= 0:
            raise StorageError("latency spikes need a positive spike_s")
        self._transient_rate = transient_rate
        self._spike_rate = spike_rate
        self._spike_s = spike_s

    def disarm_message_faults(self) -> None:
        self._transient_rate = 0.0
        self._spike_rate = 0.0
        self._spike_s = 0.0

    def _site(self, name: str) -> ServingSite:
        try:
            return self.sites[name]
        except KeyError:
            raise StorageError(f"no site named {name!r}") from None

    # ------------------------------------------------------------------
    # The one message primitive the executor scatters with
    # ------------------------------------------------------------------
    async def call_site(
        self,
        site_name: str,
        doc: str,
        compiled,
        shard_ids: Sequence[str],
        deadline=None,
        tracer=None,
    ) -> List[Tuple[MergeKey, XmlNode]]:
        """One scatter message: latency, chaos, then local evaluation.

        Raises :class:`SiteUnavailableError` for a down site and
        :class:`TransientFetchError` for an injected per-message fault
        — both typed and retryable along the shard's replica chain.
        """
        site = self._site(site_name)
        if self.site_is_down(site_name):
            raise SiteUnavailableError(f"site {site_name} is down")
        site.messages_received += 1
        if self._transient_rate and self._chaos_rng.random() < self._transient_rate:
            self.injected["transients"] += 1
            seed = self.faults.seed if self.faults is not None else 0
            raise TransientFetchError(
                f"injected transient fault on message to {site_name} "
                f"(seed {seed})"
            )
        if self._spike_rate and self._chaos_rng.random() < self._spike_rate:
            self.injected["spikes"] += 1
            await self.sleep(self._spike_s)
        if site.latency_s:
            await self.sleep(site.latency_s)
        if deadline is not None:
            deadline.check()
        return site.execute(
            doc, compiled, shard_ids, self.keyed, deadline=deadline,
            tracer=tracer,
        )

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def total_messages(self) -> int:
        return sum(site.messages_received for site in self.sites.values())

    def site_loads(self) -> List[Tuple[str, int, int, str]]:
        """(site, hosted shards, messages, up/down) distribution."""
        return [
            (
                site.name,
                len(site.hosted_shards()),
                site.messages_received,
                "down" if self.site_is_down(site.name) else "up",
            )
            for site in self.sites.values()
        ]

    def stats_snapshot(self) -> Dict[str, float]:
        snapshot: Dict[str, float] = {
            "sites": len(self.sites),
            "sites_down": sum(
                1 for name in self.sites if self.site_is_down(name)
            ),
            "shards": len(self.shards),
            "messages": self.total_messages(),
            "injected_transients": self.injected["transients"],
            "injected_spikes": self.injected["spikes"],
        }
        return snapshot

    def bind(self, registry, prefix: str = "serving.cluster") -> None:
        registry.register_source(prefix, self.stats_snapshot)

    def __repr__(self) -> str:
        return (
            f"<ShardedCluster sites={len(self.sites)} "
            f"shards={len(self.shards)} rf={self.replication_factor}>"
        )
