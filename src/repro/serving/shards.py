"""Shard units: disjoint rank intervals of one document.

A shard owns a set of preorder ranks, represented as sorted disjoint
inclusive ``(lo, hi)`` intervals. Two planners produce them:

* :func:`rank_block_shards` — ``n`` contiguous rank blocks. Works for
  every numbering scheme because it only needs the document size; this
  is what the cross-scheme differential suite shards with.
* :func:`area_shards` — one shard per UID-local area (the paper's §3
  frame/area decomposition). Area membership comes from each label's
  own global index, so the shard boundaries are exactly the units the
  paper argues are independently relabelable — and the ones
  :class:`~repro.query.synopsis.TagAreaSynopsis` already routes by.

Every plan must *partition* the document: intervals disjoint and
covering ``0 .. size-1``. :func:`validate_partition` enforces that at
cluster-attach time, so a buggy planner fails loudly instead of
silently dropping result nodes.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import StorageError

__all__ = [
    "Shard",
    "RankOwnership",
    "rank_block_shards",
    "area_shards",
    "validate_partition",
]


@dataclass(frozen=True)
class Shard:
    """One shard unit: a document name plus its owned rank intervals."""

    shard_id: str
    doc: str
    #: sorted, disjoint, inclusive (lo, hi) rank intervals
    intervals: Tuple[Tuple[int, int], ...]

    def owns_rank(self, rank: int) -> bool:
        intervals = self.intervals
        index = bisect_right(intervals, (rank, float("inf"))) - 1
        if index < 0:
            return False
        lo, hi = intervals[index]
        return lo <= rank <= hi

    @property
    def rank_count(self) -> int:
        return sum(hi - lo + 1 for lo, hi in self.intervals)

    def __repr__(self) -> str:
        return (
            f"<Shard {self.shard_id} ranks={self.rank_count} "
            f"intervals={len(self.intervals)}>"
        )


class RankOwnership:
    """rank → shard_id lookup over one document's full shard plan.

    Flattens every shard's intervals into one sorted table so the
    gather/merge path answers "which shard owns this result node" with
    a single bisect.
    """

    __slots__ = ("_starts", "_entries", "size")

    def __init__(self, shards: Sequence[Shard], size: int):
        validate_partition(shards, size)
        entries: List[Tuple[int, int, str]] = []
        for shard in shards:
            for lo, hi in shard.intervals:
                entries.append((lo, hi, shard.shard_id))
        entries.sort()
        self._entries = entries
        self._starts = [entry[0] for entry in entries]
        self.size = size

    def owner_of(self, rank: int) -> str:
        index = bisect_right(self._starts, rank) - 1
        if index < 0 or not (
            self._entries[index][0] <= rank <= self._entries[index][1]
        ):
            raise StorageError(f"rank {rank} is outside the shard plan")
        return self._entries[index][2]

    def owners_in_range(self, low: int, high: int) -> List[str]:
        """Distinct shard_ids owning any rank in the inclusive interval
        ``[low, high]``, in first-touched order — the area-lock scope of
        a subtree edit."""
        if low > high:
            return []
        index = max(bisect_right(self._starts, low) - 1, 0)
        owners: List[str] = []
        seen = set()
        for lo, hi, shard_id in self._entries[index:]:
            if lo > high:
                break
            if hi >= low and shard_id not in seen:
                seen.add(shard_id)
                owners.append(shard_id)
        return owners


def validate_partition(shards: Sequence[Shard], size: int) -> None:
    """Every rank in ``0 .. size-1`` owned by exactly one shard."""
    if not shards:
        raise StorageError("shard plan is empty")
    intervals = sorted(
        (lo, hi, shard.shard_id)
        for shard in shards
        for lo, hi in shard.intervals
    )
    cursor = 0
    for lo, hi, shard_id in intervals:
        if lo > hi:
            raise StorageError(f"shard {shard_id}: inverted interval ({lo}, {hi})")
        if lo != cursor:
            verb = "overlaps" if lo < cursor else "leaves a gap"
            raise StorageError(
                f"shard plan {verb} at rank {min(lo, cursor)} (shard {shard_id})"
            )
        cursor = hi + 1
    if cursor != size:
        raise StorageError(
            f"shard plan covers ranks 0..{cursor - 1} but the document "
            f"has {size}"
        )


def rank_block_shards(doc: str, size: int, shard_count: int) -> List[Shard]:
    """Split ``0 .. size-1`` into ``shard_count`` contiguous blocks.

    Scheme-agnostic: any labeling with a rank index shards this way.
    The first ``size % shard_count`` blocks take the extra rank, so
    sizes differ by at most one.
    """
    if size < 1:
        raise StorageError("cannot shard an empty document")
    shard_count = min(shard_count, size)
    if shard_count < 1:
        raise StorageError(f"shard_count must be >= 1, got {shard_count}")
    base, extra = divmod(size, shard_count)
    shards: List[Shard] = []
    cursor = 0
    for index in range(shard_count):
        width = base + (1 if index < extra else 0)
        shards.append(
            Shard(
                shard_id=f"{doc}/s{index}",
                doc=doc,
                intervals=((cursor, cursor + width - 1),),
            )
        )
        cursor += width
    return shards


def area_shards(doc: str, labeling) -> List[Shard]:
    """One shard per UID-local area of a rUID-family *labeling*.

    Each node's owning area is read off its own label
    (``label.global_index``), and the area's rank set is compressed
    into maximal runs. Areas are subtrees minus their descendant
    areas, so a shard usually holds a handful of intervals, not one.
    """
    index = labeling.rank_index()
    runs: Dict[int, List[Tuple[int, int]]] = {}
    ranks_by_area: Dict[int, List[int]] = {}
    for node in labeling.tree.preorder():
        label = labeling.label_of(node)
        area = label.global_index
        ranks_by_area.setdefault(area, []).append(index.rank[label])
    for area, ranks in ranks_by_area.items():
        ranks.sort()
        area_runs: List[Tuple[int, int]] = []
        lo = hi = ranks[0]
        for rank in ranks[1:]:
            if rank == hi + 1:
                hi = rank
            else:
                area_runs.append((lo, hi))
                lo = hi = rank
        area_runs.append((lo, hi))
        runs[area] = area_runs
    return [
        Shard(
            shard_id=f"{doc}/a{area}",
            doc=doc,
            intervals=tuple(runs[area]),
        )
        for area in sorted(runs)
    ]
