"""Open-loop load generation for the serving tier.

A *closed-loop* harness (issue → wait → issue) hides overload: when the
server slows down, the harness slows its own arrival rate and the
measured latency stays flattering. Real traffic does not wait — it
arrives by its own clock. The generator here is **open-loop**: arrival
times are a Poisson process drawn *up front* from a seeded RNG, and
each arrival fires whether or not earlier requests finished. Under
overload the in-flight count grows and the tail latencies show it —
which is exactly what the E20 SLO gate needs to see.

Determinism: the schedule (arrival offsets + per-arrival workload
choice) depends only on the seed, never on the clock. With virtual
pacing (``pace=False``) and the cluster's injectable no-op sleep, a
whole run is reproducible byte-for-byte; with ``pace=True`` the same
requests go out with real inter-arrival gaps for latency measurement.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from time import perf_counter_ns
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import Overloaded, QueryTimeout, ReproError

__all__ = ["Arrival", "ArrivalOutcome", "LoadReport", "OpenLoopLoadGenerator", "poisson_schedule"]


@dataclass(frozen=True)
class Arrival:
    """One scheduled request: when it fires and what it asks."""

    index: int
    offset_s: float
    doc: str
    expression: str


@dataclass
class ArrivalOutcome:
    """What happened to one arrival (slot ``index`` of the run)."""

    index: int
    status: str = "pending"  # ok | shed | timeout | unavailable | error
    error: str = ""
    latency_ns: int = 0
    #: result identity for determinism/correctness checks
    result_key: Optional[Tuple] = None


@dataclass
class LoadReport:
    """Aggregate of one run; the E20 gate asserts against this."""

    offered: int
    completed: int = 0
    ok: int = 0
    shed: int = 0
    timeouts: int = 0
    unavailable: int = 0
    errors: int = 0
    wrong: int = 0
    latencies_ns: List[int] = field(default_factory=list)
    outcomes: List[ArrivalOutcome] = field(default_factory=list)

    def percentile_ns(self, q: float) -> int:
        """Nearest-rank percentile of the *successful* latencies."""
        if not self.latencies_ns:
            return 0
        ordered = sorted(self.latencies_ns)
        rank = max(0, min(len(ordered) - 1, int(q * len(ordered))))
        return ordered[rank]

    @property
    def shed_rate(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "offered": self.offered,
            "ok": self.ok,
            "shed": self.shed,
            "timeouts": self.timeouts,
            "unavailable": self.unavailable,
            "errors": self.errors,
            "wrong": self.wrong,
            "shed_rate": round(self.shed_rate, 4),
            "p50_ms": round(self.percentile_ns(0.50) / 1e6, 3),
            "p95_ms": round(self.percentile_ns(0.95) / 1e6, 3),
            "p99_ms": round(self.percentile_ns(0.99) / 1e6, 3),
        }


def poisson_schedule(
    rate_hz: float,
    count: int,
    workload: Sequence[Tuple[str, str]],
    seed: int = 0,
) -> List[Arrival]:
    """``count`` arrivals with Exp(rate) inter-arrival gaps.

    The whole schedule — offsets *and* which (doc, expression) each
    arrival issues — is a pure function of the seed, so two runs with
    the same seed offer identical traffic regardless of how fast the
    server answers it.
    """
    if rate_hz <= 0:
        raise ValueError(f"rate_hz must be positive, got {rate_hz}")
    if not workload:
        raise ValueError("workload is empty")
    rng = random.Random(seed)
    arrivals: List[Arrival] = []
    clock = 0.0
    for index in range(count):
        clock += rng.expovariate(rate_hz)
        doc, expression = workload[rng.randrange(len(workload))]
        arrivals.append(
            Arrival(index=index, offset_s=clock, doc=doc, expression=expression)
        )
    return arrivals


class OpenLoopLoadGenerator:
    """Fire a precomputed schedule at a scatter-gather executor.

    Parameters
    ----------
    executor:
        The :class:`~repro.serving.executor.ScatterGatherExecutor`
        under test.
    deadline_ms:
        Per-request budget; ``None`` runs without deadlines.
    pace:
        ``True`` sleeps out the real inter-arrival gaps (latency
        measurement); ``False`` fires the whole schedule immediately
        (virtual time — deterministic, and the honest way to model a
        burst far faster than the event loop could pace).
    expected:
        Optional per-(doc, expression) expected result keys; when
        given, every OK answer is differentially checked and any
        mismatch is counted in ``report.wrong`` (the SLO gate's
        zero-tolerance number).
    """

    def __init__(
        self,
        executor,
        deadline_ms: Optional[float] = None,
        pace: bool = False,
        expected: Optional[Dict[Tuple[str, str], Tuple]] = None,
        result_key=None,
    ):
        self.executor = executor
        self.deadline_ms = deadline_ms
        self.pace = pace
        self.expected = expected
        #: maps a result node list to a comparable identity; defaults
        #: to the tuple of node ids (transient attributes keyed by
        #: owner + tag + text)
        self.result_key = result_key if result_key is not None else _node_key

    async def run(self, arrivals: Sequence[Arrival]) -> LoadReport:
        report = LoadReport(offered=len(arrivals))
        report.outcomes = [ArrivalOutcome(index=a.index) for a in arrivals]
        tasks = []
        start = 0.0
        if self.pace:
            loop = asyncio.get_running_loop()
            start = loop.time()
        for arrival in arrivals:
            if self.pace:
                delay = start + arrival.offset_s - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
            tasks.append(
                asyncio.ensure_future(self._one(arrival, report))
            )
        await asyncio.gather(*tasks)
        report.completed = len(arrivals)
        return report

    async def _one(self, arrival: Arrival, report: LoadReport) -> None:
        outcome = report.outcomes[arrival.index]
        began = perf_counter_ns()
        try:
            nodes = await self.executor.select(
                arrival.doc, arrival.expression, deadline=self.deadline_ms
            )
        except Overloaded as exc:
            outcome.status, outcome.error = "shed", str(exc)
            report.shed += 1
            return
        except QueryTimeout as exc:
            outcome.status, outcome.error = "timeout", str(exc)
            report.timeouts += 1
            return
        except ReproError as exc:
            name = type(exc).__name__
            if name == "SiteUnavailableError":
                outcome.status = "unavailable"
                report.unavailable += 1
            else:
                outcome.status = "error"
                report.errors += 1
            outcome.error = f"{name}: {exc}"
            return
        outcome.latency_ns = perf_counter_ns() - began
        outcome.status = "ok"
        outcome.result_key = self.result_key(nodes)
        report.ok += 1
        report.latencies_ns.append(outcome.latency_ns)
        if self.expected is not None:
            want = self.expected.get((arrival.doc, arrival.expression))
            if want is not None and outcome.result_key != want:
                report.wrong += 1
                outcome.status = "wrong"

    def run_sync(self, arrivals: Sequence[Arrival]) -> LoadReport:
        return asyncio.run(self.run(arrivals))


def _node_key(nodes) -> Tuple:
    """Comparable identity of a result node list (order-sensitive)."""
    key = []
    for node in nodes:
        node_id = getattr(node, "node_id", None)
        if node_id is not None:
            key.append(node_id)
        else:
            parent = getattr(node, "parent", None)
            key.append(
                (
                    "attr",
                    getattr(parent, "node_id", None),
                    getattr(node, "tag", None),
                    getattr(node, "text", None),
                )
            )
    return tuple(key)
