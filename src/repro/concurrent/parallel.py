"""Parallel query execution over pinned snapshots.

Three fan-out shapes, all reading one pinned generation so results are
bit-identical to a single-threaded run:

* :meth:`ParallelQueryExecutor.select_batch` — a batch of XPath
  queries spread across a thread pool, one shared (stateless)
  snapshot evaluator;
* :meth:`ParallelQueryExecutor.scan_tag` — one per-tag candidate list
  split into rank-contiguous chunks, each chunk filtered for
  containment under the context node concurrently, merged in document
  order by construction (the chunks partition a rank-sorted list);
* :meth:`ParallelQueryExecutor.federated_find_tags` — tag lookups
  fanned across federation sites; with simulated site latency the
  sleeps overlap, which is where threading genuinely pays on a GIL
  interpreter.

Every dispatched work unit is counted in the document's
``concurrent.parallel_chunks`` metric.

An optional :class:`~repro.resilience.admission.AdmissionController`
gates each fan-out entry point: a batch that cannot get a token within
the bounded queue is shed with a typed
:class:`~repro.errors.Overloaded` before any threads are dispatched,
so overload cannot multiply itself through the pool.
"""

from __future__ import annotations

import contextlib
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.concurrent.document import ConcurrentDocument, PinnedSnapshot
from repro.xmltree.node import XmlNode


def _split_chunks(items: Sequence, chunk_count: int) -> List[Sequence]:
    """Split into at most *chunk_count* contiguous, order-preserving
    runs of near-equal length."""
    total = len(items)
    count = max(1, min(chunk_count, total))
    size, remainder = divmod(total, count)
    chunks: List[Sequence] = []
    start = 0
    for index in range(count):
        stop = start + size + (1 if index < remainder else 0)
        chunks.append(items[start:stop])
        start = stop
    return chunks


class ParallelQueryExecutor:
    """Thread-pool fan-out bound to one :class:`ConcurrentDocument`."""

    def __init__(
        self,
        document: ConcurrentDocument,
        threads: int = 4,
        admission=None,
    ):
        if threads < 1:
            raise ValueError("need at least one thread")
        self.document = document
        self.threads = threads
        #: optional AdmissionController shedding whole batches
        self.admission = admission

    def _admitted(self):
        if self.admission is None:
            return contextlib.nullcontext()
        return self.admission.admit()

    # ------------------------------------------------------------------
    def select_batch(
        self,
        queries: Sequence[str],
        threads: Optional[int] = None,
        snapshot: Optional[PinnedSnapshot] = None,
    ) -> List[List[XmlNode]]:
        """Evaluate *queries* concurrently against one generation.

        All queries of the batch see the same pinned snapshot, so the
        result is exactly what a sequential loop over the batch would
        produce at that generation — regardless of writer activity.
        """
        workers = threads if threads is not None else self.threads
        with self._admitted():
            if snapshot is not None:
                return self._run_batch(snapshot, queries, workers)
            with self.document.pin() as snap:
                return self._run_batch(snap, queries, workers)

    def _run_batch(
        self, snap: PinnedSnapshot, queries: Sequence[str], workers: int
    ) -> List[List[XmlNode]]:
        compiled = [self.document.compile(q) for q in queries]
        evaluator = snap.evaluator()
        if workers == 1 or len(compiled) <= 1:
            results = [evaluator.select(plan) for plan in compiled]
        else:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                results = list(pool.map(evaluator.select, compiled))
        self.document._note_chunks(len(compiled))
        return results

    # ------------------------------------------------------------------
    def scan_tag(
        self,
        tag: str,
        context: Optional[XmlNode] = None,
        chunks: Optional[int] = None,
        snapshot: Optional[PinnedSnapshot] = None,
    ) -> List[XmlNode]:
        """Descendant-or-self elements named *tag* under *context*.

        The per-tag candidate list (already in document-rank order) is
        cut into rank-contiguous chunks; each chunk runs the interval
        containment test on its own thread. Concatenating the filtered
        chunks preserves document order — no merge sort needed.
        """
        with self._admitted():
            if snapshot is not None:
                return self._run_scan(snapshot, tag, context, chunks)
            with self.document.pin() as snap:
                return self._run_scan(snap, tag, context, chunks)

    def _run_scan(
        self,
        snap: PinnedSnapshot,
        tag: str,
        context: Optional[XmlNode],
        chunks: Optional[int],
    ) -> List[XmlNode]:
        # NodeStore protocol only — the pinned view may be a full
        # StructuralView or a chained DeltaView; both serve candidate
        # lists and an aligned rank column.
        view = snap.view
        candidates = view.labels_with_tag(tag)
        if not candidates:
            return []
        context_label = (
            view.label_for(context) if context is not None else view.root_label()
        )
        low = view.rank_of(context_label)
        high = view.end_of(context_label)
        ranks = view.tag_ranks(tag)

        def filter_chunk(span: Sequence[int]) -> List[int]:
            return [candidates[i] for i in span if low <= ranks[i] <= high]

        parts = _split_chunks(range(len(candidates)), chunks if chunks else self.threads)
        if len(parts) == 1:
            kept = filter_chunk(parts[0])
        else:
            with ThreadPoolExecutor(max_workers=len(parts)) as pool:
                kept = [nid for part in pool.map(filter_chunk, parts) for nid in part]
        self.document._note_chunks(len(parts))
        node_for = view.node_for
        return [node_for(label) for label in kept]

    # ------------------------------------------------------------------
    def federated_find_tags(
        self,
        federated,
        tags: Sequence[str],
        threads: Optional[int] = None,
        routed: bool = True,
    ) -> Dict[str, List[Tuple]]:
        """Fan ``find_tag`` lookups for *tags* across federation sites.

        Returns tag → matched ``(label, row)`` pairs in document order.
        Per-call message deltas are meaningless under concurrency (the
        coordinator counter is shared), so only matches are returned;
        read ``federated.total_messages()`` around the whole batch.
        """
        workers = threads if threads is not None else self.threads

        def lookup(tag: str):
            matches, _messages = federated.find_tag(tag, routed=routed)
            return tag, matches

        with self._admitted():
            if workers == 1 or len(tags) <= 1:
                pairs = [lookup(tag) for tag in tags]
            else:
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    pairs = list(pool.map(lookup, tags))
            self.document._note_chunks(len(tags))
        return dict(pairs)
