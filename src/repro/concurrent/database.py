"""Reader–writer concurrency wrapper for :class:`XmlDatabase`.

The storage engine itself is single-threaded (pager, WAL and catalog
share unguarded state); :class:`ConcurrentXmlDatabase` serialises
mutation behind the write side of a :class:`ReadWriteLock` while
letting any number of readers fetch rows, scan tags or run queries
together. Readers can therefore never observe a torn checkpoint or a
half-applied ``store_document``.

This is deliberately a wrapper, not a rewrite: every method delegates
to the wrapped database under the appropriate lock side, and the raw
``read_locked()`` / ``write_locked()`` contexts are exposed for
multi-call transactions (e.g. fetch-then-fetch-parent under one
consistent read view).

An optional :class:`~repro.resilience.admission.AdmissionController`
gates the read-side serving entry points (fetch, tag scans): when the
token pool and its bounded wait queue are exhausted the call is shed
with a typed :class:`~repro.errors.Overloaded` *before* it can pile
onto the read lock — overload turns into fast typed rejection instead
of unbounded queueing.
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, List, Optional, Tuple

from repro.concurrent.rwlock import ReadWriteLock
from repro.core.scheme import Labeling
from repro.storage.database import StoredDocument, XmlDatabase
from repro.xmltree.tree import XmlTree


class ConcurrentXmlDatabase:
    """Many concurrent readers, one writer, over an ``XmlDatabase``."""

    def __init__(self, database: XmlDatabase, admission=None):
        self.database = database
        self.lock = ReadWriteLock()
        #: optional AdmissionController shedding read-side overload
        self.admission = admission

    def _admitted(self):
        if self.admission is None:
            return contextlib.nullcontext()
        return self.admission.admit()

    # ------------------------------------------------------------------
    # Locking contexts (for multi-call units of work)
    # ------------------------------------------------------------------
    def read_locked(self):
        return self.lock.read_locked()

    def write_locked(self):
        return self.lock.write_locked()

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------
    def store_document(self, name: str, tree: XmlTree, labeling: Labeling, **kwargs):
        with self.lock.write_locked():
            return self.database.store_document(name, tree, labeling, **kwargs)

    def drop_document(self, name: str) -> None:
        with self.lock.write_locked():
            self.database.drop_document(name)

    def commit(self) -> None:
        with self.lock.write_locked():
            self.database.commit()

    def checkpoint(self) -> None:
        with self.lock.write_locked():
            self.database.checkpoint()

    def crash(self, tear_bytes: Optional[int] = None) -> int:
        with self.lock.write_locked():
            return self.database.crash(tear_bytes)

    def recover(self, *args, **kwargs):
        with self.lock.write_locked():
            return self.database.recover(*args, **kwargs)

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def document(self, name: str) -> StoredDocument:
        with self.lock.read_locked():
            return self.database.document(name)

    def document_names(self) -> List[str]:
        with self.lock.read_locked():
            return self.database.document_names()

    def fetch(self, name: str, label: Any) -> Tuple[Any, ...]:
        """One row of document *name* by label."""
        with self._admitted(), self.lock.read_locked():
            return self.database.document(name).fetch(label)

    def nodes_with_tag(self, name: str, tag: str) -> List[Tuple[Any, ...]]:
        # materialise inside the lock: the underlying lookup is lazy,
        # and draining it after release would race the writer
        with self._admitted(), self.lock.read_locked():
            return list(self.database.document(name).nodes_with_tag(tag))

    def io_snapshot(self) -> Dict[str, int]:
        with self.lock.read_locked():
            return self.database.io_snapshot()

    @property
    def durable(self) -> bool:
        return self.database.durable

    def __repr__(self) -> str:
        return f"<ConcurrentXmlDatabase {self.database!r}>"
