"""Area-scoped writer admission: subtree locks over shard units.

The paper's §3 frame/area decomposition argues that a rUID area is the
unit a structural update can relabel independently; the serving tier
already materialises those areas as :class:`~repro.serving.shards.Shard`
rank intervals. :class:`AreaLockManager` reuses the same shard plan as
**write-lock units**: a writer locks exactly the shards whose rank
intervals its target subtree overlaps, so writers editing disjoint
areas are admitted concurrently instead of queueing on one global
writer gate.

Honest scope (docs/CONCURRENCY.md): the structural splice itself —
DOM mutation, relabeling and delta-view publish — still serialises on
the document's global write lock, because delta chaining needs a
linear generation history. What area locks buy is everything *around*
that short critical section: logical-transaction work, and above all
the group-commit WAL wait, overlap between disjoint-area writers,
while two writers aimed at the same subtree serialise early, before
either touches shared state.

Lock ordering: shard ids are acquired in sorted order (two writers
with overlapping scopes cannot deadlock), and area locks sit strictly
*outside* the document's RW lock — never acquire an area lock while
holding it.

The shard plan is frozen at :meth:`ConcurrentDocument.enable_area_locks`
time; nodes created after the plan resolve to their nearest planned
ancestor's interval, which is always a superset of the edit's true
scope — stale plans cost concurrency, never correctness.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Sequence

from repro.serving.shards import RankOwnership, Shard

__all__ = ["AreaLockManager"]


class AreaLockManager:
    """Per-shard mutexes plus interval → scope resolution."""

    def __init__(self, shards: Sequence[Shard], size: int):
        self.ownership = RankOwnership(shards, size)
        self.shards = tuple(shards)
        self._locks: Dict[str, threading.Lock] = {
            shard.shard_id: threading.Lock() for shard in shards
        }
        self._stats_lock = threading.Lock()
        self.acquisitions = 0
        self.wait_ns = 0
        self.scoped_writes = 0

    # ------------------------------------------------------------------
    def scope_for_interval(self, low: int, high: int) -> List[str]:
        """Sorted shard ids a subtree interval overlaps — the lock set
        of one edit. Sorted order is the deadlock-avoidance invariant:
        every writer acquires its set in the same global order."""
        return sorted(self.ownership.owners_in_range(low, high))

    def acquire(self, shard_ids: Sequence[str]) -> None:
        started = time.perf_counter_ns()
        for shard_id in shard_ids:
            self._locks[shard_id].acquire()
        waited = time.perf_counter_ns() - started
        with self._stats_lock:
            self.acquisitions += len(shard_ids)
            self.wait_ns += waited
            self.scoped_writes += 1

    def release(self, shard_ids: Sequence[str]) -> None:
        for shard_id in reversed(shard_ids):
            self._locks[shard_id].release()

    class _Scope:
        __slots__ = ("manager", "shard_ids")

        def __init__(self, manager: "AreaLockManager", shard_ids: List[str]):
            self.manager = manager
            self.shard_ids = shard_ids

        def __enter__(self) -> List[str]:
            self.manager.acquire(self.shard_ids)
            return self.shard_ids

        def __exit__(self, exc_type, exc, tb) -> bool:
            self.manager.release(self.shard_ids)
            return False

    def scoped(self, low: int, high: int) -> "AreaLockManager._Scope":
        """Context manager locking the scope of ``[low, high]``."""
        return self._Scope(self, self.scope_for_interval(low, high))

    def stats_snapshot(self) -> Dict[str, int]:
        with self._stats_lock:
            return {
                "area_lock_acquisitions": self.acquisitions,
                "area_lock_wait_ns": self.wait_ns,
                "area_scoped_writes": self.scoped_writes,
                "area_lock_units": len(self._locks),
            }

    def __repr__(self) -> str:
        return f"<AreaLockManager units={len(self._locks)}>"
