"""Generation-stamped structural snapshots.

A :class:`StructuralView` freezes everything a query needs from one
labeling generation — document-order ranks, the parent/children maps,
per-tag candidate lists and the XPath string-values — into plain dicts
keyed by ``node_id``. Readers evaluate against the view while the
writer mutates the live tree: the view never follows a live
``parent``/``children`` pointer, so no interleaving of reader and
writer can produce a torn result. ``XmlNode`` objects themselves are
retained only for their immutable identity fields (``tag``, ``kind``,
``node_id``); structural updates move nodes but never rewrite those.

The build runs the numbering scheme's own machinery — the rank index
comes from :meth:`Labeling.rank_index` and every parent edge from
:meth:`Labeling.parent_label` arithmetic — so a view works for *any*
registered scheme, and a scheme whose arithmetic is wrong produces a
visibly wrong view. The differential test harness leans on exactly
that property.

:class:`SnapshotEvaluator` plugs a view under the shared
:class:`~repro.query.evaluator.BaseEvaluator` semantics. It keeps no
mutable per-query state, so one instance may serve many threads.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.core.columnar import NO_RANK
from repro.errors import NoParentError, QueryError, UnknownLabelError
from repro.query.evaluator import BaseEvaluator
from repro.query.stats import QueryStats
from repro.store.base import NodeRecord, NodeStore
from repro.xmltree.node import NodeKind, XmlNode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.scheme import Labeling


class StructuralView(NodeStore):
    """One labeling generation, frozen for lock-free reading.

    Also the frozen-snapshot implementation of the
    :class:`~repro.store.base.NodeStore` protocol: labels are the
    ``node_id`` ints the view is keyed by, so protocol consumers
    (:class:`~repro.store.evaluator.StoreEvaluator`,
    :class:`~repro.query.twig.TwigMatcher`, physical counters) run
    against a pinned generation unchanged.
    """

    store_kind = "snapshot"
    supports_batched = True
    #: a full view terminates every delta chain (see concurrent/delta.py)
    chain_depth = 0

    __slots__ = (
        "generation",
        "scheme_name",
        "root",
        "node_by_id",
        "rank",
        "end",
        "parent",
        "children",
        "position",
        "attr_children",
        "attrs",
        "ids_by_rank",
        "tag_ids",
        "element_ids",
        "text_ids",
        "comment_ids",
        "structural_ids",
        "structural_ranks",
        "parent_ranks",
        "string_values",
        "_tag_rank_arrays",
    )

    def __init__(self, generation: int, scheme_name: str):
        super().__init__()  # the stats ledger
        self.generation = generation
        self.scheme_name = scheme_name
        self.root: Optional[XmlNode] = None
        #: node_id → the (immutable parts of the) node itself
        self.node_by_id: Dict[int, XmlNode] = {}
        #: node_id → preorder rank / subtree-end rank
        self.rank: Dict[int, int] = {}
        self.end: Dict[int, int] = {}
        #: node_id → parent node_id (None at the root), from scheme
        #: arithmetic — not from live pointers
        self.parent: Dict[int, Optional[int]] = {}
        #: node_id → structural children ids in document order
        self.children: Dict[int, List[int]] = {}
        #: node_id → position among its structural siblings
        self.position: Dict[int, int] = {}
        #: node_id → materialised attribute-node children ids
        self.attr_children: Dict[int, List[int]] = {}
        #: node_id → frozen ((name, value), ...) attribute pairs
        self.attrs: Dict[int, Tuple[Tuple[str, str], ...]] = {}
        #: every node_id in rank order (attributes included)
        self.ids_by_rank: List[int] = []
        #: element ids per tag, rank order — the candidate lists the
        #: batched evaluator and the parallel chunk scan consume
        self.tag_ids: Dict[str, List[int]] = {}
        self.element_ids: List[int] = []
        self.text_ids: List[int] = []
        self.comment_ids: List[int] = []
        #: rank-ordered ids excluding attribute nodes (the structural
        #: document the main axes range over)
        self.structural_ids: List[int] = []
        #: ranks of ``structural_ids``, same order — descendant slices
        #: are a bisect into this column plus one list slice
        self.structural_ranks = array("q")
        #: rank → parent's rank (NO_RANK at the root), every node
        self.parent_ranks = array("q")
        #: node_id → frozen XPath string-value
        self.string_values: Dict[int, str] = {}
        #: tag → rank array of its elements, built on first use; the
        #: build is idempotent, so a race between readers is benign
        self._tag_rank_arrays: Dict[str, array] = {}

    # ------------------------------------------------------------------
    @classmethod
    def from_labeling(cls, labeling: "Labeling") -> "StructuralView":
        """Freeze the current generation of *labeling*.

        Must run while the structure is quiescent (single-threaded, or
        under the concurrent document's read lock with the writer
        excluded).
        """
        generation = labeling.generation
        view = cls(generation, labeling.scheme_name)
        index = labeling.rank_index()
        size = len(index.rank)
        node_of = labeling.node_of
        parent_label = labeling.parent_label

        node_by_label = {}
        ids_by_rank: List[Optional[int]] = [None] * size
        for label, r in index.rank.items():
            node = node_of(label)
            node_by_label[label] = node
            nid = node.node_id
            view.node_by_id[nid] = node
            view.rank[nid] = r
            view.end[nid] = index.end[label]
            ids_by_rank[r] = nid
        if any(nid is None for nid in ids_by_rank):
            raise QueryError(
                f"{labeling.scheme_name}: rank index is not a permutation "
                f"of the document"
            )
        view.ids_by_rank = ids_by_rank  # type: ignore[assignment]

        # Parent edges from label arithmetic. A buggy scheme shows up
        # here (or as divergent query results), never as a torn view.
        for label, node in node_by_label.items():
            nid = node.node_id
            try:
                pl = parent_label(label)
            except NoParentError:
                view.parent[nid] = None
                view.root = node
                continue
            view.parent[nid] = node_of(pl).node_id
        if view.root is None:
            raise QueryError(
                f"{labeling.scheme_name}: no root label (parent_label "
                f"never raised NoParentError)"
            )

        # Children / candidate lists, in rank (= document) order.
        contribs: List[str] = []
        for nid in view.ids_by_rank:
            node = view.node_by_id[nid]
            kind = node.kind
            view.children[nid] = []
            pid = view.parent[nid]
            if kind is NodeKind.ATTRIBUTE:
                if pid is not None:
                    bucket = view.attr_children.setdefault(pid, [])
                    view.position[nid] = len(bucket)
                    bucket.append(nid)
                contribs.append("")
            else:
                if pid is not None:
                    siblings = view.children[pid]
                    view.position[nid] = len(siblings)
                    siblings.append(nid)
                else:
                    view.position[nid] = 0
                view.structural_ids.append(nid)
                if kind is NodeKind.ELEMENT:
                    view.element_ids.append(nid)
                    view.tag_ids.setdefault(node.tag, []).append(nid)
                elif kind is NodeKind.TEXT:
                    view.text_ids.append(nid)
                elif kind is NodeKind.COMMENT:
                    view.comment_ids.append(nid)
                contribs.append(
                    node.text
                    if kind in (NodeKind.TEXT, NodeKind.ELEMENT) and node.text
                    else ""
                )
            if kind is NodeKind.ELEMENT and node.attributes:
                view.attrs[nid] = tuple(sorted(node.attributes.items()))

        # Flat rank columns for the batched set-at-a-time evaluator:
        # aligned with structural_ids, plus a rank-indexed parent
        # column over every node (attributes included).
        rank_map = view.rank
        view.structural_ranks = array(
            "q", (rank_map[nid] for nid in view.structural_ids)
        )
        parent_map = view.parent
        view.parent_ranks = array(
            "q",
            (
                NO_RANK if parent_map[nid] is None else rank_map[parent_map[nid]]
                for nid in view.ids_by_rank
            ),
        )
        view.stats.columnar_builds += 1

        # Frozen string-values: rank order is document order, so an
        # element's value is the join of its subtree's contributions.
        for nid in view.ids_by_rank:
            node = view.node_by_id[nid]
            if node.kind in (NodeKind.TEXT, NodeKind.ATTRIBUTE, NodeKind.COMMENT):
                view.string_values[nid] = node.text or ""
            else:
                view.string_values[nid] = "".join(
                    contribs[view.rank[nid] : view.end[nid] + 1]
                )
        return view

    # ------------------------------------------------------------------
    def node(self, nid: int) -> XmlNode:
        return self.node_by_id[nid]

    def nodes(self, ids: Sequence[int]) -> List[XmlNode]:
        node_by_id = self.node_by_id
        return [node_by_id[nid] for nid in ids]

    def __len__(self) -> int:
        return len(self.node_by_id)

    def __contains__(self, nid: int) -> bool:
        return nid in self.node_by_id

    def descendant_slice(self, nid: int, or_self: bool = False) -> List[int]:
        """Structural descendants of *nid* in document order: one
        bisect into the structural rank column, one list slice — no
        per-node kind checks."""
        self.stats.columnar_slices += 1
        structural_ranks = self.structural_ranks
        locate = bisect_left if or_self else bisect_right
        lo = locate(structural_ranks, self.rank[nid])
        hi = bisect_right(structural_ranks, self.end[nid])
        return self.structural_ids[lo:hi]

    # ------------------------------------------------------------------
    # NodeStore protocol (labels are node_ids)
    # ------------------------------------------------------------------
    def size(self) -> int:
        return len(self.node_by_id)

    def root_label(self) -> int:
        return self.root.node_id

    def rank_of(self, label: int) -> int:
        try:
            return self.rank[label]
        except KeyError:
            raise UnknownLabelError(f"node id {label!r} not in this view") from None

    def end_of(self, label: int) -> int:
        try:
            return self.end[label]
        except KeyError:
            raise UnknownLabelError(f"node id {label!r} not in this view") from None

    def label_at(self, rank: int) -> int:
        try:
            return self.ids_by_rank[rank]
        except IndexError:
            raise UnknownLabelError(f"no node at rank {rank}") from None

    def parent_of(self, label: int) -> Optional[int]:
        self.stats.parent_hops += 1
        return self.parent[label]

    def children_of(self, label: int) -> List[int]:
        return self.children[label]

    def record(self, label: int) -> NodeRecord:
        self.stats.fetches += 1
        node = self.node_by_id[label]
        return NodeRecord(label, node.tag, node.kind, node.text)

    def node_for(self, label: int) -> XmlNode:
        self.stats.fetches += 1
        return self.node_by_id[label]

    def label_for(self, node: XmlNode) -> int:
        nid = node.node_id
        if nid not in self.node_by_id:
            raise UnknownLabelError(f"node {node!r} is not in this view")
        return nid

    def labels_with_tag(self, tag: str) -> List[int]:
        self.stats.tag_lookups += 1
        return self.tag_ids.get(tag, [])

    def tag_ranks(self, tag: str) -> Sequence[int]:
        self.stats.columnar_tag_scans += 1
        cached = self._tag_rank_arrays.get(tag)
        if cached is None:
            rank_map = self.rank
            cached = array("q", (rank_map[nid] for nid in self.tag_ids.get(tag, ())))
            self._tag_rank_arrays[tag] = cached
        return cached

    def parent_rank_array(self) -> Sequence[int]:
        return self.parent_ranks

    def element_labels(self) -> List[int]:
        return self.element_ids

    def text_labels(self) -> List[int]:
        return self.text_ids

    def comment_labels(self) -> List[int]:
        return self.comment_ids

    def structural_labels(self) -> List[int]:
        return self.structural_ids

    def attributes_of(self, label: int) -> Tuple[Tuple[str, str], ...]:
        return self.attrs.get(label, ())

    def attribute_labels(self, label: int) -> List[int]:
        return self.attr_children.get(label, [])

    def string_value(self, label: int) -> str:
        return self.string_values[label]

    def order_by_id(self) -> Dict[int, int]:
        return self.rank

    def descendant_labels(self, label: int, or_self: bool = False) -> List[int]:
        return self.descendant_slice(label, or_self=or_self)

    def structural_labels_between(self, low: int, high: int) -> List[int]:
        """Structural labels with rank in ``[low, high]`` (inclusive),
        document order: a bisect into the rank column plus one slice —
        the interval primitive delta views compose around their splice
        point."""
        self.stats.columnar_slices += 1
        structural_ranks = self.structural_ranks
        lo = bisect_left(structural_ranks, low)
        hi = bisect_right(structural_ranks, high)
        return self.structural_ids[lo:hi]

    def __repr__(self) -> str:
        return (
            f"<StructuralView {self.scheme_name} gen={self.generation} "
            f"nodes={len(self.node_by_id)}>"
        )


class SnapshotEvaluator(BaseEvaluator):
    """XPath evaluation against a frozen :class:`StructuralView`.

    Every axis, order comparison and string-value is answered from the
    view's dicts; the live tree is never consulted, so this evaluator
    is safe to run while a writer mutates the document. It also keeps
    no mutable caches, so a single instance may be shared by all the
    threads of a batch.
    """

    strategy_name = "snapshot"
    route_name = "snapshot"

    def __init__(self, view: StructuralView, stats: Optional[QueryStats] = None):
        # Deliberately no super().__init__: BaseEvaluator would bind a
        # live tree; everything it reads through self.tree is
        # overridden below.
        self.view = view
        self.tree = None  # any accidental live-tree access fails loudly
        self.stats = stats if stats is not None else QueryStats()
        self.tracer = None
        self._doc_order = dict(view.rank)
        self.document_node = XmlNode("#document", NodeKind.DOCUMENT)

    # -- BaseEvaluator hooks ------------------------------------------------
    def doc_order(self) -> Dict[int, int]:
        return self._doc_order

    def select(self, expr, context: Optional[XmlNode] = None) -> List[XmlNode]:
        context = context if context is not None else self.view.root
        result = self._eval(expr, context, 1, 1)
        if not isinstance(result, list):
            raise QueryError(f"expression yields a {type(result).__name__}, not nodes")
        return result

    def evaluate(self, expr, context: Optional[XmlNode] = None):
        context = context if context is not None else self.view.root
        return self._eval(expr, context, 1, 1)

    def string_value_of(self, node: XmlNode) -> str:
        frozen = self.view.string_values.get(node.node_id)
        if frozen is not None:
            return frozen
        # Transient attribute node synthesized by this evaluator: its
        # text was frozen at synthesis time.
        return node.text or ""

    def _document_axis(self, axis: str) -> List[XmlNode]:
        view = self.view
        if axis == "child":
            return [view.root]
        if axis == "descendant":
            return view.nodes(view.structural_ids)
        if axis == "descendant-or-self":
            return [self.document_node, *view.nodes(view.structural_ids)]
        if axis == "self":
            return [self.document_node]
        return []

    # -- axes ---------------------------------------------------------------
    def axis_nodes(self, node: XmlNode, axis: str) -> List[XmlNode]:
        view = self.view
        nid = node.node_id
        if axis == "attribute":
            return self._attribute_nodes(node)
        if nid not in view.node_by_id:
            return self._transient_axis(node, axis)
        if axis == "self":
            return [node]
        if axis == "parent":
            pid = view.parent[nid]
            return [view.node(pid)] if pid is not None else []
        if axis in ("ancestor", "ancestor-or-self"):
            chain: List[XmlNode] = [node] if axis == "ancestor-or-self" else []
            pid = view.parent[nid]
            while pid is not None:
                chain.append(view.node(pid))
                pid = view.parent[pid]
            chain.reverse()  # root first, matching the navigational axes
            return chain
        if axis == "child":
            return view.nodes(view.children[nid])
        if axis in ("descendant", "descendant-or-self"):
            return view.nodes(
                view.descendant_slice(nid, or_self=axis == "descendant-or-self")
            )
        if axis in ("following-sibling", "preceding-sibling"):
            pid = view.parent[nid]
            if pid is None:
                return []
            siblings = view.children[pid]
            pos = view.position[nid]
            if axis == "following-sibling":
                return view.nodes(siblings[pos + 1 :])
            return view.nodes(siblings[:pos])
        if axis == "following":
            after = view.end[nid] + 1
            return view.nodes(
                [
                    i
                    for i in view.ids_by_rank[after:]
                    if view.node_by_id[i].kind is not NodeKind.ATTRIBUTE
                ]
            )
        if axis == "preceding":
            ancestors = set()
            pid = view.parent[nid]
            while pid is not None:
                ancestors.add(pid)
                pid = view.parent[pid]
            before = view.rank[nid]
            return view.nodes(
                [
                    i
                    for i in view.ids_by_rank[:before]
                    if i not in ancestors
                    and view.node_by_id[i].kind is not NodeKind.ATTRIBUTE
                ]
            )
        from repro.errors import UnsupportedFeatureError

        raise UnsupportedFeatureError(f"unsupported axis {axis!r}")

    def _transient_axis(self, node: XmlNode, axis: str) -> List[XmlNode]:
        """Axes from a synthesized attribute node (outside the view)."""
        if axis == "self":
            return [node]
        parent = node.parent
        if parent is None:
            return []
        if axis == "parent":
            return [parent]
        if axis in ("ancestor", "ancestor-or-self"):
            chain = self.axis_nodes(parent, "ancestor-or-self")
            if axis == "ancestor-or-self":
                chain = [*chain, node]
            return chain
        return []

    def _attribute_nodes(self, node: XmlNode) -> List[XmlNode]:
        view = self.view
        nid = node.node_id
        materialised = view.attr_children.get(nid)
        if materialised:
            return view.nodes(materialised)
        created: List[XmlNode] = []
        for name, value in view.attrs.get(nid, ()):
            attr = XmlNode(name, NodeKind.ATTRIBUTE, text=value)
            attr.parent = node  # navigable but not inserted as a child
            created.append(attr)
        return created
