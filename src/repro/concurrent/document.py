"""Concurrent document: snapshot reads beside a single writer.

:class:`ConcurrentDocument` wraps any registered labeling behind the
subsystem's locking discipline:

* readers take the read side of a write-preferring RW lock just long
  enough to *pin* the current generation's :class:`StructuralView`
  (building it on first use), then evaluate entirely against the
  frozen view — the lock is **not** held during query evaluation;
* the single writer takes the write side for the whole structural
  update, so a generation can never change underneath a pin
  acquisition, and retires superseded views to the
  :class:`~repro.concurrent.epoch.EpochReclaimer`, which frees each
  one when its last pin drops.

Lock ordering (docs/CONCURRENCY.md): RW lock → snapshot-cache lock →
reclaimer lock → stats/ledger locks. Never acquire leftward while
holding rightward.

Metrics (``concurrent.*`` via the shared registry): ``snapshot_pins``,
``snapshot_builds``, ``snapshots_reclaimed``, ``writer_wait_ns``,
``reader_wait_ns``, ``parallel_chunks``, ``live_snapshots``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional

from repro.baselines.registry import get_scheme
from repro.concurrent.epoch import EpochReclaimer
from repro.concurrent.rwlock import ReadWriteLock
from repro.concurrent.snapshot import SnapshotEvaluator, StructuralView
from repro.core.scheme import Labeling
from repro.core.update import RelabelReport
from repro.errors import NumberingError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER
from repro.query.parser import parse_xpath
from repro.query.stats import QueryStats
from repro.xmltree.node import XmlNode
from repro.xmltree.tree import XmlTree

#: compiled plans retained by a concurrent document
PLAN_CACHE_SIZE = 128


class PinnedSnapshot:
    """A reader's lease on one generation's view.

    Context manager; release is idempotent. The evaluator is shared —
    :class:`SnapshotEvaluator` keeps no mutable state, so one instance
    serves every thread of a batch.
    """

    def __init__(self, document: "ConcurrentDocument", view: StructuralView):
        self.document = document
        self.view = view
        self.generation = view.generation
        self._evaluator: Optional[SnapshotEvaluator] = None
        self._released = False
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def store(self) -> StructuralView:
        """The pinned view under its :class:`~repro.store.base.NodeStore`
        identity (labels are ``node_id`` ints) — hand it to anything
        protocol-typed: :class:`~repro.store.evaluator.StoreEvaluator`,
        :class:`~repro.query.twig.TwigMatcher`,
        :func:`~repro.core.document.reconstruct_fragment`. Valid only
        while the pin is held."""
        return self.view

    def evaluator(self) -> SnapshotEvaluator:
        with self._lock:
            if self._evaluator is None:
                self._evaluator = SnapshotEvaluator(
                    self.view, stats=self.document.stats
                )
            return self._evaluator

    def select(self, xpath: str, context: Optional[XmlNode] = None) -> List[XmlNode]:
        """Node-set of *xpath* against the pinned generation."""
        compiled = self.document.compile(xpath)
        return self.evaluator().select(compiled, context)

    def select_ids(self, xpath: str) -> List[int]:
        """``node_id`` list of :meth:`select` — the stable way to
        compare results across generations and evaluators."""
        return [node.node_id for node in self.select(xpath)]

    def release(self) -> None:
        with self._lock:
            if self._released:
                return
            self._released = True
        self.document._unpin(self.generation)

    def __enter__(self) -> "PinnedSnapshot":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.release()
        return False

    def __repr__(self) -> str:
        state = "released" if self._released else "pinned"
        return f"<PinnedSnapshot gen={self.generation} {state}>"


class ConcurrentDocument:
    """Snapshot-isolated reads and serialised writes over one labeling."""

    def __init__(
        self,
        tree: Optional[XmlTree] = None,
        labeling: Optional[Labeling] = None,
        scheme: str = "ruid2",
        registry: Optional[MetricsRegistry] = None,
        tracer=None,
        plan_cache_size: int = PLAN_CACHE_SIZE,
        **scheme_options,
    ):
        if labeling is None:
            if tree is None:
                raise ValueError("need a tree or a prebuilt labeling")
            labeling = get_scheme(scheme, **scheme_options).build(tree)
        self.labeling = labeling
        self.tree = labeling.tree
        self.lock = ReadWriteLock()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.stats = QueryStats()
        #: generation → built view; guarded by _views_lock
        self._views: Dict[int, StructuralView] = {}
        self._views_lock = threading.Lock()
        self._reclaimer = EpochReclaimer(self._drop_view)
        self._snapshot_builds = 0
        self._snapshots_reclaimed = 0
        self._parallel_chunks = 0
        self._compiled: "OrderedDict[str, object]" = OrderedDict()
        self._compile_lock = threading.Lock()
        self._plan_cache_size = max(1, plan_cache_size)
        self.metrics.register_source("concurrent", self.stats_snapshot)
        self.stats.bind(self.metrics, "concurrent.query")

    # ------------------------------------------------------------------
    # Reader side
    # ------------------------------------------------------------------
    def pin(self) -> PinnedSnapshot:
        """Pin the current generation; evaluation happens lock-free
        against the returned snapshot."""
        self.lock.acquire_read()
        try:
            generation = self.labeling.generation
            view = self._view_for(generation)
            self._reclaimer.pin(generation)
        finally:
            self.lock.release_read()
        return PinnedSnapshot(self, view)

    def _view_for(self, generation: int) -> StructuralView:
        with self._views_lock:
            view = self._views.get(generation)
            if view is not None:
                return view
        with self.tracer.span("concurrent.snapshot_build", generation=generation):
            built = StructuralView.from_labeling(self.labeling)
        with self._views_lock:
            # another reader may have built it while we did; keep one
            view = self._views.setdefault(built.generation, built)
            if view is built:
                self._snapshot_builds += 1
            return view

    def _unpin(self, generation: int) -> None:
        self._reclaimer.unpin(generation)

    def select(self, xpath: str, context: Optional[XmlNode] = None) -> List[XmlNode]:
        """One-shot snapshot query (pin, evaluate, unpin)."""
        with self.pin() as snap:
            return snap.select(xpath, context)

    # ------------------------------------------------------------------
    # Writer side
    # ------------------------------------------------------------------
    def insert(self, parent: XmlNode, position: int, node: XmlNode) -> RelabelReport:
        with self.write_locked():
            return self.labeling.insert(parent, position, node)

    def delete(self, node: XmlNode) -> RelabelReport:
        with self.write_locked():
            return self.labeling.delete(node)

    def reenumerate(self, keep_globals: bool = True) -> bool:
        """Force a fresh enumeration (2-level rUID only)."""
        core = getattr(self.labeling, "core", None)
        reenumerate = getattr(core, "reenumerate", None)
        if reenumerate is None:
            raise NumberingError(
                f"{self.labeling.scheme_name} does not support reenumeration"
            )
        with self.write_locked():
            return reenumerate(keep_globals=keep_globals)

    def write_locked(self):
        """Writer-side context: exclusive access, then retire the
        views the mutation superseded."""
        return _WriterContext(self)

    def _retire_stale(self) -> None:
        current = self.labeling.generation
        with self._views_lock:
            stale = [g for g in self._views if g != current]
        for generation in stale:
            self._reclaimer.retire(generation)

    def _drop_view(self, generation: int) -> None:
        with self._views_lock:
            if self._views.pop(generation, None) is not None:
                self._snapshots_reclaimed += 1

    # ------------------------------------------------------------------
    # Shared plan cache
    # ------------------------------------------------------------------
    def compile(self, expression: str):
        """Parse through a lock-guarded LRU shared by all readers."""
        cache = self._compiled
        with self._compile_lock:
            compiled = cache.get(expression)
            if compiled is not None:
                self.stats.count("plan_hits")
                cache.move_to_end(expression)
                return compiled
        self.stats.count("plan_misses")
        compiled = parse_xpath(expression)
        with self._compile_lock:
            existing = cache.get(expression)
            if existing is not None:
                return existing
            cache[expression] = compiled
            if len(cache) > self._plan_cache_size:
                cache.popitem(last=False)
                self.stats.count("plan_evictions")
        return compiled

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _note_chunks(self, count: int) -> None:
        with self._views_lock:
            self._parallel_chunks += count

    def stats_snapshot(self) -> Dict[str, float]:
        """The ``concurrent.*`` pull source."""
        with self._views_lock:
            live = len(self._views)
            builds = self._snapshot_builds
            reclaimed = self._snapshots_reclaimed
            chunks = self._parallel_chunks
        return {
            "snapshot_pins": self._reclaimer.total_pins,
            "snapshot_builds": builds,
            "snapshots_reclaimed": reclaimed,
            "parallel_chunks": chunks,
            "live_snapshots": live,
            "pinned_generations": len(self._reclaimer.pinned_generations()),
            "writer_wait_ns": self.lock.writer_wait_ns,
            "reader_wait_ns": self.lock.reader_wait_ns,
            "write_acquisitions": self.lock.write_acquisitions,
            "read_acquisitions": self.lock.read_acquisitions,
        }

    @property
    def generation(self) -> int:
        return self.labeling.generation

    def __repr__(self) -> str:
        return (
            f"<ConcurrentDocument {self.labeling.scheme_name} "
            f"gen={self.labeling.generation} views={len(self._views)}>"
        )


class _WriterContext:
    """Write lock + span + post-mutation retirement."""

    def __init__(self, document: ConcurrentDocument):
        self.document = document
        self._span = None

    def __enter__(self) -> "_WriterContext":
        self.document.lock.acquire_write()
        self._span = self.document.tracer.span("concurrent.write")
        self._span.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        document = self.document
        try:
            self._span.__exit__(exc_type, exc, tb)
            # Successful or not, the labeling's generation is the truth:
            # a failed mutation that bumped it still invalidates views.
            document._retire_stale()
        finally:
            document.lock.release_write()
        return False
