"""Concurrent document: snapshot reads beside an incremental write path.

:class:`ConcurrentDocument` wraps any registered labeling behind the
subsystem's locking discipline:

* readers take the read side of a write-preferring RW lock just long
  enough to *pin* the current generation's view (building it on first
  use), then evaluate entirely against the frozen view — the lock is
  **not** held during query evaluation;
* writers serialise the structural splice on the write side, and
  **publish the new generation as a copy-on-write**
  :class:`~repro.concurrent.delta.DeltaView` layered over the previous
  generation's frozen view — O(delta), not O(n). Deltas chain up to
  ``delta_chain_limit`` layers, then the next publish folds the chain
  into a full :class:`StructuralView` rebuild (compaction). Superseded
  views retire through the :class:`~repro.concurrent.epoch.EpochReclaimer`,
  which frees each one when its last pin drops — and dropping a
  generation also evicts its cached evaluator and candidate caches;
* with :meth:`enable_area_locks`, writers first take **area-scoped
  subtree locks** (shard units from ``serving/shards.py``) so writers
  to disjoint areas overlap everywhere outside the short splice+publish
  critical section — including the optional group-commit WAL wait —
  and each published generation stamps the areas it touched.

Lock ordering (docs/CONCURRENCY.md): area locks → RW lock →
snapshot-cache lock → reclaimer lock → stats/ledger locks. Never
acquire leftward while holding rightward.

Metrics (``concurrent.*`` via the shared registry): ``snapshot_pins``,
``snapshot_builds`` (= full + delta), ``snapshot_builds_full``,
``snapshot_builds_delta``, ``snapshot_compactions``,
``delta_fallbacks``, build-cost ns histograms, ``snapshots_reclaimed``,
``writer_wait_ns``, ``reader_wait_ns``, ``parallel_chunks``,
``live_snapshots``, and the ``area_lock_*`` / ``wal_*`` families when
those layers are enabled.
"""

from __future__ import annotations

import contextlib
import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.baselines.registry import get_scheme
from repro.concurrent.arealocks import AreaLockManager
from repro.concurrent.delta import (
    DeltaCaptureError,
    DeltaView,
    capture_delete,
    capture_insert,
    finish_delete,
)
from repro.concurrent.epoch import EpochReclaimer
from repro.concurrent.rwlock import ReadWriteLock
from repro.concurrent.snapshot import SnapshotEvaluator, StructuralView
from repro.core.scheme import Labeling
from repro.core.update import RelabelReport
from repro.errors import NumberingError, StorageError
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.trace import NULL_TRACER
from repro.query.parser import parse_xpath
from repro.query.stats import QueryStats
from repro.serving.shards import area_shards, rank_block_shards
from repro.store.evaluator import StoreEvaluator
from repro.xmltree.node import XmlNode
from repro.xmltree.tree import XmlTree

#: compiled plans retained by a concurrent document
PLAN_CACHE_SIZE = 128

#: delta layers a generation may stack before a publish folds the
#: chain into a full rebuild (every probe walks the chain, so depth
#: is a read-latency tax; compaction amortises it)
DELTA_CHAIN_LIMIT = 8

AnyView = Union[StructuralView, DeltaView]


class PinnedSnapshot:
    """A reader's lease on one generation's view.

    Context manager; release is idempotent. The evaluator is shared
    per generation — both evaluator kinds keep no mutable per-query
    state, so one instance serves every thread of a batch.
    """

    def __init__(self, document: "ConcurrentDocument", view: AnyView):
        self.document = document
        self.view = view
        self.generation = view.generation
        self._released = False
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def store(self) -> AnyView:
        """The pinned view under its :class:`~repro.store.base.NodeStore`
        identity (labels are ``node_id`` ints) — hand it to anything
        protocol-typed: :class:`~repro.store.evaluator.StoreEvaluator`,
        :class:`~repro.query.twig.TwigMatcher`,
        :func:`~repro.core.document.reconstruct_fragment`. Valid only
        while the pin is held."""
        return self.view

    def evaluator(self):
        """The generation's shared evaluator: a
        :class:`SnapshotEvaluator` for a full view, a
        :class:`~repro.store.evaluator.StoreEvaluator` for a delta
        view (which has no snapshot dicts to read directly)."""
        return self.document.evaluator_for(self.view)

    def select(self, xpath: str, context: Optional[XmlNode] = None) -> List[XmlNode]:
        """Node-set of *xpath* against the pinned generation."""
        compiled = self.document.compile(xpath)
        return self.evaluator().select(compiled, context)

    def select_ids(self, xpath: str) -> List[int]:
        """``node_id`` list of :meth:`select` — the stable way to
        compare results across generations and evaluators."""
        return [node.node_id for node in self.select(xpath)]

    def release(self) -> None:
        with self._lock:
            if self._released:
                return
            self._released = True
        self.document._unpin(self.generation)

    def __enter__(self) -> "PinnedSnapshot":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.release()
        return False

    def __repr__(self) -> str:
        state = "released" if self._released else "pinned"
        return f"<PinnedSnapshot gen={self.generation} {state}>"


class ConcurrentDocument:
    """Snapshot-isolated reads and O(delta) write publishes over one
    labeling."""

    def __init__(
        self,
        tree: Optional[XmlTree] = None,
        labeling: Optional[Labeling] = None,
        scheme: str = "ruid2",
        registry: Optional[MetricsRegistry] = None,
        tracer=None,
        plan_cache_size: int = PLAN_CACHE_SIZE,
        delta_chain_limit: int = DELTA_CHAIN_LIMIT,
        wal=None,
        **scheme_options,
    ):
        if labeling is None:
            if tree is None:
                raise ValueError("need a tree or a prebuilt labeling")
            labeling = get_scheme(scheme, **scheme_options).build(tree)
        self.labeling = labeling
        self.tree = labeling.tree
        self.lock = ReadWriteLock()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.stats = QueryStats()
        #: optional write-ahead log: every published generation appends
        #: a logical commit (group commit coalesces the syncs), outside
        #: the RW write lock so the durability wait never blocks readers
        self.wal = wal
        #: generation → built view; guarded by _views_lock
        self._views: Dict[int, AnyView] = {}
        #: generation → shared evaluator for that view; same guard
        self._evaluators: Dict[int, object] = {}
        self._views_lock = threading.Lock()
        self._reclaimer = EpochReclaimer(self._drop_view)
        self._delta_chain_limit = max(0, delta_chain_limit)
        self._snapshot_builds_full = 0
        self._snapshot_builds_delta = 0
        self._snapshot_compactions = 0
        self._delta_fallbacks = 0
        self._snapshots_reclaimed = 0
        self._parallel_chunks = 0
        self._build_full_ns = Histogram("concurrent.snapshot_build_full_ns")
        self._build_delta_ns = Histogram("concurrent.snapshot_build_delta_ns")
        # area-scoped writer admission (enable_area_locks)
        self._area_mgr: Optional[AreaLockManager] = None
        self._area_plan_rank: Optional[Dict[int, int]] = None
        self._area_plan_end: Optional[Dict[int, int]] = None
        self._area_generations: Dict[str, int] = {}
        self._compiled: "OrderedDict[str, object]" = OrderedDict()
        self._compile_lock = threading.Lock()
        self._plan_cache_size = max(1, plan_cache_size)
        self.metrics.register_source("concurrent", self.stats_snapshot)
        self.stats.bind(self.metrics, "concurrent.query")

    # ------------------------------------------------------------------
    # Reader side
    # ------------------------------------------------------------------
    def pin(self) -> PinnedSnapshot:
        """Pin the current generation; evaluation happens lock-free
        against the returned snapshot."""
        self.lock.acquire_read()
        try:
            generation = self.labeling.generation
            view = self._view_for(generation)
            self._reclaimer.pin(generation)
        finally:
            self.lock.release_read()
        return PinnedSnapshot(self, view)

    def _view_for(self, generation: int) -> AnyView:
        with self._views_lock:
            view = self._views.get(generation)
            if view is not None:
                return view
        return self._build_full_view()

    def _build_full_view(self) -> StructuralView:
        """O(n) full snapshot of the current generation — the lazy
        first-pin build, the delta-capture fallback, and the chain
        compaction fold all land here."""
        with self.tracer.span(
            "concurrent.snapshot_build", generation=self.labeling.generation
        ):
            started = time.perf_counter_ns()
            built = StructuralView.from_labeling(self.labeling)
            elapsed = time.perf_counter_ns() - started
        with self._views_lock:
            # another reader may have built it while we did; keep one
            view = self._views.setdefault(built.generation, built)
            if view is built:
                self._snapshot_builds_full += 1
                self._build_full_ns.observe(elapsed)
            return view

    def evaluator_for(self, view: AnyView):
        """One shared evaluator per generation, dropped (with its
        candidate caches) when the generation is reclaimed."""
        generation = view.generation
        with self._views_lock:
            evaluator = self._evaluators.get(generation)
        if evaluator is not None:
            return evaluator
        if isinstance(view, StructuralView):
            built = SnapshotEvaluator(view, stats=self.stats)
        else:
            built = StoreEvaluator(view, stats=self.stats)
        with self._views_lock:
            return self._evaluators.setdefault(generation, built)

    def _unpin(self, generation: int) -> None:
        self._reclaimer.unpin(generation)

    def select(self, xpath: str, context: Optional[XmlNode] = None) -> List[XmlNode]:
        """One-shot snapshot query (pin, evaluate, unpin)."""
        with self.pin() as snap:
            return snap.select(xpath, context)

    # ------------------------------------------------------------------
    # Writer side
    # ------------------------------------------------------------------
    def insert(self, parent: XmlNode, position: int, node: XmlNode) -> RelabelReport:
        """Insert *node* and publish the new generation as a delta
        view (O(delta)) when a base view exists and the chain has
        room; otherwise fall back to the O(n) rebuild (compaction) or
        to lazy building (no readers)."""
        with self._area_scope_for(parent) as areas:
            with self.write_locked():
                base = self._current_view()
                report = self.labeling.insert(parent, position, node)
                edit = None
                if self._delta_eligible(base):
                    try:
                        edit = capture_insert(base, node)
                    except DeltaCaptureError:
                        self._count_fallback()
                self._publish_after_write(base, edit, areas)
            self._log_commit()
        return report

    def delete(self, node: XmlNode) -> RelabelReport:
        """Delete *node*'s subtree; same publish discipline as
        :meth:`insert`, with the interval captured before the splice
        and the parent's child list after it."""
        with self._area_scope_for(node) as areas:
            with self.write_locked():
                base = self._current_view()
                edit = None
                parent = node.parent
                if self._delta_eligible(base):
                    try:
                        edit = capture_delete(base, node)
                    except DeltaCaptureError:
                        self._count_fallback()
                report = self.labeling.delete(node)
                if edit is not None:
                    finish_delete(edit, parent)
                self._publish_after_write(base, edit, areas)
            self._log_commit()
        return report

    def reenumerate(self, keep_globals: bool = True) -> bool:
        """Force a fresh enumeration (2-level rUID only). Relabeling
        rewrites labels wholesale, so no delta is published — the next
        pin rebuilds in full."""
        core = getattr(self.labeling, "core", None)
        reenumerate = getattr(core, "reenumerate", None)
        if reenumerate is None:
            raise NumberingError(
                f"{self.labeling.scheme_name} does not support reenumeration"
            )
        with self.write_locked():
            return reenumerate(keep_globals=keep_globals)

    def write_locked(self):
        """Writer-side context: exclusive access, then retire the
        views the mutation superseded."""
        return _WriterContext(self)

    # -- delta publish --------------------------------------------------
    def _current_view(self) -> Optional[AnyView]:
        """The already-built view of the pre-mutation generation, or
        None when no reader ever materialised one (write-only
        workloads never pay for publishes)."""
        with self._views_lock:
            return self._views.get(self.labeling.generation)

    def _delta_eligible(self, base: Optional[AnyView]) -> bool:
        return (
            base is not None
            and getattr(base, "chain_depth", 0) < self._delta_chain_limit
        )

    def _count_fallback(self) -> None:
        with self._views_lock:
            self._delta_fallbacks += 1

    def _publish_after_write(
        self,
        base: Optional[AnyView],
        edit,
        areas: Sequence[str],
    ) -> None:
        """Make the post-mutation generation visible: a chained delta
        when one was captured, a full rebuild when the chain is due for
        compaction or the capture fell back, nothing when no reader
        has a view to chain from."""
        new_generation = self.labeling.generation
        if base is None or new_generation == base.generation:
            return
        if edit is not None:
            started = time.perf_counter_ns()
            built = DeltaView(base, new_generation, edit, areas=tuple(areas))
            elapsed = time.perf_counter_ns() - started
            with self._views_lock:
                view = self._views.setdefault(new_generation, built)
                if view is built:
                    self._snapshot_builds_delta += 1
                    self._build_delta_ns.observe(elapsed)
        else:
            if getattr(base, "chain_depth", 0) >= self._delta_chain_limit:
                with self._views_lock:
                    self._snapshot_compactions += 1
            self._build_full_view()
        if areas:
            with self._views_lock:
                for shard_id in areas:
                    self._area_generations[shard_id] = new_generation

    def _retire_stale(self) -> None:
        current = self.labeling.generation
        with self._views_lock:
            stale = [g for g in self._views if g != current]
        for generation in stale:
            self._reclaimer.retire(generation)

    def _drop_view(self, generation: int) -> None:
        with self._views_lock:
            view = self._views.pop(generation, None)
            if view is not None:
                self._snapshots_reclaimed += 1
            evaluator = self._evaluators.pop(generation, None)
        if evaluator is not None:
            evict = getattr(evaluator, "evict_generation", None)
            if evict is not None:
                evict(generation)
        if view is not None:
            release = getattr(view, "release_caches", None)
            if release is not None:
                release()

    # ------------------------------------------------------------------
    # Area-scoped writer admission
    # ------------------------------------------------------------------
    def enable_area_locks(
        self, shard_count: int = 8, planner: str = "auto"
    ) -> AreaLockManager:
        """Install subtree write locks over a shard plan of the current
        generation.

        ``planner='area'`` uses the paper's rUID areas
        (:func:`~repro.serving.shards.area_shards`); ``'blocks'`` uses
        contiguous rank blocks; ``'auto'`` prefers areas and falls back
        to blocks for schemes without a ``global_index``. The plan (and
        the node → interval map behind scope resolution) is frozen at
        the current generation; later edits resolve through their
        nearest planned ancestor, trading concurrency — never
        correctness — as the plan ages.
        """
        view = self._view_for(self.labeling.generation)
        size = view.size()
        shards = None
        if planner in ("auto", "area"):
            try:
                shards = area_shards("doc", self.labeling)
            except (AttributeError, StorageError):
                if planner == "area":
                    raise
        if shards is None:
            shards = rank_block_shards("doc", size, shard_count)
        manager = AreaLockManager(shards, size)
        if isinstance(view, StructuralView):
            plan_rank: Dict[int, int] = view.rank
            plan_end: Dict[int, int] = view.end
        else:
            plan_rank = {}
            plan_end = {}
            for label in view.structural_labels():
                plan_rank[label] = view.rank_of(label)
                plan_end[label] = view.end_of(label)
        self._area_plan_rank = plan_rank
        self._area_plan_end = plan_end
        self._area_mgr = manager
        return manager

    def _area_scope_for(self, node: Optional[XmlNode]):
        """Lock scope of an edit at *node*: the planned rank interval
        of its nearest plan-known ancestor. Without area locks this is
        a no-op scope."""
        manager = self._area_mgr
        if manager is None:
            return contextlib.nullcontext(())
        plan_rank = self._area_plan_rank
        probe = node
        while probe is not None and probe.node_id not in plan_rank:
            probe = probe.parent
        if probe is None:
            low, high = 0, manager.ownership.size - 1
        else:
            low = plan_rank[probe.node_id]
            high = self._area_plan_end[probe.node_id]
        return manager.scoped(low, high)

    def area_generations(self) -> Dict[str, int]:
        """shard_id → last generation whose edit touched that area."""
        with self._views_lock:
            return dict(self._area_generations)

    # ------------------------------------------------------------------
    # WAL group commit
    # ------------------------------------------------------------------
    def _log_commit(self) -> None:
        """Append this write's logical commit — called outside the RW
        write lock (readers proceed) but inside the area scope, so the
        group-commit window coalesces syncs across concurrent
        disjoint-area writers."""
        wal = self.wal
        if wal is None:
            return
        wal.append_commit(b"concurrent-generation:%d" % self.labeling.generation)

    # ------------------------------------------------------------------
    # Shared plan cache
    # ------------------------------------------------------------------
    def compile(self, expression: str):
        """Parse through a lock-guarded LRU shared by all readers."""
        cache = self._compiled
        with self._compile_lock:
            compiled = cache.get(expression)
            if compiled is not None:
                self.stats.count("plan_hits")
                cache.move_to_end(expression)
                return compiled
        self.stats.count("plan_misses")
        compiled = parse_xpath(expression)
        with self._compile_lock:
            existing = cache.get(expression)
            if existing is not None:
                return existing
            cache[expression] = compiled
            if len(cache) > self._plan_cache_size:
                cache.popitem(last=False)
                self.stats.count("plan_evictions")
        return compiled

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _note_chunks(self, count: int) -> None:
        with self._views_lock:
            self._parallel_chunks += count

    def stats_snapshot(self) -> Dict[str, float]:
        """The ``concurrent.*`` pull source."""
        with self._views_lock:
            live = len(self._views)
            builds_full = self._snapshot_builds_full
            builds_delta = self._snapshot_builds_delta
            compactions = self._snapshot_compactions
            fallbacks = self._delta_fallbacks
            reclaimed = self._snapshots_reclaimed
            chunks = self._parallel_chunks
            current = self._views.get(self.labeling.generation)
            chain_depth = getattr(current, "chain_depth", 0) if current else 0
            stamped_areas = len(self._area_generations)
        out: Dict[str, float] = {
            "snapshot_pins": self._reclaimer.total_pins,
            "snapshot_builds": builds_full + builds_delta,
            "snapshot_builds_full": builds_full,
            "snapshot_builds_delta": builds_delta,
            "snapshot_compactions": compactions,
            "delta_fallbacks": fallbacks,
            "delta_chain_depth": chain_depth,
            "snapshot_build_full_ns_mean": self._build_full_ns.mean,
            "snapshot_build_full_ns_p95": self._build_full_ns.percentile(0.95),
            "snapshot_build_delta_ns_mean": self._build_delta_ns.mean,
            "snapshot_build_delta_ns_p95": self._build_delta_ns.percentile(0.95),
            "snapshots_reclaimed": reclaimed,
            "parallel_chunks": chunks,
            "live_snapshots": live,
            "pinned_generations": len(self._reclaimer.pinned_generations()),
            "writer_wait_ns": self.lock.writer_wait_ns,
            "reader_wait_ns": self.lock.reader_wait_ns,
            "write_acquisitions": self.lock.write_acquisitions,
            "read_acquisitions": self.lock.read_acquisitions,
        }
        if self._area_mgr is not None:
            out.update(self._area_mgr.stats_snapshot())
            out["area_generations_stamped"] = stamped_areas
        wal_stats = getattr(self.wal, "wal_stats", None)
        if wal_stats is not None:
            out["wal_commits"] = wal_stats.logical_commits
            out["wal_syncs"] = wal_stats.syncs
            out["wal_batches"] = wal_stats.batch_records
        return out

    def build_histograms(self) -> Tuple[Histogram, Histogram]:
        """(full, delta) publish-cost histograms — the E21 bench's
        ground truth for the O(n) → O(delta) claim."""
        return self._build_full_ns, self._build_delta_ns

    @property
    def generation(self) -> int:
        return self.labeling.generation

    def __repr__(self) -> str:
        return (
            f"<ConcurrentDocument {self.labeling.scheme_name} "
            f"gen={self.labeling.generation} views={len(self._views)}>"
        )


class _WriterContext:
    """Write lock + span + post-mutation retirement."""

    def __init__(self, document: ConcurrentDocument):
        self.document = document
        self._span = None

    def __enter__(self) -> "_WriterContext":
        self.document.lock.acquire_write()
        self._span = self.document.tracer.span("concurrent.write")
        self._span.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        document = self.document
        try:
            self._span.__exit__(exc_type, exc, tb)
            # Successful or not, the labeling's generation is the truth:
            # a failed mutation that bumped it still invalidates views.
            document._retire_stale()
        finally:
            document.lock.release_write()
        return False
