"""Copy-on-write delta snapshots: one edit layered over a frozen view.

A structural update moves every rank at or after the edit point by a
constant: inserting a ``k``-node subtree whose first rank is ``cut``
shifts every survivor rank ``>= cut`` up by ``k``, and deleting the
block ``[cut, cut+k)`` shifts every survivor rank ``>= cut+k`` down by
``k``. Relative document order of the survivors never changes, and
``node_id`` identity is stable across relabeling. :class:`DeltaView`
is that observation made into a :class:`~repro.store.base.NodeStore`:
it answers every protocol question with **rank-shift arithmetic over
the previous generation's frozen view** plus small override tables for
the nodes the edit actually touched — O(delta) to build, never O(n).

What a delta layer stores (everything else delegates to ``base``):

* ``cut``/``shift`` — the splice point and the uniform rank shift;
* explicit rank/end/parent/value tables for the *inserted* subtree;
* subtree-end overrides for the edit point's ancestors (an insert
  grows every enclosing interval by ``k``; a delete needs none — the
  shift formula is already exact for every survivor);
* the deleted ``node_id`` set, excluded from every answer;
* a children override for the one parent whose child list changed;
* a dirty set for ancestors whose XPath string-value changed, each
  recomputed lazily (and memoised) from the new structural interval.

Per-tag and per-kind candidate lists are patched lazily: one bisect
finds the splice position in the base list, and the patched list is
``head + inserted + surviving tail``. Lists for tags the edit never
touched are **shared by reference** with the base view. Memo caches
are built idempotently, so racing readers at worst duplicate work
(the same discipline as ``StructuralView._tag_rank_arrays``).

Deltas chain: a :class:`DeltaView` may itself be the base of the next
generation's delta. Every probe through ``n`` chained layers costs
O(n) dict probes before the terminal :class:`StructuralView` answers,
which is why :class:`~repro.concurrent.document.ConcurrentDocument`
folds a chain into a full rebuild past ``delta_chain_limit``.

Capture runs inside the writer's critical section via
:func:`capture_insert` (after the DOM splice) and
:func:`capture_delete` (around it: ranks before, child lists after).
Any structural surprise raises :class:`DeltaCaptureError` and the
caller falls back to the O(n) rebuild — a delta is an optimisation,
never a correctness requirement.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import UnknownLabelError
from repro.store.base import NodeRecord, NodeStore
from repro.xmltree.node import NodeKind, XmlNode

__all__ = [
    "DeltaCaptureError",
    "TreeEdit",
    "DeltaView",
    "capture_insert",
    "capture_delete",
    "finish_delete",
]


class DeltaCaptureError(Exception):
    """The edit could not be expressed as a single rank splice; the
    caller must fall back to a full snapshot build."""


class TreeEdit:
    """One captured structural edit, in the base view's coordinates.

    ``shift`` is ``+k`` for an insert of ``k`` nodes, ``-k`` for a
    delete; ``cut`` is the first rank of the spliced block. All other
    tables cover only the touched nodes, so the capture is O(delta +
    depth of the edit point).
    """

    __slots__ = (
        "op",
        "cut",
        "shift",
        "ins_ids",
        "ins_rank",
        "ins_end",
        "ins_parent",
        "ins_nodes",
        "ins_children",
        "ins_attr_children",
        "ins_attrs",
        "ins_values",
        "ins_structural",
        "ins_structural_ranks",
        "ins_tag_ids",
        "ins_element",
        "ins_text",
        "ins_comment",
        "gone",
        "gone_tags",
        "gone_has_element",
        "gone_has_text",
        "gone_has_comment",
        "end_overrides",
        "dirty_values",
        "edit_parent",
        "children_override",
        "attr_children_override",
    )

    def __init__(self, op: str, cut: int, shift: int):
        self.op = op
        self.cut = cut
        self.shift = shift
        # inserted-subtree tables (empty for a delete)
        self.ins_ids: Tuple[int, ...] = ()
        self.ins_rank: Dict[int, int] = {}
        self.ins_end: Dict[int, int] = {}
        self.ins_parent: Dict[int, int] = {}
        self.ins_nodes: Dict[int, XmlNode] = {}
        self.ins_children: Dict[int, List[int]] = {}
        self.ins_attr_children: Dict[int, List[int]] = {}
        self.ins_attrs: Dict[int, Tuple[Tuple[str, str], ...]] = {}
        self.ins_values: Dict[int, str] = {}
        self.ins_structural: List[int] = []
        self.ins_structural_ranks = array("q")
        self.ins_tag_ids: Dict[str, List[int]] = {}
        self.ins_element: List[int] = []
        self.ins_text: List[int] = []
        self.ins_comment: List[int] = []
        # deleted-subtree tables (empty for an insert)
        self.gone: FrozenSet[int] = frozenset()
        self.gone_tags: FrozenSet[str] = frozenset()
        self.gone_has_element = False
        self.gone_has_text = False
        self.gone_has_comment = False
        # touched survivors
        self.end_overrides: Dict[int, int] = {}
        self.dirty_values: FrozenSet[int] = frozenset()
        self.edit_parent: Optional[int] = None
        self.children_override: Dict[int, List[int]] = {}
        self.attr_children_override: Dict[int, List[int]] = {}


def _capture_subtree(edit: TreeEdit, root: XmlNode) -> None:
    """Rank/end/value tables for the inserted subtree, DFS from its
    root. Ranks are assigned in preorder starting at ``edit.cut``; an
    element's string-value is the join of its subtree's ELEMENT/TEXT
    text contributions, mirroring ``StructuralView.from_labeling``."""
    cut = edit.cut
    counter = cut
    contribs: List[str] = []
    stack: List[Tuple[XmlNode, bool]] = [(root, False)]
    while stack:
        node, done = stack.pop()
        nid = node.node_id
        if done:
            edit.ins_end[nid] = counter - 1
            continue
        edit.ins_rank[nid] = counter
        counter += 1
        stack.append((node, True))
        edit.ins_nodes[nid] = node
        kind = node.kind
        if kind is NodeKind.ATTRIBUTE:
            contribs.append("")
        else:
            edit.ins_structural.append(nid)
            edit.ins_structural_ranks.append(edit.ins_rank[nid])
            if kind is NodeKind.ELEMENT:
                edit.ins_element.append(nid)
                edit.ins_tag_ids.setdefault(node.tag, []).append(nid)
            elif kind is NodeKind.TEXT:
                edit.ins_text.append(nid)
            elif kind is NodeKind.COMMENT:
                edit.ins_comment.append(nid)
            contribs.append(
                node.text
                if kind in (NodeKind.TEXT, NodeKind.ELEMENT) and node.text
                else ""
            )
        if kind is NodeKind.ELEMENT and node.attributes:
            edit.ins_attrs[nid] = tuple(sorted(node.attributes.items()))
        structural_kids: List[int] = []
        attr_kids: List[int] = []
        for child in node.children:
            if child.kind is NodeKind.ATTRIBUTE:
                attr_kids.append(child.node_id)
            else:
                structural_kids.append(child.node_id)
            edit.ins_parent[child.node_id] = nid
        edit.ins_children[nid] = structural_kids
        edit.ins_attr_children[nid] = attr_kids
        for child in reversed(node.children):
            stack.append((child, False))
    # DFS order above interleaves; rebuild the preorder id tuple and
    # the string-values from the rank tables (ranks are authoritative).
    by_rank = sorted(edit.ins_rank, key=edit.ins_rank.__getitem__)
    edit.ins_ids = tuple(by_rank)
    for nid in by_rank:
        node = edit.ins_nodes[nid]
        if node.kind in (NodeKind.TEXT, NodeKind.ATTRIBUTE, NodeKind.COMMENT):
            edit.ins_values[nid] = node.text or ""
        else:
            lo = edit.ins_rank[nid] - cut
            hi = edit.ins_end[nid] - cut
            edit.ins_values[nid] = "".join(contribs[lo : hi + 1])


def _split_children(parent: XmlNode) -> Tuple[List[int], List[int]]:
    structural: List[int] = []
    attrs: List[int] = []
    for child in parent.children:
        if child.kind is NodeKind.ATTRIBUTE:
            attrs.append(child.node_id)
        else:
            structural.append(child.node_id)
    return structural, attrs


def _ancestor_tables(edit: TreeEdit, base: NodeStore, parent: XmlNode) -> None:
    """End overrides (+shift on an insert) and dirty string-values for
    the edit point's ancestor chain, read off the live DOM — ancestors
    themselves are survivors the edit never moved."""
    dirty = set()
    node: Optional[XmlNode] = parent
    while node is not None:
        nid = node.node_id
        if edit.shift > 0:
            edit.end_overrides[nid] = base.end_of(nid) + edit.shift
        dirty.add(nid)
        node = node.parent
    edit.dirty_values = frozenset(dirty)


def capture_insert(base: NodeStore, node: XmlNode) -> TreeEdit:
    """Capture the insert of *node* (already spliced into the DOM)
    against *base*, the frozen view of the pre-edit generation."""
    parent = node.parent
    if parent is None:
        raise DeltaCaptureError("inserted node has no parent")
    siblings = parent.children
    index = next((i for i, c in enumerate(siblings) if c is node), None)
    if index is None:
        raise DeltaCaptureError("inserted node not among its parent's children")
    try:
        if index + 1 < len(siblings):
            cut = base.rank_of(siblings[index + 1].node_id)
        else:
            cut = base.end_of(parent.node_id) + 1
    except UnknownLabelError as exc:
        raise DeltaCaptureError(str(exc)) from None
    edit = TreeEdit("insert", cut, 0)
    _capture_subtree(edit, node)
    edit.ins_parent[node.node_id] = parent.node_id
    edit.shift = len(edit.ins_ids)
    _ancestor_tables(edit, base, parent)
    edit.edit_parent = parent.node_id
    structural, attrs = _split_children(parent)
    edit.children_override[parent.node_id] = structural
    edit.attr_children_override[parent.node_id] = attrs
    return edit


def capture_delete(base: NodeStore, node: XmlNode) -> TreeEdit:
    """Capture the delete of *node*'s subtree **before** the DOM
    splice; call :func:`finish_delete` after it."""
    parent = node.parent
    if parent is None:
        raise DeltaCaptureError("cannot delta-capture a root delete")
    try:
        cut = base.rank_of(node.node_id)
        end = base.end_of(node.node_id)
    except UnknownLabelError as exc:
        raise DeltaCaptureError(str(exc)) from None
    removed = list(node.iter_subtree())
    if end - cut + 1 != len(removed):
        raise DeltaCaptureError(
            f"subtree interval [{cut}, {end}] does not match "
            f"{len(removed)} live nodes"
        )
    edit = TreeEdit("delete", cut, -len(removed))
    edit.gone = frozenset(n.node_id for n in removed)
    edit.gone_tags = frozenset(
        n.tag for n in removed if n.kind is NodeKind.ELEMENT
    )
    edit.gone_has_element = any(n.kind is NodeKind.ELEMENT for n in removed)
    edit.gone_has_text = any(n.kind is NodeKind.TEXT for n in removed)
    edit.gone_has_comment = any(n.kind is NodeKind.COMMENT for n in removed)
    _ancestor_tables(edit, base, parent)
    edit.edit_parent = parent.node_id
    return edit


def finish_delete(edit: TreeEdit, parent: XmlNode) -> TreeEdit:
    """Record the edit parent's post-splice child lists."""
    structural, attrs = _split_children(parent)
    edit.children_override[parent.node_id] = structural
    edit.attr_children_override[parent.node_id] = attrs
    return edit


class _LazyOrder:
    """``node_id → rank`` mapping computed on demand.

    ``BaseEvaluator.sort_nodes`` only calls ``get`` and ``len``;
    materialising a full dict per generation would be the O(n) cost
    the delta path exists to avoid.
    """

    __slots__ = ("_view",)

    def __init__(self, view: "DeltaView"):
        self._view = view

    def get(self, node_id: int, default=None):
        try:
            return self._view.rank_of(node_id)
        except UnknownLabelError:
            return default

    def __getitem__(self, node_id: int) -> int:
        try:
            return self._view.rank_of(node_id)
        except UnknownLabelError:
            raise KeyError(node_id) from None

    def __contains__(self, node_id: int) -> bool:
        return self.get(node_id) is not None

    def __len__(self) -> int:
        return self._view.size()


class DeltaView(NodeStore):
    """One generation as a delta over the previous generation's view.

    Implements the full NodeStore protocol (labels are ``node_id``
    ints, like :class:`StructuralView`); see the module docstring for
    the representation. ``base`` may be a :class:`StructuralView` or
    another :class:`DeltaView` — ``chain_depth`` counts the layers to
    the terminal full view.
    """

    store_kind = "delta"
    supports_batched = True

    __slots__ = (
        "generation",
        "scheme_name",
        "base",
        "edit",
        "chain_depth",
        "areas",
        "_cut",
        "_shift",
        "_tag_labels",
        "_tag_rank_arrays",
        "_kind_labels",
        "_value_memo",
        "_order",
    )

    def __init__(
        self,
        base: NodeStore,
        generation: int,
        edit: TreeEdit,
        areas: Tuple[str, ...] = (),
    ):
        super().__init__()
        self.base = base
        self.generation = generation
        self.scheme_name = base.scheme_name
        self.edit = edit
        self.chain_depth = getattr(base, "chain_depth", 0) + 1
        #: area-lock shard ids this generation's edit touched
        self.areas = areas
        self._cut = edit.cut
        self._shift = edit.shift
        # lazy memo caches; idempotent builds, benign GIL races
        self._tag_labels: Dict[str, List[int]] = {}
        self._tag_rank_arrays: Dict[str, array] = {}
        self._kind_labels: Dict[str, List[int]] = {}
        self._value_memo: Dict[int, str] = {}
        self._order: Optional[_LazyOrder] = None

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def size(self) -> int:
        return self.base.size() + self._shift

    def root_label(self) -> int:
        return self.base.root_label()

    # ------------------------------------------------------------------
    # rank / interval arithmetic
    # ------------------------------------------------------------------
    def rank_of(self, label: int) -> int:
        rank = self.edit.ins_rank.get(label)
        if rank is not None:
            return rank
        if label in self.edit.gone:
            raise UnknownLabelError(f"node id {label!r} was deleted")
        base_rank = self.base.rank_of(label)
        if base_rank < self._cut:
            return base_rank
        return base_rank + self._shift

    def end_of(self, label: int) -> int:
        over = self.edit.end_overrides.get(label)
        if over is not None:
            return over
        end = self.edit.ins_end.get(label)
        if end is not None:
            return end
        if label in self.edit.gone:
            raise UnknownLabelError(f"node id {label!r} was deleted")
        base_end = self.base.end_of(label)
        if base_end < self._cut:
            return base_end
        return base_end + self._shift

    def label_at(self, rank: int) -> int:
        if not 0 <= rank < self.size():
            raise UnknownLabelError(f"no node at rank {rank}")
        cut = self._cut
        if rank < cut:
            return self.base.label_at(rank)
        shift = self._shift
        if shift > 0:
            if rank < cut + shift:
                return self.edit.ins_ids[rank - cut]
            return self.base.label_at(rank - shift)
        return self.base.label_at(rank - shift)  # shift < 0: skip the hole

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def parent_of(self, label: int) -> Optional[int]:
        self.stats.parent_hops += 1
        parent = self.edit.ins_parent.get(label)
        if parent is not None:
            return parent
        if label in self.edit.gone:
            raise UnknownLabelError(f"node id {label!r} was deleted")
        return self.base.parent_of(label)

    def children_of(self, label: int) -> List[int]:
        override = self.edit.children_override.get(label)
        if override is not None:
            return override
        kids = self.edit.ins_children.get(label)
        if kids is not None:
            return kids
        if label in self.edit.gone:
            raise UnknownLabelError(f"node id {label!r} was deleted")
        return self.base.children_of(label)

    # ------------------------------------------------------------------
    # record fetch
    # ------------------------------------------------------------------
    def _node_raw(self, label: int) -> XmlNode:
        node = self.edit.ins_nodes.get(label)
        if node is not None:
            return node
        if label in self.edit.gone:
            raise UnknownLabelError(f"node id {label!r} was deleted")
        base = self.base
        raw = getattr(base, "_node_raw", None)
        if raw is not None:
            return raw(label)
        return base.node_by_id[label]  # terminal StructuralView

    def record(self, label: int) -> NodeRecord:
        self.stats.fetches += 1
        node = self._node_raw(label)
        return NodeRecord(label, node.tag, node.kind, node.text)

    def node_for(self, label: int) -> XmlNode:
        self.stats.fetches += 1
        return self._node_raw(label)

    def label_for(self, node: XmlNode) -> int:
        nid = node.node_id
        if nid in self.edit.ins_nodes:
            return nid
        if nid in self.edit.gone:
            raise UnknownLabelError(f"node {node!r} was deleted")
        return self.base.label_for(node)

    # ------------------------------------------------------------------
    # candidate enumeration: lazily patched lists
    # ------------------------------------------------------------------
    def _patched(self, base_list: List[int], inserted: Sequence[int]) -> List[int]:
        """``head + inserted + surviving tail`` around the splice.

        *base_list* is in base-rank order; every entry at base rank >=
        ``cut`` lands after the spliced block in the new order, so one
        bisect on the base ranks places the splice."""
        base_rank = self.base.rank_of
        split = bisect_left(base_list, self._cut, key=base_rank)
        head = base_list[:split]
        gone = self.edit.gone
        if gone:
            tail = [lb for lb in base_list[split:] if lb not in gone]
        else:
            tail = base_list[split:]
        if inserted:
            return head + list(inserted) + tail
        return head + tail

    def labels_with_tag(self, tag: str) -> List[int]:
        self.stats.tag_lookups += 1
        cached = self._tag_labels.get(tag)
        if cached is not None:
            return cached
        inserted = self.edit.ins_tag_ids.get(tag, ())
        base_list = self.base.labels_with_tag(tag)
        if not inserted and tag not in self.edit.gone_tags:
            result = base_list  # untouched tag: share the base list
        else:
            result = self._patched(base_list, inserted)
        self._tag_labels[tag] = result
        return result

    def _kind_list(self, key: str, base_list: List[int],
                   inserted: Sequence[int], touched_by_delete: bool) -> List[int]:
        cached = self._kind_labels.get(key)
        if cached is not None:
            return cached
        if not inserted and not touched_by_delete:
            result = base_list
        else:
            result = self._patched(base_list, inserted)
        self._kind_labels[key] = result
        return result

    def element_labels(self) -> List[int]:
        return self._kind_list(
            "element", self.base.element_labels(),
            self.edit.ins_element, self.edit.gone_has_element,
        )

    def text_labels(self) -> List[int]:
        return self._kind_list(
            "text", self.base.text_labels(),
            self.edit.ins_text, self.edit.gone_has_text,
        )

    def comment_labels(self) -> List[int]:
        return self._kind_list(
            "comment", self.base.comment_labels(),
            self.edit.ins_comment, self.edit.gone_has_comment,
        )

    def structural_labels(self) -> List[int]:
        return self._kind_list(
            "structural", self.base.structural_labels(),
            self.edit.ins_structural, bool(self.edit.gone),
        )

    def tag_ranks(self, tag: str) -> Sequence[int]:
        self.stats.columnar_tag_scans += 1
        cached = self._tag_rank_arrays.get(tag)
        if cached is None:
            rank_of = self.rank_of
            cached = array("q", (rank_of(lb) for lb in self.labels_with_tag(tag)))
            self._tag_rank_arrays[tag] = cached
        return cached

    # ------------------------------------------------------------------
    # interval scans
    # ------------------------------------------------------------------
    def structural_labels_between(self, low: int, high: int) -> List[int]:
        """Structural labels with new-coordinate rank in ``[low, high]``,
        document order: up to two base sub-intervals composed around
        the spliced block."""
        if low > high:
            return []
        cut = self._cut
        shift = self._shift
        base = self.base
        parts: List[int] = []
        if low < cut:
            parts.extend(base.structural_labels_between(low, min(high, cut - 1)))
        if shift > 0:
            block_low = max(low, cut)
            block_high = min(high, cut + shift - 1)
            if block_low <= block_high:
                ranks = self.edit.ins_structural_ranks
                i = bisect_left(ranks, block_low)
                j = bisect_right(ranks, block_high)
                parts.extend(self.edit.ins_structural[i:j])
            if high >= cut + shift:
                parts.extend(
                    base.structural_labels_between(max(low - shift, cut), high - shift)
                )
        elif high >= cut:
            parts.extend(
                base.structural_labels_between(max(low, cut) - shift, high - shift)
            )
        return parts

    def descendant_labels(self, label: int, or_self: bool = False) -> List[int]:
        self.stats.columnar_slices += 1
        low = self.rank_of(label) + (0 if or_self else 1)
        return self.structural_labels_between(low, self.end_of(label))

    # ------------------------------------------------------------------
    # values
    # ------------------------------------------------------------------
    def attributes_of(self, label: int) -> Tuple[Tuple[str, str], ...]:
        attrs = self.edit.ins_attrs.get(label)
        if attrs is not None:
            return attrs
        if label in self.edit.ins_nodes:
            return ()
        if label in self.edit.gone:
            raise UnknownLabelError(f"node id {label!r} was deleted")
        return self.base.attributes_of(label)

    def attribute_labels(self, label: int) -> List[int]:
        override = self.edit.attr_children_override.get(label)
        if override is not None:
            return override
        kids = self.edit.ins_attr_children.get(label)
        if kids is not None:
            return kids
        if label in self.edit.gone:
            raise UnknownLabelError(f"node id {label!r} was deleted")
        return self.base.attribute_labels(label)

    def string_value(self, label: int) -> str:
        value = self.edit.ins_values.get(label)
        if value is not None:
            return value
        if label in self.edit.gone:
            raise UnknownLabelError(f"node id {label!r} was deleted")
        if label not in self.edit.dirty_values:
            return self.base.string_value(label)
        value = self._value_memo.get(label)
        if value is None:
            # the edit changed this ancestor's subtree: re-join the
            # text contributions of its (new) structural interval
            parts: List[str] = []
            for member in self.structural_labels_between(
                self.rank_of(label), self.end_of(label)
            ):
                node = self._node_raw(member)
                if node.kind in (NodeKind.ELEMENT, NodeKind.TEXT) and node.text:
                    parts.append(node.text)
            value = "".join(parts)
            self._value_memo[label] = value
        return value

    # ------------------------------------------------------------------
    # evaluation support
    # ------------------------------------------------------------------
    def order_by_id(self) -> "_LazyOrder":
        order = self._order
        if order is None:
            order = self._order = _LazyOrder(self)
        return order

    def release_caches(self) -> None:
        """Drop the memo caches (reclaim hook): a mid-chain view keeps
        serving newer layers through its arithmetic, but nobody reads
        its candidate lists directly any more."""
        self._tag_labels = {}
        self._tag_rank_arrays = {}
        self._kind_labels = {}
        self._value_memo = {}

    def __repr__(self) -> str:
        return (
            f"<DeltaView {self.scheme_name} gen={self.generation} "
            f"depth={self.chain_depth} {self.edit.op}@{self._cut}"
            f"{self._shift:+d}>"
        )
