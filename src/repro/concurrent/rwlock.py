"""Write-preferring reader–writer lock with wait accounting.

The concurrent access layer has exactly one writer (structural updates
serialise anyway — every scheme relabels in place) and many readers.
A plain mutex would serialise queries; this lock lets any number of
readers proceed together while giving a waiting writer priority, so a
steady stream of readers cannot starve updates.

Waiting time is accounted per role (``writer_wait_ns`` /
``reader_wait_ns``): the concurrent document exports these through the
metrics registry, making reader/writer interference measurable rather
than guessable.

Lock ordering (docs/CONCURRENCY.md): this lock is the outermost lock
of the subsystem — never acquire it while holding a snapshot-cache,
reclaimer or stats lock. It is not reentrant in either role.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import perf_counter_ns
from typing import Iterator


class ReadWriteLock:
    """Many readers or one writer; waiting writers block new readers."""

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0
        #: cumulative nanoseconds spent blocked, per role (read these
        #: under no particular lock — they are monitoring counters)
        self.writer_wait_ns = 0
        self.reader_wait_ns = 0
        self.read_acquisitions = 0
        self.write_acquisitions = 0

    # ------------------------------------------------------------------
    def acquire_read(self) -> None:
        start = perf_counter_ns()
        with self._cond:
            # A waiting writer bars new readers (write preference):
            # without this, 8 readers re-acquiring in a loop would keep
            # ``_readers`` above zero forever and starve the writer.
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
            self.read_acquisitions += 1
            self.reader_wait_ns += perf_counter_ns() - start

    def release_read(self) -> None:
        with self._cond:
            if self._readers <= 0:
                raise RuntimeError("release_read without a matching acquire_read")
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        start = perf_counter_ns()
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
            self.write_acquisitions += 1
            self.writer_wait_ns += perf_counter_ns() - start

    def release_write(self) -> None:
        with self._cond:
            if not self._writer_active:
                raise RuntimeError("release_write without a matching acquire_write")
            self._writer_active = False
            self._cond.notify_all()

    # ------------------------------------------------------------------
    @contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Monitoring counters (cumulative, never reset)."""
        return {
            "reader_wait_ns": self.reader_wait_ns,
            "writer_wait_ns": self.writer_wait_ns,
            "read_acquisitions": self.read_acquisitions,
            "write_acquisitions": self.write_acquisitions,
        }

    def __repr__(self) -> str:
        return (
            f"<ReadWriteLock readers={self._readers} "
            f"writer={self._writer_active} waiting={self._writers_waiting}>"
        )
