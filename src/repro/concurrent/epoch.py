"""Epoch-based reclamation of superseded snapshots.

Every pinned snapshot belongs to one labeling *generation* (the same
counter that invalidates the rank index). A generation's snapshot may
be dropped only once two things are true: a newer generation exists
(the writer *retired* it) and no reader still holds a pin. This module
tracks both conditions with plain refcounts — the single-writer design
needs nothing fancier than that, but the discipline is the same as
classic epoch reclamation: readers advertise the epoch they are in,
and memory is freed only behind the slowest reader.

The reclaim callback runs *outside* the reclaimer's own lock, so it
may take the snapshot-cache lock (see the lock ordering in
docs/CONCURRENCY.md) without risk of inversion.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Set


class EpochReclaimer:
    """Refcounted generation pins with deferred reclamation.

    Parameters
    ----------
    reclaim:
        Called with a generation number once that generation is both
        retired and unpinned; frees whatever the owner cached for it.
    """

    def __init__(self, reclaim: Optional[Callable[[int], None]] = None):
        self._lock = threading.Lock()
        self._pins: Dict[int, int] = {}
        self._retired: Set[int] = set()
        self._reclaim = reclaim
        #: generations actually freed through the callback
        self.reclaimed = 0
        #: total pins ever taken
        self.total_pins = 0

    # ------------------------------------------------------------------
    def pin(self, generation: int) -> None:
        """A reader enters *generation*."""
        with self._lock:
            self._pins[generation] = self._pins.get(generation, 0) + 1
            self.total_pins += 1

    def unpin(self, generation: int) -> None:
        """A reader leaves *generation*; frees it if it was the last
        pin of a retired generation."""
        free = False
        with self._lock:
            count = self._pins.get(generation)
            if not count:
                raise RuntimeError(f"unpin of generation {generation} without a pin")
            if count == 1:
                del self._pins[generation]
                if generation in self._retired:
                    self._retired.discard(generation)
                    free = True
            else:
                self._pins[generation] = count - 1
        if free:
            self._fire(generation)

    def retire(self, generation: int) -> bool:
        """The writer superseded *generation*. Frees it immediately when
        unpinned; otherwise defers to the last :meth:`unpin`. Returns
        True when the generation was freed synchronously."""
        with self._lock:
            if self._pins.get(generation):
                self._retired.add(generation)
                return False
        self._fire(generation)
        return True

    def _fire(self, generation: int) -> None:
        if self._reclaim is not None:
            self._reclaim(generation)
        with self._lock:
            self.reclaimed += 1

    # ------------------------------------------------------------------
    def pin_count(self, generation: int) -> int:
        with self._lock:
            return self._pins.get(generation, 0)

    def pinned_generations(self) -> List[int]:
        with self._lock:
            return sorted(self._pins)

    def pending(self) -> List[int]:
        """Retired generations still kept alive by pins."""
        with self._lock:
            return sorted(self._retired)

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"<EpochReclaimer pinned={sorted(self._pins)} "
                f"pending={sorted(self._retired)} reclaimed={self.reclaimed}>"
            )
