"""Concurrent access layer: snapshot reads, an incremental delta-
publishing write path with area-scoped writer admission, and parallel
query fan-out (docs/CONCURRENCY.md)."""

from repro.concurrent.arealocks import AreaLockManager
from repro.concurrent.database import ConcurrentXmlDatabase
from repro.concurrent.delta import (
    DeltaCaptureError,
    DeltaView,
    TreeEdit,
    capture_delete,
    capture_insert,
    finish_delete,
)
from repro.concurrent.document import (
    DELTA_CHAIN_LIMIT,
    ConcurrentDocument,
    PinnedSnapshot,
)
from repro.concurrent.epoch import EpochReclaimer
from repro.concurrent.parallel import ParallelQueryExecutor
from repro.concurrent.rwlock import ReadWriteLock
from repro.concurrent.snapshot import SnapshotEvaluator, StructuralView

__all__ = [
    "AreaLockManager",
    "ConcurrentDocument",
    "ConcurrentXmlDatabase",
    "DELTA_CHAIN_LIMIT",
    "DeltaCaptureError",
    "DeltaView",
    "EpochReclaimer",
    "ParallelQueryExecutor",
    "PinnedSnapshot",
    "ReadWriteLock",
    "SnapshotEvaluator",
    "StructuralView",
    "TreeEdit",
    "capture_delete",
    "capture_insert",
    "finish_delete",
]
