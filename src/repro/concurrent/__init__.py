"""Concurrent access layer: snapshot reads, a single writer, and
parallel query fan-out (docs/CONCURRENCY.md)."""

from repro.concurrent.database import ConcurrentXmlDatabase
from repro.concurrent.document import ConcurrentDocument, PinnedSnapshot
from repro.concurrent.epoch import EpochReclaimer
from repro.concurrent.parallel import ParallelQueryExecutor
from repro.concurrent.rwlock import ReadWriteLock
from repro.concurrent.snapshot import SnapshotEvaluator, StructuralView

__all__ = [
    "ConcurrentDocument",
    "ConcurrentXmlDatabase",
    "EpochReclaimer",
    "ParallelQueryExecutor",
    "PinnedSnapshot",
    "ReadWriteLock",
    "SnapshotEvaluator",
    "StructuralView",
]
