"""Update and query workload generation (experiments E5, E8).

An update workload is a reproducible sequence of insert/delete
operations positioned by structural policy — the paper's robustness
argument depends on *where* updates land ("the nearer to the root node
the new node is inserted, the larger the scope of the identifier
modification", §1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterator, List, Sequence, Tuple

from repro.errors import ReproError
from repro.xmltree.node import NodeKind, XmlNode
from repro.xmltree.tree import XmlTree


@dataclass(frozen=True)
class UpdateOp:
    """One structural operation, positioned by stable node path.

    Paths are child-ordinal tuples from the root, so the same workload
    replays identically against fresh copies of a tree (node ids are
    not stable across copies; paths are).
    """

    kind: str  # "insert" | "delete"
    path: Tuple[int, ...]  # path to the *parent* (insert) or target (delete)
    position: int = 0  # insert position among the parent's children
    tag: str = "new"

    def locate(self, tree: XmlTree) -> XmlNode:
        node = tree.root
        for ordinal in self.path:
            node = node.children[ordinal]
        return node


def _path_of(node: XmlNode) -> Tuple[int, ...]:
    path: List[int] = []
    current = node
    while current.parent is not None:
        path.append(current.child_position())
        current = current.parent
    return tuple(reversed(path))


@dataclass
class UpdateWorkloadConfig:
    """Shape of an update workload."""

    operations: int = 100
    insert_fraction: float = 0.8
    depth_bias: str = "uniform"  # uniform | shallow | deep
    max_delete_subtree: int = 10  # skip deletes that would remove more nodes


def generate_update_workload(
    tree: XmlTree, config: UpdateWorkloadConfig, seed: int = 0
) -> List[UpdateOp]:
    """Plan a workload against (a copy of) *tree*.

    The plan is computed against a scratch copy so each operation's
    path is valid given all prior operations.
    """
    rng = random.Random(seed)
    scratch = tree.copy()
    ops: List[UpdateOp] = []
    counter = 0
    while len(ops) < config.operations:
        nodes = scratch.nodes()
        candidate = _pick_biased(nodes, config.depth_bias, rng)
        if rng.random() < config.insert_fraction:
            parent = candidate
            position = rng.randint(0, parent.fan_out)
            counter += 1
            op = UpdateOp("insert", _path_of(parent), position, f"new{counter}")
            new_node = XmlNode(op.tag, NodeKind.ELEMENT)
            scratch.insert_node(parent, position, new_node)
        else:
            if candidate is scratch.root:
                continue
            if candidate.subtree_size() > config.max_delete_subtree:
                continue
            op = UpdateOp("delete", _path_of(candidate))
            scratch.delete_subtree(candidate)
        ops.append(op)
    return ops


def _pick_biased(nodes: Sequence[XmlNode], bias: str, rng: random.Random) -> XmlNode:
    if bias == "uniform":
        return nodes[rng.randrange(len(nodes))]
    weighted = sorted(nodes, key=lambda n: n.depth)
    if bias == "shallow":
        # Quadratic bias toward the front (small depth).
        index = int((rng.random() ** 2) * len(weighted))
    elif bias == "deep":
        index = int((1 - rng.random() ** 2) * len(weighted)) - 1
    else:
        raise ReproError(f"unknown depth bias {bias!r}")
    return weighted[max(0, min(index, len(weighted) - 1))]


def apply_workload(
    tree: XmlTree,
    ops: Sequence[UpdateOp],
    insert_hook: Callable[[XmlNode, int, XmlNode], object],
    delete_hook: Callable[[XmlNode], object],
) -> Iterator[object]:
    """Replay *ops* against *tree* through the given hooks.

    The hooks are typically ``labeling.insert`` / ``labeling.delete``;
    each hook's return value (e.g. a RelabelReport) is yielded.
    """
    for op in ops:
        target = op.locate(tree)
        if op.kind == "insert":
            yield insert_hook(target, op.position, XmlNode(op.tag, NodeKind.ELEMENT))
        else:
            yield delete_hook(target)
