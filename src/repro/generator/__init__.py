"""Synthetic workload generators: random trees, canonical shapes,
XMark-like and DBLP-like documents, update workloads."""

from repro.generator.dblp import DBLP_QUERIES, generate_dblp
from repro.generator.random_tree import (
    FanOutDistribution,
    RandomTreeConfig,
    generate_tree,
    random_document,
    random_node,
)
from repro.generator.shapes import (
    comb_tree,
    fig1_tree,
    fig4_tree,
    kary_tree,
    path_tree,
    shape_catalog,
    skewed_tree,
    star_tree,
)
from repro.generator.treebank import TREEBANK_QUERIES, generate_treebank
from repro.generator.workload import (
    UpdateOp,
    UpdateWorkloadConfig,
    apply_workload,
    generate_update_workload,
)
from repro.generator.xmark import XMARK_QUERIES, generate_xmark

__all__ = [
    "DBLP_QUERIES",
    "FanOutDistribution",
    "TREEBANK_QUERIES",
    "RandomTreeConfig",
    "UpdateOp",
    "UpdateWorkloadConfig",
    "XMARK_QUERIES",
    "apply_workload",
    "comb_tree",
    "fig1_tree",
    "fig4_tree",
    "generate_dblp",
    "generate_tree",
    "generate_treebank",
    "generate_update_workload",
    "generate_xmark",
    "kary_tree",
    "path_tree",
    "random_document",
    "random_node",
    "shape_catalog",
    "skewed_tree",
    "star_tree",
]
