"""DBLP-like bibliography document generator.

Bibliographic XML is the *shallow-but-wide* regime: a root with tens
of thousands of flat entry children — the opposite shape from XMark's
nesting, and the worst case for UID's single global fan-out (the root
fan-out becomes k for the whole document).
"""

from __future__ import annotations

import random

from repro.xmltree.node import NodeKind, XmlNode
from repro.xmltree.tree import XmlTree

_AUTHORS = (
    "D. Kha", "M. Yoshikawa", "S. Uemura", "P. Dietz", "Q. Li", "B. Moon",
    "C. Zhang", "J. Naughton", "R. Goldman", "J. Widom", "T. Milo", "D. Suciu",
)
_VENUES = ("VLDB", "SIGMOD", "ICDE", "EDBT", "CIKM", "WISE", "ICDT")
_TOPICS = (
    "XML indexing", "numbering schemes", "path expressions", "query rewriting",
    "semistructured data", "structural joins", "schema evolution",
)


def _element(tag: str, text: str | None = None, **attributes: str) -> XmlNode:
    node = XmlNode(tag, NodeKind.ELEMENT, attributes=attributes or None)
    if text is not None:
        node.append_child(XmlNode("#text", NodeKind.TEXT, text=text))
    return node


def generate_dblp(entries: int = 500, seed: int = 0) -> XmlTree:
    """Generate a bibliography with *entries* flat publication records."""
    rng = random.Random(seed)
    dblp = _element("dblp")
    for index in range(entries):
        kind = "article" if rng.random() < 0.5 else "inproceedings"
        entry = _element(kind, key=f"{kind}/{index}")
        for _ in range(rng.randint(1, 4)):
            entry.append_child(_element("author", rng.choice(_AUTHORS)))
        entry.append_child(
            _element("title", f"On {rng.choice(_TOPICS)} ({index})")
        )
        if kind == "article":
            entry.append_child(_element("journal", f"J. {rng.choice(_VENUES)}"))
            entry.append_child(_element("volume", str(rng.randint(1, 40))))
        else:
            entry.append_child(_element("booktitle", f"Proc. {rng.choice(_VENUES)}"))
        entry.append_child(_element("year", str(rng.randint(1990, 2002))))
        entry.append_child(
            _element("pages", f"{rng.randint(1, 400)}-{rng.randint(401, 800)}")
        )
        dblp.append_child(entry)
    return XmlTree(dblp)


#: representative bibliography queries (experiment E8)
DBLP_QUERIES = (
    "/dblp/article/title",
    "//inproceedings[year > 1999]/title",
    "//article[author='M. Yoshikawa']",
    "//author/following-sibling::title",
    "/dblp/*[year = 2001]",
    "//title/ancestor::dblp",
    "//article[volume > 20]/journal",
)
