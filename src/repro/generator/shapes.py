"""Canonical tree shapes for worst/best-case studies.

Each shape isolates one of the regimes the paper discusses:

* :func:`path_tree` — maximal depth, fan-out 1 ("high degree of
  recursion", observation 1);
* :func:`star_tree` — maximal fan-out, depth 2;
* :func:`comb_tree` — deep spine with per-level leaves: depth *and*
  fan-out 2, the mild mixed case;
* :func:`skewed_tree` — one huge fan-out near the root of a deep
  chain: the UID identifier-explosion adversary (§1: values grow "at
  the exponential rate equal to the maximal fan-out ... in the power
  of the length of the longest path");
* :func:`fig1_tree` / :func:`fig4_tree` — the paper's worked examples.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ReproError
from repro.xmltree.builder import complete_kary_tree
from repro.xmltree.node import NodeKind, XmlNode
from repro.xmltree.tree import XmlTree


def path_tree(length: int, tag: str = "n") -> XmlTree:
    """A chain of *length* nodes (fan-out 1)."""
    if length < 1:
        raise ReproError("length must be >= 1")
    root = XmlNode(tag, NodeKind.ELEMENT)
    node = root
    for _ in range(length - 1):
        child = XmlNode(tag, NodeKind.ELEMENT)
        node.append_child(child)
        node = child
    return XmlTree(root)


def star_tree(leaves: int, tag: str = "n") -> XmlTree:
    """A root with *leaves* children."""
    if leaves < 0:
        raise ReproError("leaves must be >= 0")
    root = XmlNode(tag, NodeKind.ELEMENT)
    for _ in range(leaves):
        root.append_child(XmlNode(tag, NodeKind.ELEMENT))
    return XmlTree(root)


def comb_tree(depth: int, tag: str = "n") -> XmlTree:
    """A spine of *depth* nodes, each with one extra leaf child."""
    if depth < 1:
        raise ReproError("depth must be >= 1")
    root = XmlNode(tag, NodeKind.ELEMENT)
    node = root
    for _ in range(depth - 1):
        leaf = XmlNode(tag, NodeKind.ELEMENT)
        spine = XmlNode(tag, NodeKind.ELEMENT)
        node.append_child(leaf)
        node.append_child(spine)
        node = spine
    return XmlTree(root)


def skewed_tree(depth: int, heavy_fan_out: int, tag: str = "n") -> XmlTree:
    """A deep chain whose root also has *heavy_fan_out* leaf children.

    The original UID must use k = *heavy_fan_out* for the whole tree,
    so identifiers along the chain reach ~``heavy_fan_out ** depth`` —
    astronomically large even though the tree has only
    ``depth + heavy_fan_out`` real nodes.
    """
    if depth < 1 or heavy_fan_out < 1:
        raise ReproError("need depth >= 1 and heavy_fan_out >= 1")
    root = XmlNode(tag, NodeKind.ELEMENT)
    for _ in range(heavy_fan_out):
        root.append_child(XmlNode("leaf", NodeKind.ELEMENT))
    node = root
    for _ in range(depth - 1):
        child = XmlNode(tag, NodeKind.ELEMENT)
        node.append_child(child)
        node = child
    return XmlTree(root)


def kary_tree(fan_out: int, height: int, tag: str = "n") -> XmlTree:
    """Complete k-ary tree (re-export for sweep convenience)."""
    return complete_kary_tree(fan_out, height, tag=tag)


def _node(tag: str, *children: XmlNode) -> XmlNode:
    node = XmlNode(tag, NodeKind.ELEMENT)
    for child in children:
        node.append_child(child)
    return node


def fig1_tree() -> XmlTree:
    """The tree of the paper's Fig. 1 (before insertion), k = 3.

    Real nodes carry their original-UID identifiers as tags. The
    arithmetic pins the topology: with k = 3, node 23's parent is
    ``(23-2)//3+1 = 8`` and nodes 26, 27 are children of 9; nodes 8, 9
    are children of 3; the root has real children 2 and 3 only (the
    third child slot, 4, is virtual — which is why the Fig. 1(b)
    insertion between 2 and 3 fits without overflow, and why the paper
    says a *further* insertion "behind the new node 4" would force a
    whole-tree renumbering).
    """
    n23 = _node("n23")
    n26 = _node("n26")
    n27 = _node("n27")
    n8 = _node("n8", n23)
    n9 = _node("n9", n26, n27)
    n2 = _node("n2")
    n3 = _node("n3", n8, n9)
    root = _node("n1", n2, n3)
    return XmlTree(root)


def fig4_tree() -> XmlTree:
    """A tree shaped like the paper's Fig. 4 example.

    The figure's exact topology is not fully recoverable from the
    scan, but the reproduced properties are pinned by tests: six
    UID-local areas, a frame fan-out κ = 4, and the K table layout of
    Fig. 5 (area-local fan-outs per row). The tree below realises a
    six-area partition with κ = 4 when partitioned at the marked
    nodes (see tests/core/test_paper_figures.py).
    """
    # Root area with four frame children (κ = 4): a2, a3, a4 directly,
    # a5 through the plain node z; a sixth area a6 sits below a2.
    a6 = _node("a6", _node("s"), _node("t"))
    a2 = _node("a2", _node("x", _node("x1"), a6), _node("y"))
    a3 = _node("a3", _node("p", _node("p1"), _node("p2"), _node("p3")))
    a4 = _node("a4")
    a5 = _node("a5", _node("q"))
    plain = _node("z", a5)
    root = _node("r", a2, a3, plain, a4)
    return XmlTree(root)


def shape_catalog(scale: int = 500) -> Dict[str, XmlTree]:
    """Named shapes at a common size scale, for sweeps."""
    return {
        "path": path_tree(scale),
        "star": star_tree(scale - 1),
        "comb": comb_tree(scale // 2),
        "skewed": skewed_tree(max(2, scale // 20), max(2, scale // 2)),
        "binary": kary_tree(2, max(2, scale.bit_length())),
    }
