"""XMark-like auction document generator.

The paper's experiments ran on unnamed "sample XML documents"; XMark's
auction site schema is the community-standard stand-in for data-
centric XML, so the generator synthesises documents with its shape:
``site`` → regions/items, categories, people, open and closed
auctions, with realistic cross-element fan-out disparity and moderate
nesting. Fully deterministic for a given (scale, seed).
"""

from __future__ import annotations

import random
from typing import List

from repro.xmltree.node import NodeKind, XmlNode
from repro.xmltree.tree import XmlTree

_REGIONS = ("africa", "asia", "australia", "europe", "namerica", "samerica")
_FIRST = ("Ada", "Brook", "Chi", "Dana", "Eli", "Fay", "Gur", "Hana", "Ivo", "Jun")
_LAST = ("Ng", "Okafor", "Pei", "Quon", "Ruiz", "Sato", "Tran", "Ueda", "Vik", "Wolf")
_WORDS = (
    "vintage", "rare", "boxed", "signed", "mint", "antique",
    "classic", "limited", "original", "restored",
)
_ITEMS = ("lamp", "desk", "clock", "radio", "camera", "globe", "chair", "atlas")


def _element(tag: str, text: str | None = None, **attributes: str) -> XmlNode:
    node = XmlNode(tag, NodeKind.ELEMENT, attributes=attributes or None)
    if text is not None:
        node.append_child(XmlNode("#text", NodeKind.TEXT, text=text))
    return node


def _description(rng: random.Random) -> XmlNode:
    description = _element("description")
    paragraph = _element(
        "parlist" if rng.random() < 0.3 else "text",
        " ".join(rng.choice(_WORDS) for _ in range(rng.randint(3, 8))),
    )
    description.append_child(paragraph)
    return description


def generate_xmark(scale: float = 0.1, seed: int = 0) -> XmlTree:
    """Generate an auction document; ``scale=1.0`` ≈ 25k nodes."""
    rng = random.Random(seed)
    people_count = max(3, int(255 * scale))
    items_per_region = max(2, int(22 * scale))
    categories_count = max(2, int(10 * scale))
    open_count = max(2, int(120 * scale))
    closed_count = max(2, int(97 * scale))

    site = _element("site")

    regions = _element("regions")
    item_ids: List[str] = []
    for region_name in _REGIONS:
        region = _element(region_name)
        for index in range(items_per_region):
            item_id = f"item{region_name[0]}{index}"
            item_ids.append(item_id)
            item = _element("item", id=item_id)
            item.append_child(
                _element("name", f"{rng.choice(_WORDS)} {rng.choice(_ITEMS)}")
            )
            item.append_child(_description(rng))
            item.append_child(_element("quantity", str(rng.randint(1, 5))))
            if rng.random() < 0.6:
                item.append_child(_element("payment", "Creditcard"))
            region.append_child(item)
        regions.append_child(region)
    site.append_child(regions)

    categories = _element("categories")
    for index in range(categories_count):
        category = _element("category", id=f"category{index}")
        category.append_child(_element("name", f"cat-{rng.choice(_WORDS)}"))
        category.append_child(_description(rng))
        categories.append_child(category)
    site.append_child(categories)

    people = _element("people")
    person_ids: List[str] = []
    for index in range(people_count):
        person_id = f"person{index}"
        person_ids.append(person_id)
        person = _element("person", id=person_id)
        person.append_child(
            _element("name", f"{rng.choice(_FIRST)} {rng.choice(_LAST)}")
        )
        person.append_child(
            _element("emailaddress", f"mailto:{person_id}@example.org")
        )
        if rng.random() < 0.5:
            address = _element("address")
            address.append_child(_element("street", f"{rng.randint(1,99)} Main St"))
            address.append_child(_element("city", rng.choice(_LAST)))
            address.append_child(_element("country", "United States"))
            person.append_child(address)
        if rng.random() < 0.3:
            profile = _element("profile", income=str(rng.randint(20, 120) * 1000))
            for _ in range(rng.randint(1, 3)):
                profile.append_child(
                    _element("interest", category=f"category{rng.randrange(categories_count)}")
                )
            person.append_child(profile)
        people.append_child(person)
    site.append_child(people)

    open_auctions = _element("open_auctions")
    for index in range(open_count):
        auction = _element("open_auction", id=f"open_auction{index}")
        auction.append_child(_element("initial", f"{rng.uniform(1, 200):.2f}"))
        for _ in range(rng.randint(0, 4)):
            bidder = _element("bidder")
            bidder.append_child(
                _element("personref", person=rng.choice(person_ids))
            )
            bidder.append_child(_element("increase", f"{rng.uniform(1, 20):.2f}"))
            auction.append_child(bidder)
        auction.append_child(_element("itemref", item=rng.choice(item_ids)))
        auction.append_child(
            _element("seller", person=rng.choice(person_ids))
        )
        open_auctions.append_child(auction)
    site.append_child(open_auctions)

    closed_auctions = _element("closed_auctions")
    for index in range(closed_count):
        auction = _element("closed_auction")
        auction.append_child(_element("seller", person=rng.choice(person_ids)))
        auction.append_child(_element("buyer", person=rng.choice(person_ids)))
        auction.append_child(_element("itemref", item=rng.choice(item_ids)))
        auction.append_child(_element("price", f"{rng.uniform(5, 500):.2f}"))
        auction.append_child(_element("date", f"{rng.randint(1,28):02d}/{rng.randint(1,12):02d}/2001"))
        closed_auctions.append_child(auction)
    site.append_child(closed_auctions)

    return XmlTree(site)


#: representative XMark-flavoured XPath queries (experiment E8)
XMARK_QUERIES = (
    "/site/people/person/name",
    "//person[profile]/name",
    "//open_auction/bidder/increase",
    "//item[quantity > 2]/name",
    "/site/closed_auctions/closed_auction[price > 100]",
    "//person/address/city",
    "//bidder/preceding-sibling::bidder",
    "//category/ancestor::site",
    "//interest/..",
    "/site/regions/*/item[1]/name",
)
