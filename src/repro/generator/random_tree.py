"""Parametric random XML tree generation.

The paper's motivation turns on tree shape — fan-out disparity,
recursion depth, document size — so the generator exposes those axes
directly. All generation is seeded and deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import ReproError
from repro.xmltree.node import NodeKind, XmlNode
from repro.xmltree.tree import XmlTree

DEFAULT_TAGS = (
    "section",
    "item",
    "entry",
    "record",
    "list",
    "group",
    "node",
    "block",
)


@dataclass
class FanOutDistribution:
    """Distribution of the number of children of an internal node."""

    kind: str = "uniform"  # uniform | geometric | zipf | constant
    low: int = 1
    high: int = 5
    mean: float = 3.0  # geometric parameter (mean children)
    exponent: float = 1.5  # zipf skew
    maximum: int = 50  # zipf cap
    value: int = 3  # constant

    def sample(self, rng: random.Random) -> int:
        if self.kind == "uniform":
            return rng.randint(self.low, self.high)
        if self.kind == "constant":
            return self.value
        if self.kind == "geometric":
            # Mean m => success probability 1/m; at least one child.
            probability = 1.0 / max(1.0, self.mean)
            count = 1
            while rng.random() > probability and count < self.maximum:
                count += 1
            return count
        if self.kind == "zipf":
            # Inverse-CDF sampling over 1..maximum with a power law:
            # heavy skew gives a few huge fan-outs amid many small ones,
            # the identifier-explosion regime of the paper's section 1.
            weights = [1.0 / (rank**self.exponent) for rank in range(1, self.maximum + 1)]
            total = sum(weights)
            point = rng.random() * total
            for rank, weight in enumerate(weights, start=1):
                point -= weight
                if point <= 0:
                    return rank
            return self.maximum
        raise ReproError(f"unknown fan-out distribution {self.kind!r}")


@dataclass
class RandomTreeConfig:
    """Shape parameters for :func:`generate_tree`."""

    node_count: int = 1000
    fan_out: FanOutDistribution = field(default_factory=FanOutDistribution)
    max_depth: Optional[int] = None
    tags: Sequence[str] = DEFAULT_TAGS
    text_probability: float = 0.0  # chance a leaf gets a text child
    attribute_probability: float = 0.0  # chance a node gets an id attribute


def generate_tree(config: RandomTreeConfig, seed: int = 0) -> XmlTree:
    """Grow a random tree breadth-first until the node budget is spent."""
    if config.node_count < 1:
        raise ReproError("node_count must be >= 1")
    rng = random.Random(seed)
    root = XmlNode(config.tags[0], NodeKind.ELEMENT)
    budget = config.node_count - 1
    frontier: List[tuple] = [(root, 0)]
    counter = 0
    while frontier and budget > 0:
        node, depth = frontier.pop(0)
        if config.max_depth is not None and depth + 1 >= config.max_depth:
            continue
        children = min(config.fan_out.sample(rng), budget)
        for _ in range(children):
            counter += 1
            tag = config.tags[rng.randrange(len(config.tags))]
            child = XmlNode(tag, NodeKind.ELEMENT)
            if config.attribute_probability and rng.random() < config.attribute_probability:
                child.attributes["id"] = f"n{counter}"
            node.append_child(child)
            frontier.append((child, depth + 1))
            budget -= 1
            if budget == 0:
                break
    tree = XmlTree(root)
    if config.text_probability:
        _sprinkle_text(tree, config.text_probability, rng)
    return tree


def _sprinkle_text(tree: XmlTree, probability: float, rng: random.Random) -> None:
    words = ("alpha", "beta", "gamma", "delta", "epsilon", "zeta")
    for node in list(tree.preorder()):
        if node.is_leaf and node.kind is NodeKind.ELEMENT and rng.random() < probability:
            content = " ".join(rng.choice(words) for _ in range(rng.randint(1, 4)))
            node.append_child(XmlNode("#text", NodeKind.TEXT, text=content))


def random_document(
    node_count: int = 1000,
    seed: int = 0,
    fanout_kind: str = "uniform",
    **fanout_options,
) -> XmlTree:
    """Convenience wrapper: a random document of ~*node_count* nodes."""
    config = RandomTreeConfig(
        node_count=node_count,
        fan_out=FanOutDistribution(kind=fanout_kind, **fanout_options),
    )
    return generate_tree(config, seed=seed)


def random_node(tree: XmlTree, rng: random.Random, exclude_root: bool = True) -> XmlNode:
    """A uniformly random node of *tree*."""
    nodes = tree.nodes()
    if exclude_root:
        nodes = nodes[1:]
    if not nodes:
        raise ReproError("tree has no eligible nodes")
    return nodes[rng.randrange(len(nodes))]
