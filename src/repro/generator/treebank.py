"""Treebank-like document generator: deep, recursive, text-centric XML.

Linguistic treebanks are the canonical *high-recursion* XML corpora:
parse trees nest the same grammatical categories (S, NP, VP, PP, ...)
to great depth with tiny fan-outs — exactly the regime the paper's
observation 1 says the original UID handles worst and rUID handles
well. The generator grows random parse-like trees from a toy grammar,
deterministically per seed.
"""

from __future__ import annotations

import random

from repro.xmltree.node import NodeKind, XmlNode
from repro.xmltree.tree import XmlTree

# category -> possible expansions (child category sequences)
_GRAMMAR = {
    "S": (("NP", "VP"), ("S", "CC", "S"), ("SBAR", "NP", "VP")),
    "SBAR": (("IN", "S"),),
    "NP": (("DT", "NN"), ("NP", "PP"), ("DT", "JJ", "NN"), ("NN",), ("NP", "SBAR")),
    "VP": (("VB", "NP"), ("VB", "NP", "PP"), ("VB", "SBAR"), ("VB",)),
    "PP": (("IN", "NP"),),
}

_LEXICON = {
    "DT": ("the", "a", "every"),
    "NN": ("parser", "tree", "index", "label", "area", "frame"),
    "JJ": ("recursive", "deep", "structural", "unique"),
    "VB": ("numbers", "splits", "labels", "indexes", "stores"),
    "IN": ("that", "under", "within", "after"),
    "CC": ("and", "but"),
}


def generate_treebank(
    sentences: int = 20,
    max_depth: int = 14,
    seed: int = 0,
    with_text: bool = True,
) -> XmlTree:
    """A corpus of *sentences* random parse trees under one root.

    ``max_depth`` caps the recursion; once reached, non-terminals
    collapse to their shortest expansion so trees terminate.
    """
    rng = random.Random(seed)
    corpus = XmlNode("corpus", NodeKind.ELEMENT)

    def expand(category: str, depth: int) -> XmlNode:
        node = XmlNode(category, NodeKind.ELEMENT)
        if category in _LEXICON:
            if with_text:
                word = rng.choice(_LEXICON[category])
                node.append_child(XmlNode("#text", NodeKind.TEXT, text=word))
            return node
        expansions = _GRAMMAR[category]
        if depth >= max_depth:
            expansion = min(expansions, key=len)
        else:
            expansion = expansions[rng.randrange(len(expansions))]
        for child_category in expansion:
            node.append_child(expand(child_category, depth + 1))
        return node

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, max_depth * 10 + 1000))
    try:
        for _ in range(sentences):
            corpus.append_child(expand("S", 0))
    finally:
        sys.setrecursionlimit(old_limit)
    return XmlTree(corpus)


#: representative treebank queries (recursion-heavy axes)
TREEBANK_QUERIES = (
    "//NP//NP",
    "//S/VP/NP",
    "//VP[NP]",
    "//NN/ancestor::NP",
    "//PP/preceding-sibling::*",
    "//SBAR/descendant::VB",
)
