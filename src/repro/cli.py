"""Command-line interface.

::

    python -m repro stats DOC.xml
    python -m repro label DOC.xml --scheme ruid2 --max-area-size 32
    python -m repro query DOC.xml "//person[age > 18]/name" --values
    python -m repro query DOC.xml "//name" --deadline-ms 250
    python -m repro explain DOC.xml "//person/name" --analyze
    python -m repro metrics DOC.xml "//person" "//name" --repeat 3
    python -m repro concurrent DOC.xml "//person" "//name" --threads 4
    python -m repro chaos DOC.xml "//name" --transient 0.3 --repeat 5
    python -m repro serving DOC.xml "//name" --sites 4 --transient 0.3
    python -m repro fragment DOC.xml "//name" --descendants
    python -m repro update-bench DOC.xml --ops 50
    python -m repro save-params DOC.xml params.bin --directory

Every command parses the document with the library's own parser and
prints plain-text tables (see ``--help`` per command).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import (
    RELABEL_HEADERS,
    format_table,
    run_workload_per_scheme,
)
from repro.baselines import get_scheme, scheme_names
from repro.core import Ruid2Scheme, SizeCapPartitioner
from repro.core.document import LabeledDocument
from repro.core.persist import dump_parameters
from repro.errors import ReproError
from repro.generator import UpdateWorkloadConfig, generate_update_workload
from repro.obs import MetricsRegistry, SlowQueryLog, Tracer
from repro.query import XPathEngine
from repro.xmltree import compute_stats, parse_file, serialize


def _load(path: str):
    return parse_file(path)


def cmd_stats(args: argparse.Namespace) -> int:
    tree = _load(args.file)
    stats = compute_stats(tree)
    rows = [(key, value) for key, value in stats.as_row().items()]
    rows += [
        ("elements", stats.element_count),
        ("text nodes", stats.text_count),
        ("leaves", stats.leaf_count),
        ("level widths", " ".join(map(str, stats.level_widths[:12]))
         + ("..." if len(stats.level_widths) > 12 else "")),
    ]
    print(format_table(("metric", "value"), rows, title=args.file))
    return 0


def cmd_label(args: argparse.Namespace) -> int:
    tree = _load(args.file)
    scheme = get_scheme(
        args.scheme,
        **({"max_area_size": args.max_area_size} if args.scheme == "ruid2" else {}),
    )
    labeling = scheme.build(tree)
    rows = []
    for index, node in enumerate(tree.preorder()):
        if index >= args.limit:
            rows.append(("...", f"({tree.size() - args.limit} more)"))
            break
        rows.append((str(labeling.label_of(node)), f"<{node.tag}>"))
    print(format_table(("label", "node"), rows, title=f"{args.scheme} labels"))
    if args.scheme == "ruid2":
        core = labeling.core
        print(f"\nkappa = {core.kappa}; table K ({core.area_count()} areas):")
        k_rows = [row.as_tuple() for row in core.ktable]
        print(format_table(("global", "local_of_root", "fan_out"), k_rows[: args.limit]))
    print(f"\nmax label bits: {labeling.max_label_bits()}")
    return 0


def _make_store(tree, kind: str):
    """A NodeStore over *tree*: live labeling (memory), a shredded
    in-memory database queried through the buffer pool (paged), or an
    XPath-Accelerator accel table with SQL axis pushdown (sqlite)."""
    labeling = Ruid2Scheme().build(tree)
    if kind == "memory":
        from repro.store import MemoryNodeStore

        return MemoryNodeStore(labeling)
    if kind == "sqlite":
        from repro.store import SqliteNodeStore

        return SqliteNodeStore.shred("doc", labeling)
    from repro.storage.database import XmlDatabase
    from repro.store import PagedNodeStore

    database = XmlDatabase()
    document = database.store_document("doc", tree, labeling)
    return PagedNodeStore(document)


def cmd_query(args: argparse.Namespace) -> int:
    tree = _load(args.file)
    store = getattr(args, "store", None)
    deadline = None
    if getattr(args, "deadline_ms", None):
        from repro.resilience import Deadline

        deadline = Deadline(args.deadline_ms)
    if store is None:
        engine = XPathEngine(tree)
        nodes = engine.select(args.xpath, args.strategy, deadline=deadline)
        if args.values:
            for value in (n.text_content() for n in nodes):
                print(value)
        else:
            for node in nodes:
                print(node.path())
        print(f"-- {len(nodes)} node(s) [{args.strategy}]", file=sys.stderr)
        return 0
    node_store = _make_store(tree, store)
    engine = XPathEngine(tree, store=node_store)
    nodes = engine.select(args.xpath, "store", deadline=deadline)
    for node in nodes:
        try:
            label = node_store.label_for(node)
        except ReproError:  # transient node (synthesized attribute)
            print(node.text if args.values else node.path())
            continue
        if args.values:
            print(node_store.string_value(label))
        else:
            print(node_store.path_of(label))
    print(f"-- {len(nodes)} node(s) [store:{node_store.store_kind}]", file=sys.stderr)
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    tree = _load(args.file)
    engine = XPathEngine(tree)
    plan = engine.explain(args.xpath, strategy=args.strategy, analyze=args.analyze)
    print(plan.format())
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    tree = _load(args.file)
    registry = MetricsRegistry()
    tracer = Tracer()
    slow_log = SlowQueryLog(threshold_ms=args.slow_ms)
    engine = XPathEngine(tree, tracer=tracer, registry=registry, slow_log=slow_log)
    for _ in range(max(1, args.repeat)):
        for expression in args.xpath:
            engine.select(expression, args.strategy)
    print(
        format_table(
            ("metric", "value"),
            registry.rows(),
            title=f"{len(args.xpath)} expression(s) x {args.repeat}",
        )
    )
    if slow_log.entries():
        print()
        print(
            format_table(
                ("ms", "strategy", "expression"),
                [
                    (f"{rec.elapsed_ms:.3f}", rec.strategy, rec.expression)
                    for rec in slow_log.entries()
                ],
                title=f"slow queries (>= {args.slow_ms} ms)",
            )
        )
    else:
        print(f"\nno queries slower than {args.slow_ms} ms", file=sys.stderr)
    return 0


def cmd_concurrent(args: argparse.Namespace) -> int:
    from repro.concurrent import ConcurrentDocument, ParallelQueryExecutor

    tree = _load(args.file)
    document = ConcurrentDocument(tree, scheme=args.scheme)
    executor = ParallelQueryExecutor(document, threads=args.threads)
    if args.update:
        # exercise the O(delta) write path before querying: random
        # single-subtree edits published as chained delta views
        from repro.generator import UpdateWorkloadConfig, apply_workload, \
            generate_update_workload

        with document.pin():
            pass  # materialise the base so writers publish deltas
        operations = generate_update_workload(
            tree, UpdateWorkloadConfig(operations=args.update), seed=11
        )
        for _report in apply_workload(
            tree, operations, document.insert, document.delete
        ):
            pass
    with document.pin() as snapshot:
        serial = executor.select_batch(args.xpath, threads=1, snapshot=snapshot)
        for _ in range(max(1, args.repeat)):
            parallel = executor.select_batch(args.xpath, snapshot=snapshot)
        divergent = sum(
            [n.node_id for n in par] != [n.node_id for n in seq]
            for par, seq in zip(parallel, serial)
        )
        rows = [
            (expression, len(result)) for expression, result in zip(args.xpath, parallel)
        ]
    print(
        format_table(
            ("expression", "results"),
            rows,
            title=f"snapshot batch, generation {snapshot.generation} "
            f"x{args.threads} threads",
        )
    )
    stats = document.stats_snapshot()
    print()
    print(
        format_table(
            ("metric", "value"),
            [(key, stats[key]) for key in sorted(stats)],
            title="concurrent.*",
        )
    )
    if divergent:
        print(f"error: {divergent} result(s) diverged from serial run",
              file=sys.stderr)
        return 1
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Seeded read-path chaos: inject faults under the buffer pool and
    report whether the resilient store held the correct-or-typed line."""
    from repro.query.parser import parse_xpath
    from repro.resilience import BackoffPolicy, CircuitBreaker, ResilientNodeStore
    from repro.storage.database import XmlDatabase, label_key
    from repro.storage.faults import FaultInjector
    from repro.store import MemoryNodeStore, PagedNodeStore, StoreEvaluator

    tree = _load(args.file)
    labeling = Ruid2Scheme().build(tree)
    memory = MemoryNodeStore(labeling)
    baseline = StoreEvaluator(memory)
    want = {
        expression: [
            label_key(memory.label_for(node))
            for node in baseline.select(parse_xpath(expression))
        ]
        for expression in args.xpath
    }

    faults = FaultInjector(seed=args.seed)
    database = XmlDatabase(page_size=1024, pool_pages=4, faults=faults)
    document = database.store_document("doc", tree, labeling)
    resilient = ResilientNodeStore(
        PagedNodeStore(document),
        fallback=None if args.no_fallback else MemoryNodeStore(labeling),
        breaker=CircuitBreaker(
            "paged-reads",
            failure_threshold=5,
            backoff=BackoffPolicy(base=0.001, cap=0.01, jitter="none"),
        ),
        sleep=lambda seconds: None,
    )
    database.pager.flush()
    database.pager._pool.clear()
    faults.arm_read_faults(
        transient_rate=args.transient,
        latency_rate=args.latency,
        latency_s=0.001,
        bitflip_rate=args.bitflip,
        sleep=lambda seconds: None,
    )
    evaluator = StoreEvaluator(resilient)
    rows, wrong_total = [], 0
    for expression in args.xpath:
        correct = typed = wrong = 0
        error_names = set()
        for _ in range(max(1, args.repeat)):
            database.pager.flush()
            database.pager._pool.clear()  # force cold reads each round
            resilient.breaker.reset()
            try:
                result = evaluator.select(parse_xpath(expression))
            except ReproError as error:
                typed += 1
                error_names.add(type(error).__name__)
                continue
            got = [resilient.label_for(node) for node in result]
            if got == want[expression]:
                correct += 1
            else:
                wrong += 1
        wrong_total += wrong
        rows.append(
            (expression, correct, typed, wrong, " ".join(sorted(error_names)) or "-")
        )
    print(
        format_table(
            ("expression", "correct", "typed err", "wrong", "errors"),
            rows,
            title=f"chaos seed={args.seed} transient={args.transient} "
            f"latency={args.latency} bitflip={args.bitflip} "
            f"fallback={'off' if args.no_fallback else 'on'}",
        )
    )
    counters = resilient.as_dict()
    print()
    print(
        format_table(
            ("counter", "value"),
            [(key, counters[key]) for key in sorted(counters)],
            title="resilience.store.*",
        )
    )
    if wrong_total:
        print(f"error: {wrong_total} wrong answer(s) under chaos", file=sys.stderr)
        return 1
    return 0


def cmd_serving(args: argparse.Namespace) -> int:
    """Shard a document across a consistent-hash site fleet and drive
    it with a seeded open-loop load run through the scatter-gather
    executor; prints placement, the latency report, and serving.*
    counters. Exits 1 on any wrong answer."""
    from repro.concurrent import StructuralView
    from repro.resilience import AdmissionController
    from repro.serving import (
        OpenLoopLoadGenerator,
        ScatterGatherExecutor,
        ShardedCluster,
        area_shards,
        poisson_schedule,
        rank_block_shards,
    )
    from repro.serving.loadgen import _node_key
    from repro.storage.faults import FaultInjector

    tree = _load(args.file)
    labeling = Ruid2Scheme().build(tree)
    view = StructuralView.from_labeling(labeling)
    size = len(view.ids_by_rank)
    if args.areas:
        shards = area_shards("doc", labeling)
    else:
        shards = rank_block_shards("doc", size, max(args.sites * 2, 4))
    cluster = ShardedCluster(
        site_count=args.sites,
        replication_factor=args.replicas,
        faults=FaultInjector(seed=args.seed),
    )
    cluster.add_document("doc", view, shards)
    if args.transient:
        cluster.arm_message_faults(transient_rate=args.transient)
    executor = ScatterGatherExecutor(
        cluster,
        admission=AdmissionController(max_concurrent=64, max_queue=128),
        max_rounds=8,
    )

    engine = XPathEngine(tree)
    expected = {
        ("doc", expression): _node_key(
            engine.select(expression, strategy="navigational")
        )
        for expression in args.xpath
    }
    workload = [("doc", expression) for expression in args.xpath]
    arrivals = poisson_schedule(
        args.rate, args.requests, workload, seed=args.seed
    )
    generator = OpenLoopLoadGenerator(
        executor, deadline_ms=args.deadline_ms, expected=expected
    )
    report = generator.run_sync(arrivals)

    print(
        format_table(
            ("site", "shards", "messages", "state"),
            cluster.site_loads(),
            title=f"{args.sites} sites, rf={args.replicas}, "
            f"{len(shards)} shards ({'areas' if args.areas else 'rank blocks'})",
        )
    )
    print()
    summary = report.summary()
    print(
        format_table(
            ("metric", "value"),
            sorted(summary.items()),
            title=f"open-loop run: {args.requests} arrivals at "
            f"{args.rate:.0f}/s, seed {args.seed}",
        )
    )
    print()
    stats = executor.stats_snapshot()
    print(
        format_table(
            ("counter", "value"),
            [(key, stats[key]) for key in sorted(stats)],
            title="serving.*",
        )
    )
    if report.wrong:
        print(f"error: {report.wrong} wrong answer(s)", file=sys.stderr)
        return 1
    return 0


def cmd_fragment(args: argparse.Namespace) -> int:
    tree = _load(args.file)
    document = LabeledDocument(tree, partitioner=SizeCapPartitioner(args.max_area_size))
    fragment = document.fragment_for(args.xpath, include_descendants=args.descendants)
    print(serialize(fragment, indent="  "))
    return 0


def cmd_update_bench(args: argparse.Namespace) -> int:
    tree = _load(args.file)
    ops = generate_update_workload(
        tree,
        UpdateWorkloadConfig(operations=args.ops, insert_fraction=args.insert_fraction),
        seed=args.seed,
    )
    schemes = [
        get_scheme(name)
        if name != "ruid2"
        else get_scheme(name, max_area_size=args.max_area_size)
        for name in args.schemes
    ]
    summaries = run_workload_per_scheme(tree, schemes, ops)
    print(
        format_table(
            RELABEL_HEADERS,
            [s.as_row() for s in summaries],
            title=f"relabel scope: {args.ops} ops on {tree.size()} nodes",
        )
    )
    return 0


def cmd_save_params(args: argparse.Namespace) -> int:
    tree = _load(args.file)
    labeling = Ruid2Scheme(max_area_size=args.max_area_size).build(tree)
    blob = dump_parameters(labeling.core, include_directory=args.directory)
    with open(args.output, "wb") as handle:
        handle.write(blob)
    print(
        f"saved kappa={labeling.core.kappa}, {labeling.core.area_count()} K rows"
        f"{' + directory' if args.directory else ''} "
        f"({len(blob)} bytes) to {args.output}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="rUID structural numbering for XML (EDBT 2002 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    stats = commands.add_parser("stats", help="document topology statistics")
    stats.add_argument("file")
    stats.set_defaults(handler=cmd_stats)

    label = commands.add_parser("label", help="label a document and show the result")
    label.add_argument("file")
    label.add_argument("--scheme", choices=scheme_names(), default="ruid2")
    label.add_argument("--max-area-size", type=int, default=64)
    label.add_argument("--limit", type=int, default=30, help="rows to print")
    label.set_defaults(handler=cmd_label)

    query = commands.add_parser("query", help="run an XPath expression")
    query.add_argument("file")
    query.add_argument("xpath")
    query.add_argument("--strategy", choices=("ruid", "navigational"), default="ruid")
    query.add_argument(
        "--store", choices=("memory", "paged", "sqlite"), default=None,
        help="evaluate through a NodeStore instead of the live tree "
        "(paged: shred into an in-memory database and query "
        "through the buffer pool; sqlite: shred into an "
        "XPath-Accelerator accel table and push axis steps down as SQL)",
    )
    query.add_argument("--values", action="store_true", help="print string-values")
    query.add_argument(
        "--deadline-ms", type=float, default=None,
        help="cancel the query with a typed QueryTimeout once this "
        "wall-clock budget is spent",
    )
    query.set_defaults(handler=cmd_query)

    explain = commands.add_parser(
        "explain", help="show the compiled plan for an XPath expression"
    )
    explain.add_argument("file")
    explain.add_argument("xpath")
    explain.add_argument("--strategy", choices=("ruid", "navigational"), default="ruid")
    explain.add_argument(
        "--analyze", action="store_true",
        help="run the query and report per-step timings and cardinalities",
    )
    explain.set_defaults(handler=cmd_explain)

    metrics = commands.add_parser(
        "metrics", help="run expressions under full instrumentation and dump metrics"
    )
    metrics.add_argument("file")
    metrics.add_argument("xpath", nargs="+")
    metrics.add_argument("--strategy", choices=("ruid", "navigational"), default="ruid")
    metrics.add_argument("--repeat", type=int, default=1)
    metrics.add_argument("--slow-ms", type=float, default=10.0,
                         help="slow-query log threshold in milliseconds")
    metrics.set_defaults(handler=cmd_metrics)

    concurrent = commands.add_parser(
        "concurrent",
        help="evaluate a query batch in parallel over one pinned snapshot",
    )
    concurrent.add_argument("file")
    concurrent.add_argument("xpath", nargs="+")
    concurrent.add_argument("--scheme", choices=scheme_names(), default="ruid2")
    concurrent.add_argument("--threads", type=int, default=4)
    concurrent.add_argument("--repeat", type=int, default=1)
    concurrent.add_argument(
        "--update", type=int, default=0, metavar="N",
        help="apply N random structural edits first (delta-view write "
        "path), then query; publish counters appear in the stats table",
    )
    concurrent.set_defaults(handler=cmd_concurrent)

    chaos = commands.add_parser(
        "chaos",
        help="run queries under seeded read-path fault injection and "
        "verify correct-or-typed behaviour",
    )
    chaos.add_argument("file")
    chaos.add_argument("xpath", nargs="+")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--transient", type=float, default=0.3,
                       help="transient fetch-error rate on cold page reads")
    chaos.add_argument("--latency", type=float, default=0.0,
                       help="latency-spike rate on cold page reads")
    chaos.add_argument("--bitflip", type=float, default=0.0,
                       help="fetch-time bit-flip rate on cold page reads")
    chaos.add_argument("--repeat", type=int, default=5)
    chaos.add_argument("--no-fallback", action="store_true",
                       help="drop the memory fallback: failures surface "
                       "as typed errors instead of degrading")
    chaos.set_defaults(handler=cmd_chaos)

    serving = commands.add_parser(
        "serving",
        help="shard a document across a hash-ring site fleet and drive "
        "it with a seeded open-loop load run",
    )
    serving.add_argument("file")
    serving.add_argument("xpath", nargs="+")
    serving.add_argument("--sites", type=int, default=4)
    serving.add_argument("--replicas", type=int, default=2,
                         help="replica-chain length per shard")
    serving.add_argument("--areas", action="store_true",
                         help="shard by rUID areas instead of rank blocks")
    serving.add_argument("--requests", type=int, default=100)
    serving.add_argument("--rate", type=float, default=200.0,
                         help="Poisson arrival rate (requests/second)")
    serving.add_argument("--deadline-ms", type=float, default=500.0)
    serving.add_argument("--transient", type=float, default=0.0,
                         help="injected per-message transient-fault rate")
    serving.add_argument("--seed", type=int, default=0)
    serving.set_defaults(handler=cmd_serving)

    fragment = commands.add_parser(
        "fragment", help="reconstruct the fragment spanned by a query (section 3.3)"
    )
    fragment.add_argument("file")
    fragment.add_argument("xpath")
    fragment.add_argument("--descendants", action="store_true")
    fragment.add_argument("--max-area-size", type=int, default=64)
    fragment.set_defaults(handler=cmd_fragment)

    bench = commands.add_parser(
        "update-bench", help="relabel-scope comparison on an update workload"
    )
    bench.add_argument("file")
    bench.add_argument("--ops", type=int, default=50)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--insert-fraction", type=float, default=0.8)
    bench.add_argument("--max-area-size", type=int, default=16)
    bench.add_argument(
        "--schemes",
        nargs="+",
        default=["uid", "ruid2", "dewey", "prepost"],
        choices=[n for n in scheme_names() if n != "ruid-multi"],
    )
    bench.set_defaults(handler=cmd_update_bench)

    save = commands.add_parser(
        "save-params", help='save kappa and table K (Fig. 3: "Save κ and K")'
    )
    save.add_argument("file")
    save.add_argument("output")
    save.add_argument("--max-area-size", type=int, default=64)
    save.add_argument("--directory", action="store_true",
                      help="include the label→tag directory")
    save.set_defaults(handler=cmd_save_params)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
