"""Query engine facade.

Compiles XPath-subset expressions once and evaluates them under a
chosen strategy — navigational DOM walking or rUID identifier
arithmetic — so experiments can hold the query fixed and swap the
engine (observation 3, §5).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.partition import Partitioner
from repro.core.scheme import Ruid2SchemeLabeling
from repro.errors import QueryError
from repro.query.ast import Expr
from repro.query.evaluator import (
    BaseEvaluator,
    NavigationalEvaluator,
    SchemeEvaluator,
    string_value,
)
from repro.query.parser import parse_xpath
from repro.xmltree.node import XmlNode
from repro.xmltree.tree import XmlTree


class XPathEngine:
    """Compile-and-run XPath over one document.

    Parameters
    ----------
    tree:
        The document to query.
    labeling:
        Optional prebuilt 2-level rUID labeling; required for the
        ``"ruid"`` strategy (one is built on demand otherwise).
    partitioner:
        Partition strategy used if a labeling must be built.
    """

    def __init__(
        self,
        tree: XmlTree,
        labeling: Optional[Ruid2SchemeLabeling] = None,
        partitioner: Optional[Partitioner] = None,
    ):
        self.tree = tree
        self._labeling = labeling
        self._partitioner = partitioner
        self._compiled: Dict[str, Expr] = {}
        self._evaluators: Dict[str, BaseEvaluator] = {}

    # ------------------------------------------------------------------
    def labeling(self) -> Ruid2SchemeLabeling:
        if self._labeling is None:
            self._labeling = Ruid2SchemeLabeling(
                self.tree, partitioner=self._partitioner
            )
        return self._labeling

    def compile(self, expression: str) -> Expr:
        """Parse (with memoisation) an expression."""
        compiled = self._compiled.get(expression)
        if compiled is None:
            compiled = parse_xpath(expression)
            self._compiled[expression] = compiled
        return compiled

    def evaluator(self, strategy: str = "ruid") -> BaseEvaluator:
        """The evaluator for *strategy* ("ruid" or "navigational")."""
        evaluator = self._evaluators.get(strategy)
        if evaluator is None:
            if strategy == "ruid":
                evaluator = SchemeEvaluator(self.labeling())
            elif strategy == "navigational":
                evaluator = NavigationalEvaluator(self.tree)
            else:
                raise QueryError(f"unknown strategy {strategy!r}")
            self._evaluators[strategy] = evaluator
        return evaluator

    # ------------------------------------------------------------------
    def select(
        self,
        expression: str,
        strategy: str = "ruid",
        context: Optional[XmlNode] = None,
    ) -> List[XmlNode]:
        """Node-set result of *expression* (document order)."""
        return self.evaluator(strategy).select(self.compile(expression), context)

    def select_strings(
        self,
        expression: str,
        strategy: str = "ruid",
        context: Optional[XmlNode] = None,
    ) -> List[str]:
        """String-values of the result node-set."""
        return [string_value(node) for node in self.select(expression, strategy, context)]

    def count(self, expression: str, strategy: str = "ruid") -> int:
        return len(self.select(expression, strategy))

    def __repr__(self) -> str:
        return f"<XPathEngine tree={self.tree!r} cached={len(self._compiled)}>"
