"""Query engine facade.

Compiles XPath-subset expressions once and evaluates them under a
chosen strategy — navigational DOM walking or rUID identifier
arithmetic — so experiments can hold the query fixed and swap the
engine (observation 3, §5).

Compiled plans live in a bounded LRU cache keyed by the query string;
hits, misses and evictions are charged to a shared
:class:`~repro.query.stats.QueryStats` ledger (the query-layer
counterpart of the storage layer's ``IoStats``). Evaluators are
re-created when the labeling's generation advances, so no evaluator
ever serves labels from before a structural update.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from time import perf_counter_ns
from typing import List, Optional

from repro.core.partition import Partitioner
from repro.core.scheme import Ruid2SchemeLabeling
from repro.errors import QueryError, ReproError
from repro.obs.explain import PathPlan, QueryPlan, StepPlan
from repro.obs.metrics import MetricsRegistry
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import Tracer
from repro.query.ast import Expr, LocationPath, Union_
from repro.query.evaluator import (
    BaseEvaluator,
    NavigationalEvaluator,
    SchemeEvaluator,
    string_value,
)
from repro.query.parser import parse_xpath
from repro.query.stats import QueryStats
from repro.xmltree.node import XmlNode
from repro.xmltree.tree import XmlTree

#: default number of compiled plans kept
PLAN_CACHE_SIZE = 128


class XPathEngine:
    """Compile-and-run XPath over one document.

    Parameters
    ----------
    tree:
        The document to query.
    labeling:
        Optional prebuilt 2-level rUID labeling; required for the
        ``"ruid"`` strategy (one is built on demand otherwise).
    partitioner:
        Partition strategy used if a labeling must be built.
    plan_cache_size:
        Maximum number of compiled plans retained (LRU eviction).
    tracer:
        Optional :class:`~repro.obs.trace.Tracer` (or
        :data:`~repro.obs.trace.NULL_TRACER`). When set, every select
        runs under a ``query`` span with per-step child spans.
    registry:
        Optional shared :class:`~repro.obs.metrics.MetricsRegistry`;
        a private one is created otherwise. The engine's
        :class:`QueryStats` ledger is bound into it as ``query.*``.
    slow_log:
        Optional :class:`~repro.obs.slowlog.SlowQueryLog`; selects
        crossing its threshold are retained with their EXPLAIN plan.
    store:
        Optional :class:`~repro.store.base.NodeStore` enabling the
        ``"store"`` strategy — the protocol-only evaluator that runs
        identically over memory, paged, and snapshot stores. ``tree``
        may be ``None`` when a store is supplied and only the
        ``"store"`` strategy is used.
    """

    def __init__(
        self,
        tree: Optional[XmlTree],
        labeling: Optional[Ruid2SchemeLabeling] = None,
        partitioner: Optional[Partitioner] = None,
        plan_cache_size: int = PLAN_CACHE_SIZE,
        tracer: Optional[Tracer] = None,
        registry: Optional[MetricsRegistry] = None,
        slow_log: Optional[SlowQueryLog] = None,
        store=None,
    ):
        self.tree = tree
        self.store = store
        self.stats = QueryStats()
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.stats.bind(self.metrics, "query")
        self.tracer = tracer
        self.slow_log = slow_log
        self._labeling = labeling
        self._partitioner = partitioner
        self._plan_cache_size = max(1, plan_cache_size)
        self._compiled: "OrderedDict[str, Expr]" = OrderedDict()
        #: guards the LRU plan cache: ``move_to_end`` / ``popitem``
        #: interleaved from two threads corrupt an OrderedDict
        self._compile_lock = threading.Lock()
        self._evaluators: dict = {}
        #: guards evaluator construction + generation bookkeeping
        self._evaluator_lock = threading.Lock()
        self._evaluator_generation: Optional[int] = None
        self._latency_histograms: dict = {}

    # ------------------------------------------------------------------
    def observe(
        self,
        tracer: Optional[Tracer] = None,
        slow_log: Optional[SlowQueryLog] = None,
    ) -> "XPathEngine":
        """Attach (or replace) observability sinks after construction."""
        if tracer is not None:
            self.tracer = tracer
        if slow_log is not None:
            self.slow_log = slow_log
        return self

    @property
    def _observing(self) -> bool:
        return self.tracer is not None or self.slow_log is not None

    # ------------------------------------------------------------------
    def labeling(self) -> Ruid2SchemeLabeling:
        if self._labeling is None:
            self._labeling = Ruid2SchemeLabeling(
                self.tree, partitioner=self._partitioner
            )
        return self._labeling

    def compile(self, expression: str) -> Expr:
        """Parse an expression through the LRU plan cache.

        Repeated compilations of the same string return the identical
        plan object; the least recently used plan is evicted once the
        cache is full.
        """
        cache = self._compiled
        with self._compile_lock:
            compiled = cache.get(expression)
            if compiled is not None:
                self.stats.count("plan_hits")
                cache.move_to_end(expression)
                return compiled
        # parse outside the lock: plans are pure values, so two racing
        # compilations of one new expression just do redundant work and
        # the second insert wins the cache slot
        self.stats.count("plan_misses")
        compiled = parse_xpath(expression)
        with self._compile_lock:
            existing = cache.get(expression)
            if existing is not None:
                return existing
            cache[expression] = compiled
            if len(cache) > self._plan_cache_size:
                cache.popitem(last=False)
                self.stats.count("plan_evictions")
        return compiled

    def evaluator(self, strategy: str = "ruid") -> BaseEvaluator:
        """The evaluator for *strategy* ("ruid", "navigational" or
        "store").

        Evaluators are cached per strategy but dropped wholesale when
        the labeling's generation advances — a structural update must
        never be answered from pre-update state.
        """
        with self._evaluator_lock:
            if self._labeling is not None:
                generation = self._labeling.generation
                if generation != self._evaluator_generation:
                    self._evaluators.clear()
                    self._evaluator_generation = generation
            evaluator = self._evaluators.get(strategy)
            if evaluator is None:
                if strategy == "ruid":
                    evaluator = SchemeEvaluator(self.labeling(), stats=self.stats)
                    self._evaluator_generation = self._labeling.generation
                elif strategy == "navigational":
                    if self.tree is None:
                        raise QueryError("navigational strategy needs a tree")
                    evaluator = NavigationalEvaluator(self.tree, stats=self.stats)
                elif strategy == "store":
                    if self.store is None:
                        raise QueryError(
                            "store strategy needs a NodeStore "
                            "(pass store= to XPathEngine)"
                        )
                    # local import: repro.store imports this package
                    from repro.store.evaluator import StoreEvaluator

                    evaluator = StoreEvaluator(self.store, stats=self.stats)
                    self.store.bind(self.metrics, "store")
                else:
                    raise QueryError(f"unknown strategy {strategy!r}")
                self._evaluators[strategy] = evaluator
            return evaluator

    # ------------------------------------------------------------------
    def select(
        self,
        expression: str,
        strategy: str = "ruid",
        context: Optional[XmlNode] = None,
        deadline=None,
    ) -> List[XmlNode]:
        """Node-set result of *expression* (document order).

        *deadline* bounds the evaluation: a
        :class:`~repro.resilience.deadline.Deadline` (or a plain number
        of milliseconds) after which the evaluator's cooperative checks
        raise :class:`~repro.errors.QueryTimeout` with partial-work
        counters. Any :class:`~repro.errors.ReproError` raised during
        evaluation (timeout, storage fault, load shed) is counted in
        ``stats.errors.<Type>`` and captured by the slow log's failure
        ring before propagating.
        """
        compiled = self.compile(expression)
        evaluator = self.evaluator(strategy)
        if deadline is not None and not hasattr(deadline, "tick"):
            # local import: repro.resilience imports repro.errors only,
            # but keep the engine importable without the package loaded
            from repro.resilience.deadline import Deadline

            deadline = Deadline(float(deadline))
        if deadline is None and not self._observing:
            try:
                return evaluator.select(compiled, context)
            except ReproError as exc:
                self._note_failure(expression, strategy, exc, 0)
                raise
        return self._select_observed(
            expression, compiled, evaluator, strategy, context, deadline
        )

    def _select_observed(
        self,
        expression: str,
        compiled: Expr,
        evaluator: BaseEvaluator,
        strategy: str,
        context: Optional[XmlNode],
        deadline=None,
    ) -> List[XmlNode]:
        """The instrumented select path: a ``query`` span around the
        evaluation, a latency histogram observation, and a slow-log
        offer (with the static plan attached when it qualifies).
        Failures are ledgered per error type and retained in the slow
        log's failure ring, then re-raised."""
        tracer = self.tracer
        previous = evaluator.tracer
        if tracer is not None:
            evaluator.tracer = tracer
        if deadline is not None:
            evaluator.set_deadline(deadline)
        error: Optional[ReproError] = None
        start = perf_counter_ns()
        try:
            if tracer is not None:
                with tracer.span(
                    "query", expression=expression, strategy=strategy
                ) as span:
                    result = evaluator.select(compiled, context)
                    span.set(results=len(result))
            else:
                result = evaluator.select(compiled, context)
        except ReproError as exc:
            error = exc
        finally:
            evaluator.tracer = previous
            if deadline is not None:
                evaluator.set_deadline(None)
        elapsed = perf_counter_ns() - start
        with self._evaluator_lock:
            histogram = self._latency_histograms.get(strategy)
            if histogram is None:
                histogram = self.metrics.histogram(f"query.latency_ns.{strategy}")
                self._latency_histograms[strategy] = histogram
        histogram.observe(elapsed)
        if error is not None:
            self._note_failure(expression, strategy, error, elapsed)
            raise error
        slow_log = self.slow_log
        if slow_log is not None and elapsed >= slow_log.threshold_ns:
            slow_log.record(
                expression,
                strategy,
                elapsed,
                plan=self.explain(expression, strategy),
                results=len(result),
            )
        elif slow_log is not None:
            slow_log.note_seen()
        return result

    def _note_failure(
        self,
        expression: str,
        strategy: str,
        error: ReproError,
        elapsed_ns: int,
    ) -> None:
        """Charge a failed select to the per-error-type ledger and the
        slow log's failure ring (with the static plan when it can still
        be produced — a broken store must not mask the original error)."""
        self.stats.count_error(type(error).__name__)
        slow_log = self.slow_log
        if slow_log is None:
            return
        try:
            plan = self.explain(expression, strategy)
        except ReproError:
            plan = None
        slow_log.record_failure(
            expression, strategy, elapsed_ns, error, plan=plan
        )

    # ------------------------------------------------------------------
    # EXPLAIN / EXPLAIN ANALYZE
    # ------------------------------------------------------------------
    def explain(
        self,
        expression: str,
        strategy: str = "ruid",
        analyze: bool = False,
        context: Optional[XmlNode] = None,
    ) -> QueryPlan:
        """The compiled plan of *expression* — and, with ``analyze``,
        the measured per-step cardinalities and timings of one run.

        The static part reports, per location step, the route the
        evaluator will dispatch to (``batched`` set-at-a-time,
        ``per-node`` fallback, ``pruned`` by the tag synopsis, or
        ``navigational``) plus the synopsis' candidate estimate. The
        ANALYZE part executes the query under a private tracer and
        folds the resulting span tree back onto the plan: per step the
        call count, input/output node counts and wall time; the result
        node-set itself is identical to a plain :meth:`select` and is
        carried on ``plan.result``.
        """
        cached_before = expression in self._compiled
        compiled = self.compile(expression)
        evaluator = self.evaluator(strategy)
        plan = self._static_plan(expression, compiled, evaluator, strategy)
        plan.cache_hit = cached_before
        if analyze:
            self._analyze_into(plan, compiled, evaluator, context)
        return plan

    def _static_plan(
        self,
        expression: str,
        compiled: Expr,
        evaluator: BaseEvaluator,
        strategy: str,
    ) -> QueryPlan:
        plan = QueryPlan(expression=expression, strategy=strategy, cache_hit=False)
        if isinstance(compiled, Union_):
            paths = list(compiled.paths)
        elif isinstance(compiled, LocationPath):
            paths = [compiled]
        else:
            plan.scalar = True
            return plan
        for path in paths:
            path_plan = PathPlan(expression=str(path), absolute=path.absolute)
            for index, step in enumerate(path.steps):
                route, estimate = evaluator.plan_route(step)
                path_plan.steps.append(
                    StepPlan(
                        index=index,
                        axis=step.axis,
                        test=str(step.test),
                        predicates=len(step.predicates),
                        route=route,
                        estimate=estimate,
                    )
                )
            plan.paths.append(path_plan)
        return plan

    def _analyze_into(
        self,
        plan: QueryPlan,
        compiled: Expr,
        evaluator: BaseEvaluator,
        context: Optional[XmlNode],
    ) -> None:
        """Run the query under a private tracer and attribute the span
        tree to the plan's steps."""
        tracer = Tracer()
        previous = evaluator.tracer
        evaluator.tracer = tracer
        # Physical counters: the evaluator's NodeStore (scheme and
        # store strategies) charges fetches/rank probes as it runs, so
        # a before/after delta is this query's physical footprint.
        store = getattr(evaluator, "store", None)
        physical_before = store.stats_snapshot() if store is not None else None
        start = perf_counter_ns()
        try:
            with tracer.span("query.analyze", expression=plan.expression):
                if plan.scalar:
                    result: List[XmlNode] = []
                    plan.result_count = 0
                    evaluator.evaluate(compiled, context)
                else:
                    result = evaluator.select(compiled, context)
        finally:
            evaluator.tracer = previous
        plan.total_ns = perf_counter_ns() - start
        plan.analyzed = True
        if store is None:
            # SchemeEvaluator binds its MemoryNodeStore on first use —
            # created during this very run, so every count is ours.
            store = getattr(evaluator, "store", None)
        if store is not None:
            plan.physical = store.stats_delta(physical_before or {})
        if not plan.scalar:
            plan.result = result
            plan.result_count = len(result)
        root = next(
            (s for s in tracer.roots() if s.name == "query.analyze"), None
        )
        if root is None:  # ring buffer wrapped past the root: keep static plan
            return
        # Top-level path spans (direct children of the root) line up 1:1
        # with the plan's paths; nested predicate paths hang off step
        # spans and are deliberately excluded from step attribution.
        top_paths = [
            span
            for span in tracer.children_of(root)
            if span.name == "evaluator.path"
        ]
        for path_plan, path_span in zip(plan.paths, top_paths):
            for step_span in tracer.children_of(path_span):
                if step_span.name != "evaluator.step":
                    continue
                index = step_span.attrs.get("index")
                if index is None or not 0 <= index < len(path_plan.steps):
                    continue
                step = path_plan.steps[index]
                step.calls += 1
                step.time_ns = (step.time_ns or 0) + step_span.duration_ns
                step.in_count = step_span.attrs.get("in_count")
                step.out_count = step_span.attrs.get("out_count")
                observed = step_span.attrs.get("route")
                if observed is not None:
                    step.observed_route = observed

    def select_strings(
        self,
        expression: str,
        strategy: str = "ruid",
        context: Optional[XmlNode] = None,
    ) -> List[str]:
        """String-values of the result node-set."""
        return [string_value(node) for node in self.select(expression, strategy, context)]

    def count(self, expression: str, strategy: str = "ruid") -> int:
        return len(self.select(expression, strategy))

    def __repr__(self) -> str:
        return f"<XPathEngine tree={self.tree!r} cached={len(self._compiled)}>"
