"""Query engine facade.

Compiles XPath-subset expressions once and evaluates them under a
chosen strategy — navigational DOM walking or rUID identifier
arithmetic — so experiments can hold the query fixed and swap the
engine (observation 3, §5).

Compiled plans live in a bounded LRU cache keyed by the query string;
hits, misses and evictions are charged to a shared
:class:`~repro.query.stats.QueryStats` ledger (the query-layer
counterpart of the storage layer's ``IoStats``). Evaluators are
re-created when the labeling's generation advances, so no evaluator
ever serves labels from before a structural update.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.core.partition import Partitioner
from repro.core.scheme import Ruid2SchemeLabeling
from repro.errors import QueryError
from repro.query.ast import Expr
from repro.query.evaluator import (
    BaseEvaluator,
    NavigationalEvaluator,
    SchemeEvaluator,
    string_value,
)
from repro.query.parser import parse_xpath
from repro.query.stats import QueryStats
from repro.xmltree.node import XmlNode
from repro.xmltree.tree import XmlTree

#: default number of compiled plans kept
PLAN_CACHE_SIZE = 128


class XPathEngine:
    """Compile-and-run XPath over one document.

    Parameters
    ----------
    tree:
        The document to query.
    labeling:
        Optional prebuilt 2-level rUID labeling; required for the
        ``"ruid"`` strategy (one is built on demand otherwise).
    partitioner:
        Partition strategy used if a labeling must be built.
    plan_cache_size:
        Maximum number of compiled plans retained (LRU eviction).
    """

    def __init__(
        self,
        tree: XmlTree,
        labeling: Optional[Ruid2SchemeLabeling] = None,
        partitioner: Optional[Partitioner] = None,
        plan_cache_size: int = PLAN_CACHE_SIZE,
    ):
        self.tree = tree
        self.stats = QueryStats()
        self._labeling = labeling
        self._partitioner = partitioner
        self._plan_cache_size = max(1, plan_cache_size)
        self._compiled: "OrderedDict[str, Expr]" = OrderedDict()
        self._evaluators: dict = {}
        self._evaluator_generation: Optional[int] = None

    # ------------------------------------------------------------------
    def labeling(self) -> Ruid2SchemeLabeling:
        if self._labeling is None:
            self._labeling = Ruid2SchemeLabeling(
                self.tree, partitioner=self._partitioner
            )
        return self._labeling

    def compile(self, expression: str) -> Expr:
        """Parse an expression through the LRU plan cache.

        Repeated compilations of the same string return the identical
        plan object; the least recently used plan is evicted once the
        cache is full.
        """
        cache = self._compiled
        compiled = cache.get(expression)
        if compiled is not None:
            self.stats.plan_hits += 1
            cache.move_to_end(expression)
            return compiled
        self.stats.plan_misses += 1
        compiled = parse_xpath(expression)
        cache[expression] = compiled
        if len(cache) > self._plan_cache_size:
            cache.popitem(last=False)
            self.stats.plan_evictions += 1
        return compiled

    def evaluator(self, strategy: str = "ruid") -> BaseEvaluator:
        """The evaluator for *strategy* ("ruid" or "navigational").

        Evaluators are cached per strategy but dropped wholesale when
        the labeling's generation advances — a structural update must
        never be answered from pre-update state.
        """
        if self._labeling is not None:
            generation = self._labeling.generation
            if generation != self._evaluator_generation:
                self._evaluators.clear()
                self._evaluator_generation = generation
        evaluator = self._evaluators.get(strategy)
        if evaluator is None:
            if strategy == "ruid":
                evaluator = SchemeEvaluator(self.labeling(), stats=self.stats)
                self._evaluator_generation = self._labeling.generation
            elif strategy == "navigational":
                evaluator = NavigationalEvaluator(self.tree, stats=self.stats)
            else:
                raise QueryError(f"unknown strategy {strategy!r}")
            self._evaluators[strategy] = evaluator
        return evaluator

    # ------------------------------------------------------------------
    def select(
        self,
        expression: str,
        strategy: str = "ruid",
        context: Optional[XmlNode] = None,
    ) -> List[XmlNode]:
        """Node-set result of *expression* (document order)."""
        return self.evaluator(strategy).select(self.compile(expression), context)

    def select_strings(
        self,
        expression: str,
        strategy: str = "ruid",
        context: Optional[XmlNode] = None,
    ) -> List[str]:
        """String-values of the result node-set."""
        return [string_value(node) for node in self.select(expression, strategy, context)]

    def count(self, expression: str, strategy: str = "ruid") -> int:
        return len(self.select(expression, strategy))

    def __repr__(self) -> str:
        return f"<XPathEngine tree={self.tree!r} cached={len(self._compiled)}>"
