"""Structural joins over numbering-scheme labels.

The core database use of a numbering scheme (and the theme of the
paper's related work: Li–Moon [6], Zhang et al. [11]) is the
*structural join*: given a set of potential ancestors A and potential
descendants D, emit every (a, d) with a an ancestor of d — using only
the labels.

Two algorithms are provided, both generic over any
:class:`~repro.core.scheme.Labeling`:

* :func:`nested_loop_join` — the O(|A|·|D|) baseline;
* :func:`stack_tree_join` — the sort-merge "stack-tree" join: one
  pass over both lists in document order with a stack of nested
  ancestors, O(|A| + |D| + output).

Both consult the labeling's precomputed document-order
:class:`~repro.core.rankindex.RankIndex` when every input label is
known to it: sorting keys off integer ranks and (for the stack-tree
join) ancestry becomes the interval test ``rank(a) < rank(d) <=
end(a)``, so the merge does no label arithmetic at all. Unknown labels
(stale after an update, synthetic) drop back to the generic
``doc_compare`` / ``relation`` path.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from functools import cmp_to_key
from typing import Iterable, List, Optional, Sequence, Tuple, TypeVar

from repro.core.labels import Relation
from repro.core.rankindex import RankIndex
from repro.core.scheme import Labeling

LabelT = TypeVar("LabelT")
Pair = Tuple[LabelT, LabelT]

#: below this many candidate pairs the quadratic join's lower constant
#: beats the sort-merge machinery
NESTED_LOOP_CUTOFF = 64


def choose_join_algorithm(ancestor_count: int, descendant_count: int) -> str:
    """Pick a join algorithm from input cardinalities: tiny inputs run
    the nested loop (no sort, no stack), everything else stack-tree."""
    if ancestor_count * descendant_count <= NESTED_LOOP_CUTOFF:
        return "nested"
    return "stack"


def _rank_index_of(labeling: Labeling) -> Optional[RankIndex]:
    try:
        return labeling.rank_index()
    except Exception:  # labeling cannot enumerate (partial/stub) — fall back
        return None


def _try_ranks(index: Optional[RankIndex], labels: Sequence) -> Optional[List[int]]:
    if index is None:
        return None
    try:
        return index.try_ranks(labels)
    except TypeError:  # unhashable label type
        return None


def _ordered_by_document(labeling: Labeling, labels: Sequence) -> List:
    """Labels sorted into document order — integer ranks when the rank
    index knows every label, ``doc_compare`` otherwise."""
    ranks = _try_ranks(_rank_index_of(labeling), labels)
    if ranks is not None:
        order = sorted(range(len(labels)), key=ranks.__getitem__)
        return [labels[i] for i in order]
    return sorted(labels, key=cmp_to_key(labeling.doc_compare))


def nested_loop_join(
    labeling: Labeling,
    ancestors: Sequence,
    descendants: Sequence,
    self_or: bool = False,
) -> List[Pair]:
    """All (a, d) pairs with a an ancestor(-or-self) of d; O(|A|·|D|).

    Output ordered by (document order of d, outer-to-inner a) to match
    :func:`stack_tree_join`.
    """
    wanted = {Relation.ANCESTOR}
    if self_or:
        wanted.add(Relation.SELF)
    pairs: List[Pair] = []
    ordered_d = _ordered_by_document(labeling, descendants)
    ordered_a = _ordered_by_document(labeling, ancestors)
    for d in ordered_d:
        for a in ordered_a:
            if labeling.relation(a, d) in wanted:
                pairs.append((a, d))
    return pairs


def stack_tree_join(
    labeling: Labeling,
    ancestors: Sequence,
    descendants: Sequence,
    self_or: bool = False,
    use_rank_index: bool = True,
) -> List[Pair]:
    """Sort-merge structural join (Stack-Tree-Desc).

    Both inputs are sorted into document order; a single sweep keeps a
    stack of the A-labels whose subtrees are currently open. Because
    an ancestor precedes its descendants in document order, every
    potential ancestor of ``d`` has been pushed before ``d`` is
    processed; popping the entries that are not ancestors of ``d``
    leaves exactly the nested chain of matches.

    Complexity O(|A| + |D| + output) label comparisons; with the rank
    index, O(|A| + |D| + output) *integer* comparisons plus one bisect
    per descendant to skip ahead over the A-list.
    ``use_rank_index=False`` forces the comparator path (benchmarks).
    """
    index = _rank_index_of(labeling) if use_rank_index else None
    a_ranks = _try_ranks(index, ancestors)
    d_ranks = _try_ranks(index, descendants) if a_ranks is not None else None
    if a_ranks is not None and d_ranks is not None:
        return _stack_tree_join_ranked(
            index, labeling, ancestors, a_ranks, descendants, d_ranks, self_or
        )
    return _stack_tree_join_compare(labeling, ancestors, descendants, self_or)


def _end_column(labeling: Labeling) -> Optional[Sequence[int]]:
    """Rank-indexed subtree-end column from the labeling's columnar
    index, when it can serve one — an array load per ancestor instead
    of a per-label dict probe."""
    builder = getattr(labeling, "columnar_index", None)
    if builder is None:
        return None
    try:
        return builder().end
    except Exception:  # partial/stub labeling cannot enumerate
        return None


def _stack_tree_join_ranked(
    index: RankIndex,
    labeling: Labeling,
    ancestors: Sequence,
    a_ranks: List[int],
    descendants: Sequence,
    d_ranks: List[int],
    self_or: bool,
) -> List[Pair]:
    """The merge over machine-packed (rank, subtree-end) int columns.

    The sorted rank and end sequences are ``array('q')`` buffers —
    contiguous machine words, not lists of boxed ints — and when the
    labeling carries a columnar index the end column is read by rank
    (one array load per ancestor) instead of probing the rank-index
    end dict per label.
    """
    a_order = sorted(range(len(ancestors)), key=a_ranks.__getitem__)
    sorted_a = [ancestors[i] for i in a_order]
    sorted_ra = array("q", (a_ranks[i] for i in a_order))
    end_by_rank = _end_column(labeling)
    if end_by_rank is not None:
        sorted_ea = array("q", (end_by_rank[r] for r in sorted_ra))
    else:
        end = index.end
        sorted_ea = array("q", (end[label] for label in sorted_a))
    d_order = sorted(range(len(descendants)), key=d_ranks.__getitem__)

    # With self_or, an A equal to d is admitted (and matches as SELF).
    admit = bisect_right if self_or else bisect_left

    pairs: List[Pair] = []
    stack: List[Tuple[int, int, object]] = []  # (rank, subtree end, label)
    idx = 0
    total_a = len(sorted_a)
    for j in d_order:
        d = descendants[j]
        rd = d_ranks[j]
        if not stack and idx >= total_a:
            break  # skip-ahead: no open ancestors and none left to admit
        # Admit every A-label at or before d in document order; the
        # boundary is one integer bisect instead of per-label compares.
        boundary = admit(sorted_ra, rd, idx)
        while idx < boundary:
            ra = sorted_ra[idx]
            ea = sorted_ea[idx]
            while stack:
                r_top, e_top, _ = stack[-1]
                if (r_top < ra <= e_top) or (self_or and r_top == ra):
                    break
                stack.pop()
            stack.append((ra, ea, sorted_a[idx]))
            idx += 1
        # Keep only the open ancestors of d (interval containment).
        while stack:
            r_top, e_top, _ = stack[-1]
            if (r_top < rd <= e_top) or (self_or and r_top == rd):
                break
            stack.pop()
        for _ra, _ea, a in stack:
            pairs.append((a, d))
    return pairs


def _stack_tree_join_compare(
    labeling: Labeling,
    ancestors: Sequence,
    descendants: Sequence,
    self_or: bool,
) -> List[Pair]:
    """Generic fallback: label comparisons through the scheme."""
    key = cmp_to_key(labeling.doc_compare)
    ordered_a = sorted(ancestors, key=key)
    ordered_d = sorted(descendants, key=key)

    def covers(upper, lower) -> bool:
        relation = labeling.relation(upper, lower)
        return relation is Relation.ANCESTOR or (
            self_or and relation is Relation.SELF
        )

    pairs: List[Pair] = []
    stack: List = []
    index = 0
    for d in ordered_d:
        # Admit every A-label at or before d in document order.
        while index < len(ordered_a):
            a = ordered_a[index]
            comparison = labeling.doc_compare(a, d)
            if comparison > 0 or (comparison == 0 and not self_or):
                break
            while stack and not covers(stack[-1], a):
                stack.pop()
            stack.append(a)
            index += 1
        # Keep only the open ancestors of d.
        while stack and not covers(stack[-1], d):
            stack.pop()
        for a in stack:
            pairs.append((a, d))
    return pairs


def join_nodes(
    labeling: Labeling,
    ancestor_nodes: Iterable,
    descendant_nodes: Iterable,
    algorithm: str = "stack",
    self_or: bool = False,
) -> List[Tuple]:
    """Node-level convenience: join two node sets, return node pairs.

    ``algorithm="auto"`` picks nested-loop vs stack-tree from the input
    cardinalities (:func:`choose_join_algorithm`).
    """
    a_labels = [labeling.label_of(n) for n in ancestor_nodes]
    d_labels = [labeling.label_of(n) for n in descendant_nodes]
    if algorithm == "auto":
        algorithm = choose_join_algorithm(len(a_labels), len(d_labels))
    if algorithm == "stack":
        pairs = stack_tree_join(labeling, a_labels, d_labels, self_or=self_or)
    elif algorithm == "nested":
        pairs = nested_loop_join(labeling, a_labels, d_labels, self_or=self_or)
    else:
        raise ValueError(f"unknown join algorithm {algorithm!r}")
    return [(labeling.node_of(a), labeling.node_of(d)) for a, d in pairs]
