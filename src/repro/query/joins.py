"""Structural joins over numbering-scheme labels.

The core database use of a numbering scheme (and the theme of the
paper's related work: Li–Moon [6], Zhang et al. [11]) is the
*structural join*: given a set of potential ancestors A and potential
descendants D, emit every (a, d) with a an ancestor of d — using only
the labels.

Two algorithms are provided, both generic over any
:class:`~repro.core.scheme.Labeling` (they consume only ``relation`` /
``doc_compare``):

* :func:`nested_loop_join` — the O(|A|·|D|) baseline;
* :func:`stack_tree_join` — the sort-merge "stack-tree" join: one
  pass over both lists in document order with a stack of nested
  ancestors, O(|A| + |D| + output).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Sequence, Tuple, TypeVar

from repro.core.labels import Relation
from repro.core.scheme import Labeling

LabelT = TypeVar("LabelT")
Pair = Tuple[LabelT, LabelT]


def nested_loop_join(
    labeling: Labeling,
    ancestors: Sequence,
    descendants: Sequence,
    self_or: bool = False,
) -> List[Pair]:
    """All (a, d) pairs with a an ancestor(-or-self) of d; O(|A|·|D|).

    Output ordered by (document order of d, outer-to-inner a) to match
    :func:`stack_tree_join`.
    """
    wanted = {Relation.ANCESTOR}
    if self_or:
        wanted.add(Relation.SELF)
    pairs: List[Pair] = []
    ordered_d = sorted(descendants, key=_order_key(labeling))
    ordered_a = sorted(ancestors, key=_order_key(labeling))
    for d in ordered_d:
        for a in ordered_a:
            if labeling.relation(a, d) in wanted:
                pairs.append((a, d))
    return pairs


class _OrderKey:
    """Total-order wrapper turning doc_compare into a sort key."""

    __slots__ = ("label", "labeling")

    def __init__(self, label, labeling: Labeling):
        self.label = label
        self.labeling = labeling

    def __lt__(self, other: "_OrderKey") -> bool:
        return self.labeling.doc_compare(self.label, other.label) < 0


def _order_key(labeling: Labeling) -> Callable:
    return lambda label: _OrderKey(label, labeling)


def stack_tree_join(
    labeling: Labeling,
    ancestors: Sequence,
    descendants: Sequence,
    self_or: bool = False,
) -> List[Pair]:
    """Sort-merge structural join (Stack-Tree-Desc).

    Both inputs are sorted into document order; a single sweep keeps a
    stack of the A-labels whose subtrees are currently open. Because
    an ancestor precedes its descendants in document order, every
    potential ancestor of ``d`` has been pushed before ``d`` is
    processed; popping the entries that are not ancestors of ``d``
    leaves exactly the nested chain of matches.

    Complexity O(|A| + |D| + output) label comparisons.
    """
    key = _order_key(labeling)
    ordered_a = sorted(ancestors, key=key)
    ordered_d = sorted(descendants, key=key)

    def covers(upper, lower) -> bool:
        relation = labeling.relation(upper, lower)
        return relation is Relation.ANCESTOR or (
            self_or and relation is Relation.SELF
        )

    pairs: List[Pair] = []
    stack: List = []
    index = 0
    for d in ordered_d:
        # Admit every A-label at or before d in document order.
        while index < len(ordered_a):
            a = ordered_a[index]
            comparison = labeling.doc_compare(a, d)
            if comparison > 0 or (comparison == 0 and not self_or):
                break
            while stack and not covers(stack[-1], a):
                stack.pop()
            stack.append(a)
            index += 1
        # Keep only the open ancestors of d.
        while stack and not covers(stack[-1], d):
            stack.pop()
        for a in stack:
            pairs.append((a, d))
    return pairs


def join_nodes(
    labeling: Labeling,
    ancestor_nodes: Iterable,
    descendant_nodes: Iterable,
    algorithm: str = "stack",
    self_or: bool = False,
) -> List[Tuple]:
    """Node-level convenience: join two node sets, return node pairs."""
    a_labels = [labeling.label_of(n) for n in ancestor_nodes]
    d_labels = [labeling.label_of(n) for n in descendant_nodes]
    if algorithm == "stack":
        pairs = stack_tree_join(labeling, a_labels, d_labels, self_or=self_or)
    elif algorithm == "nested":
        pairs = nested_loop_join(labeling, a_labels, d_labels, self_or=self_or)
    else:
        raise ValueError(f"unknown join algorithm {algorithm!r}")
    return [(labeling.node_of(a), labeling.node_of(d)) for a, d in pairs]
