"""AST for the XPath subset.

The grammar follows the paper's §3.5 core rules [1]–[3]: a location
path is a (possibly absolute) sequence of steps, each step an axis, a
node test and zero or more predicates. Predicates host a small
expression language (comparisons, and/or, literals, numbers, function
calls, nested relative paths).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union


@dataclass(frozen=True, slots=True)
class NodeTest:
    """A name test (``chapter``, ``*``) or node-type test (``text()``)."""

    name: Optional[str] = None  # None means '*'
    node_type: Optional[str] = None  # 'text' | 'node' | 'comment'

    def __str__(self) -> str:
        if self.node_type:
            return f"{self.node_type}()"
        return self.name or "*"


@dataclass(frozen=True, slots=True)
class Step:
    """One location step: ``axis::test[pred]...``."""

    axis: str
    test: NodeTest
    predicates: tuple = ()

    def __str__(self) -> str:
        preds = "".join(f"[{p}]" for p in self.predicates)
        return f"{self.axis}::{self.test}{preds}"


@dataclass(frozen=True, slots=True)
class LocationPath:
    """A (possibly absolute) chain of steps."""

    absolute: bool
    steps: tuple

    def __str__(self) -> str:
        body = "/".join(str(step) for step in self.steps)
        return ("/" + body) if self.absolute else body


@dataclass(frozen=True, slots=True)
class Literal:
    value: str

    def __str__(self) -> str:
        return f"'{self.value}'"


@dataclass(frozen=True, slots=True)
class Number:
    value: float

    def __str__(self) -> str:
        if self.value == int(self.value):
            return str(int(self.value))
        return str(self.value)


@dataclass(frozen=True, slots=True)
class BinaryOp:
    """Comparison or boolean connective over two expressions."""

    op: str  # '=', '!=', '<', '<=', '>', '>=', 'and', 'or'
    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True, slots=True)
class FunctionCall:
    name: str
    arguments: tuple = ()

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.arguments)
        return f"{self.name}({args})"


@dataclass(frozen=True, slots=True)
class Union_:
    """``|`` of location paths (top level only)."""

    paths: tuple

    def __str__(self) -> str:
        return " | ".join(str(p) for p in self.paths)


Expr = Union[LocationPath, Literal, Number, BinaryOp, FunctionCall]
