"""Query-layer cache and planning counters.

The storage layer charges :class:`~repro.storage.iostats.IoStats` for
every simulated disk touch; :class:`QueryStats` is the same ledger for
the query fast path, so experiments can report cache effectiveness
(plan cache, axis memo, synopsis pruning) alongside the I/O numbers.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry


@dataclass
class QueryStats:
    """Counters for the query fast path's caches and planner.

    A ledger may be shared by several evaluators running on different
    threads (the concurrent access layer does exactly that), so every
    increment goes through :meth:`count`, which serialises the
    read-modify-write under a per-ledger lock. ``+=`` on a plain
    attribute is *not* atomic in CPython — two racing threads can lose
    increments.
    """

    #: compiled-plan LRU cache
    plan_hits: int = 0
    plan_misses: int = 0
    plan_evictions: int = 0
    #: per-(label, axis) memo inside the scheme evaluator
    axis_cache_hits: int = 0
    axis_cache_misses: int = 0
    #: steps answered without touching data because the tag synopsis
    #: proves the node test cannot match
    synopsis_skips: int = 0
    #: steps evaluated set-at-a-time over the whole frontier
    batched_steps: int = 0
    #: steps answered wholesale by a store's native engine (SQL axis
    #: pushdown) without any Python axis evaluation
    pushdown_steps: int = 0
    #: StoreEvaluator per-tag candidate rank-array cache, keyed by
    #: (store, generation)
    candidate_cache_hits: int = 0
    candidate_cache_misses: int = 0
    candidate_cache_evictions: int = 0
    #: steps that fell back to the per-context path (predicates,
    #: sibling/horizontal axes, attribute axis)
    fallback_steps: int = 0
    #: document-order rank indexes (re)built
    rank_index_builds: int = 0
    #: queries that raised (any ReproError), across all error types
    queries_failed: int = 0
    #: per-error-type failure counts, keyed by exception class name;
    #: kept out of the dataclass fields (a dict field would break the
    #: registry's number-only flattening) and merged into
    #: :meth:`as_dict` as ``errors.<Type>`` scalars
    _error_counts: Dict[str, int] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: serialises counter mutation across threads (not a counter)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    def count(self, name: str, amount: int = 1) -> None:
        """Atomically add *amount* to counter field *name*."""
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def count_error(self, error_type: str) -> None:
        """Record one failed query of exception class *error_type*."""
        with self._lock:
            self.queries_failed += 1
            self._error_counts[error_type] = (
                self._error_counts.get(error_type, 0) + 1
            )

    def error_counts(self) -> Dict[str, int]:
        """Per-error-type failure counts (copy)."""
        with self._lock:
            return dict(self._error_counts)

    # ------------------------------------------------------------------
    @property
    def plan_hit_ratio(self) -> float:
        lookups = self.plan_hits + self.plan_misses
        if not lookups:
            return 1.0
        return self.plan_hits / lookups

    @property
    def axis_hit_ratio(self) -> float:
        lookups = self.axis_cache_hits + self.axis_cache_misses
        if not lookups:
            return 1.0
        return self.axis_cache_hits / lookups

    def as_dict(self) -> Dict[str, int]:
        """Every counter field, derived from the dataclass fields —
        adding a field can never silently drift out of the exported
        dict (or out of a registry this ledger is bound to) — plus one
        ``errors.<Type>`` scalar per error class seen."""
        out = {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if not f.name.startswith("_")
        }
        with self._lock:
            for error_type, count in self._error_counts.items():
                out[f"errors.{error_type}"] = count
        return out

    def snapshot(self) -> Dict[str, int]:
        return self.as_dict()

    def delta_since(self, earlier: Dict[str, int]) -> Dict[str, int]:
        """Difference between now and an earlier :meth:`snapshot`."""
        now = self.snapshot()
        return {key: now[key] - earlier.get(key, 0) for key in now}

    def reset(self) -> None:
        """Zero every counter field (field-driven, like :meth:`as_dict`)."""
        with self._lock:
            for f in fields(self):
                if not f.name.startswith("_"):
                    setattr(self, f.name, f.default)
            self._error_counts.clear()

    def bind(self, registry: "MetricsRegistry", prefix: str = "query") -> None:
        """Expose this ledger through *registry* as ``prefix.*`` pull
        metrics; the registry always reads live values, so the two can
        never disagree."""
        registry.register_source(prefix, self.as_dict)

    def __repr__(self) -> str:
        return (
            f"<QueryStats plans {self.plan_hits}/{self.plan_hits + self.plan_misses}"
            f" axes {self.axis_cache_hits}/"
            f"{self.axis_cache_hits + self.axis_cache_misses}"
            f" skips={self.synopsis_skips}>"
        )
