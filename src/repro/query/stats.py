"""Query-layer cache and planning counters.

The storage layer charges :class:`~repro.storage.iostats.IoStats` for
every simulated disk touch; :class:`QueryStats` is the same ledger for
the query fast path, so experiments can report cache effectiveness
(plan cache, axis memo, synopsis pruning) alongside the I/O numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class QueryStats:
    """Counters for the query fast path's caches and planner."""

    #: compiled-plan LRU cache
    plan_hits: int = 0
    plan_misses: int = 0
    plan_evictions: int = 0
    #: per-(label, axis) memo inside the scheme evaluator
    axis_cache_hits: int = 0
    axis_cache_misses: int = 0
    #: steps answered without touching data because the tag synopsis
    #: proves the node test cannot match
    synopsis_skips: int = 0
    #: steps evaluated set-at-a-time over the whole frontier
    batched_steps: int = 0
    #: steps that fell back to the per-context path (predicates,
    #: sibling/horizontal axes, attribute axis)
    fallback_steps: int = 0
    #: document-order rank indexes (re)built
    rank_index_builds: int = 0

    # ------------------------------------------------------------------
    @property
    def plan_hit_ratio(self) -> float:
        lookups = self.plan_hits + self.plan_misses
        if not lookups:
            return 1.0
        return self.plan_hits / lookups

    @property
    def axis_hit_ratio(self) -> float:
        lookups = self.axis_cache_hits + self.axis_cache_misses
        if not lookups:
            return 1.0
        return self.axis_cache_hits / lookups

    def snapshot(self) -> Dict[str, int]:
        return {
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
            "plan_evictions": self.plan_evictions,
            "axis_cache_hits": self.axis_cache_hits,
            "axis_cache_misses": self.axis_cache_misses,
            "synopsis_skips": self.synopsis_skips,
            "batched_steps": self.batched_steps,
            "fallback_steps": self.fallback_steps,
            "rank_index_builds": self.rank_index_builds,
        }

    def delta_since(self, earlier: Dict[str, int]) -> Dict[str, int]:
        """Difference between now and an earlier :meth:`snapshot`."""
        now = self.snapshot()
        return {key: now[key] - earlier.get(key, 0) for key in now}

    def reset(self) -> None:
        self.plan_hits = 0
        self.plan_misses = 0
        self.plan_evictions = 0
        self.axis_cache_hits = 0
        self.axis_cache_misses = 0
        self.synopsis_skips = 0
        self.batched_steps = 0
        self.fallback_steps = 0
        self.rank_index_builds = 0

    def __repr__(self) -> str:
        return (
            f"<QueryStats plans {self.plan_hits}/{self.plan_hits + self.plan_misses}"
            f" axes {self.axis_cache_hits}/"
            f"{self.axis_cache_hits + self.axis_cache_misses}"
            f" skips={self.synopsis_skips}>"
        )
