"""Tokenizer for the XPath subset (core location paths, §3.5)."""

from __future__ import annotations

from typing import Iterator, List

from repro.errors import XPathSyntaxError
from repro.query.tokens import Token, TokenKind

_PUNCT = {
    "//": TokenKind.DOUBLE_SLASH,
    "::": TokenKind.AXIS_SEP,
    "!=": TokenKind.NOT_EQUALS,
    "<=": TokenKind.LESS_EQUAL,
    ">=": TokenKind.GREATER_EQUAL,
    "..": TokenKind.DOTDOT,
    "/": TokenKind.SLASH,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "@": TokenKind.AT,
    "*": TokenKind.STAR,
    ",": TokenKind.COMMA,
    "=": TokenKind.EQUALS,
    "<": TokenKind.LESS,
    ">": TokenKind.GREATER,
    "|": TokenKind.PIPE,
}

_KEYWORDS = {"and": TokenKind.AND, "or": TokenKind.OR}


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in "_-."


def tokenize(expression: str) -> List[Token]:
    """Tokenize *expression*, appending an END sentinel."""
    return list(_scan(expression))


def _scan(expression: str) -> Iterator[Token]:
    position = 0
    length = len(expression)
    while position < length:
        ch = expression[position]
        if ch.isspace():
            position += 1
            continue
        two = expression[position : position + 2]
        if two in _PUNCT:
            yield Token(_PUNCT[two], two, position)
            position += 2
            continue
        # '.' is tricky: '..' handled above; '.5' is a number; '.' alone a step.
        if ch == "." and position + 1 < length and expression[position + 1].isdigit():
            start = position
            position += 1
            while position < length and expression[position].isdigit():
                position += 1
            yield Token(TokenKind.NUMBER, expression[start:position], start)
            continue
        if ch == ".":
            yield Token(TokenKind.DOT, ".", position)
            position += 1
            continue
        if ch in _PUNCT:
            yield Token(_PUNCT[ch], ch, position)
            position += 1
            continue
        if ch in "'\"":
            end = expression.find(ch, position + 1)
            if end < 0:
                raise XPathSyntaxError("unterminated string literal", position)
            yield Token(TokenKind.STRING, expression[position + 1 : end], position)
            position = end + 1
            continue
        if ch.isdigit():
            start = position
            while position < length and expression[position].isdigit():
                position += 1
            if position < length and expression[position] == ".":
                position += 1
                while position < length and expression[position].isdigit():
                    position += 1
            yield Token(TokenKind.NUMBER, expression[start:position], start)
            continue
        if _is_name_start(ch):
            start = position
            while position < length and _is_name_char(expression[position]):
                position += 1
            text = expression[start:position]
            # 'and'/'or' are keywords only in operator position; the
            # parser disambiguates by context, so emit keyword kinds and
            # let it down-convert when a name is expected.
            yield Token(_KEYWORDS.get(text, TokenKind.NAME), text, start)
            continue
        raise XPathSyntaxError(f"unexpected character {ch!r}", position)
    yield Token(TokenKind.END, "", length)
