"""Twig-pattern matching via structural joins.

A *twig* is a small tree pattern — the workhorse of XML query
processing and the natural consumer of both the numbering scheme's
relation arithmetic and the structural-join operators. Patterns are
written in a compact XPath-like syntax::

    person[name][profile//interest]
    //open_auction[bidder]/seller
    site/people//person[address/city]

``/`` means child, ``//`` means descendant, and ``[...]`` attaches a
branch predicate. Matching is bottom-up: each pattern node's candidate
set (all document nodes with its tag) is semi-join-filtered by its
branches — child edges through parent arithmetic (one ``rparent`` per
candidate), descendant edges through the stack-tree join.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cmp_to_key
from typing import Dict, List, Optional, Set, Tuple


from repro.core.scheme import Labeling
from repro.errors import NoParentError, QueryError
from repro.query.joins import (
    choose_join_algorithm,
    nested_loop_join,
    stack_tree_join,
)
from repro.xmltree.node import NodeKind, XmlNode


@dataclass(frozen=True, slots=True)
class TwigNode:
    """One pattern node: a tag test plus branch patterns."""

    tag: Optional[str]  # None = any element ('*')
    axis: str = "child"  # edge from the parent pattern: child | descendant
    branches: Tuple["TwigNode", ...] = ()

    def __str__(self) -> str:
        label = self.tag or "*"
        parts = [label]
        for branch in self.branches:
            sep = "//" if branch.axis == "descendant" else "/"
            parts.append(f"[{sep if branch.axis == 'descendant' else ''}{branch}]")
        return "".join(parts)


def parse_twig(pattern: str) -> TwigNode:
    """Parse the compact twig syntax into a :class:`TwigNode` tree.

    The spine (``a/b//c``) becomes nested single-branch nodes; bracket
    groups attach additional branches at the node they follow.
    """
    parser = _TwigParser(pattern)
    root = parser.parse_spine()
    parser.expect_end()
    return root


class _TwigParser:
    def __init__(self, text: str):
        self.text = text
        self.position = 0

    def error(self, message: str) -> None:
        raise QueryError(f"{message} (at offset {self.position} in {self.text!r})")

    def peek(self) -> str:
        return self.text[self.position] if self.position < len(self.text) else ""

    def expect_end(self) -> None:
        if self.position != len(self.text):
            self.error(f"unexpected {self.peek()!r}")

    def parse_spine(self) -> TwigNode:
        axis = "child"
        if self.text.startswith("//", self.position):
            self.position += 2
            axis = "descendant"
        elif self.peek() == "/":
            self.position += 1
        return self.parse_step(axis)

    def parse_step(self, axis: str) -> TwigNode:
        tag = self.parse_name()
        branches: List[TwigNode] = []
        while self.peek() == "[":
            self.position += 1
            branches.append(self.parse_spine())
            if self.peek() != "]":
                self.error("expected ']'")
            self.position += 1
        # spine continuation becomes one more branch (the output path)
        if self.text.startswith("//", self.position):
            self.position += 2
            branches.append(self.parse_step("descendant"))
        elif self.peek() == "/":
            self.position += 1
            branches.append(self.parse_step("child"))
        return TwigNode(tag, axis, tuple(branches))

    def parse_name(self) -> Optional[str]:
        if self.peek() == "*":
            self.position += 1
            return None
        start = self.position
        while self.peek() and (self.peek().isalnum() or self.peek() in "_-."):
            self.position += 1
        if start == self.position:
            self.error("expected a tag name or '*'")
        return self.text[start : self.position]


class TwigMatcher:
    """Match twig patterns against a labeled document."""

    def __init__(self, labeling: Labeling):
        self.labeling = labeling
        self._by_tag: Optional[Dict[str, List]] = None
        self._elements: Optional[List] = None

    def _candidates(self, pattern: TwigNode) -> List:
        """Labels of the nodes passing the pattern's tag test."""
        if self._by_tag is None:
            by_tag: Dict[str, List] = {}
            elements: List = []
            for node in self.labeling.tree.preorder():
                if node.kind is not NodeKind.ELEMENT:
                    continue
                label = self.labeling.label_of(node)
                by_tag.setdefault(node.tag, []).append(label)
                elements.append(label)
            self._by_tag = by_tag
            self._elements = elements
        if pattern.tag is None:
            return list(self._elements)
        return list(self._by_tag.get(pattern.tag, []))

    def match_labels(self, pattern: TwigNode) -> List:
        """Labels of the nodes matching the *root* of the pattern, in
        document order (integer ranks when the labeling's rank index
        knows every label, comparator sort otherwise)."""
        matched = list(self._match(pattern))
        try:
            ranks = self.labeling.rank_index().try_ranks(matched)
        except Exception:  # labeling cannot enumerate — comparator path
            ranks = None
        if ranks is not None:
            order = sorted(range(len(matched)), key=ranks.__getitem__)
            return [matched[i] for i in order]
        return sorted(matched, key=cmp_to_key(self.labeling.doc_compare))

    def match(self, pattern) -> List[XmlNode]:
        """Nodes matching the pattern root; accepts a TwigNode or the
        compact string syntax."""
        if isinstance(pattern, str):
            pattern = parse_twig(pattern)
        return [self.labeling.node_of(label) for label in self.match_labels(pattern)]

    def count(self, pattern) -> int:
        if isinstance(pattern, str):
            pattern = parse_twig(pattern)
        return len(self._match(pattern))

    # ------------------------------------------------------------------
    def _match(self, pattern: TwigNode) -> Set:
        """Bottom-up semi-join evaluation: the set of labels whose
        subtree embeds the pattern."""
        survivors = set(self._candidates(pattern))
        for branch in pattern.branches:
            if not survivors:
                return survivors
            branch_matches = self._match(branch)
            if branch.axis == "child":
                survivors &= self._parents_of(branch_matches)
            else:
                survivors &= self._ancestors_with_descendant(
                    survivors, branch_matches
                )
        return survivors

    def _parents_of(self, labels: Set) -> Set:
        """Parent labels of a set — one arithmetic step each (this is
        where rUID/Dewey shine: no index, no join)."""
        parents: Set = set()
        for label in labels:
            try:
                parents.add(self.labeling.parent_label(label))
            except NoParentError:
                continue
        return parents

    def _ancestors_with_descendant(self, candidates: Set, descendants: Set) -> Set:
        """Candidates that have at least one descendant in the set,
        via a structural join picked by input cardinality."""
        upper = list(candidates)
        lower = list(descendants)
        if choose_join_algorithm(len(upper), len(lower)) == "nested":
            pairs = nested_loop_join(self.labeling, upper, lower)
        else:
            pairs = stack_tree_join(self.labeling, upper, lower)
        return {a for a, _d in pairs}
