"""Twig-pattern matching via structural joins.

A *twig* is a small tree pattern — the workhorse of XML query
processing and the natural consumer of both the numbering scheme's
relation arithmetic and the structural-join operators. Patterns are
written in a compact XPath-like syntax::

    person[name][profile//interest]
    //open_auction[bidder]/seller
    site/people//person[address/city]

``/`` means child, ``//`` means descendant, and ``[...]`` attaches a
branch predicate. Matching is bottom-up: each pattern node's candidate
set (all document nodes with its tag) is semi-join-filtered by its
branches — child edges through parent arithmetic (one ``rparent`` per
candidate), descendant edges through the stack-tree join.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from functools import cmp_to_key
from time import perf_counter_ns
from typing import List, Optional, Set, Tuple


from repro.core.scheme import Labeling
from repro.errors import QueryError
from repro.obs.explain import TwigNodePlan, TwigPlan
from repro.obs.trace import NULL_TRACER
from repro.query.joins import (
    choose_join_algorithm,
    nested_loop_join,
    stack_tree_join,
)
from repro.store.base import NodeStore
from repro.xmltree.node import XmlNode


@dataclass(frozen=True, slots=True)
class TwigNode:
    """One pattern node: a tag test plus branch patterns."""

    tag: Optional[str]  # None = any element ('*')
    axis: str = "child"  # edge from the parent pattern: child | descendant
    branches: Tuple["TwigNode", ...] = ()

    def __str__(self) -> str:
        label = self.tag or "*"
        parts = [label]
        for branch in self.branches:
            sep = "//" if branch.axis == "descendant" else "/"
            parts.append(f"[{sep if branch.axis == 'descendant' else ''}{branch}]")
        return "".join(parts)


def parse_twig(pattern: str) -> TwigNode:
    """Parse the compact twig syntax into a :class:`TwigNode` tree.

    The spine (``a/b//c``) becomes nested single-branch nodes; bracket
    groups attach additional branches at the node they follow.
    """
    parser = _TwigParser(pattern)
    root = parser.parse_spine()
    parser.expect_end()
    return root


class _TwigParser:
    def __init__(self, text: str):
        self.text = text
        self.position = 0

    def error(self, message: str) -> None:
        raise QueryError(f"{message} (at offset {self.position} in {self.text!r})")

    def peek(self) -> str:
        return self.text[self.position] if self.position < len(self.text) else ""

    def expect_end(self) -> None:
        if self.position != len(self.text):
            self.error(f"unexpected {self.peek()!r}")

    def parse_spine(self) -> TwigNode:
        axis = "child"
        if self.text.startswith("//", self.position):
            self.position += 2
            axis = "descendant"
        elif self.peek() == "/":
            self.position += 1
        return self.parse_step(axis)

    def parse_step(self, axis: str) -> TwigNode:
        tag = self.parse_name()
        branches: List[TwigNode] = []
        while self.peek() == "[":
            self.position += 1
            branches.append(self.parse_spine())
            if self.peek() != "]":
                self.error("expected ']'")
            self.position += 1
        # spine continuation becomes one more branch (the output path)
        if self.text.startswith("//", self.position):
            self.position += 2
            branches.append(self.parse_step("descendant"))
        elif self.peek() == "/":
            self.position += 1
            branches.append(self.parse_step("child"))
        return TwigNode(tag, axis, tuple(branches))

    def parse_name(self) -> Optional[str]:
        if self.peek() == "*":
            self.position += 1
            return None
        start = self.position
        while self.peek() and (self.peek().isalnum() or self.peek() in "_-."):
            self.position += 1
        if start == self.position:
            self.error("expected a tag name or '*'")
        return self.text[start : self.position]


class TwigMatcher:
    """Match twig patterns against a labeled document.

    Accepts either a scheme :class:`~repro.core.scheme.Labeling` (the
    historical interface — candidates then come through a
    :class:`~repro.store.memory.MemoryNodeStore` wrapped around it) or
    any :class:`~repro.store.base.NodeStore` directly, so the same
    matcher runs over paged documents and pinned snapshots.

    ``tracer`` (default: the shared no-op) receives one ``twig.node``
    span per pattern node and a ``twig.join`` span per structural join,
    annotated with the chosen algorithm.
    """

    #: cooperative-cancellation budget for the running match (set via
    #: :meth:`set_deadline`); consulted in the bottom-up recursion and
    #: inside the join loops
    deadline = None

    def __init__(self, source, tracer=NULL_TRACER):
        if isinstance(source, NodeStore):
            self.labeling: Optional[Labeling] = None
            self.store: NodeStore = source
        else:
            self.labeling = source
            from repro.store.memory import MemoryNodeStore

            self.store = MemoryNodeStore(source)
        self.tracer = tracer

    def set_deadline(self, deadline) -> None:
        """Attach (or clear, with None) a
        :class:`~repro.resilience.Deadline`, forwarding it to the
        backing store so label probes tick as well."""
        self.deadline = deadline
        try:
            self.store.deadline = deadline
        except AttributeError:
            pass  # slotted stores don't carry a deadline

    def _candidates(self, pattern: TwigNode) -> List:
        """Labels of the nodes passing the pattern's tag test."""
        if pattern.tag is None:
            return self.store.element_labels()
        return self.store.labels_with_tag(pattern.tag)

    def match_labels(self, pattern: TwigNode) -> List:
        """Labels of the nodes matching the *root* of the pattern, in
        document order (integer ranks when the store knows every label,
        comparator sort otherwise)."""
        matched = list(self._match(pattern))
        try:
            ranks = [self.store.rank_of(label) for label in matched]
        except Exception:  # store cannot rank — comparator path
            ranks = None
        if ranks is not None:
            order = sorted(range(len(matched)), key=ranks.__getitem__)
            return [matched[i] for i in order]
        return sorted(matched, key=cmp_to_key(self.labeling.doc_compare))

    def match(self, pattern) -> List[XmlNode]:
        """Nodes matching the pattern root; accepts a TwigNode or the
        compact string syntax."""
        if isinstance(pattern, str):
            pattern = parse_twig(pattern)
        return [self.store.node_for(label) for label in self.match_labels(pattern)]

    def count(self, pattern) -> int:
        if isinstance(pattern, str):
            pattern = parse_twig(pattern)
        return len(self._match(pattern))

    # ------------------------------------------------------------------
    # EXPLAIN / EXPLAIN ANALYZE
    # ------------------------------------------------------------------
    def explain(self, pattern, analyze: bool = False,
                scheme: Optional[str] = None) -> TwigPlan:
        """The match plan for *pattern*: per pattern node its candidate
        cardinality and the join algorithm each edge will use
        (``rparent`` arithmetic for child edges, ``nested`` vs
        ``stack`` for descendant edges by the cardinality cutoff).
        With ``analyze``, one run is executed and surviving-match
        counts plus per-node timings are recorded; branches skipped by
        an empty intermediate result are marked."""
        if isinstance(pattern, str):
            text, parsed = pattern, parse_twig(pattern)
        else:
            text, parsed = str(pattern), pattern
        if scheme is None:
            scheme = (
                type(self.labeling).__name__
                if self.labeling is not None
                else f"{self.store.store_kind}:{self.store.scheme_name}"
            )
        plan = TwigPlan(pattern=text, scheme=scheme)
        if not analyze:
            self._static_plan(parsed, plan.nodes, 0)
            return plan
        start = perf_counter_ns()
        survivors = self._match(parsed, plan.nodes)
        plan.total_ns = perf_counter_ns() - start
        plan.analyzed = True
        plan.match_count = len(survivors)
        return plan

    def _static_plan(self, pattern: TwigNode, out: List[TwigNodePlan],
                     depth: int) -> None:
        """Preorder candidate/algorithm estimates without running."""
        node_plan = TwigNodePlan(
            tag=pattern.tag or "*",
            axis="-" if depth == 0 else pattern.axis,
            depth=depth,
            candidates=len(self._candidates(pattern)),
        )
        out.append(node_plan)
        for branch in pattern.branches:
            index = len(out)
            self._static_plan(branch, out, depth + 1)
            if branch.axis == "child":
                out[index].algorithm = "rparent"
            else:
                out[index].algorithm = choose_join_algorithm(
                    node_plan.candidates, out[index].candidates
                )

    def _plan_skipped(self, pattern: TwigNode, out: List[TwigNodePlan],
                      depth: int) -> None:
        before = len(out)
        self._static_plan(pattern, out, depth)
        for node_plan in out[before:]:
            node_plan.skipped = True

    # ------------------------------------------------------------------
    def _match(
        self,
        pattern: TwigNode,
        _plan: Optional[List[TwigNodePlan]] = None,
        _depth: int = 0,
    ) -> Set:
        """Bottom-up semi-join evaluation: the set of labels whose
        subtree embeds the pattern. With ``_plan``, each evaluated
        pattern node appends a :class:`TwigNodePlan` (preorder)."""
        record = _plan is not None
        start = perf_counter_ns() if record else 0
        with self.tracer.span(
            "twig.node", tag=pattern.tag or "*", axis=pattern.axis
        ) as span:
            survivors = set(self._candidates(pattern))
            if self.deadline is not None:
                # one weighted cancellation point per pattern node
                self.deadline.tick(len(survivors))
            node_plan: Optional[TwigNodePlan] = None
            if record:
                node_plan = TwigNodePlan(
                    tag=pattern.tag or "*",
                    axis="-" if _depth == 0 else pattern.axis,
                    depth=_depth,
                    candidates=len(survivors),
                )
                _plan.append(node_plan)
            for position, branch in enumerate(pattern.branches):
                if not survivors:
                    if record:
                        for remaining in pattern.branches[position:]:
                            self._plan_skipped(remaining, _plan, _depth + 1)
                        node_plan.survivors = 0
                        node_plan.time_ns = perf_counter_ns() - start
                    span.set(survivors=0)
                    return survivors
                branch_index = len(_plan) if record else 0
                branch_matches = self._match(branch, _plan, _depth + 1)
                branch_plan = _plan[branch_index] if record else None
                if branch.axis == "child":
                    if branch_plan is not None:
                        branch_plan.algorithm = "rparent"
                    survivors &= self._parents_of(branch_matches)
                else:
                    algorithm = choose_join_algorithm(
                        len(survivors), len(branch_matches)
                    )
                    if branch_plan is not None:
                        branch_plan.algorithm = algorithm
                    survivors &= self._ancestors_with_descendant(
                        survivors, branch_matches, algorithm
                    )
            if record:
                node_plan.survivors = len(survivors)
                node_plan.time_ns = perf_counter_ns() - start
            span.set(survivors=len(survivors))
        return survivors

    def _parents_of(self, labels: Set) -> Set:
        """Parent labels of a set — one arithmetic step each (this is
        where rUID/Dewey shine: no index, no join)."""
        parents: Set = set()
        parent_of = self.store.parent_of
        deadline = self.deadline
        for label in labels:
            if deadline is not None:
                deadline.tick()
            parent = parent_of(label)
            if parent is not None:
                parents.add(parent)
        return parents

    def _ancestors_with_descendant(
        self, candidates: Set, descendants: Set,
        algorithm: Optional[str] = None,
    ) -> Set:
        """Candidates that have at least one descendant in the set,
        via a structural join picked by input cardinality."""
        upper = list(candidates)
        lower = list(descendants)
        if algorithm is None:
            algorithm = choose_join_algorithm(len(upper), len(lower))
        with self.tracer.span(
            "twig.join", algorithm=algorithm,
            ancestors=len(upper), descendants=len(lower),
        ) as span:
            if self.labeling is None:
                out = self._interval_semijoin(upper, lower)
                span.set(pairs=len(out), survivors=len(out))
                return out
            if algorithm == "nested":
                pairs = nested_loop_join(self.labeling, upper, lower)
            else:
                pairs = stack_tree_join(self.labeling, upper, lower)
            out = {a for a, _d in pairs}
            span.set(pairs=len(pairs), survivors=len(out))
        return out

    def _interval_semijoin(self, upper: List, lower: List) -> Set:
        """Store-mode descendant semi-join: a candidate survives iff
        some descendant's rank falls inside its subtree interval —
        a bisect per candidate over the rank-sorted descendants."""
        rank_of = self.store.rank_of
        lower_ranks = sorted(rank_of(label) for label in lower)
        out: Set = set()
        deadline = self.deadline
        for label in upper:
            if deadline is not None:
                deadline.tick()
            rank = rank_of(label)
            position = bisect_right(lower_ranks, rank)
            if (
                position < len(lower_ranks)
                and lower_ranks[position] <= self.store.end_of(label)
            ):
                out.add(label)
        return out
