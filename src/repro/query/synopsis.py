"""Structural summaries: DataGuide-style path summary and tag→area synopsis.

The paper's related work (§6) points at structural summaries
(DataGuides [4], representative objects) as the complementary indexing
device, and its §4 "database file/table selection" needs exactly such
a synopsis to route queries: *which UID-local areas can contain nodes
matching this tag/path at all?*

Two summaries are provided:

* :class:`PathSummary` — the strong DataGuide of a document: one node
  per distinct root-to-node tag path, annotated with occurrence counts;
* :class:`TagAreaSynopsis` — tag → sorted list of area global indices,
  the pre-filter behind §4 table routing, maintainable incrementally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.core.ruid import Ruid2Labeling
from repro.xmltree.node import NodeKind, XmlNode
from repro.xmltree.tree import XmlTree


@dataclass
class PathSummaryNode:
    """One distinct tag path of the document."""

    tag: str
    count: int = 0
    children: Dict[str, "PathSummaryNode"] = field(default_factory=dict)

    def child(self, tag: str) -> Optional["PathSummaryNode"]:
        return self.children.get(tag)


class PathSummary:
    """The strong DataGuide: every distinct root-to-node tag path once.

    Built in one pass; answers "does path p occur?", "how many nodes
    match p?", and enumerates the paths matching a tag sequence with
    ``//`` gaps — the pre-filter a path-query optimiser wants before
    touching data.
    """

    def __init__(self, tree: XmlTree, elements_only: bool = True):
        self.root = PathSummaryNode(tree.root.tag)
        self._distinct = 1
        stack: List[Tuple[XmlNode, PathSummaryNode]] = [(tree.root, self.root)]
        self.root.count = 1
        while stack:
            node, summary = stack.pop()
            for child in node.children:
                if elements_only and child.kind is not NodeKind.ELEMENT:
                    continue
                entry = summary.children.get(child.tag)
                if entry is None:
                    entry = PathSummaryNode(child.tag)
                    summary.children[child.tag] = entry
                    self._distinct += 1
                entry.count += 1
                stack.append((child, entry))

    @property
    def distinct_paths(self) -> int:
        return self._distinct

    def lookup(self, path: Tuple[str, ...]) -> Optional[PathSummaryNode]:
        """The summary node for a root-anchored tag path, or None.

        ``path`` includes the root tag: ``("site", "people", "person")``.
        """
        if not path or path[0] != self.root.tag:
            return None
        node = self.root
        for tag in path[1:]:
            node = node.child(tag)
            if node is None:
                return None
        return node

    def count(self, path: Tuple[str, ...]) -> int:
        """Number of document nodes on the exact path (0 if absent)."""
        node = self.lookup(path)
        return node.count if node else 0

    def paths(self) -> Iterator[Tuple[str, ...]]:
        """All distinct paths, root first, preorder."""
        stack: List[Tuple[PathSummaryNode, Tuple[str, ...]]] = [
            (self.root, (self.root.tag,))
        ]
        while stack:
            node, path = stack.pop()
            yield path
            for tag in sorted(node.children, reverse=True):
                stack.append((node.children[tag], path + (tag,)))

    def paths_ending_with(self, tag: str) -> List[Tuple[str, ...]]:
        """Every distinct path whose last step is *tag* (the `//tag`
        pre-filter)."""
        return [path for path in self.paths() if path[-1] == tag]

    def __contains__(self, path: Tuple[str, ...]) -> bool:
        return self.lookup(path) is not None

    def __repr__(self) -> str:
        return f"<PathSummary paths={self._distinct}>"


class TagStatistics:
    """Per-document tag occurrence statistics — the evaluator's pruning
    synopsis.

    One pass over the tree records, per element tag, how many element
    nodes carry it, plus the set of attribute names in use. The scheme
    evaluator consults this before running an axis step: a name test
    over a tag that occurs zero times cannot match anywhere, so the
    step short-circuits to the empty node-set without generating a
    single candidate; tag counts also feed cardinality-based operator
    choices (nested-loop vs stack-tree join).
    """

    __slots__ = ("element_counts", "attribute_names", "total_elements")

    def __init__(self, tree: XmlTree):
        counts: Dict[str, int] = {}
        attribute_names: set = set()
        total = 0
        for node in tree.preorder():
            if node.kind is NodeKind.ELEMENT:
                counts[node.tag] = counts.get(node.tag, 0) + 1
                total += 1
                if node.attributes:
                    attribute_names.update(node.attributes)
            elif node.kind is NodeKind.ATTRIBUTE:
                attribute_names.add(node.tag)
        self.element_counts = counts
        self.attribute_names = attribute_names
        self.total_elements = total

    def count(self, tag: str) -> int:
        """Number of element nodes with *tag* (0 if absent)."""
        return self.element_counts.get(tag, 0)

    def can_match_element(self, tag: str) -> bool:
        return tag in self.element_counts

    def can_match_attribute(self, name: str) -> bool:
        return name in self.attribute_names

    def __repr__(self) -> str:
        return (
            f"<TagStatistics tags={len(self.element_counts)} "
            f"elements={self.total_elements}>"
        )


class TagAreaSynopsis:
    """tag → sorted global indices of the areas containing that tag.

    This is the §4 routing pre-filter: a query on tag *t* opens only
    the per-area tables listed here. The synopsis is tiny (one sorted
    int list per distinct tag) and is refreshed from the labeling —
    call :meth:`refresh` after structural updates (area membership may
    have moved)."""

    def __init__(self, labeling: Ruid2Labeling, elements_only: bool = False):
        self.labeling = labeling
        self.elements_only = elements_only
        self._areas_by_tag: Dict[str, List[int]] = {}
        self.refresh()

    def refresh(self) -> None:
        areas: Dict[str, Set[int]] = {}
        for node, label in self.labeling.items():
            if self.elements_only and node.kind is not NodeKind.ELEMENT:
                continue
            areas.setdefault(node.tag, set()).add(label.global_index)
        self._areas_by_tag = {
            tag: sorted(globals_) for tag, globals_ in areas.items()
        }

    def areas_for(self, tag: str) -> List[int]:
        """Sorted area globals that may contain *tag* (empty if none)."""
        return self._areas_by_tag.get(tag, [])

    def areas_for_all(self, tags: Iterator[str]) -> List[int]:
        """Areas that may contain *every* tag (intersection)."""
        result: Optional[Set[int]] = None
        for tag in tags:
            current = set(self.areas_for(tag))
            result = current if result is None else (result & current)
            if not result:
                return []
        return sorted(result or [])

    def selectivity(self, tag: str) -> float:
        """Fraction of areas a routed lookup must open (0..1)."""
        total = self.labeling.area_count()
        if not total:
            return 0.0
        return len(self.areas_for(tag)) / total

    def memory_entries(self) -> int:
        """Total (tag, area) pairs stored."""
        return sum(len(v) for v in self._areas_by_tag.values())

    def __repr__(self) -> str:
        return (
            f"<TagAreaSynopsis tags={len(self._areas_by_tag)} "
            f"entries={self.memory_entries()}>"
        )
