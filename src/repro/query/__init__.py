"""XPath-subset query engine (lexer, parser, evaluators, facade)."""

from repro.query.ast import (
    BinaryOp,
    FunctionCall,
    Literal,
    LocationPath,
    NodeTest,
    Number,
    Step,
    Union_,
)
from repro.query.engine import XPathEngine
from repro.query.evaluator import (
    NavigationalEvaluator,
    SchemeEvaluator,
    node_test_matches,
    string_value,
)
from repro.query.joins import (
    choose_join_algorithm,
    join_nodes,
    nested_loop_join,
    stack_tree_join,
)
from repro.query.lexer import tokenize
from repro.query.parser import parse_xpath
from repro.query.stats import QueryStats
from repro.query.synopsis import PathSummary, TagAreaSynopsis, TagStatistics
from repro.query.twig import TwigMatcher, TwigNode, parse_twig

__all__ = [
    "BinaryOp",
    "FunctionCall",
    "Literal",
    "LocationPath",
    "NavigationalEvaluator",
    "NodeTest",
    "Number",
    "PathSummary",
    "QueryStats",
    "SchemeEvaluator",
    "Step",
    "TagAreaSynopsis",
    "TagStatistics",
    "TwigMatcher",
    "TwigNode",
    "Union_",
    "XPathEngine",
    "choose_join_algorithm",
    "join_nodes",
    "nested_loop_join",
    "node_test_matches",
    "parse_twig",
    "parse_xpath",
    "stack_tree_join",
    "string_value",
    "tokenize",
]
