"""XPath-subset query engine (lexer, parser, evaluators, facade)."""

from repro.query.ast import (
    BinaryOp,
    FunctionCall,
    Literal,
    LocationPath,
    NodeTest,
    Number,
    Step,
    Union_,
)
from repro.query.engine import XPathEngine
from repro.query.evaluator import (
    NavigationalEvaluator,
    SchemeEvaluator,
    node_test_matches,
    string_value,
)
from repro.query.joins import join_nodes, nested_loop_join, stack_tree_join
from repro.query.lexer import tokenize
from repro.query.parser import parse_xpath
from repro.query.synopsis import PathSummary, TagAreaSynopsis
from repro.query.twig import TwigMatcher, TwigNode, parse_twig

__all__ = [
    "BinaryOp",
    "FunctionCall",
    "Literal",
    "LocationPath",
    "NavigationalEvaluator",
    "NodeTest",
    "Number",
    "PathSummary",
    "SchemeEvaluator",
    "Step",
    "TagAreaSynopsis",
    "TwigMatcher",
    "TwigNode",
    "Union_",
    "XPathEngine",
    "join_nodes",
    "nested_loop_join",
    "node_test_matches",
    "parse_twig",
    "parse_xpath",
    "stack_tree_join",
    "string_value",
    "tokenize",
]
