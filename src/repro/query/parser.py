"""Recursive-descent parser for the XPath subset.

Grammar (paper §3.5 core rules, plus predicates and unions)::

    Union         := LocationPath ('|' LocationPath)*
    LocationPath  := '/' RelativePath? | '//' RelativePath | RelativePath
    RelativePath  := Step (('/' | '//') Step)*
    Step          := '.' | '..'
                   | (AxisName '::' | '@')? NodeTest Predicate*
    NodeTest      := NAME | '*' | ('text'|'node'|'comment') '(' ')'
    Predicate     := '[' OrExpr ']'
    OrExpr        := AndExpr ('or' AndExpr)*
    AndExpr       := CmpExpr ('and' CmpExpr)*
    CmpExpr       := Primary (('='|'!='|'<'|'<='|'>'|'>=') Primary)?
    Primary       := STRING | NUMBER | FunctionCall | RelativeOrAbsPath
                   | '(' OrExpr ')'

An abbreviated ``//`` expands to ``/descendant-or-self::node()/`` and
``@name`` to ``attribute::name``, per the XPath 1.0 abbreviations.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import UnsupportedFeatureError, XPathSyntaxError
from repro.query.ast import (
    BinaryOp,
    Expr,
    FunctionCall,
    Literal,
    LocationPath,
    NodeTest,
    Number,
    Step,
    Union_,
)
from repro.query.lexer import tokenize
from repro.query.tokens import AXIS_NAMES, NODE_TYPE_TESTS, Token, TokenKind

_DESC_OR_SELF_STEP = Step("descendant-or-self", NodeTest(node_type="node"))


class _Parser:
    def __init__(self, expression: str):
        self.tokens = tokenize(expression)
        self.index = 0

    # -- cursor helpers --------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.index + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind is not TokenKind.END:
            self.index += 1
        return token

    def expect(self, kind: TokenKind) -> Token:
        token = self.peek()
        if token.kind is not kind:
            raise XPathSyntaxError(
                f"expected {kind.value!r}, found {token.text!r}", token.position
            )
        return self.advance()

    def accept(self, kind: TokenKind) -> bool:
        if self.peek().kind is kind:
            self.advance()
            return True
        return False

    # -- grammar -----------------------------------------------------------
    def parse(self) -> Expr:
        expr = self.parse_or()
        tail = self.peek()
        if tail.kind is not TokenKind.END:
            raise XPathSyntaxError(f"unexpected {tail.text!r}", tail.position)
        return expr

    def parse_location_path(self) -> LocationPath:
        token = self.peek()
        if token.kind is TokenKind.SLASH:
            self.advance()
            if self._starts_step():
                return LocationPath(True, tuple(self._relative_steps()))
            return LocationPath(True, ())
        if token.kind is TokenKind.DOUBLE_SLASH:
            self.advance()
            steps = [_DESC_OR_SELF_STEP, *self._relative_steps()]
            return LocationPath(True, tuple(steps))
        return LocationPath(False, tuple(self._relative_steps()))

    def _relative_steps(self) -> List[Step]:
        steps = [self.parse_step()]
        while True:
            if self.accept(TokenKind.SLASH):
                steps.append(self.parse_step())
            elif self.accept(TokenKind.DOUBLE_SLASH):
                steps.append(_DESC_OR_SELF_STEP)
                steps.append(self.parse_step())
            else:
                return steps

    def _starts_step(self) -> bool:
        kind = self.peek().kind
        return kind in (
            TokenKind.NAME,
            TokenKind.STAR,
            TokenKind.AT,
            TokenKind.DOT,
            TokenKind.DOTDOT,
            TokenKind.AND,  # 'and'/'or' usable as element names in step position
            TokenKind.OR,
        )

    def parse_step(self) -> Step:
        token = self.peek()
        if token.kind is TokenKind.DOT:
            self.advance()
            return Step("self", NodeTest(node_type="node"), self._predicates())
        if token.kind is TokenKind.DOTDOT:
            self.advance()
            return Step("parent", NodeTest(node_type="node"), self._predicates())
        axis = "child"
        if token.kind is TokenKind.AT:
            self.advance()
            axis = "attribute"
        elif (
            token.kind in (TokenKind.NAME, TokenKind.AND, TokenKind.OR)
            and self.peek(1).kind is TokenKind.AXIS_SEP
        ):
            if token.text not in AXIS_NAMES:
                raise UnsupportedFeatureError(f"unknown axis {token.text!r}")
            axis = token.text
            self.advance()
            self.advance()  # '::'
        test = self.parse_node_test()
        return Step(axis, test, self._predicates())

    def parse_node_test(self) -> NodeTest:
        token = self.peek()
        if token.kind is TokenKind.STAR:
            self.advance()
            return NodeTest(name=None)
        if token.kind in (TokenKind.NAME, TokenKind.AND, TokenKind.OR):
            name = self.advance().text
            if self.peek().kind is TokenKind.LPAREN and name in NODE_TYPE_TESTS:
                self.advance()
                self.expect(TokenKind.RPAREN)
                return NodeTest(node_type=name)
            if self.peek().kind is TokenKind.LPAREN:
                raise XPathSyntaxError(
                    f"{name}() is not a node test", token.position
                )
            return NodeTest(name=name)
        raise XPathSyntaxError(
            f"expected a node test, found {token.text!r}", token.position
        )

    def _predicates(self) -> Tuple[Expr, ...]:
        predicates: List[Expr] = []
        while self.accept(TokenKind.LBRACKET):
            predicates.append(self.parse_or())
            self.expect(TokenKind.RBRACKET)
        return tuple(predicates)

    # -- predicate expressions -----------------------------------------------
    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.peek().kind is TokenKind.OR and not self._keyword_is_name():
            self.advance()
            left = BinaryOp("or", left, self.parse_and())
        return left

    def parse_and(self) -> Expr:
        left = self.parse_comparison()
        while self.peek().kind is TokenKind.AND and not self._keyword_is_name():
            self.advance()
            left = BinaryOp("and", left, self.parse_comparison())
        return left

    def _keyword_is_name(self) -> bool:
        """'and'/'or' in operand position (e.g. following a '/') would
        have been consumed by parse_step already; at this point the
        keyword is always an operator."""
        return False

    _COMPARATORS = {
        TokenKind.EQUALS: "=",
        TokenKind.NOT_EQUALS: "!=",
        TokenKind.LESS: "<",
        TokenKind.LESS_EQUAL: "<=",
        TokenKind.GREATER: ">",
        TokenKind.GREATER_EQUAL: ">=",
    }

    def parse_comparison(self) -> Expr:
        left = self.parse_union_expr()
        op = self._COMPARATORS.get(self.peek().kind)
        if op is None:
            return left
        self.advance()
        return BinaryOp(op, left, self.parse_union_expr())

    def parse_union_expr(self) -> Expr:
        """PathExpr ('|' PathExpr)* — operands must be location paths."""
        first = self.parse_primary()
        if self.peek().kind is not TokenKind.PIPE:
            return first
        paths = [first]
        while self.accept(TokenKind.PIPE):
            paths.append(self.parse_primary())
        for path in paths:
            if not isinstance(path, (LocationPath, Union_)):
                raise XPathSyntaxError("'|' operands must be node-sets")
        return Union_(tuple(paths))

    def parse_primary(self) -> Expr:
        token = self.peek()
        if token.kind is TokenKind.STRING:
            self.advance()
            return Literal(token.text)
        if token.kind is TokenKind.NUMBER:
            self.advance()
            return Number(float(token.text))
        if token.kind is TokenKind.LPAREN:
            self.advance()
            inner = self.parse_or()
            self.expect(TokenKind.RPAREN)
            return inner
        if (
            token.kind is TokenKind.NAME
            and self.peek(1).kind is TokenKind.LPAREN
            and token.text not in NODE_TYPE_TESTS
        ):
            return self.parse_function_call()
        if token.kind in (
            TokenKind.NAME,
            TokenKind.STAR,
            TokenKind.AT,
            TokenKind.DOT,
            TokenKind.DOTDOT,
            TokenKind.SLASH,
            TokenKind.DOUBLE_SLASH,
        ):
            return self.parse_location_path()
        raise XPathSyntaxError(
            f"expected an expression, found {token.text!r}", token.position
        )

    def parse_function_call(self) -> FunctionCall:
        name = self.expect(TokenKind.NAME).text
        self.expect(TokenKind.LPAREN)
        arguments: List[Expr] = []
        if self.peek().kind is not TokenKind.RPAREN:
            arguments.append(self.parse_or())
            while self.accept(TokenKind.COMMA):
                arguments.append(self.parse_or())
        self.expect(TokenKind.RPAREN)
        return FunctionCall(name, tuple(arguments))


def parse_xpath(expression: str) -> Expr:
    """Parse an XPath-subset expression into its AST."""
    return _Parser(expression).parse()
