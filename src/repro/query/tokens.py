"""Token definitions for the XPath-subset lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class TokenKind(Enum):
    SLASH = "/"
    DOUBLE_SLASH = "//"
    LBRACKET = "["
    RBRACKET = "]"
    LPAREN = "("
    RPAREN = ")"
    AT = "@"
    DOT = "."
    DOTDOT = ".."
    STAR = "*"
    COMMA = ","
    AXIS_SEP = "::"
    NAME = "name"
    STRING = "string"
    NUMBER = "number"
    EQUALS = "="
    NOT_EQUALS = "!="
    LESS = "<"
    LESS_EQUAL = "<="
    GREATER = ">"
    GREATER_EQUAL = ">="
    AND = "and"
    OR = "or"
    PIPE = "|"
    END = "end"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    position: int

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r}@{self.position})"


#: XPath axis names accepted before '::'
AXIS_NAMES = frozenset(
    {
        "ancestor",
        "ancestor-or-self",
        "attribute",
        "child",
        "descendant",
        "descendant-or-self",
        "following",
        "following-sibling",
        "parent",
        "preceding",
        "preceding-sibling",
        "self",
    }
)

#: node-test function forms: text(), node(), comment()
NODE_TYPE_TESTS = frozenset({"text", "node", "comment"})
