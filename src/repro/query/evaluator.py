"""XPath-subset evaluation.

Two interchangeable strategies implement the axis step — the
experiment E8 comparison:

* :class:`NavigationalEvaluator` walks the DOM tree pointer by pointer
  (the baseline any DOM implementation provides);
* :class:`SchemeEvaluator` generates axes from rUID identifiers via
  :class:`~repro.core.axes.AxisEngine` — the paper's §3.5 routines —
  and only dereferences labels to nodes for node tests and results.

Semantics follow XPath 1.0 for the supported core: node-sets are kept
in document order, predicates are evaluated with axis-order positions
(reverse axes count backwards), numeric predicates are position tests,
and comparisons use the existential node-set semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.core.scheme import Ruid2SchemeLabeling
from repro.errors import QueryError, UnsupportedFeatureError
from repro.query.ast import (
    BinaryOp,
    Expr,
    FunctionCall,
    Literal,
    LocationPath,
    NodeTest,
    Number,
    Step,
    Union_,
)
from repro.xmltree.node import NodeKind, XmlNode
from repro.xmltree.tree import XmlTree

Value = Union[List[XmlNode], str, float, bool]

_REVERSE_AXES = frozenset({"ancestor", "ancestor-or-self", "preceding", "preceding-sibling", "parent"})


def string_value(node: XmlNode) -> str:
    """XPath string-value of a node."""
    if node.kind in (NodeKind.TEXT, NodeKind.ATTRIBUTE, NodeKind.COMMENT):
        return node.text or ""
    return node.text_content()


def node_test_matches(node: XmlNode, test: NodeTest, axis: str) -> bool:
    """Apply a node test, honouring the axis' principal node kind."""
    if node.kind is NodeKind.DOCUMENT:
        return test.node_type == "node"
    if test.node_type == "node":
        return True
    if test.node_type == "text":
        return node.kind is NodeKind.TEXT
    if test.node_type == "comment":
        return node.kind is NodeKind.COMMENT
    principal = NodeKind.ATTRIBUTE if axis == "attribute" else NodeKind.ELEMENT
    if node.kind is not principal:
        return False
    return test.name is None or node.tag == test.name


class BaseEvaluator:
    """Shared expression semantics; subclasses supply the axis step."""

    def __init__(self, tree: XmlTree):
        self.tree = tree
        self._doc_order: Optional[Dict[int, int]] = None
        #: the virtual document node above the root element; absolute
        #: paths start here so that ``/site`` and ``//site`` can match
        #: the root element itself
        self.document_node = XmlNode("#document", NodeKind.DOCUMENT)

    # -- ordering ---------------------------------------------------------
    def doc_order(self) -> Dict[int, int]:
        if self._doc_order is None:
            self._doc_order = self.tree.document_order_index()
        return self._doc_order

    def sort_nodes(self, nodes: Sequence[XmlNode]) -> List[XmlNode]:
        order = self.doc_order()
        unique = {node.node_id: node for node in nodes}
        return sorted(
            unique.values(), key=lambda n: order.get(n.node_id, -1)
        )  # the document node sorts first

    # -- axis step (strategy hook) -----------------------------------------
    def axis_nodes(self, node: XmlNode, axis: str) -> List[XmlNode]:
        """Nodes on *axis* from *node*, in document order."""
        raise NotImplementedError

    # -- entry point --------------------------------------------------------
    def select(self, expr: Expr, context: Optional[XmlNode] = None) -> List[XmlNode]:
        """Evaluate *expr* to a node-set (document order)."""
        context = context if context is not None else self.tree.root
        result = self._eval(expr, context, 1, 1)
        if not isinstance(result, list):
            raise QueryError(f"expression yields a {type(result).__name__}, not nodes")
        return result

    def evaluate(self, expr: Expr, context: Optional[XmlNode] = None) -> Value:
        """Evaluate *expr* to whatever it denotes (node-set or scalar)."""
        context = context if context is not None else self.tree.root
        return self._eval(expr, context, 1, 1)

    # -- recursive evaluation -------------------------------------------------
    def _eval(self, expr: Expr, node: XmlNode, position: int, size: int) -> Value:
        if isinstance(expr, LocationPath):
            return self._eval_path(expr, node)
        if isinstance(expr, Union_):
            combined: List[XmlNode] = []
            for path in expr.paths:
                combined.extend(self._eval_path(path, node))
            return self.sort_nodes(combined)
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, Number):
            return expr.value
        if isinstance(expr, BinaryOp):
            return self._eval_binary(expr, node, position, size)
        if isinstance(expr, FunctionCall):
            return self._eval_function(expr, node, position, size)
        raise QueryError(f"cannot evaluate {expr!r}")

    def _eval_path(self, path: LocationPath, context: XmlNode) -> List[XmlNode]:
        current = [self.document_node] if path.absolute else [context]
        for step in path.steps:
            current = self._eval_step(current, step)
        return current

    def _document_axis(self, axis: str) -> List[XmlNode]:
        """Axes evaluated at the virtual document node."""
        everything = [
            self.tree.root,
            *(
                d
                for d in self.tree.root.descendants()
                if d.kind is not NodeKind.ATTRIBUTE
            ),
        ]
        if axis == "child":
            return [self.tree.root]
        if axis == "descendant":
            return everything
        if axis == "descendant-or-self":
            return [self.document_node, *everything]
        if axis == "self":
            return [self.document_node]
        return []

    def _eval_step(self, nodes: List[XmlNode], step: Step) -> List[XmlNode]:
        gathered: List[XmlNode] = []
        for node in nodes:
            if node is self.document_node:
                axis_result = self._document_axis(step.axis)
            else:
                axis_result = self.axis_nodes(node, step.axis)
            candidates = [
                candidate
                for candidate in axis_result
                if node_test_matches(candidate, step.test, step.axis)
            ]
            if step.axis in _REVERSE_AXES:
                candidates.reverse()  # predicate positions count backwards
            for predicate in step.predicates:
                candidates = self._filter(candidates, predicate)
            gathered.extend(candidates)
        return self.sort_nodes(gathered)

    def _filter(self, candidates: List[XmlNode], predicate: Expr) -> List[XmlNode]:
        kept: List[XmlNode] = []
        size = len(candidates)
        for position, candidate in enumerate(candidates, start=1):
            value = self._eval(predicate, candidate, position, size)
            if isinstance(value, float):
                keep = position == int(value)
            else:
                keep = _truth(value)
            if keep:
                kept.append(candidate)
        return kept

    # -- operators ----------------------------------------------------------
    def _eval_binary(
        self, expr: BinaryOp, node: XmlNode, position: int, size: int
    ) -> bool:
        if expr.op == "and":
            return _truth(self._eval(expr.left, node, position, size)) and _truth(
                self._eval(expr.right, node, position, size)
            )
        if expr.op == "or":
            return _truth(self._eval(expr.left, node, position, size)) or _truth(
                self._eval(expr.right, node, position, size)
            )
        left = self._eval(expr.left, node, position, size)
        right = self._eval(expr.right, node, position, size)
        return _compare(expr.op, left, right)

    def _eval_function(
        self, call: FunctionCall, node: XmlNode, position: int, size: int
    ) -> Value:
        name = call.name
        args = [self._eval(arg, node, position, size) for arg in call.arguments]
        if name == "position":
            return float(position)
        if name == "last":
            return float(size)
        if name == "count":
            _require_nodeset(name, args, 0)
            return float(len(args[0]))
        if name == "not":
            return not _truth(args[0])
        if name == "true":
            return True
        if name == "false":
            return False
        if name == "name":
            if args:
                _require_nodeset(name, args, 0)
                return args[0][0].tag if args[0] else ""
            return node.tag
        if name == "contains":
            return _string(args[0]) .find(_string(args[1])) >= 0
        if name == "starts-with":
            return _string(args[0]).startswith(_string(args[1]))
        if name == "string-length":
            return float(len(_string(args[0]) if args else string_value(node)))
        if name == "string":
            return _string(args[0]) if args else string_value(node)
        if name == "number":
            return _number(args[0]) if args else _number(string_value(node))
        raise UnsupportedFeatureError(f"unsupported function {name}()")


def _require_nodeset(name: str, args: List[Value], index: int) -> None:
    if not isinstance(args[index], list):
        raise QueryError(f"{name}() expects a node-set argument")


def _truth(value: Value) -> bool:
    if isinstance(value, list):
        return bool(value)
    if isinstance(value, float):
        return value != 0.0
    if isinstance(value, str):
        return bool(value)
    return bool(value)


def _string(value: Value) -> str:
    if isinstance(value, list):
        return string_value(value[0]) if value else ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return str(int(value)) if value == int(value) else str(value)
    return value


def _number(value: Value) -> float:
    if isinstance(value, list):
        value = _string(value)
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            return float("nan")
    return value


def _compare(op: str, left: Value, right: Value) -> bool:
    """XPath existential comparison over node-sets."""
    left_values = _comparable_values(left)
    right_values = _comparable_values(right)
    for lv in left_values:
        for rv in right_values:
            if _compare_scalars(op, lv, rv):
                return True
    return False


def _comparable_values(value: Value) -> List[Value]:
    if isinstance(value, list):
        return [string_value(node) for node in value]
    return [value]


def _compare_scalars(op: str, left: Value, right: Value) -> bool:
    if op in ("<", "<=", ">", ">="):
        left_num, right_num = _number(left), _number(right)
        if op == "<":
            return left_num < right_num
        if op == "<=":
            return left_num <= right_num
        if op == ">":
            return left_num > right_num
        return left_num >= right_num
    if isinstance(left, float) or isinstance(right, float):
        equal = _number(left) == _number(right)
    elif isinstance(left, bool) or isinstance(right, bool):
        equal = _truth(left) == _truth(right)
    else:
        equal = _string(left) == _string(right)
    return equal if op == "=" else not equal


class NavigationalEvaluator(BaseEvaluator):
    """Axis steps by pointer chasing over the DOM."""

    strategy_name = "navigational"

    def axis_nodes(self, node: XmlNode, axis: str) -> List[XmlNode]:
        if axis == "self":
            return [node]
        if axis == "parent":
            return [node.parent] if node.parent is not None else []
        if axis == "ancestor":
            return list(node.ancestors())[::-1]
        if axis == "ancestor-or-self":
            return [*list(node.ancestors())[::-1], node]
        if axis == "child":
            return [c for c in node.children if c.kind is not NodeKind.ATTRIBUTE]
        if axis == "descendant":
            return [d for d in node.descendants() if d.kind is not NodeKind.ATTRIBUTE]
        if axis == "descendant-or-self":
            return [node, *(d for d in node.descendants() if d.kind is not NodeKind.ATTRIBUTE)]
        if axis == "following-sibling":
            return node.following_siblings()
        if axis == "preceding-sibling":
            return node.preceding_siblings()
        if axis == "attribute":
            return self._attribute_nodes(node)
        if axis == "following":
            order = self.doc_order()
            rank = order[node.node_id]
            subtree = {d.node_id for d in node.iter_subtree()}
            return [
                other
                for other in self.tree.preorder()
                if order[other.node_id] > rank
                and other.node_id not in subtree
                and other.kind is not NodeKind.ATTRIBUTE
            ]
        if axis == "preceding":
            order = self.doc_order()
            rank = order[node.node_id]
            ancestors = {a.node_id for a in node.ancestors()}
            return [
                other
                for other in self.tree.preorder()
                if order[other.node_id] < rank
                and other.node_id not in ancestors
                and other.kind is not NodeKind.ATTRIBUTE
            ]
        raise UnsupportedFeatureError(f"unsupported axis {axis!r}")

    def _attribute_nodes(self, node: XmlNode) -> List[XmlNode]:
        materialised = [c for c in node.children if c.kind is NodeKind.ATTRIBUTE]
        if materialised:
            return materialised
        # Synthesize transient attribute nodes from the dict form.
        created = []
        for name in sorted(node.attributes):
            attr = XmlNode(name, NodeKind.ATTRIBUTE, text=node.attributes[name])
            attr.parent = node  # navigable but not inserted as a child
            created.append(attr)
        return created


class SchemeEvaluator(BaseEvaluator):
    """Axis steps from rUID identifier arithmetic (paper §3.5).

    Structural axes run through :class:`AxisEngine`; the ``attribute``
    axis (a value, not structure, concern) reuses the navigational
    fallback.
    """

    strategy_name = "ruid"

    def __init__(self, labeling: Ruid2SchemeLabeling):
        super().__init__(labeling.tree)
        self.labeling = labeling
        self._fallback = NavigationalEvaluator(labeling.tree)

    def axis_nodes(self, node: XmlNode, axis: str) -> List[XmlNode]:
        if axis == "attribute":
            return self._fallback.axis_nodes(node, axis)
        engine = self.labeling.axes
        labels = engine.axis(self.labeling.label_of(node), axis)
        resolved = [self.labeling.node_of(label) for label in labels]
        if axis in ("ancestor", "ancestor-or-self"):
            resolved.reverse()  # engine returns nearest-first
        return resolved
