"""XPath-subset evaluation.

Two interchangeable strategies implement the axis step — the
experiment E8 comparison:

* :class:`NavigationalEvaluator` walks the DOM tree pointer by pointer
  (the baseline any DOM implementation provides);
* :class:`SchemeEvaluator` generates axes from rUID identifiers via
  :class:`~repro.core.axes.AxisEngine` — the paper's §3.5 routines —
  and only dereferences labels to nodes for node tests and results.

Semantics follow XPath 1.0 for the supported core: node-sets are kept
in document order, predicates are evaluated with axis-order positions
(reverse axes count backwards), numeric predicates are position tests,
and comparisons use the existential node-set semantics.

The scheme evaluator additionally implements the query fast path:

* predicate-free steps over the main structural axes are evaluated
  **set-at-a-time** — candidates come from per-tag label lists in
  document-rank order and are filtered against the whole context
  frontier at once (memoised parents for ``child``, rank-interval
  containment for ``descendant``), so no per-step resort is needed;
* a **tag synopsis** short-circuits steps whose node test cannot match
  anywhere in the document;
* per-(node, axis) results are memoised for the per-context fallback
  path.

All caches are stamped with the labeling's generation and rebuilt when
a structural update advances it; cache traffic is counted in a
:class:`~repro.query.stats.QueryStats` ledger.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.scheme import Ruid2SchemeLabeling
from repro.errors import QueryError, UnknownLabelError, UnsupportedFeatureError
from repro.query.ast import (
    BinaryOp,
    Expr,
    FunctionCall,
    Literal,
    LocationPath,
    NodeTest,
    Number,
    Step,
    Union_,
)
from repro.query.stats import QueryStats
from repro.query.synopsis import TagStatistics
from repro.xmltree.node import NodeKind, XmlNode
from repro.xmltree.tree import XmlTree

Value = Union[List[XmlNode], str, float, bool]

_REVERSE_AXES = frozenset({"ancestor", "ancestor-or-self", "preceding", "preceding-sibling", "parent"})


def string_value(node: XmlNode) -> str:
    """XPath string-value of a node."""
    if node.kind in (NodeKind.TEXT, NodeKind.ATTRIBUTE, NodeKind.COMMENT):
        return node.text or ""
    return node.text_content()


def node_test_matches(node: XmlNode, test: NodeTest, axis: str) -> bool:
    """Apply a node test, honouring the axis' principal node kind."""
    if node.kind is NodeKind.DOCUMENT:
        return test.node_type == "node"
    if test.node_type == "node":
        return True
    if test.node_type == "text":
        return node.kind is NodeKind.TEXT
    if test.node_type == "comment":
        return node.kind is NodeKind.COMMENT
    principal = NodeKind.ATTRIBUTE if axis == "attribute" else NodeKind.ELEMENT
    if node.kind is not principal:
        return False
    return test.name is None or node.tag == test.name


class BaseEvaluator:
    """Shared expression semantics; subclasses supply the axis step."""

    #: cooperative-cancellation budget for the running query; a class
    #: attribute (not set in __init__) because StoreEvaluator and
    #: SnapshotEvaluator deliberately skip super().__init__
    deadline = None

    def __init__(self, tree: XmlTree, stats: Optional[QueryStats] = None):
        self.tree = tree
        self.stats = stats if stats is not None else QueryStats()
        #: optional trace recorder (``None`` keeps the step loop free of
        #: any span machinery; a :class:`~repro.obs.trace.NullTracer`
        #: keeps the machinery but makes every span a no-op)
        self.tracer = None
        self._doc_order: Optional[Dict[int, int]] = None
        #: the virtual document node above the root element; absolute
        #: paths start here so that ``/site`` and ``//site`` can match
        #: the root element itself
        self.document_node = XmlNode("#document", NodeKind.DOCUMENT)

    # -- ordering ---------------------------------------------------------
    def doc_order(self) -> Dict[int, int]:
        if self._doc_order is None:
            self._doc_order = self.tree.document_order_index()
        return self._doc_order

    def sort_nodes(self, nodes: Sequence[XmlNode]) -> List[XmlNode]:
        """Sort into document order, deduplicating by node identity.

        Every node gets an explicit, stable rank: the document node
        sorts before the root element; nodes outside the index
        (transient attribute nodes) sort directly after their parent
        element, keyed by name — never interleaved with indexed nodes
        at an arbitrary position.
        """
        order = self.doc_order()
        unique = {node.node_id: node for node in nodes}
        after_all = len(order)

        def key(node: XmlNode) -> Tuple[int, int, str]:
            rank = order.get(node.node_id)
            if rank is not None:
                return (rank, 0, "")
            if node.kind is NodeKind.DOCUMENT:
                return (-1, 0, "")
            parent = node.parent
            if parent is not None:
                parent_rank = order.get(parent.node_id, after_all)
            else:
                parent_rank = after_all
            return (parent_rank, 1, node.tag or "")

        return sorted(unique.values(), key=key)

    # -- deadline plumbing -------------------------------------------------
    def set_deadline(self, deadline) -> None:
        """Attach (or clear, with None) the query's cancellation budget,
        forwarding it to the evaluator's store so label probes become
        cancellation points too. Slotted stores that cannot carry a
        deadline attribute simply don't participate."""
        self.deadline = deadline
        store = getattr(self, "store", None)
        if store is not None:
            try:
                store.deadline = deadline
            except AttributeError:
                pass

    # -- axis step (strategy hook) -----------------------------------------
    def axis_nodes(self, node: XmlNode, axis: str) -> List[XmlNode]:
        """Nodes on *axis* from *node*, in document order."""
        raise NotImplementedError

    # -- string-value (strategy hook) ---------------------------------------
    def string_value_of(self, node: XmlNode) -> str:
        """XPath string-value of *node*.

        The default walks the live tree (:func:`string_value`); snapshot
        evaluators override it to read values frozen at snapshot-build
        time so comparisons never race a concurrent writer.
        """
        return string_value(node)

    # -- entry point --------------------------------------------------------
    def select(self, expr: Expr, context: Optional[XmlNode] = None) -> List[XmlNode]:
        """Evaluate *expr* to a node-set (document order)."""
        context = context if context is not None else self.tree.root
        result = self._eval(expr, context, 1, 1)
        if not isinstance(result, list):
            raise QueryError(f"expression yields a {type(result).__name__}, not nodes")
        return result

    def evaluate(self, expr: Expr, context: Optional[XmlNode] = None) -> Value:
        """Evaluate *expr* to whatever it denotes (node-set or scalar)."""
        context = context if context is not None else self.tree.root
        return self._eval(expr, context, 1, 1)

    # -- recursive evaluation -------------------------------------------------
    def _eval(self, expr: Expr, node: XmlNode, position: int, size: int) -> Value:
        if isinstance(expr, LocationPath):
            return self._eval_path(expr, node)
        if isinstance(expr, Union_):
            combined: List[XmlNode] = []
            for path in expr.paths:
                combined.extend(self._eval_path(path, node))
            return self.sort_nodes(combined)
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, Number):
            return expr.value
        if isinstance(expr, BinaryOp):
            return self._eval_binary(expr, node, position, size)
        if isinstance(expr, FunctionCall):
            return self._eval_function(expr, node, position, size)
        raise QueryError(f"cannot evaluate {expr!r}")

    def _eval_path(self, path: LocationPath, context: XmlNode) -> List[XmlNode]:
        current = [self.document_node] if path.absolute else [context]
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            # The zero-instrumentation hot path: no span machinery, no
            # attribute stringification. A disabled (null) tracer lands
            # here too, so "tracing off" costs one extra branch.
            for step in path.steps:
                current = self._eval_step(current, step)
            return current
        parent = tracer.current
        if parent is not None and parent.name == "evaluator.step":
            # Predicate sub-path: evaluated once per context node, so
            # spanning it would dominate the cost being measured. It
            # runs untraced under its step's span (docs/OBSERVABILITY.md);
            # detaching the tracer makes the whole subtree take the
            # zero-instrumentation branch.
            self.tracer = None
            try:
                for step in path.steps:
                    current = self._eval_step(current, step)
                return current
            finally:
                self.tracer = tracer
        # Step spans carry only what ANALYZE folds back onto the plan
        # (index, cardinalities, route); the static plan already knows
        # each step's test and predicate count. The path attribute
        # stays a raw AST node — exporters stringify it lazily.
        with tracer.span("evaluator.path", path=path):
            for index, step in enumerate(path.steps):
                with tracer.span(
                    "evaluator.step",
                    index=index,
                    axis=step.axis,
                    in_count=len(current),
                ) as span:
                    current = self._eval_step(current, step)
                    span.set(out_count=len(current))
        return current

    #: route label ANALYZE reports for this evaluator's steps
    route_name = "navigational"

    def plan_route(self, step: Step) -> Tuple[str, Optional[int]]:
        """(route, candidate estimate) EXPLAIN predicts for *step*.

        The base evaluator has one route and no synopsis, so no
        estimate; the scheme evaluator overrides this with its actual
        dispatch decision."""
        return self.route_name, None

    def _document_axis(self, axis: str) -> List[XmlNode]:
        """Axes evaluated at the virtual document node."""
        everything = [
            self.tree.root,
            *(
                d
                for d in self.tree.root.descendants()
                if d.kind is not NodeKind.ATTRIBUTE
            ),
        ]
        if axis == "child":
            return [self.tree.root]
        if axis == "descendant":
            return everything
        if axis == "descendant-or-self":
            return [self.document_node, *everything]
        if axis == "self":
            return [self.document_node]
        return []

    def _eval_step(self, nodes: List[XmlNode], step: Step) -> List[XmlNode]:
        gathered: List[XmlNode] = []
        deadline = self.deadline
        for node in nodes:
            if node is self.document_node:
                axis_result = self._document_axis(step.axis)
            else:
                axis_result = self.axis_nodes(node, step.axis)
            if deadline is not None:
                deadline.tick(len(axis_result))
            candidates = [
                candidate
                for candidate in axis_result
                if node_test_matches(candidate, step.test, step.axis)
            ]
            if step.axis in _REVERSE_AXES:
                candidates.reverse()  # predicate positions count backwards
            for predicate in step.predicates:
                candidates = self._filter(candidates, predicate)
            gathered.extend(candidates)
        return self.sort_nodes(gathered)

    def _filter(self, candidates: List[XmlNode], predicate: Expr) -> List[XmlNode]:
        kept: List[XmlNode] = []
        size = len(candidates)
        deadline = self.deadline
        for position, candidate in enumerate(candidates, start=1):
            if deadline is not None:
                deadline.tick()
            value = self._eval(predicate, candidate, position, size)
            if isinstance(value, float):
                keep = position == int(value)
            else:
                keep = _truth(value)
            if keep:
                kept.append(candidate)
        return kept

    # -- operators ----------------------------------------------------------
    def _eval_binary(
        self, expr: BinaryOp, node: XmlNode, position: int, size: int
    ) -> bool:
        if expr.op == "and":
            return _truth(self._eval(expr.left, node, position, size)) and _truth(
                self._eval(expr.right, node, position, size)
            )
        if expr.op == "or":
            return _truth(self._eval(expr.left, node, position, size)) or _truth(
                self._eval(expr.right, node, position, size)
            )
        left = self._eval(expr.left, node, position, size)
        right = self._eval(expr.right, node, position, size)
        return _compare(expr.op, left, right, sv=self.string_value_of)

    def _eval_function(
        self, call: FunctionCall, node: XmlNode, position: int, size: int
    ) -> Value:
        name = call.name
        args = [self._eval(arg, node, position, size) for arg in call.arguments]
        if name == "position":
            return float(position)
        if name == "last":
            return float(size)
        if name == "count":
            _require_nodeset(name, args, 0)
            return float(len(args[0]))
        if name == "not":
            return not _truth(args[0])
        if name == "true":
            return True
        if name == "false":
            return False
        if name == "name":
            if args:
                _require_nodeset(name, args, 0)
                return args[0][0].tag if args[0] else ""
            return node.tag
        sv = self.string_value_of
        if name == "contains":
            return _string(args[0], sv=sv).find(_string(args[1], sv=sv)) >= 0
        if name == "starts-with":
            return _string(args[0], sv=sv).startswith(_string(args[1], sv=sv))
        if name == "string-length":
            return float(len(_string(args[0], sv=sv) if args else sv(node)))
        if name == "string":
            return _string(args[0], sv=sv) if args else sv(node)
        if name == "number":
            return _number(args[0], sv=sv) if args else _number(sv(node))
        raise UnsupportedFeatureError(f"unsupported function {name}()")


def _require_nodeset(name: str, args: List[Value], index: int) -> None:
    if not isinstance(args[index], list):
        raise QueryError(f"{name}() expects a node-set argument")


def _truth(value: Value) -> bool:
    if isinstance(value, list):
        return bool(value)
    if isinstance(value, float):
        return value != 0.0
    if isinstance(value, str):
        return bool(value)
    return bool(value)


def _string(value: Value, sv=string_value) -> str:
    if isinstance(value, list):
        return sv(value[0]) if value else ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return str(int(value)) if value == int(value) else str(value)
    return value


def _number(value: Value, sv=string_value) -> float:
    if isinstance(value, list):
        value = _string(value, sv=sv)
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            return float("nan")
    return value


def _compare(op: str, left: Value, right: Value, sv=string_value) -> bool:
    """XPath existential comparison over node-sets."""
    left_values = _comparable_values(left, sv=sv)
    right_values = _comparable_values(right, sv=sv)
    for lv in left_values:
        for rv in right_values:
            if _compare_scalars(op, lv, rv):
                return True
    return False


def _comparable_values(value: Value, sv=string_value) -> List[Value]:
    if isinstance(value, list):
        return [sv(node) for node in value]
    return [value]


def _compare_scalars(op: str, left: Value, right: Value) -> bool:
    if op in ("<", "<=", ">", ">="):
        left_num, right_num = _number(left), _number(right)
        if op == "<":
            return left_num < right_num
        if op == "<=":
            return left_num <= right_num
        if op == ">":
            return left_num > right_num
        return left_num >= right_num
    if isinstance(left, float) or isinstance(right, float):
        equal = _number(left) == _number(right)
    elif isinstance(left, bool) or isinstance(right, bool):
        equal = _truth(left) == _truth(right)
    else:
        equal = _string(left) == _string(right)
    return equal if op == "=" else not equal


class NavigationalEvaluator(BaseEvaluator):
    """Axis steps by pointer chasing over the DOM."""

    strategy_name = "navigational"

    def axis_nodes(self, node: XmlNode, axis: str) -> List[XmlNode]:
        if axis == "self":
            return [node]
        if axis == "parent":
            return [node.parent] if node.parent is not None else []
        if axis == "ancestor":
            return list(node.ancestors())[::-1]
        if axis == "ancestor-or-self":
            return [*list(node.ancestors())[::-1], node]
        if axis == "child":
            return [c for c in node.children if c.kind is not NodeKind.ATTRIBUTE]
        if axis == "descendant":
            return [d for d in node.descendants() if d.kind is not NodeKind.ATTRIBUTE]
        if axis == "descendant-or-self":
            return [node, *(d for d in node.descendants() if d.kind is not NodeKind.ATTRIBUTE)]
        if axis == "following-sibling":
            return node.following_siblings()
        if axis == "preceding-sibling":
            return node.preceding_siblings()
        if axis == "attribute":
            return self._attribute_nodes(node)
        if axis == "following":
            order = self.doc_order()
            rank = order[node.node_id]
            subtree = {d.node_id for d in node.iter_subtree()}
            return [
                other
                for other in self.tree.preorder()
                if order[other.node_id] > rank
                and other.node_id not in subtree
                and other.kind is not NodeKind.ATTRIBUTE
            ]
        if axis == "preceding":
            order = self.doc_order()
            rank = order[node.node_id]
            ancestors = {a.node_id for a in node.ancestors()}
            return [
                other
                for other in self.tree.preorder()
                if order[other.node_id] < rank
                and other.node_id not in ancestors
                and other.kind is not NodeKind.ATTRIBUTE
            ]
        raise UnsupportedFeatureError(f"unsupported axis {axis!r}")

    def _attribute_nodes(self, node: XmlNode) -> List[XmlNode]:
        materialised = [c for c in node.children if c.kind is NodeKind.ATTRIBUTE]
        if materialised:
            return materialised
        # Synthesize transient attribute nodes from the dict form.
        created = []
        for name in sorted(node.attributes):
            attr = XmlNode(name, NodeKind.ATTRIBUTE, text=node.attributes[name])
            attr.parent = node  # navigable but not inserted as a child
            created.append(attr)
        return created


class SchemeEvaluator(BaseEvaluator):
    """Axis steps from rUID identifier arithmetic (paper §3.5).

    Structural axes run through :class:`AxisEngine`; the ``attribute``
    axis (a value, not structure, concern) reuses the navigational
    fallback.

    On top of the per-context strategy this evaluator carries the
    query fast path (set-at-a-time steps, synopsis pruning, axis
    memos); pass ``batched=False`` to benchmark the legacy
    node-at-a-time behaviour. All derived state is generation-stamped:
    a structural update through the labeling invalidates it wholesale,
    so stale labels are never served.
    """

    strategy_name = "ruid"

    #: axes the batched (set-at-a-time) path implements
    _BATCHED_AXES = frozenset(
        {
            "self",
            "child",
            "parent",
            "descendant",
            "descendant-or-self",
            "ancestor",
            "ancestor-or-self",
        }
    )
    #: every axis this evaluator supports at all; synopsis pruning is
    #: restricted to these so unsupported axes still raise
    _KNOWN_AXES = _BATCHED_AXES | frozenset(
        {
            "preceding-sibling",
            "following-sibling",
            "preceding",
            "following",
            "attribute",
        }
    )
    #: per-(node, axis) memo entries kept before the cache stops growing
    _AXIS_CACHE_LIMIT = 8192
    #: a batched child step scans every candidate with a matching test;
    #: when the frontier is much smaller than that candidate list
    #: (single-context predicate evaluation, typically) the memoised
    #: per-node path is cheaper — this factor picks the crossover
    _CHILD_SCAN_FACTOR = 16

    def __init__(
        self,
        labeling: Ruid2SchemeLabeling,
        stats: Optional[QueryStats] = None,
        batched: bool = True,
        memoize: bool = True,
    ):
        super().__init__(labeling.tree, stats=stats)
        self.labeling = labeling
        self.batched = batched
        #: False disables the per-(node, axis) memo — with ``batched``
        #: also False this reproduces the legacy node-at-a-time
        #: behaviour for before/after benchmarking
        self.memoize = memoize
        #: the MemoryNodeStore this evaluator reads through; rebound
        #: per generation by :meth:`_ensure_caches` and surfaced so
        #: EXPLAIN ANALYZE can report physical access counters
        self.store = None
        self._fallback = NavigationalEvaluator(labeling.tree)
        self._cache_generation: Optional[int] = None
        self._rank: Dict = {}
        self._end: Dict = {}
        self._synopsis: Optional[TagStatistics] = None
        self._axis_cache: Dict[Tuple[int, str], List[XmlNode]] = {}
        self._doc_axis_cache: Dict[str, List[XmlNode]] = {}
        # candidate label lists (document-rank order), bound lazily
        # from the store on the first batched step of a generation
        self._tag_labels: Optional[Dict[str, List]] = None
        self._element_labels: Optional[List] = None
        self._text_labels: Optional[List] = None
        self._comment_labels: Optional[List] = None
        self._node_labels: Optional[List] = None

    # -- generation-stamped caches -----------------------------------------
    def _ensure_caches(self) -> None:
        """(Re)bind every derived structure to the labeling's current
        generation; a no-op (one int compare) when nothing changed."""
        generation = self.labeling.generation
        if generation == self._cache_generation:
            return
        # Local import: repro.store.evaluator pulls BaseEvaluator from
        # this module, so a top-level import would be circular.
        from repro.store.memory import MemoryNodeStore

        store = self.store
        if store is None or store.labeling is not self.labeling:
            store = MemoryNodeStore(self.labeling)
            self.store = store
        else:
            store.refresh()
        self._rank = store.rank_map
        self._end = store.end_map
        self._synopsis = TagStatistics(self.tree)
        self._axis_cache = {}
        self._doc_axis_cache = {}
        self._doc_order = None
        self._fallback = NavigationalEvaluator(self.tree)
        self._tag_labels = None
        self._element_labels = None
        self._text_labels = None
        self._comment_labels = None
        self._node_labels = None
        self._cache_generation = generation
        self.stats.count("rank_index_builds")

    def _build_candidates(self) -> None:
        """Bind the store's per-kind candidate lists (document-rank
        order, attributes excluded) as local attributes — hot loops
        index the raw lists without a method call per step."""
        store = self.store
        self._tag_labels = store.tag_labels()
        self._element_labels = store.element_labels()
        self._text_labels = store.text_labels()
        self._comment_labels = store.comment_labels()
        self._node_labels = store.structural_labels()

    def _candidates_for_test(self, test: NodeTest) -> Optional[Sequence]:
        """All labels that can satisfy *test* on an element-principal
        axis, in document-rank order (None: test not expressible)."""
        pair = self._candidate_arrays_for_test(test)
        return pair[0] if pair is not None else None

    def _candidate_arrays_for_test(
        self, test: NodeTest
    ) -> Optional[Tuple[Sequence, Sequence[int]]]:
        """(labels, ranks) that can satisfy *test* — two parallel
        sequences in document-rank order, the ranks a raw columnar
        buffer (None: test not expressible). The store builds both from
        the same per-tag/per-kind rank arrays, so they are aligned by
        construction."""
        node_type = test.node_type
        columnar = self.store.columnar
        if node_type is None:
            if test.name is None:
                return self._element_labels, columnar.element_ranks
            return (
                self._tag_labels.get(test.name, []),
                columnar.tag_rank_array(test.name),
            )
        if node_type == "node":
            return self._node_labels, columnar.structural
        if node_type == "text":
            return self._text_labels, columnar.text_ranks
        if node_type == "comment":
            return self._comment_labels, columnar.comment_ranks
        return None

    # -- step evaluation ----------------------------------------------------
    route_name = "per-node"

    def _eval_step(self, nodes: List[XmlNode], step: Step) -> List[XmlNode]:
        self._ensure_caches()
        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled
        if self._prunable(step):
            self.stats.count("synopsis_skips")
            if tracing:
                tracer.annotate_once(route="pruned")
            return []
        if self.batched and not step.predicates and step.axis in self._BATCHED_AXES:
            result = self._eval_step_batched(nodes, step)
            if result is not None:
                self.stats.count("batched_steps")
                # bulk-account the label→node dereferences this step
                # performed (one per emitted node) — the per-result
                # cost the paper's one-fetch claim bounds
                self.store.note_fetches(len(result))
                if self.deadline is not None:
                    # one weighted cancellation point per batched step:
                    # the item count forces a clock check on the next
                    # tick, bounding overrun to a single step's work
                    self.deadline.tick(len(result))
                if tracing:
                    tracer.annotate_once(route="batched")
                return result
        self.stats.count("fallback_steps")
        if tracing:
            # first write wins: predicate sub-paths re-enter this
            # dispatcher under the same open step span
            tracer.annotate_once(route="per-node")
        return super()._eval_step(nodes, step)

    def candidate_estimate(self, test: NodeTest) -> Optional[int]:
        """Synopsis cardinality of the nodes passing *test* on an
        element-principal axis (None when the synopsis cannot say)."""
        self._ensure_caches()
        synopsis = self._synopsis
        if test.node_type is None:
            if test.name is None:
                return synopsis.total_elements
            return synopsis.count(test.name)
        if test.node_type == "node":
            return None  # text/comment nodes are outside the synopsis
        return None

    def plan_route(self, step: Step) -> Tuple[str, Optional[int]]:
        """Predict the dispatch decision :meth:`_eval_step` will make.

        Mirrors the runtime logic exactly: synopsis pruning first, then
        the batched set-at-a-time path for predicate-free structural
        axes, else the per-node fallback. (A batched ``child`` step may
        still fall back at runtime when the frontier is tiny — ANALYZE
        reports the observed route alongside.)"""
        self._ensure_caches()
        if self._prunable(step):
            return "pruned", 0
        estimate = self.candidate_estimate(step.test)
        if self.batched and not step.predicates and step.axis in self._BATCHED_AXES:
            return "batched", estimate
        return "per-node", estimate

    def _prunable(self, step: Step) -> bool:
        """True when the synopsis proves the step's name test matches
        nothing anywhere in the document."""
        test = step.test
        if test.name is None or test.node_type is not None:
            return False
        if step.axis not in self._KNOWN_AXES:
            return False  # let the unsupported-axis error surface
        if step.axis == "attribute":
            return not self._synopsis.can_match_attribute(test.name)
        return not self._synopsis.can_match_element(test.name)

    def _eval_step_batched(
        self, nodes: List[XmlNode], step: Step
    ) -> Optional[List[XmlNode]]:
        """Set-at-a-time step over the whole frontier; None means the
        contexts cannot be labeled (transient nodes) — fall back."""
        if self._node_labels is None:
            self._build_candidates()
        has_doc = False
        labels: List = []
        label_of = self.labeling.label_of
        try:
            for node in nodes:
                if node is self.document_node:
                    has_doc = True
                else:
                    labels.append(label_of(node))
        except (KeyError, UnknownLabelError):
            return None
        axis = step.axis
        test = step.test
        pair = self._candidate_arrays_for_test(test)
        if pair is None:
            return None
        candidates, candidate_ranks = pair
        node_of = self.labeling.node_of
        rank = self._rank

        if axis == "self":
            out: List[XmlNode] = []
            if has_doc and node_test_matches(self.document_node, test, axis):
                out.append(self.document_node)
            ranked = []
            for label in set(labels):
                node = node_of(label)
                if node_test_matches(node, test, axis):
                    ranked.append((rank[label], node))
            ranked.sort(key=lambda pair: pair[0])
            out.extend(node for _, node in ranked)
            return out

        if axis == "child":
            context = set(labels)
            frontier = len(context) + (1 if has_doc else 0)
            if not frontier:
                return []
            if len(candidates) > self._CHILD_SCAN_FACTOR * frontier:
                return None  # candidate scan dearer than per-node memo
            # parenthood from the columnar parent-rank column: one
            # indexed array load per candidate, no label arithmetic
            parent_ranks = self.store.columnar.parent
            context_ranks = {rank[label] for label in context}
            out = []
            for position, cand_rank in enumerate(candidate_ranks):
                parent_rank = parent_ranks[cand_rank]
                if parent_rank < 0:
                    if has_doc:  # the root element, child of the doc node
                        out.append(node_of(candidates[position]))
                elif parent_rank in context_ranks:
                    out.append(node_of(candidates[position]))
            return out

        if axis in ("parent", "ancestor", "ancestor-or-self"):
            # The virtual document node has no parent/ancestors and is
            # never an ancestor result (matching the per-context path).
            parent_of = self.labeling.axes.parent
            found: set = set()
            if axis == "parent":
                for label in labels:
                    parent = parent_of(label)
                    if parent is not None:
                        found.add(parent)
            else:
                or_self = axis == "ancestor-or-self"
                for label in set(labels):
                    current = label if or_self else parent_of(label)
                    while current is not None and current not in found:
                        found.add(current)
                        current = parent_of(current)
            ranked = []
            for label in found:
                node = node_of(label)
                if node_test_matches(node, test, axis):
                    ranked.append((rank[label], node))
            ranked.sort(key=lambda pair: pair[0])
            return [node for _, node in ranked]

        # descendant / descendant-or-self
        or_self = axis == "descendant-or-self"
        if has_doc:
            out = []
            if or_self and node_test_matches(self.document_node, test, axis):
                out.append(self.document_node)
            out.extend(node_of(cand) for cand in candidates)
            return out
        if not labels:
            return []
        end = self._end
        # Contexts sorted by rank with a running max of subtree ends:
        # candidate x descends from some context iff the best end among
        # contexts at/before x's rank reaches x.
        context_spans = sorted((rank[label], end[label]) for label in set(labels))
        context_ranks = [r for r, _ in context_spans]
        prefix_max = []
        best = -1
        for _, subtree_end in context_spans:
            if subtree_end > best:
                best = subtree_end
            prefix_max.append(best)
        locate = bisect_right if or_self else bisect_left
        out = []
        for position, cand_rank in enumerate(candidate_ranks):
            j = locate(context_ranks, cand_rank) - 1
            if j >= 0 and prefix_max[j] >= cand_rank:
                out.append(node_of(candidates[position]))
        return out

    # -- per-context axis step (memoised) -----------------------------------
    def axis_nodes(self, node: XmlNode, axis: str) -> List[XmlNode]:
        if axis == "attribute":
            return self._fallback.axis_nodes(node, axis)
        self._ensure_caches()
        if self.memoize:
            cache = self._axis_cache
            key = (node.node_id, axis)
            cached = cache.get(key)
            if cached is not None:
                self.stats.count("axis_cache_hits")
                return cached
            self.stats.count("axis_cache_misses")
        engine = self.labeling.axes
        labels = engine.axis(self.labeling.label_of(node), axis)
        resolved = [self.labeling.node_of(label) for label in labels]
        self.store.note_fetches(len(resolved))
        if axis in ("ancestor", "ancestor-or-self"):
            resolved.reverse()  # engine returns nearest-first
        if self.memoize and len(cache) < self._AXIS_CACHE_LIMIT:
            cache[key] = resolved
        return resolved

    def _document_axis(self, axis: str) -> List[XmlNode]:
        cached = self._doc_axis_cache.get(axis)
        if cached is None:
            cached = super()._document_axis(axis)
            self._doc_axis_cache[axis] = cached
        return cached
