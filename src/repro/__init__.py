"""repro — a reproduction of "A Structural Numbering Scheme for XML Data"
(Kha, Yoshikawa, Uemura; EDBT 2002 Workshops).

The package implements the multilevel recursive UID (rUID) numbering
scheme together with every substrate the paper's evaluation rests on:
an XML document model and parser, the original UID and other baseline
schemes, a paged storage engine, an XPath-subset query engine, and
synthetic workload generators.

Quickstart::

    from repro import parse, Ruid2Scheme

    tree = parse("<a><b><c/></b><d/></a>")
    labeling = Ruid2Scheme(max_area_size=32).build(tree)
    label = labeling.label_of(tree.root.children[0])
    print(label, labeling.parent_label(label))
"""

from repro.core import (
    MultiLabel,
    MultiRuidScheme,
    MultilevelRuidLabeling,
    NumberingScheme,
    Relation,
    Ruid2Label,
    Ruid2Labeling,
    Ruid2Scheme,
    UidLabeling,
    UidScheme,
)
from repro.xmltree import XmlNode, XmlTree, build, parse, parse_file, serialize

__version__ = "1.0.0"

__all__ = [
    "MultiLabel",
    "MultiRuidScheme",
    "MultilevelRuidLabeling",
    "NumberingScheme",
    "Relation",
    "Ruid2Label",
    "Ruid2Labeling",
    "Ruid2Scheme",
    "UidLabeling",
    "UidScheme",
    "XmlNode",
    "XmlTree",
    "__version__",
    "build",
    "parse",
    "parse_file",
    "serialize",
]
