"""Unified observability layer: metrics, trace spans, plans, slow log.

One subsystem answers "where did this query spend its time and which
cache saved it":

* :class:`MetricsRegistry` — named counters/gauges/histograms plus
  pull sources, so the existing ``IoStats``/``QueryStats`` dataclass
  ledgers surface through one snapshot without API changes;
* :class:`Tracer` / :data:`NULL_TRACER` — hierarchical ns-resolution
  spans with a ring-buffer recorder and JSON/pretty-tree exporters;
* :class:`QueryPlan` / :class:`TwigPlan` — EXPLAIN / EXPLAIN ANALYZE
  output shapes (built by the query layer);
* :class:`SlowQueryLog` — threshold-filtered worst-N query log.

See docs/OBSERVABILITY.md for the metric catalogue and span names.
"""

from repro.obs.explain import (
    PathPlan,
    QueryPlan,
    StepPlan,
    TwigNodePlan,
    TwigPlan,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)
from repro.obs.slowlog import SlowQueryLog, SlowQueryRecord
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PathPlan",
    "QueryPlan",
    "SlowQueryLog",
    "SlowQueryRecord",
    "Span",
    "StepPlan",
    "Timer",
    "Tracer",
    "TwigNodePlan",
    "TwigPlan",
]
