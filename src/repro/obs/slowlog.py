"""Slow-query log: the worst N queries over a threshold, with plans.

A bounded min-heap keyed by elapsed time: once full, a new slow query
evicts the *fastest* retained entry, so the log always holds the worst
offenders seen so far — the production-debugging view ("which queries
hurt, and what plan did they run").

Failed queries (timeouts, typed storage errors, load sheds) are kept
in a separate bounded ring via :meth:`record_failure` — a query that
*raised* is interesting regardless of how fast it died, and its plan
answers "what was it about to do".
"""

from __future__ import annotations

import heapq
import threading
from collections import deque
from dataclasses import dataclass, field
from itertools import count
from typing import Any, Dict, List, Optional, Tuple


@dataclass
class SlowQueryRecord:
    """One retained slow query."""

    expression: str
    strategy: str
    elapsed_ns: int
    sequence: int  # admission order, tie-breaker
    plan: Optional[Any] = None  # a QueryPlan when the caller supplies one
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed_ns / 1e6

    @property
    def error_type(self) -> Optional[str]:
        """Exception class name for failure records, else None."""
        return self.attrs.get("error_type")


class SlowQueryLog:
    """Threshold-filtered, bounded log of the slowest queries."""

    def __init__(self, threshold_ms: float = 10.0, capacity: int = 32):
        if capacity < 1:
            raise ValueError("slow-query log capacity must be >= 1")
        if threshold_ms < 0:
            raise ValueError("slow-query threshold must be >= 0")
        self.threshold_ns = int(threshold_ms * 1e6)
        self.capacity = capacity
        #: queries that crossed the threshold (including evicted ones)
        self.slow_count = 0
        #: every query offered to the log
        self.seen_count = 0
        #: queries that raised (including ones aged out of the ring)
        self.failure_count = 0
        self._heap: List[Tuple[int, int, SlowQueryRecord]] = []
        #: most recent failed queries, oldest evicted first
        self._failures: "deque[SlowQueryRecord]" = deque(maxlen=capacity)
        self._sequence = count()
        #: serialises heap/counter mutation — engines on several
        #: threads may share one log
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def note_seen(self) -> None:
        """Count a query that was offered but too fast to retain."""
        with self._lock:
            self.seen_count += 1

    def record(
        self,
        expression: str,
        strategy: str,
        elapsed_ns: int,
        plan: Optional[Any] = None,
        **attrs: Any,
    ) -> Optional[SlowQueryRecord]:
        """Offer a query; returns the retained record or None (fast or
        displaced by worse entries)."""
        with self._lock:
            self.seen_count += 1
            if elapsed_ns < self.threshold_ns:
                return None
            self.slow_count += 1
            entry = SlowQueryRecord(
                expression, strategy, elapsed_ns, next(self._sequence), plan, attrs
            )
            key = (elapsed_ns, entry.sequence, entry)
            if len(self._heap) < self.capacity:
                heapq.heappush(self._heap, key)
                return entry
            if elapsed_ns <= self._heap[0][0]:
                return None  # faster than everything retained
            heapq.heapreplace(self._heap, key)
            return entry

    def record_failure(
        self,
        expression: str,
        strategy: str,
        elapsed_ns: int,
        error: BaseException,
        plan: Optional[Any] = None,
        **attrs: Any,
    ) -> SlowQueryRecord:
        """Retain a query that raised, regardless of how fast it died.

        The record lands in the failure ring (not the slow heap) with
        ``error_type``/``error`` attrs; *plan* is whatever the engine
        managed to compile before the failure, possibly None.
        """
        attrs.setdefault("error_type", type(error).__name__)
        attrs.setdefault("error", str(error))
        with self._lock:
            self.seen_count += 1
            self.failure_count += 1
            entry = SlowQueryRecord(
                expression, strategy, elapsed_ns, next(self._sequence), plan, attrs
            )
            self._failures.append(entry)
            return entry

    # ------------------------------------------------------------------
    def entries(self) -> List[SlowQueryRecord]:
        """Retained records, slowest first."""
        return [
            item[2]
            for item in sorted(self._heap, key=lambda t: (-t[0], t[1]))
        ]

    def worst(self) -> Optional[SlowQueryRecord]:
        records = self.entries()
        return records[0] if records else None

    def rows(self) -> List[Tuple[str, str, float]]:
        """(expression, strategy, elapsed ms) rows, slowest first."""
        return [
            (record.expression, record.strategy, round(record.elapsed_ms, 3))
            for record in self.entries()
        ]

    def failures(self) -> List[SlowQueryRecord]:
        """Retained failure records, most recent last."""
        with self._lock:
            return list(self._failures)

    def clear(self) -> None:
        with self._lock:
            self._heap.clear()
            self._failures.clear()
            self.slow_count = 0
            self.seen_count = 0
            self.failure_count = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __repr__(self) -> str:
        return (
            f"<SlowQueryLog {len(self._heap)}/{self.capacity} "
            f"threshold={self.threshold_ns / 1e6:.1f}ms "
            f"slow={self.slow_count}/{self.seen_count}>"
        )
