"""Hierarchical trace spans with a ring-buffer recorder.

The observability layer's timing substrate: a :class:`Tracer` hands out
:class:`Span` context managers stamped with ``time.perf_counter_ns``
at entry and exit. Spans nest — the tracer keeps a stack of open spans,
so every finished span knows its parent and the recorder can rebuild
the call tree for EXPLAIN ANALYZE or the pretty-tree exporter.

Finished spans land in a bounded ring buffer (a ``deque`` with
``maxlen``): tracing a long run never grows memory without bound, the
newest spans win.

When tracing is off, components hold either ``None`` (checked inline on
the hottest paths — the evaluator's step loop) or :data:`NULL_TRACER`,
a shared no-op whose ``span()`` returns a reusable do-nothing context
manager. Both cost roughly one branch per call site.
"""

from __future__ import annotations

import json
from collections import deque
from time import perf_counter_ns
from typing import Any, Dict, List, Optional

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]


class Span:
    """One timed, attributed interval; usable as a context manager."""

    __slots__ = ("tracer", "name", "attrs", "span_id", "parent_id", "depth",
                 "start_ns", "end_ns")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = -1
        self.parent_id: Optional[int] = None
        self.depth = 0
        self.start_ns = 0
        self.end_ns: Optional[int] = None

    # -- context manager ----------------------------------------------------
    def __enter__(self) -> "Span":
        self.tracer._enter(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.tracer._exit(self)
        return False

    # -- attributes ---------------------------------------------------------
    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes on this span."""
        self.attrs.update(attrs)
        return self

    @property
    def duration_ns(self) -> int:
        end = self.end_ns if self.end_ns is not None else perf_counter_ns()
        return end - self.start_ns

    def as_dict(self) -> Dict[str, Any]:
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "depth": self.depth,
            "name": self.name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "duration_ns": self.duration_ns,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:
        return f"<Span {self.name} {self.duration_ns}ns {self.attrs}>"


class Tracer:
    """Records well-nested spans into a bounded ring buffer."""

    enabled = True

    def __init__(self, capacity: int = 65536):
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.capacity = capacity
        self._finished: "deque[Span]" = deque(maxlen=capacity)
        self._stack: List[Span] = []
        self._next_id = 0
        #: spans dropped because the ring buffer wrapped
        self.dropped = 0

    # -- span lifecycle -----------------------------------------------------
    def span(self, name: str, **attrs: Any) -> Span:
        """A new span; enter it (``with``) to start the clock."""
        return Span(self, name, attrs)

    def _enter(self, span: Span) -> None:
        span.span_id = self._next_id
        self._next_id += 1
        stack = self._stack
        if stack:
            span.parent_id = stack[-1].span_id
            span.depth = len(stack)
        stack.append(span)
        span.start_ns = perf_counter_ns()

    def _exit(self, span: Span) -> None:
        span.end_ns = perf_counter_ns()
        stack = self._stack
        while stack and stack[-1] is not span:  # tolerate leaked children
            stack.pop()
        if stack:
            stack.pop()
        if len(self._finished) == self.capacity:
            self.dropped += 1
        self._finished.append(span)

    def event(self, name: str, **attrs: Any) -> Span:
        """A zero-duration span recorded immediately (a point event)."""
        span = Span(self, name, attrs)
        self._enter(span)
        self._exit(span)
        return span

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes to the innermost open span (no-op if none)."""
        if self._stack:
            self._stack[-1].attrs.update(attrs)

    def annotate_once(self, **attrs: Any) -> None:
        """Like :meth:`annotate`, but first write wins — used where an
        outer dispatch must not be overwritten by nested evaluation
        (e.g. predicate sub-paths re-entering the step dispatcher)."""
        if self._stack:
            existing = self._stack[-1].attrs
            for key, value in attrs.items():
                existing.setdefault(key, value)

    # -- inspection ---------------------------------------------------------
    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def finished(self) -> List[Span]:
        """Finished spans, oldest first."""
        return list(self._finished)

    def clear(self) -> None:
        self._finished.clear()
        self._stack.clear()
        self.dropped = 0

    # -- exporters ----------------------------------------------------------
    def roots(self) -> List[Span]:
        """Finished spans whose parent is absent from the buffer."""
        present = {span.span_id for span in self._finished}
        return [
            span
            for span in self._finished
            if span.parent_id is None or span.parent_id not in present
        ]

    def children_of(self, span: Span) -> List[Span]:
        """Direct children of *span* among the finished spans, by id."""
        return [s for s in self._finished if s.parent_id == span.span_id]

    def to_json(self, indent: Optional[int] = None) -> str:
        """Every finished span as a JSON array (oldest first).

        Attribute values that are not JSON-native (e.g. raw AST nodes
        attached on hot paths to avoid eager stringification) are
        rendered through ``str``.
        """
        return json.dumps(
            [s.as_dict() for s in self._finished], indent=indent, default=str
        )

    def format_tree(self, time_unit: str = "us") -> str:
        """Pretty call-tree rendering of the finished spans."""
        divisor = {"ns": 1, "us": 1_000, "ms": 1_000_000}[time_unit]
        lines: List[str] = []

        def walk(span: Span, prefix: str) -> None:
            attrs = " ".join(f"{k}={v}" for k, v in span.attrs.items())
            duration = span.duration_ns / divisor
            lines.append(
                f"{prefix}{span.name}  {duration:.1f}{time_unit}"
                + (f"  [{attrs}]" if attrs else "")
            )
            for child in self.children_of(span):
                walk(child, prefix + "  ")

        for root in self.roots():
            walk(root, "")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<Tracer spans={len(self._finished)}/{self.capacity} "
            f"open={len(self._stack)} dropped={self.dropped}>"
        )


class _NullSpan:
    """Reusable do-nothing span; one shared instance serves all sites."""

    __slots__ = ()
    name = "null"
    attrs: Dict[str, Any] = {}
    duration_ns = 0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Zero-cost stand-in when tracing is disabled.

    Every method is a no-op returning shared singletons, so attaching
    :data:`NULL_TRACER` instead of ``None`` keeps call sites branch-free
    at the price of one dynamic call.
    """

    enabled = False
    dropped = 0
    current = None

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def annotate(self, **attrs: Any) -> None:
        return None

    def annotate_once(self, **attrs: Any) -> None:
        return None

    def finished(self) -> List[Span]:
        return []

    def roots(self) -> List[Span]:
        return []

    def clear(self) -> None:
        return None

    def to_json(self, indent: Optional[int] = None) -> str:
        return "[]"

    def format_tree(self, time_unit: str = "us") -> str:
        return ""

    def __repr__(self) -> str:
        return "<NullTracer>"


#: the shared disabled tracer
NULL_TRACER = NullTracer()
