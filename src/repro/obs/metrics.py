"""Named counters, gauges and fixed-bucket latency histograms.

:class:`MetricsRegistry` is the single place every subsystem's numbers
meet. It holds three instrument kinds plus *sources* — callables (the
``as_dict`` of an :class:`~repro.storage.iostats.IoStats` or
:class:`~repro.query.stats.QueryStats`) pulled at snapshot time, so the
existing dataclass ledgers keep their APIs and can never drift from
what the registry reports.

Histograms use fixed exponential nanosecond buckets and answer
p50/p95/p99 by linear interpolation inside the bucket, the classic
Prometheus-style estimate: cheap to record (one bisect per observation)
and accurate enough to rank query latencies.
"""

from __future__ import annotations

from bisect import bisect_left
from time import perf_counter_ns
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

Number = Union[int, float]

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "Timer"]

#: default latency buckets: 1us .. 10s, decade-spaced (upper bounds, ns)
DEFAULT_BUCKETS_NS: Tuple[int, ...] = (
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A value that can go up and down (pool occupancy, cache size)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def dec(self, amount: Number = 1) -> None:
        self.value -= amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """Fixed-bucket histogram with interpolated percentiles.

    ``bounds`` are inclusive upper bounds per bucket; one overflow
    bucket catches everything beyond the last bound. Minimum, maximum
    and sum are tracked exactly; percentiles are estimated.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Iterable[int] = DEFAULT_BUCKETS_NS):
        self.name = name
        self.bounds: Tuple[int, ...] = tuple(sorted(bounds))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts = [0] * (len(self.bounds) + 1)  # +1 overflow bucket
        self.count = 0
        self.total = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None

    def observe(self, value: Number) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        """Estimated value at *fraction* (0..1) of the distribution."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"percentile fraction {fraction} outside [0, 1]")
        if not self.count:
            return 0.0
        target = fraction * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            if cumulative + bucket_count >= target:
                lower = self.bounds[index - 1] if index > 0 else 0
                if index < len(self.bounds):
                    upper = self.bounds[index]
                else:  # overflow bucket: capped by the observed maximum
                    upper = max(self.max or lower, lower)
                position = (target - cumulative) / bucket_count
                estimate = lower + (upper - lower) * position
                # exact extremes beat interpolation at the tails
                if self.min is not None:
                    estimate = max(estimate, self.min)
                if self.max is not None:
                    estimate = min(estimate, self.max)
                return estimate
            cumulative += bucket_count
        return float(self.max or 0)

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    def summary(self) -> Dict[str, Number]:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0,
            "max": self.max if self.max is not None else 0,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }

    def reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count} p50={self.p50:.0f}>"


class Timer:
    """Context manager observing elapsed ``perf_counter_ns`` into a
    histogram."""

    __slots__ = ("histogram", "start_ns", "elapsed_ns")

    def __init__(self, histogram: Histogram):
        self.histogram = histogram
        self.start_ns = 0
        self.elapsed_ns = 0

    def __enter__(self) -> "Timer":
        self.start_ns = perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.elapsed_ns = perf_counter_ns() - self.start_ns
        self.histogram.observe(self.elapsed_ns)
        return False


class MetricsRegistry:
    """Get-or-create instrument store plus pull-based stat sources."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._sources: Dict[str, Callable[[], Dict[str, Number]]] = {}

    # -- instruments --------------------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            self._counters[name] = instrument = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            self._gauges[name] = instrument = Gauge(name)
        return instrument

    def histogram(
        self, name: str, bounds: Iterable[int] = DEFAULT_BUCKETS_NS
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            self._histograms[name] = instrument = Histogram(name, bounds)
        return instrument

    def timer(self, name: str) -> Timer:
        """``with registry.timer("q"): ...`` — observe into histogram *name*."""
        return Timer(self.histogram(name))

    # -- sources ------------------------------------------------------------
    def register_source(
        self, prefix: str, snapshot: Callable[[], Dict[str, Number]]
    ) -> None:
        """Register a pull source; its entries appear in snapshots as
        ``prefix.key``. Re-registering a prefix replaces the source, so
        a rebuilt component simply re-binds itself."""
        self._sources[prefix] = snapshot

    def unregister_source(self, prefix: str) -> None:
        self._sources.pop(prefix, None)

    # -- export -------------------------------------------------------------
    def snapshot(self) -> Dict[str, Number]:
        """Flat name → value map: counters, gauges, histogram summaries
        (``name.count`` … ``name.p99``) and every registered source."""
        out: Dict[str, Number] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, histogram in self._histograms.items():
            for key, value in histogram.summary().items():
                out[f"{name}.{key}"] = value
        for prefix, source in self._sources.items():
            for key, value in source().items():
                out[f"{prefix}.{key}"] = value
        return out

    def rows(self) -> List[Tuple[str, Number]]:
        """Sorted (metric, value) rows for table rendering."""
        snapshot = self.snapshot()
        return [
            (
                name,
                round(value, 1) if isinstance(value, float) else value,
            )
            for name, value in sorted(snapshot.items())
        ]

    def reset(self) -> None:
        """Zero every instrument (sources are *not* reset — they belong
        to their owners; call the owner's ``reset()``)."""
        for counter in self._counters.values():
            counter.reset()
        for gauge in self._gauges.values():
            gauge.reset()
        for histogram in self._histograms.values():
            histogram.reset()

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry counters={len(self._counters)} "
            f"gauges={len(self._gauges)} histograms={len(self._histograms)} "
            f"sources={len(self._sources)}>"
        )
