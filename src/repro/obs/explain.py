"""EXPLAIN / EXPLAIN ANALYZE plan structures.

The query layer builds these; this module only defines the shapes and
their renderings so the observability layer stays import-free of the
engine (the engine imports *us*).

An XPath plan is a list of per-path step rows — axis, node test,
predicate count, the route the scheme evaluator will take (``batched``
set-at-a-time, ``per-node`` fallback, ``pruned`` by the tag synopsis,
or plain ``navigational``) and the synopsis' candidate estimate. Under
ANALYZE each step additionally carries the measured input/output
cardinalities and nanosecond timings gathered from trace spans.

A twig plan mirrors the pattern tree: per pattern node the candidate
count, the structural-join algorithm chosen for descendant edges
(``nested`` vs ``stack`` — the cardinality cutoff of
:func:`~repro.query.joins.choose_join_algorithm`) and, analyzed, the
surviving match counts and timings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple


def _render(headers: Sequence[str], rows: Sequence[Sequence[Any]],
            title: Optional[str] = None) -> str:
    """Minimal aligned-column table (kept local: obs must not import
    the analysis layer)."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.ljust(widths[i]) for i, v in enumerate(row)))
    return "\n".join(lines)


def _ns_to_ms(value: Optional[int]) -> str:
    return "-" if value is None else f"{value / 1e6:.3f}"


@dataclass
class StepPlan:
    """One location step of a compiled path."""

    index: int
    axis: str
    test: str
    predicates: int
    route: str  # batched | per-node | pruned | navigational
    estimate: Optional[int] = None  # synopsis candidate estimate
    # -- ANALYZE fields --
    calls: int = 0
    in_count: Optional[int] = None
    out_count: Optional[int] = None
    time_ns: Optional[int] = None
    observed_route: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "axis": self.axis,
            "test": self.test,
            "predicates": self.predicates,
            "route": self.route,
            "estimate": self.estimate,
            "calls": self.calls,
            "in": self.in_count,
            "out": self.out_count,
            "time_ns": self.time_ns,
            "observed_route": self.observed_route,
        }


@dataclass
class PathPlan:
    """One top-level location path (a union arm, or the whole query)."""

    expression: str
    absolute: bool
    steps: List[StepPlan] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "expression": self.expression,
            "absolute": self.absolute,
            "steps": [step.as_dict() for step in self.steps],
        }


@dataclass
class QueryPlan:
    """EXPLAIN output for one XPath expression."""

    expression: str
    strategy: str
    cache_hit: bool
    paths: List[PathPlan] = field(default_factory=list)
    #: set when the top-level expression is not a location path/union
    scalar: bool = False
    analyzed: bool = False
    result_count: Optional[int] = None
    total_ns: Optional[int] = None
    #: the ANALYZE run's result node-set (not serialized)
    result: Optional[list] = None
    #: physical access counters charged by the run (store fetches,
    #: rank probes, buffer-pool page hits/misses for paged stores)
    physical: Optional[Dict[str, int]] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "expression": self.expression,
            "strategy": self.strategy,
            "cache_hit": self.cache_hit,
            "scalar": self.scalar,
            "analyzed": self.analyzed,
            "result_count": self.result_count,
            "total_ns": self.total_ns,
            "physical": self.physical,
            "paths": [path.as_dict() for path in self.paths],
        }

    def step_rows(self) -> List[Tuple]:
        """Flat table rows over every path's steps."""
        rows: List[Tuple] = []
        for path_index, path in enumerate(self.paths):
            for step in path.steps:
                row: List[Any] = [
                    path_index,
                    step.index,
                    step.axis,
                    step.test,
                    step.predicates,
                    step.route,
                    "-" if step.estimate is None else step.estimate,
                ]
                if self.analyzed:
                    row += [
                        step.calls,
                        "-" if step.in_count is None else step.in_count,
                        "-" if step.out_count is None else step.out_count,
                        _ns_to_ms(step.time_ns),
                        step.observed_route or step.route,
                    ]
                rows.append(tuple(row))
        return rows

    def format(self) -> str:
        headers = ["path", "step", "axis", "test", "preds", "route", "est"]
        if self.analyzed:
            headers += ["calls", "in", "out", "ms", "observed"]
        header = (
            f"EXPLAIN{' ANALYZE' if self.analyzed else ''} "
            f"{self.expression!r} [{self.strategy}]"
            f"{' (plan cache hit)' if self.cache_hit else ''}"
        )
        if self.scalar:
            body = "scalar expression: no location-path steps"
        else:
            body = _render(headers, self.step_rows())
        footer = ""
        if self.analyzed:
            footer = (
                f"\nresults: {self.result_count}"
                f"   total: {_ns_to_ms(self.total_ns)} ms"
            )
            if self.physical:
                counters = "  ".join(
                    f"{key}={value}" for key, value in sorted(self.physical.items())
                )
                footer += f"\nphysical: {counters}"
        return f"{header}\n{body}{footer}"

    def __str__(self) -> str:
        return self.format()


# ----------------------------------------------------------------------
# Twig plans
# ----------------------------------------------------------------------
@dataclass
class TwigNodePlan:
    """One pattern node of a twig match plan."""

    tag: str  # "*" for the wildcard test
    axis: str  # edge from the parent pattern node
    depth: int
    candidates: int
    #: structural-join algorithm for this node's descendant edges, or
    #: "rparent" for the child-edge arithmetic, "-" for the root
    algorithm: str = "-"
    # -- ANALYZE fields --
    survivors: Optional[int] = None
    time_ns: Optional[int] = None
    skipped: bool = False

    def as_dict(self) -> Dict[str, Any]:
        return {
            "tag": self.tag,
            "axis": self.axis,
            "depth": self.depth,
            "candidates": self.candidates,
            "algorithm": self.algorithm,
            "survivors": self.survivors,
            "time_ns": self.time_ns,
            "skipped": self.skipped,
        }


@dataclass
class TwigPlan:
    """EXPLAIN output for one twig pattern over one labeling scheme."""

    pattern: str
    scheme: str
    nodes: List[TwigNodePlan] = field(default_factory=list)
    analyzed: bool = False
    match_count: Optional[int] = None
    total_ns: Optional[int] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "pattern": self.pattern,
            "scheme": self.scheme,
            "analyzed": self.analyzed,
            "match_count": self.match_count,
            "total_ns": self.total_ns,
            "nodes": [node.as_dict() for node in self.nodes],
        }

    def format(self) -> str:
        headers = ["node", "axis", "candidates", "algorithm"]
        if self.analyzed:
            headers += ["survivors", "ms"]
        rows = []
        for node in self.nodes:
            label = "  " * node.depth + node.tag
            row: List[Any] = [label, node.axis, node.candidates, node.algorithm]
            if self.analyzed:
                row += [
                    "(skipped)" if node.skipped
                    else ("-" if node.survivors is None else node.survivors),
                    _ns_to_ms(node.time_ns),
                ]
            rows.append(tuple(row))
        header = (
            f"EXPLAIN{' ANALYZE' if self.analyzed else ''} twig "
            f"{self.pattern!r} [{self.scheme}]"
        )
        footer = (
            f"\nmatches: {self.match_count}   total: {_ns_to_ms(self.total_ns)} ms"
            if self.analyzed
            else ""
        )
        return f"{header}\n{_render(headers, rows)}{footer}"

    def __str__(self) -> str:
        return self.format()
